// Whole-process heap accounting for bounded-memory assertions: global
// operator new/delete overrides that track live and peak allocated
// bytes. Include this header in EXACTLY ONE translation unit of a test
// or bench binary — it defines the replaceable global allocation
// functions, so a second inclusion in the same binary violates the ODR
// and fails to link.
//
// Layout: every allocation carries a 16-byte header immediately before
// the pointer handed out — the request size at p-16 and the offset
// back to the malloc() base at p-8 — so sized and unsized deletes of
// both plain and over-aligned blocks can be accounted and freed.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

namespace davpse::testing::heap_probe {

inline std::atomic<uint64_t> g_live_bytes{0};
inline std::atomic<uint64_t> g_peak_bytes{0};

inline uint64_t live_bytes() {
  return g_live_bytes.load(std::memory_order_relaxed);
}
inline uint64_t peak_bytes() {
  return g_peak_bytes.load(std::memory_order_relaxed);
}
/// Restarts the peak watermark from the current live level.
inline void reset_peak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

inline void account_alloc(uint64_t size) {
  uint64_t live = g_live_bytes.fetch_add(size, std::memory_order_relaxed) +
                  size;
  uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void account_free(uint64_t size) {
  g_live_bytes.fetch_sub(size, std::memory_order_relaxed);
}

constexpr size_t kHeader = 16;

inline void* allocate(size_t size, size_t align) {
  void* base = nullptr;
  char* user = nullptr;
  if (align <= kHeader) {
    base = std::malloc(size + kHeader);
    if (base == nullptr) return nullptr;
    user = static_cast<char*>(base) + kHeader;
  } else {
    // Over-aligned: leave room for the header ahead of an aligned
    // boundary inside the block.
    if (posix_memalign(&base, align, size + align + kHeader) != 0) {
      return nullptr;
    }
    uintptr_t raw = reinterpret_cast<uintptr_t>(base) + kHeader;
    user = reinterpret_cast<char*>((raw + align - 1) & ~(align - 1));
  }
  uint64_t offset =
      static_cast<uint64_t>(user - static_cast<char*>(base));
  uint64_t size64 = size;
  std::memcpy(user - 16, &size64, 8);
  std::memcpy(user - 8, &offset, 8);
  account_alloc(size);
  return user;
}

inline void deallocate(void* ptr) {
  if (ptr == nullptr) return;
  char* user = static_cast<char*>(ptr);
  uint64_t size = 0;
  uint64_t offset = 0;
  std::memcpy(&size, user - 16, 8);
  std::memcpy(&offset, user - 8, 8);
  account_free(size);
  std::free(user - offset);
}

}  // namespace davpse::testing::heap_probe

// -- replaceable global allocation functions ----------------------------

void* operator new(size_t size) {
  void* p = davpse::testing::heap_probe::allocate(size, 16);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size) { return ::operator new(size); }
void* operator new(size_t size, std::align_val_t align) {
  void* p = davpse::testing::heap_probe::allocate(
      size, static_cast<size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return davpse::testing::heap_probe::allocate(size, 16);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return davpse::testing::heap_probe::allocate(size, 16);
}

void operator delete(void* ptr) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete[](void* ptr) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete(void* ptr, size_t) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete[](void* ptr, size_t) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete(void* ptr, size_t, std::align_val_t) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  davpse::testing::heap_probe::deallocate(ptr);
}
