// Shared fixtures: in-process DAV and OODB stacks on unique endpoints.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "dav/server.h"
#include "davclient/client.h"
#include "http/server.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "oodb/client.h"
#include "oodb/server.h"
#include "util/fs.h"

namespace davpse::testing {

/// Process-unique endpoint name ("test-dav-3").
inline std::string unique_endpoint(const std::string& prefix) {
  static std::atomic<int> counter{0};
  return prefix + "-" + std::to_string(counter.fetch_add(1));
}

/// A full DAV stack: temp-dir repository, DavServer handler, HttpServer
/// front end. Ready after construction; stops on destruction.
struct DavStack {
  /// `metrics` (optional) wires one registry through the whole stack —
  /// DAV handler, HTTP front end, and every client made by client().
  /// `event_log` (optional, already start()ed) receives one access
  /// record per exchange; `tail` (optional) retains slow-trace
  /// timelines and backs GET /.well-known/traces.
  explicit DavStack(dbm::Flavor flavor = dbm::Flavor::kGdbm,
                    size_t daemons = 5, obs::Registry* metrics = nullptr,
                    obs::EventLog* event_log = nullptr,
                    obs::TailSampler* tail = nullptr,
                    dav::PropertyEngine engine =
                        dav::PropertyEngine::kDbmPerResource)
      : temp("davstack"), metrics_(metrics) {
    // Every stack runs a live flight recorder (as production would), so
    // /.well-known/history and /health serve real windows in any test;
    // tests needing dense samples call recorder->sample_now().
    obs::RecorderConfig recorder_config;
    recorder_config.interval_seconds = 0.25;
    recorder_config.metrics = metrics;
    recorder = std::make_unique<obs::FlightRecorder>(recorder_config);
    dav::DavConfig dav_config;
    dav_config.root = temp.path();
    dav_config.flavor = flavor;
    dav_config.property_engine = engine;
    dav_config.metrics = metrics;
    dav_config.tail_sampler = tail;
    dav_config.recorder = recorder.get();
    dav = std::make_unique<dav::DavServer>(dav_config);
    http::ServerConfig http_config;
    http_config.endpoint = unique_endpoint("test-dav");
    http_config.daemons = daemons;
    http_config.metrics = metrics;
    http_config.event_log = event_log;
    http_config.tail_sampler = tail;
    server = std::make_unique<http::HttpServer>(http_config, dav.get());
    Status status = server->start();
    if (!status.is_ok()) {
      throw std::runtime_error("DavStack start failed: " + status.to_string());
    }
    (void)recorder->start();
  }

  /// New client bound to this stack.
  davclient::DavClient client(
      davclient::ParserKind parser = davclient::ParserKind::kDom,
      http::ConnectionPolicy policy = http::ConnectionPolicy::kPersistent) {
    http::ClientConfig config;
    config.endpoint = server->endpoint();
    config.policy = policy;
    config.metrics = metrics_;
    return davclient::DavClient(config, parser);
  }

  TempDir temp;
  obs::Registry* metrics_ = nullptr;
  /// Declared before the servers: DavServer::do_history reads it, so it
  /// must be destroyed after them.
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<dav::DavServer> dav;
  std::unique_ptr<http::HttpServer> server;
};

/// A full OODB stack around a fresh SegmentStore.
struct OodbStack {
  explicit OodbStack(oodb::Schema schema)
      : temp("oodbstack"), endpoint_(unique_endpoint("test-oodb")) {
    oodb::OodbServerConfig config;
    config.endpoint = endpoint_;
    config.store_file = temp.path() / "store.oodb";
    server = std::make_unique<oodb::OodbServer>(
        config, std::make_unique<oodb::SegmentStore>(std::move(schema)));
    Status status = server->start();
    if (!status.is_ok()) {
      throw std::runtime_error("OodbStack start failed: " +
                               status.to_string());
    }
  }

  std::unique_ptr<oodb::OodbClient> client(const oodb::Schema& schema,
                                           bool cache_forward = true) {
    oodb::OodbClientConfig config;
    config.endpoint = endpoint_;
    config.cache_forward = cache_forward;
    return std::make_unique<oodb::OodbClient>(config, schema);
  }

  const std::string& endpoint() const { return endpoint_; }

  TempDir temp;
  std::string endpoint_;
  std::unique_ptr<oodb::OodbServer> server;
};

}  // namespace davpse::testing
