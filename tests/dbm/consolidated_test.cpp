// ConsolidatedStore engine tests: WAL replay, checkpointing, tree
// ops, the secondary index, group commit under concurrency, and
// crash recovery via deterministic WAL fault injection (a torn group
// commit must never leave a partially applied batch visible).
#include "dbm/consolidated.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "obs/metrics.h"
#include "util/fs.h"

namespace davpse::dbm {
namespace {

using Op = ConsolidatedStore::Op;

std::unique_ptr<ConsolidatedStore> open_or_die(
    const std::filesystem::path& dir, ConsolidatedOptions options = {}) {
  auto store = ConsolidatedStore::open(dir, options);
  EXPECT_TRUE(store.ok()) << store.status().to_string();
  return std::move(store).value();
}

TEST(ConsolidatedStoreTest, RoundtripAndFetchMany) {
  TempDir temp("consol");
  auto store = open_or_die(temp.path() / "store");
  ASSERT_TRUE(store->apply({Op::set("/a", "k1", "v1"),
                            Op::set("/a", "k2", "v2"),
                            Op::set("/b", "k1", "v3")})
                  .is_ok());
  EXPECT_EQ(store->fetch("/a", "k1").value(), "v1");
  EXPECT_EQ(store->fetch("/b", "k1").value(), "v3");
  EXPECT_EQ(store->fetch("/a", "nope").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store->fetch("/missing", "k1").status().code(),
            ErrorCode::kNotFound);

  auto all = store->fetch_all("/a");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "k1");
  EXPECT_EQ(all[1].first, "k2");

  // One pass over many resources; named-key and all-key forms.
  auto named = store->fetch_many({"/a", "/b", "/missing"}, {"k1"});
  ASSERT_EQ(named.size(), 3u);
  ASSERT_EQ(named[0].size(), 1u);
  EXPECT_EQ(named[0][0].second, "v1");
  ASSERT_EQ(named[1].size(), 1u);
  EXPECT_EQ(named[1][0].second, "v3");
  EXPECT_TRUE(named[2].empty());
  auto everything = store->fetch_many({"/a"}, {});
  ASSERT_EQ(everything.size(), 1u);
  EXPECT_EQ(everything[0].size(), 2u);

  EXPECT_EQ(store->resource_count(), 2u);
}

TEST(ConsolidatedStoreTest, ReopenReplaysWal) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  {
    auto store = open_or_die(dir);
    ASSERT_TRUE(store->apply({Op::set("/doc", "color", "blue")}).is_ok());
    ASSERT_TRUE(store->apply({Op::set("/doc", "size", "10"),
                              Op::remove_key("/doc", "color")})
                    .is_ok());
    EXPECT_GT(store->wal_bytes(), 0u);
  }
  auto reopened = open_or_die(dir);
  EXPECT_EQ(reopened->fetch("/doc", "size").value(), "10");
  EXPECT_EQ(reopened->fetch("/doc", "color").status().code(),
            ErrorCode::kNotFound);
}

TEST(ConsolidatedStoreTest, CheckpointPersistsAndTruncatesWal) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  {
    auto store = open_or_die(dir);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(store
                      ->apply({Op::set("/r" + std::to_string(i), "k",
                                       std::string(100, 'x'))})
                      .is_ok());
    }
    ASSERT_TRUE(store->checkpoint().is_ok());
    EXPECT_EQ(store->wal_bytes(), 0u);
    EXPECT_TRUE(std::filesystem::exists(dir / "MANIFEST"));
    // Post-checkpoint writes land in the fresh WAL.
    ASSERT_TRUE(store->apply({Op::set("/after", "k", "v")}).is_ok());
    EXPECT_GT(store->wal_bytes(), 0u);
  }
  auto reopened = open_or_die(dir);
  EXPECT_EQ(reopened->resource_count(), 51u);
  EXPECT_EQ(reopened->fetch("/r49", "k").value(), std::string(100, 'x'));
  EXPECT_EQ(reopened->fetch("/after", "k").value(), "v");
}

TEST(ConsolidatedStoreTest, TreeOpsRemoveCopyMove) {
  TempDir temp("consol");
  auto store = open_or_die(temp.path() / "store");
  ASSERT_TRUE(store->apply({Op::set("/t", "k", "root"),
                            Op::set("/t/sub/leaf", "k", "leaf"),
                            Op::set("/tother", "k", "sibling")})
                  .is_ok());

  // copy_tree re-keys the whole subtree; "/tother" is not under "/t"
  // (prefix must respect path boundaries).
  ASSERT_TRUE(store->apply({Op::copy_tree("/t", "/c")}).is_ok());
  EXPECT_EQ(store->fetch("/c", "k").value(), "root");
  EXPECT_EQ(store->fetch("/c/sub/leaf", "k").value(), "leaf");
  EXPECT_EQ(store->fetch("/cother", "k").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store->fetch("/t", "k").value(), "root");  // source intact

  ASSERT_TRUE(store->apply({Op::move_tree("/c", "/m")}).is_ok());
  EXPECT_EQ(store->fetch("/m/sub/leaf", "k").value(), "leaf");
  EXPECT_EQ(store->fetch("/c", "k").status().code(), ErrorCode::kNotFound);

  ASSERT_TRUE(store->apply({Op::remove_tree("/t")}).is_ok());
  EXPECT_EQ(store->fetch("/t", "k").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store->fetch("/t/sub/leaf", "k").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store->fetch("/tother", "k").value(), "sibling");
}

TEST(ConsolidatedStoreTest, SecondaryIndexTracksMutations) {
  TempDir temp("consol");
  auto store = open_or_die(temp.path() / "store");
  ASSERT_TRUE(store->apply({Op::set("/a", "tag", "1"),
                            Op::set("/b", "tag", "2"),
                            Op::set("/c", "other", "3")})
                  .is_ok());
  EXPECT_EQ(store->resources_with_key("tag"),
            (std::vector<std::string>{"/a", "/b"}));
  ASSERT_TRUE(store->apply({Op::remove_key("/a", "tag")}).is_ok());
  EXPECT_EQ(store->resources_with_key("tag"),
            (std::vector<std::string>{"/b"}));
  ASSERT_TRUE(store->apply({Op::move_tree("/b", "/z")}).is_ok());
  EXPECT_EQ(store->resources_with_key("tag"),
            (std::vector<std::string>{"/z"}));
  ASSERT_TRUE(store->apply({Op::remove_tree("/z")}).is_ok());
  EXPECT_TRUE(store->resources_with_key("tag").empty());
}

TEST(ConsolidatedStoreTest, IndexSurvivesReplayAndCheckpoint) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  {
    auto store = open_or_die(dir);
    ASSERT_TRUE(store->apply({Op::set("/a", "tag", "1")}).is_ok());
    ASSERT_TRUE(store->checkpoint().is_ok());
    ASSERT_TRUE(store->apply({Op::set("/b", "tag", "2")}).is_ok());
  }
  auto reopened = open_or_die(dir);
  EXPECT_EQ(reopened->resources_with_key("tag"),
            (std::vector<std::string>{"/a", "/b"}));
}

TEST(ConsolidatedStoreTest, RecoveryDoesNotDoubleApplyCheckpointedTreeOps) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  {
    auto store = open_or_die(dir);
    ASSERT_TRUE(store->apply({Op::set("/src", "k", "v")}).is_ok());
    ASSERT_TRUE(store->apply({Op::copy_tree("/src", "/dst")}).is_ok());
    ASSERT_TRUE(store->apply({Op::set("/dst", "k", "changed")}).is_ok());
    // Checkpoint covers all three batches; a naive reopen that
    // replayed the copy_tree again would clobber "changed".
    ASSERT_TRUE(store->checkpoint().is_ok());
  }
  auto reopened = open_or_die(dir);
  EXPECT_EQ(reopened->fetch("/dst", "k").value(), "changed");
  EXPECT_EQ(reopened->fetch("/src", "k").value(), "v");
}

TEST(ConsolidatedStoreTest, TornGroupCommitIsInvisibleAfterReopen) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  uint64_t committed_wal = 0;
  {
    // Grow the WAL with good batches, then measure it so the fault can
    // be planted mid-way through the next record.
    auto probe = open_or_die(dir);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(probe
                      ->apply({Op::set("/ok" + std::to_string(i), "k",
                                       "committed")})
                      .is_ok());
    }
    committed_wal = probe->wal_bytes();
  }
  {
    // Reopen with the WAL "device" failing a few bytes into the next
    // record: the batch is torn mid-write.
    ConsolidatedOptions options;
    options.fail_after_wal_bytes = committed_wal + 7;
    auto store = open_or_die(dir, options);
    Status torn = store->apply({Op::set("/torn", "k", "must-not-survive"),
                                Op::set("/torn2", "k", "must-not-survive")});
    EXPECT_FALSE(torn.is_ok());
    // The store is permanently failed — later applies refuse.
    EXPECT_FALSE(store->apply({Op::set("/later", "k", "v")}).is_ok());
  }
  obs::Registry registry;
  ConsolidatedOptions options;
  options.metrics = &registry;
  auto recovered = open_or_die(dir, options);
  // Every committed batch survives; the torn batch is fully absent —
  // not one op of it applied.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(recovered->fetch("/ok" + std::to_string(i), "k").value(),
              "committed");
  }
  EXPECT_EQ(recovered->fetch("/torn", "k").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(recovered->fetch("/torn2", "k").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(recovered->fetch("/later", "k").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(registry.counter("dbm.consolidated.torn_records").value(), 1u);
  // Recovery truncated the torn tail: the WAL ends at the last good
  // record, and writing works again on the recovered store.
  EXPECT_EQ(recovered->wal_bytes(), committed_wal);
  EXPECT_TRUE(recovered->apply({Op::set("/fresh", "k", "v")}).is_ok());
}

TEST(ConsolidatedStoreTest, GroupCommitUnderConcurrency) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  obs::Registry registry;
  ConsolidatedOptions options;
  options.metrics = &registry;
  constexpr int kThreads = 8;
  constexpr int kBatchesPerThread = 50;
  {
    auto store = open_or_die(dir, options);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < kBatchesPerThread; ++i) {
          std::string resource =
              "/t" + std::to_string(t) + "/r" + std::to_string(i);
          ASSERT_TRUE(
              store->apply({Op::set(resource, "k", "v"),
                            Op::set(resource, "k2", std::to_string(i))})
                  .is_ok());
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(store->resource_count(),
              static_cast<size_t>(kThreads * kBatchesPerThread));
  }
  // Group commit: concurrent writers share flushes.
  EXPECT_EQ(registry.counter("dbm.consolidated.batches").value(),
            static_cast<uint64_t>(kThreads * kBatchesPerThread));
  EXPECT_LE(registry.counter("dbm.consolidated.wal_flushes").value(),
            registry.counter("dbm.consolidated.batches").value());
  // Everything is durable across reopen.
  auto reopened = open_or_die(dir);
  EXPECT_EQ(reopened->resource_count(),
            static_cast<size_t>(kThreads * kBatchesPerThread));
  EXPECT_EQ(reopened->fetch("/t7/r49", "k2").value(), "49");
}

TEST(ConsolidatedStoreTest, AutoCheckpointOnWalGrowth) {
  TempDir temp("consol");
  std::filesystem::path dir = temp.path() / "store";
  obs::Registry registry;
  ConsolidatedOptions options;
  options.checkpoint_wal_bytes = 512;  // tiny: trigger after a few batches
  options.metrics = &registry;
  auto store = open_or_die(dir, options);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store
                    ->apply({Op::set("/r" + std::to_string(i), "k",
                                     std::string(64, 'p'))})
                    .is_ok());
  }
  EXPECT_GT(registry.counter("dbm.consolidated.checkpoints").value(), 0u);
  // Checkpoints are amortized (the WAL may grow to half the live set
  // before the next one), but the tail must stay bounded — far below
  // the ~6 KB the 50 batches appended in total.
  EXPECT_LT(store->wal_bytes(), 4096u);
  auto reopened = open_or_die(dir);
  EXPECT_EQ(reopened->resource_count(), 50u);
}

}  // namespace
}  // namespace davpse::dbm
