#include "dbm/dbm.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "util/fs.h"
#include "util/random.h"

namespace davpse::dbm {
namespace {

namespace fs = std::filesystem;

class DbmFlavors : public ::testing::TestWithParam<Flavor> {
 protected:
  TempDir temp{"dbmtest"};
  fs::path db_path() const { return temp.path() / "test.db"; }
};

TEST_P(DbmFlavors, CreateStoreFetch) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok()) << db.status().to_string();
  ASSERT_TRUE(db.value()->store("key1", "value1").is_ok());
  ASSERT_TRUE(db.value()->store("key2", "value2").is_ok());
  auto fetched = db.value()->fetch("key1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), "value1");
  EXPECT_TRUE(db.value()->contains("key2"));
  EXPECT_FALSE(db.value()->contains("key3"));
  EXPECT_EQ(db.value()->size(), 2u);
}

TEST_P(DbmFlavors, CreateRefusesExistingFile) {
  { auto db = create_dbm(db_path(), GetParam()); ASSERT_TRUE(db.ok()); }
  auto again = create_dbm(db_path(), GetParam());
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kAlreadyExists);
}

TEST_P(DbmFlavors, OverwriteReplacesValue) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->store("k", "old").is_ok());
  ASSERT_TRUE(db.value()->store("k", "new").is_ok());
  EXPECT_EQ(db.value()->fetch("k").value(), "new");
  EXPECT_EQ(db.value()->size(), 1u);
}

TEST_P(DbmFlavors, RemoveAndTombstones) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->store("k", "v").is_ok());
  ASSERT_TRUE(db.value()->remove("k").is_ok());
  EXPECT_FALSE(db.value()->contains("k"));
  EXPECT_EQ(db.value()->fetch("k").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(db.value()->remove("k").code(), ErrorCode::kNotFound);
}

TEST_P(DbmFlavors, PersistsAcrossReopen) {
  {
    auto db = create_dbm(db_path(), GetParam());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->store("alpha", "1").is_ok());
    ASSERT_TRUE(db.value()->store("beta", "2").is_ok());
    ASSERT_TRUE(db.value()->remove("alpha").is_ok());
    ASSERT_TRUE(db.value()->store("gamma", "3").is_ok());
    ASSERT_TRUE(db.value()->sync().is_ok());
  }
  auto reopened = open_dbm(db_path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_EQ(reopened.value()->flavor(), GetParam());
  EXPECT_FALSE(reopened.value()->contains("alpha"));
  EXPECT_EQ(reopened.value()->fetch("beta").value(), "2");
  EXPECT_EQ(reopened.value()->fetch("gamma").value(), "3");
}

TEST_P(DbmFlavors, InitialSizePreallocated) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  uint64_t expected =
      GetParam() == Flavor::kSdbm ? 8 * 1024 : 25 * 1024;
  // An empty database already occupies its initial allocation — the
  // §3.2.4 "significant unused but allocated space".
  EXPECT_EQ(db.value()->file_size(), expected);
  EXPECT_EQ(db.value()->live_bytes(), 0u);
}

TEST_P(DbmFlavors, CompactReclaimsDeadRecords) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  std::string value(512, 'v');
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.value()->store("churn", value + std::to_string(i)).is_ok());
  }
  ASSERT_TRUE(db.value()->store("keeper", "stays").is_ok());
  uint64_t before = db.value()->file_size();
  ASSERT_TRUE(db.value()->compact().is_ok());
  uint64_t after = db.value()->file_size();
  EXPECT_LT(after, before);
  EXPECT_EQ(db.value()->fetch("keeper").value(), "stays");
  EXPECT_TRUE(db.value()->contains("churn"));
  // Contents survive a reopen after compaction.
  auto reopened = open_dbm(db_path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->fetch("keeper").value(), "stays");
}

TEST_P(DbmFlavors, KeysEnumeratesLiveSet) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db.value()->store("a", "1").is_ok());
  ASSERT_TRUE(db.value()->store("b", "2").is_ok());
  ASSERT_TRUE(db.value()->remove("a").is_ok());
  auto keys = db.value()->keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "b");
}

TEST_P(DbmFlavors, BinaryKeysAndValues) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  std::string key("bin\0key", 7);
  std::string value("val\0ue\xff", 7);
  ASSERT_TRUE(db.value()->store(key, value).is_ok());
  EXPECT_EQ(db.value()->fetch(key).value(), value);
}

TEST_P(DbmFlavors, RandomOpsAgainstReferenceMap) {
  auto db = create_dbm(db_path(), GetParam());
  ASSERT_TRUE(db.ok());
  std::map<std::string, std::string> reference;
  Rng rng(GetParam() == Flavor::kSdbm ? 100 : 200);
  for (int op = 0; op < 600; ++op) {
    std::string key = "k" + std::to_string(rng.uniform(0, 30));
    int action = static_cast<int>(rng.uniform(0, 2));
    if (action == 0) {
      std::string value = rng.ascii_blob(rng.uniform(0, 900));
      ASSERT_TRUE(db.value()->store(key, value).is_ok());
      reference[key] = value;
    } else if (action == 1) {
      Status status = db.value()->remove(key);
      EXPECT_EQ(status.is_ok(), reference.erase(key) > 0);
    } else {
      auto fetched = db.value()->fetch(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(fetched.ok());
      } else {
        ASSERT_TRUE(fetched.ok());
        EXPECT_EQ(fetched.value(), it->second);
      }
    }
  }
  EXPECT_EQ(db.value()->size(), reference.size());
  // Everything must survive a sync + reopen.
  ASSERT_TRUE(db.value()->sync().is_ok());
  auto reopened = open_dbm(db_path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->size(), reference.size());
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(reopened.value()->fetch(key).value(), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, DbmFlavors,
                         ::testing::Values(Flavor::kSdbm, Flavor::kGdbm),
                         [](const auto& info) {
                           return info.param == Flavor::kSdbm ? "Sdbm"
                                                              : "Gdbm";
                         });

// --- flavor-specific behaviors ---------------------------------------

TEST(SdbmLimits, RejectsValuesOverOneKb) {
  TempDir temp("dbmtest");
  auto db = create_dbm(temp.path() / "s.db", Flavor::kSdbm);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db.value()->store("k", std::string(1024, 'x')).is_ok());
  Status status = db.value()->store("k", std::string(1025, 'x'));
  EXPECT_EQ(status.code(), ErrorCode::kTooLarge);
}

TEST(GdbmLimits, AcceptsLargeValues) {
  TempDir temp("dbmtest");
  auto db = create_dbm(temp.path() / "g.db", Flavor::kGdbm);
  ASSERT_TRUE(db.ok());
  std::string big(4 * 1024 * 1024, 'g');
  ASSERT_TRUE(db.value()->store("k", big).is_ok());
  EXPECT_EQ(db.value()->fetch("k").value(), big);
}

TEST(DbmErrors, OpenMissingFile) {
  TempDir temp("dbmtest");
  auto db = open_dbm(temp.path() / "missing.db");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), ErrorCode::kNotFound);
}

TEST(DbmErrors, OpenGarbageFile) {
  TempDir temp("dbmtest");
  fs::path path = temp.path() / "garbage.db";
  ASSERT_TRUE(write_file_atomic(path, std::string(100, 'z')).is_ok());
  auto db = open_dbm(path);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), ErrorCode::kMalformed);
}

TEST(DbmErrors, TruncatedRecordDetected) {
  TempDir temp("dbmtest");
  fs::path path = temp.path() / "trunc.db";
  {
    auto db = create_dbm(path, Flavor::kGdbm);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->store("key", std::string(2000, 'v')).is_ok());
    ASSERT_TRUE(db.value()->sync().is_ok());
  }
  // Chop the tail off the last record.
  auto size = fs::file_size(path);
  fs::resize_file(path, size - 100);
  auto db = open_dbm(path);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), ErrorCode::kMalformed);
}

TEST(DbmOpenOrCreate, CreatesThenReopens) {
  TempDir temp("dbmtest");
  fs::path path = temp.path() / "oc.db";
  {
    auto db = open_or_create_dbm(path, Flavor::kGdbm);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db.value()->store("k", "v").is_ok());
    ASSERT_TRUE(db.value()->sync().is_ok());
  }
  auto db = open_or_create_dbm(path, Flavor::kGdbm);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->fetch("k").value(), "v");
}

}  // namespace
}  // namespace davpse::dbm
