// Property-style invariants for the namespace operations, checked over
// randomly generated resource trees:
//   COPY:   destination is deeply equal to the source (bodies + dead
//           properties); the source is untouched.
//   MOVE:   destination is deeply equal to what the source was; the
//           source is gone.
//   DELETE: the subtree is gone; siblings are untouched.
#include <gtest/gtest.h>

#include <map>

#include "davclient/client.h"
#include "testing/env.h"
#include "util/random.h"

namespace davpse {
namespace {

using davclient::DavClient;
using davclient::Depth;
using davclient::PropWrite;
using testing::DavStack;

const xml::QName kTag("urn:tree", "tag");
const xml::QName kBlob("urn:tree", "blob");

/// In-memory model of a generated tree for later comparison.
struct ModelNode {
  bool is_collection = false;
  std::string body;
  std::map<std::string, std::string> props;  // local name -> value
};
using Model = std::map<std::string, ModelNode>;  // path (rel to root) -> node

/// Builds a random tree under `root` on the server and in the model.
void generate_tree(Rng& rng, DavClient& client, const std::string& root,
                   int depth, Model* model, const std::string& rel = "") {
  size_t child_count = depth <= 0 ? 0 : rng.uniform(1, 4);
  for (size_t i = 0; i < child_count; ++i) {
    std::string name = rng.identifier(3, 8) + std::to_string(i);
    std::string path = root + "/" + name;
    std::string rel_path = rel + "/" + name;
    ModelNode node;
    node.is_collection = depth > 1 && rng.coin(0.4);
    if (node.is_collection) {
      ASSERT_TRUE(client.mkcol(path).is_ok());
    } else {
      node.body = rng.ascii_blob(rng.uniform(0, 2000));
      ASSERT_TRUE(client.put(path, node.body).is_ok());
    }
    std::vector<PropWrite> writes;
    size_t prop_count = rng.uniform(0, 4);
    for (size_t p = 0; p < prop_count; ++p) {
      std::string local = "p" + std::to_string(p);
      std::string value = rng.ascii_blob(rng.uniform(1, 200));
      node.props[local] = value;
      writes.push_back(
          PropWrite::of_text(xml::QName("urn:tree", local), value));
    }
    if (!writes.empty()) {
      ASSERT_TRUE(client.proppatch(path, writes).is_ok());
    }
    if (node.is_collection) {
      generate_tree(rng, client, path, depth - 1, model, rel_path);
    }
    (*model)[rel_path] = std::move(node);
  }
}

/// Verifies the server subtree at `root` matches the model exactly.
void verify_tree(DavClient& client, const std::string& root,
                 const Model& model) {
  auto listing = client.propfind_all(root, Depth::kInfinity);
  ASSERT_TRUE(listing.ok()) << listing.status().to_string();
  // Count server resources (excluding the root itself).
  size_t server_count = 0;
  for (const auto& response : listing.value().responses) {
    if (response.href == root) continue;
    ++server_count;
    ASSERT_GE(response.href.size(), root.size());
    std::string rel = response.href.substr(root.size());
    auto it = model.find(rel);
    ASSERT_NE(it, model.end()) << "unexpected resource " << response.href;
    const ModelNode& node = it->second;
    EXPECT_EQ(response.is_collection(), node.is_collection) << response.href;
    for (const auto& [local, value] : node.props) {
      auto got = client.get_property(response.href,
                                     xml::QName("urn:tree", local));
      ASSERT_TRUE(got.ok()) << response.href << " " << local;
      EXPECT_EQ(got.value(), value) << response.href << " " << local;
    }
    if (!node.is_collection) {
      auto body = client.get(response.href);
      ASSERT_TRUE(body.ok());
      EXPECT_EQ(body.value(), node.body) << response.href;
    }
  }
  EXPECT_EQ(server_count, model.size());
}

class TreeInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreeInvariants, CopyMoveDeletePreserveStructure) {
  DavStack stack;
  auto client = stack.client();
  Rng rng(GetParam());
  ASSERT_TRUE(client.mkcol("/src").is_ok());
  Model model;
  generate_tree(rng, client, "/src", 3, &model);

  // COPY: deep-equal destination, untouched source.
  ASSERT_TRUE(client.copy("/src", "/copied").is_ok());
  verify_tree(client, "/copied", model);
  verify_tree(client, "/src", model);

  // MOVE: destination carries everything, source vanishes.
  ASSERT_TRUE(client.move("/src", "/moved").is_ok());
  verify_tree(client, "/moved", model);
  EXPECT_FALSE(client.exists("/src").value());

  // Mutating the copy must not affect the moved original (full
  // physical independence of the two trees, properties included).
  if (!model.empty()) {
    const auto& [rel, node] = *model.begin();
    std::string target = "/copied" + rel;
    if (node.is_collection) {
      ASSERT_TRUE(client.put(target + "/injected", "x").is_ok());
    } else {
      ASSERT_TRUE(client.put(target, "mutated").is_ok());
      ASSERT_TRUE(
          client.set_property(target, xml::QName("urn:tree", "p0"), "mut")
              .is_ok());
    }
    verify_tree(client, "/moved", model);
  }

  // DELETE: the subtree disappears, the sibling tree is intact.
  ASSERT_TRUE(client.remove("/copied").is_ok());
  EXPECT_FALSE(client.exists("/copied").value());
  verify_tree(client, "/moved", model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeInvariants,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace davpse
