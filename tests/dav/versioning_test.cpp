// DeltaV-lite versioning: VERSION-CONTROL, auto-checkin on PUT, the
// version-tree REPORT, historical retrieval, and interaction with
// MOVE/COPY/DELETE. (The paper's title promises versioning; the DeltaV
// standard was still a draft in 2001 — this is the linear-history
// subset.)
#include <gtest/gtest.h>

#include "davclient/client.h"
#include "testing/env.h"

namespace davpse {
namespace {

using davclient::Depth;
using testing::DavStack;

const xml::QName kVersionName = xml::dav_name("version-name");

struct VersioningFixture : ::testing::Test {
  VersioningFixture() : client(stack.client()) {
    EXPECT_TRUE(client.put("/doc", "v1-content").is_ok());
  }
  DavStack stack;
  davclient::DavClient client;
};

TEST_F(VersioningFixture, VersionControlSnapshotsCurrentContent) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  auto versions = client.list_versions("/doc");
  ASSERT_TRUE(versions.ok()) << versions.status().to_string();
  EXPECT_EQ(versions.value(), (std::vector<uint32_t>{1}));
  EXPECT_EQ(client.get_version("/doc", 1).value(), "v1-content");
}

TEST_F(VersioningFixture, VersionControlIsIdempotent) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  EXPECT_EQ(client.list_versions("/doc").value().size(), 1u);
}

TEST_F(VersioningFixture, EveryPutChecksInANewVersion) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  ASSERT_TRUE(client.put("/doc", "v2-content").is_ok());
  ASSERT_TRUE(client.put("/doc", "v3-content").is_ok());
  auto versions = client.list_versions("/doc");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions.value(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(client.get_version("/doc", 1).value(), "v1-content");
  EXPECT_EQ(client.get_version("/doc", 2).value(), "v2-content");
  EXPECT_EQ(client.get_version("/doc", 3).value(), "v3-content");
  // Plain GET returns the latest.
  EXPECT_EQ(client.get("/doc").value(), "v3-content");
}

TEST_F(VersioningFixture, VersionNameLiveProperty) {
  // Absent before version control...
  auto before = client.propfind("/doc", Depth::kZero, {kVersionName});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().responses.front().missing.size(), 1u);
  // ...tracks the checked-in count afterwards.
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  ASSERT_TRUE(client.put("/doc", "v2").is_ok());
  auto after = client.propfind("/doc", Depth::kZero, {kVersionName});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().responses.front().prop(kVersionName), "2");
}

TEST_F(VersioningFixture, UnversionedResourcesRejectReports) {
  auto versions = client.list_versions("/doc");
  EXPECT_FALSE(versions.ok());
  EXPECT_EQ(versions.status().code(), ErrorCode::kConflict);
  EXPECT_EQ(client.get_version("/doc", 1).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(VersioningFixture, MissingVersionIs404) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  EXPECT_EQ(client.get_version("/doc", 99).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(VersioningFixture, CollectionsCannotBeVersioned) {
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  Status status = client.version_control("/col");
  EXPECT_EQ(status.code(), ErrorCode::kUnsupported);
  EXPECT_EQ(client.version_control("/ghost").code(), ErrorCode::kNotFound);
}

TEST_F(VersioningFixture, MoveCarriesHistoryCopyDoesNot) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  ASSERT_TRUE(client.put("/doc", "v2").is_ok());

  ASSERT_TRUE(client.copy("/doc", "/copied").is_ok());
  // The copy is a fresh, unversioned resource (DeltaV semantics).
  EXPECT_EQ(client.list_versions("/copied").status().code(),
            ErrorCode::kConflict);

  ASSERT_TRUE(client.move("/doc", "/moved").is_ok());
  auto versions = client.list_versions("/moved");
  ASSERT_TRUE(versions.ok()) << versions.status().to_string();
  EXPECT_EQ(versions.value(), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(client.get_version("/moved", 1).value(), "v1-content");
}

TEST_F(VersioningFixture, DeleteDropsHistory) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  ASSERT_TRUE(client.put("/doc", "v2").is_ok());
  ASSERT_TRUE(client.remove("/doc").is_ok());
  // Re-creating the resource starts with no history.
  ASSERT_TRUE(client.put("/doc", "fresh").is_ok());
  EXPECT_EQ(client.list_versions("/doc").status().code(),
            ErrorCode::kConflict);
}

TEST_F(VersioningFixture, OptionsAdvertisesVersionControl) {
  http::HttpRequest request;
  request.method = "OPTIONS";
  request.target = "/";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  auto dav_header = response.value().headers.get("DAV");
  ASSERT_TRUE(dav_header.has_value());
  EXPECT_NE(dav_header->find("version-control"), std::string_view::npos);
}

TEST_F(VersioningFixture, HistoryPreservedAcrossManyRevisions) {
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  for (int i = 2; i <= 20; ++i) {
    ASSERT_TRUE(client.put("/doc", "rev-" + std::to_string(i)).is_ok());
  }
  auto versions = client.list_versions("/doc");
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 20u);
  EXPECT_EQ(client.get_version("/doc", 7).value(), "rev-7");
  EXPECT_EQ(client.get_version("/doc", 20).value(), "rev-20");
}

}  // namespace
}  // namespace davpse
