// The bounded-memory invariant of the streaming body pipeline: a
// whole GET or PUT completes with peak heap growth bounded by a small
// constant, independent of object size. Heap usage is measured with
// process-wide operator new/delete instrumentation (heap_probe.h —
// included here and nowhere else in this binary).
#include "testing/heap_probe.h"

#include <gtest/gtest.h>

#include <memory>

#include "davclient/client.h"
#include "http/body.h"
#include "testing/env.h"

namespace davpse {
namespace {

namespace probe = testing::heap_probe;
using testing::DavStack;

constexpr uint64_t kObjectSize = 64ull * 1024 * 1024;
// Generous bound: pipe queues (2 x 256 KiB per direction), block
// buffers (64 KiB), wire reader scratch, stdio buffers — the streamed
// transfer should stay well under this, while the eager path needs
// the full 64 MiB (plus growth slack) by definition.
constexpr uint64_t kStreamedBudget = 8ull * 1024 * 1024;

/// Deterministic generated body — O(1) memory at any size.
class PatternSource final : public http::BodySource {
 public:
  explicit PatternSource(uint64_t total) : total_(total) {}

  Result<size_t> read(char* out, size_t max) override {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(max, total_ - offset_));
    for (size_t i = 0; i < n; ++i) {
      uint64_t pos = offset_ + i;
      out[i] = static_cast<char>((pos * 131 + (pos >> 9)) & 0xff);
    }
    offset_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return total_; }
  bool rewind() override {
    offset_ = 0;
    return true;
  }

 private:
  uint64_t total_;
  uint64_t offset_ = 0;
};

TEST(StreamingMemory, StreamedPutIsBoundedByBlockBudget) {
  DavStack stack;
  auto client = stack.client();
  // Warm the connection so steady-state allocations (wire buffers,
  // pipe queues) predate the measurement window.
  ASSERT_TRUE(client.put("/warm.bin", std::string(1024, 'w')).is_ok());

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  auto body = std::make_shared<PatternSource>(kObjectSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_LE(peak_delta, kStreamedBudget)
      << "streamed PUT peaked at " << peak_delta << " bytes";
}

TEST(StreamingMemory, StreamedGetIsBoundedByBlockBudget) {
  DavStack stack;
  auto client = stack.client();
  auto body = std::make_shared<PatternSource>(kObjectSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  http::DigestBodySink sink;
  ASSERT_TRUE(client.get_to("/streamed.bin", &sink).is_ok());
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_EQ(sink.bytes_seen(), kObjectSize);
  EXPECT_LE(peak_delta, kStreamedBudget)
      << "streamed GET peaked at " << peak_delta << " bytes";
}

TEST(StreamingMemory, EagerGetMaterializesByContrast) {
  // Sanity-check the probe itself: the eager adapter path must show
  // at least the full object size, proving the instrument would catch
  // a streaming regression.
  DavStack stack;
  auto client = stack.client();
  auto body = std::make_shared<PatternSource>(kObjectSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  auto fetched = client.get("/streamed.bin");
  ASSERT_TRUE(fetched.ok());
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_EQ(fetched.value().size(), kObjectSize);
  EXPECT_GE(peak_delta, kObjectSize);
}

}  // namespace
}  // namespace davpse
