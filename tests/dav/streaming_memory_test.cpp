// The bounded-memory invariant of the streaming body pipeline: a
// whole GET or PUT completes with peak heap growth bounded by a small
// constant, independent of object size. Heap usage is measured with
// process-wide operator new/delete instrumentation (heap_probe.h —
// included here and nowhere else in this binary).
#include "testing/heap_probe.h"

#include <gtest/gtest.h>

#include <memory>

#include "davclient/client.h"
#include "http/body.h"
#include "testing/env.h"

namespace davpse {
namespace {

namespace probe = testing::heap_probe;
using testing::DavStack;

constexpr uint64_t kObjectSize = 64ull * 1024 * 1024;
// Generous bound: pipe queues (2 x 256 KiB per direction), block
// buffers (64 KiB), wire reader scratch, stdio buffers — the streamed
// transfer should stay well under this, while the eager path needs
// the full 64 MiB (plus growth slack) by definition.
constexpr uint64_t kStreamedBudget = 8ull * 1024 * 1024;

/// Deterministic generated body — O(1) memory at any size.
class PatternSource final : public http::BodySource {
 public:
  explicit PatternSource(uint64_t total) : total_(total) {}

  Result<size_t> read(char* out, size_t max) override {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(max, total_ - offset_));
    for (size_t i = 0; i < n; ++i) {
      uint64_t pos = offset_ + i;
      out[i] = static_cast<char>((pos * 131 + (pos >> 9)) & 0xff);
    }
    offset_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return total_; }
  bool rewind() override {
    offset_ = 0;
    return true;
  }

 private:
  uint64_t total_;
  uint64_t offset_ = 0;
};

TEST(StreamingMemory, StreamedPutIsBoundedByBlockBudget) {
  DavStack stack;
  auto client = stack.client();
  // Warm the connection so steady-state allocations (wire buffers,
  // pipe queues) predate the measurement window.
  ASSERT_TRUE(client.put("/warm.bin", std::string(1024, 'w')).is_ok());

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  auto body = std::make_shared<PatternSource>(kObjectSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_LE(peak_delta, kStreamedBudget)
      << "streamed PUT peaked at " << peak_delta << " bytes";
}

TEST(StreamingMemory, StreamedGetIsBoundedByBlockBudget) {
  DavStack stack;
  auto client = stack.client();
  auto body = std::make_shared<PatternSource>(kObjectSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  http::DigestBodySink sink;
  ASSERT_TRUE(client.get_to("/streamed.bin", &sink).is_ok());
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_EQ(sink.bytes_seen(), kObjectSize);
  EXPECT_LE(peak_delta, kStreamedBudget)
      << "streamed GET peaked at " << peak_delta << " bytes";
}

// -- streaming multistatus (PROPFIND) ------------------------------------

/// Direct-handler fixture: a corpus of `docs` children each carrying a
/// `prop_bytes` dead property, big enough that the serialized depth-1
/// multistatus far exceeds the streaming budget below.
std::unique_ptr<dav::DavServer> propfind_corpus(const TempDir& temp,
                                                size_t threshold, int docs,
                                                size_t prop_bytes) {
  dav::DavConfig config;
  config.root = temp.path();
  config.propfind_stream_threshold = threshold;
  auto server = std::make_unique<dav::DavServer>(config);
  if (!server->repository().make_collection("/col").is_ok()) return nullptr;
  const xml::QName meta("urn:test", "meta");
  std::string value(prop_bytes, 'm');
  for (int i = 0; i < docs; ++i) {
    std::string path = "/col/doc" + std::to_string(i);
    if (!server->repository().write_document(path, "x").is_ok()) {
      return nullptr;
    }
    if (!server->repository()
             .properties(path)
             .set({{meta, dav::PropertyValue{value}}})
             .is_ok()) {
      return nullptr;
    }
  }
  return server;
}

constexpr int kPropfindDocs = 1200;
constexpr size_t kPropfindPropBytes = 3 * 1024;
// The streamed emitter holds one refill batch, not the document: a
// megabyte is an order of magnitude above its working set and an order
// of magnitude below the serialized multistatus.
constexpr uint64_t kMultistatusBudget = 1024 * 1024;

TEST(StreamingMemory, StreamedPropfindIsBoundedByBatchBudget) {
  TempDir temp("propfind-stream");
  auto server = propfind_corpus(temp, /*threshold=*/32, kPropfindDocs,
                                kPropfindPropBytes);
  ASSERT_NE(server, nullptr);
  http::HttpRequest request;
  request.method = "PROPFIND";
  request.target = "/col";
  request.headers.set("Depth", "1");  // empty body: allprop

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  auto response = server->handle(request);
  ASSERT_EQ(response.status, 207);
  ASSERT_NE(response.body_source, nullptr);
  http::DigestBodySink sink;
  ASSERT_TRUE(http::drain_body(*response.body_source, sink).ok());
  uint64_t peak_delta = probe::peak_bytes() - before;

  // The document really is too big to have been built eagerly within
  // the budget...
  EXPECT_GT(sink.bytes_seen(),
            static_cast<uint64_t>(kPropfindDocs) * kPropfindPropBytes);
  // ...and the streaming emitter never approached materializing it.
  EXPECT_LE(peak_delta, kMultistatusBudget)
      << "streamed PROPFIND peaked at " << peak_delta << " bytes for a "
      << sink.bytes_seen() << "-byte multistatus";
}

TEST(StreamingMemory, EagerPropfindMaterializesByContrast) {
  // Probe sanity check: force the eager path over the same corpus and
  // the peak must cover the whole serialized document, proving the
  // instrument would catch a streaming regression.
  TempDir temp("propfind-eager");
  auto server = propfind_corpus(temp, /*threshold=*/SIZE_MAX, kPropfindDocs,
                                kPropfindPropBytes);
  ASSERT_NE(server, nullptr);
  http::HttpRequest request;
  request.method = "PROPFIND";
  request.target = "/col";
  request.headers.set("Depth", "1");

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  auto response = server->handle(request);
  ASSERT_EQ(response.status, 207);
  ASSERT_EQ(response.body_source, nullptr);
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_GT(response.body.size(),
            static_cast<size_t>(kPropfindDocs) * kPropfindPropBytes);
  EXPECT_GE(peak_delta, response.body.size());
}

TEST(StreamingMemory, EagerGetMaterializesByContrast) {
  // Sanity-check the probe itself: the eager adapter path must show
  // at least the full object size, proving the instrument would catch
  // a streaming regression.
  DavStack stack;
  auto client = stack.client();
  auto body = std::make_shared<PatternSource>(kObjectSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());

  uint64_t before = probe::live_bytes();
  probe::reset_peak();
  auto fetched = client.get("/streamed.bin");
  ASSERT_TRUE(fetched.ok());
  uint64_t peak_delta = probe::peak_bytes() - before;
  EXPECT_EQ(fetched.value().size(), kObjectSize);
  EXPECT_GE(peak_delta, kObjectSize);
}

}  // namespace
}  // namespace davpse
