// Engine-parity matrix: every property-visible behavior — PROPPATCH,
// PROPFIND (named/allprop/propname), COPY/MOVE/DELETE carriage,
// SEARCH, versioning — must be observably identical whether the
// DBM-per-resource baseline or the consolidated WAL-backed store is
// configured. Plus what intentionally differs: only the consolidated
// engine answers SEARCH from its property→resource index.
#include <gtest/gtest.h>

#include <string>

#include "dav/property_store.h"
#include "dav/repository.h"
#include "davclient/client.h"
#include "davclient/search.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse {
namespace {

using davclient::Depth;
using davclient::PropWrite;
using davclient::Where;
using testing::DavStack;

const xml::QName kFormula("urn:chem", "formula");
const xml::QName kEnergy("urn:chem", "energy");

class EngineParity : public ::testing::TestWithParam<dav::PropertyEngine> {
 protected:
  EngineParity()
      : stack(dbm::Flavor::kGdbm, 5, &registry, nullptr, nullptr, GetParam()),
        client(stack.client()) {}

  uint64_t counter(std::string_view name) {
    return registry.counter(name).value();
  }

  // Registry outlives the stack (the recorder reads it on shutdown).
  obs::Registry registry;
  DavStack stack;
  davclient::DavClient client;
};

TEST_P(EngineParity, ProppatchPropfindRoundtrip) {
  ASSERT_TRUE(client.put("/doc", "body").is_ok());
  ASSERT_TRUE(client
                  .proppatch("/doc", {PropWrite::of_text(kFormula, "H2O"),
                                      PropWrite::of_text(kEnergy, "-76.4")})
                  .is_ok());
  EXPECT_EQ(client.get_property("/doc", kFormula).value(), "H2O");

  auto named = client.propfind("/doc", Depth::kZero, {kFormula, kEnergy});
  ASSERT_TRUE(named.ok());
  const auto& response = named.value().responses.front();
  EXPECT_EQ(response.prop(kFormula), "H2O");
  EXPECT_EQ(response.prop(kEnergy), "-76.4");

  // Overwrite + remove through one PROPPATCH (all-or-nothing).
  ASSERT_TRUE(client
                  .proppatch("/doc", {PropWrite::of_text(kFormula, "D2O")},
                             {kEnergy})
                  .is_ok());
  EXPECT_EQ(client.get_property("/doc", kFormula).value(), "D2O");
  EXPECT_EQ(client.get_property("/doc", kEnergy).status().code(),
            ErrorCode::kNotFound);
  EXPECT_GT(counter("dav.props.db_writes"), 0u);
}

TEST_P(EngineParity, Depth1AllpropPropnameParity) {
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  for (int i = 0; i < 5; ++i) {
    std::string path = "/col/d" + std::to_string(i);
    ASSERT_TRUE(client.put(path, "x").is_ok());
    ASSERT_TRUE(client
                    .proppatch(path, {PropWrite::of_text(
                                         kFormula, "F" + std::to_string(i))})
                    .is_ok());
  }
  auto all = client.propfind_all("/col", Depth::kOne);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().responses.size(), 6u);  // collection + 5 docs
  for (int i = 0; i < 5; ++i) {
    const auto* response = all.value().find("/col/d" + std::to_string(i));
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(response->prop(kFormula), "F" + std::to_string(i));
    // Live properties ride along in allprop.
    EXPECT_EQ(response->prop(xml::dav_name("getcontentlength")), "1");
  }
  auto names = client.propfind_names("/col", Depth::kOne);
  ASSERT_TRUE(names.ok());
  const auto* d0 = names.value().find("/col/d0");
  ASSERT_NE(d0, nullptr);
  EXPECT_TRUE(d0->prop(kFormula).has_value());  // empty-valued in propname
}

TEST_P(EngineParity, CopyMoveDeleteCarryProperties) {
  ASSERT_TRUE(client.mkcol("/tree").is_ok());
  ASSERT_TRUE(client.put("/tree/leaf", "L").is_ok());
  ASSERT_TRUE(client.set_property("/tree/leaf", kFormula, "CO2").is_ok());

  ASSERT_TRUE(client.copy("/tree", "/copy").is_ok());
  EXPECT_EQ(client.get_property("/copy/leaf", kFormula).value(), "CO2");
  EXPECT_EQ(client.get_property("/tree/leaf", kFormula).value(), "CO2");

  // Copies diverge after the fact.
  ASSERT_TRUE(client.set_property("/copy/leaf", kFormula, "CH4").is_ok());
  EXPECT_EQ(client.get_property("/tree/leaf", kFormula).value(), "CO2");

  ASSERT_TRUE(client.move("/copy", "/moved").is_ok());
  EXPECT_EQ(client.get_property("/moved/leaf", kFormula).value(), "CH4");
  auto gone = client.exists("/copy");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone.value());

  ASSERT_TRUE(client.remove("/moved").is_ok());
  // Re-creating the same path must not resurrect old properties.
  ASSERT_TRUE(client.mkcol("/moved").is_ok());
  ASSERT_TRUE(client.put("/moved/leaf", "new").is_ok());
  EXPECT_EQ(client.get_property("/moved/leaf", kFormula).status().code(),
            ErrorCode::kNotFound);
}

TEST_P(EngineParity, VersioningCountsPersistInTheEngine) {
  ASSERT_TRUE(client.put("/doc", "v1").is_ok());
  ASSERT_TRUE(client.version_control("/doc").is_ok());
  ASSERT_TRUE(client.put("/doc", "v2").is_ok());
  ASSERT_TRUE(client.put("/doc", "v3").is_ok());
  auto versions = client.list_versions("/doc");
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions.value().size(), 3u);
  EXPECT_EQ(client.get_version("/doc", 1).value(), "v1");
}

TEST_P(EngineParity, SearchResultsIdenticalAcrossEngines) {
  ASSERT_TRUE(client.mkcol("/lab").is_ok());
  ASSERT_TRUE(client.put("/lab/water", "w").is_ok());
  ASSERT_TRUE(client.set_property("/lab/water", kFormula, "H2O").is_ok());
  ASSERT_TRUE(client.put("/lab/peroxide", "p").is_ok());
  ASSERT_TRUE(client.set_property("/lab/peroxide", kFormula, "H2O2").is_ok());
  ASSERT_TRUE(client.put("/lab/plain", "no props").is_ok());

  auto result = client.search("/lab", Depth::kInfinity, {kFormula},
                              Where::eq(kFormula, "H2O"));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result.value().responses.size(), 1u);
  EXPECT_EQ(result.value().responses.front().href, "/lab/water");
  EXPECT_EQ(result.value().responses.front().prop(kFormula), "H2O");

  // The engines differ in *how* they answered: the consolidated store
  // served candidates off its property→resource index without walking
  // the scope; the DBM baseline scanned.
  bool indexed = GetParam() == dav::PropertyEngine::kConsolidated;
  if (indexed) {
    EXPECT_EQ(counter("dav.search.index_queries"), 1u);
    EXPECT_EQ(counter("dav.search.index_candidates"), 2u);  // both H2O*
    EXPECT_EQ(counter("dav.search.scanned_targets"), 0u);
  } else {
    EXPECT_EQ(counter("dav.search.index_queries"), 0u);
    EXPECT_GT(counter("dav.search.scanned_targets"), 0u);
  }
}

TEST_P(EngineParity, SearchOnLivePropertyAlwaysScans) {
  ASSERT_TRUE(client.put("/doc", "0123456789").is_ok());
  // getcontentlength is computed, not stored: no posting list covers
  // it, so even the consolidated engine must scan.
  auto result = client.search(
      "/", Depth::kInfinity, {xml::dav_name("getcontentlength")},
      Where::gt(xml::dav_name("getcontentlength"), "5"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().responses.size(), 1u);
  EXPECT_EQ(counter("dav.search.index_queries"), 0u);
  EXPECT_GT(counter("dav.search.scanned_targets"), 0u);
}

TEST_P(EngineParity, NegatedSearchScansEvenWhenIndexed) {
  ASSERT_TRUE(client.put("/tagged", "t").is_ok());
  ASSERT_TRUE(client.set_property("/tagged", kFormula, "H2O").is_ok());
  ASSERT_TRUE(client.put("/untagged", "u").is_ok());
  // not(is-defined) matches resources with no posting-list entry at
  // all — the index cannot bound the candidates.
  auto result = client.search("/", Depth::kInfinity, {},
                              !Where::is_defined(kFormula));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(counter("dav.search.index_queries"), 0u);
  EXPECT_GT(counter("dav.search.scanned_targets"), 0u);
  const auto* untagged = result.value().find("/untagged");
  EXPECT_NE(untagged, nullptr);
  EXPECT_EQ(result.value().find("/tagged"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineParity,
    ::testing::Values(dav::PropertyEngine::kDbmPerResource,
                      dav::PropertyEngine::kConsolidated),
    [](const ::testing::TestParamInfo<dav::PropertyEngine>& info) {
      return std::string(dav::property_engine_name(info.param));
    });

// The consolidated engine's durability reaches through the adapter:
// properties written via FsRepository survive process death (reopen
// replays the WAL; no flush/close choreography required).
TEST(ConsolidatedEngineRecovery, PropertiesSurviveReopen) {
  TempDir temp("engine-recovery");
  xml::QName name("urn:t", "tag");
  {
    dav::FsRepository repo(temp.path(), dbm::Flavor::kGdbm, nullptr,
                           dav::PropertyEngine::kConsolidated);
    ASSERT_TRUE(repo.write_document("/doc", "x").is_ok());
    ASSERT_TRUE(repo.properties("/doc").set({{name, {"v1"}}}).is_ok());
    ASSERT_TRUE(repo.make_collection("/col").is_ok());
    ASSERT_TRUE(repo.write_document("/col/leaf", "y").is_ok());
    ASSERT_TRUE(repo.properties("/col/leaf").set({{name, {"v2"}}}).is_ok());
    ASSERT_TRUE(repo.move("/col", "/renamed").is_ok());
    // No clean shutdown: the repository is simply destroyed.
  }
  dav::FsRepository reopened(temp.path(), dbm::Flavor::kGdbm, nullptr,
                             dav::PropertyEngine::kConsolidated);
  EXPECT_EQ(reopened.properties("/doc").get(name).value().inner_xml, "v1");
  EXPECT_EQ(reopened.properties("/renamed/leaf").get(name).value().inner_xml,
            "v2");
  EXPECT_EQ(reopened.properties("/col/leaf").get(name).status().code(),
            ErrorCode::kNotFound);
}

}  // namespace
}  // namespace davpse
