// DASL basicsearch: grammar parsing, expression evaluation, and the
// full SEARCH round trip through the protocol stack.
#include "dav/search.h"

#include <gtest/gtest.h>

#include <map>

#include "davclient/client.h"
#include "davclient/search.h"
#include "testing/env.h"

namespace davpse {
namespace {

using dav::compare_values;
using dav::evaluate_search;
using dav::parse_search_request;
using dav::SearchOp;
using davclient::Depth;
using davclient::PropWrite;
using davclient::Where;
using testing::DavStack;

const xml::QName kFormula("urn:chem", "formula");
const xml::QName kEnergy("urn:chem", "energy");

// --- grammar -----------------------------------------------------------

dav::SearchRequest parse_ok(const std::string& body) {
  auto doc = xml::parse_document(body);
  EXPECT_TRUE(doc.ok()) << doc.status().to_string();
  auto parsed = parse_search_request(*doc.value());
  EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
  return std::move(parsed).value();
}

TEST(SearchGrammar, FullRequestParses) {
  auto request = parse_ok(R"(
    <D:searchrequest xmlns:D="DAV:" xmlns:c="urn:chem">
      <D:basicsearch>
        <D:select><D:prop><c:formula/><D:getcontentlength/></D:prop>
        </D:select>
        <D:from><D:scope><D:href>/Ecce</D:href><D:depth>infinity</D:depth>
        </D:scope></D:from>
        <D:where>
          <D:and>
            <D:eq><D:prop><c:formula/></D:prop><D:literal>H2O</D:literal>
            </D:eq>
            <D:not><D:is-collection/></D:not>
          </D:and>
        </D:where>
      </D:basicsearch>
    </D:searchrequest>)");
  EXPECT_EQ(request.scope, "/Ecce");
  EXPECT_TRUE(request.depth_infinity);
  ASSERT_EQ(request.select.size(), 2u);
  EXPECT_EQ(request.select[0], kFormula);
  ASSERT_TRUE(request.where.has_value());
  EXPECT_EQ(request.where->op, SearchOp::kAnd);
  ASSERT_EQ(request.where->children.size(), 2u);
  EXPECT_EQ(request.where->children[0].op, SearchOp::kEq);
  EXPECT_EQ(request.where->children[0].literal, "H2O");
  EXPECT_EQ(request.where->children[1].op, SearchOp::kNot);
}

TEST(SearchGrammar, DefaultsWithoutFromAndWhere) {
  auto request = parse_ok(R"(
    <D:searchrequest xmlns:D="DAV:"><D:basicsearch>
      <D:select><D:prop><D:displayname/></D:prop></D:select>
    </D:basicsearch></D:searchrequest>)");
  EXPECT_EQ(request.scope, "/");
  EXPECT_TRUE(request.depth_infinity);
  EXPECT_FALSE(request.where.has_value());
}

TEST(SearchGrammar, Rejections) {
  auto reject = [](const std::string& body) {
    auto doc = xml::parse_document(body);
    ASSERT_TRUE(doc.ok());
    EXPECT_FALSE(parse_search_request(*doc.value()).ok()) << body;
  };
  reject("<D:searchrequest xmlns:D=\"DAV:\"/>");  // no basicsearch
  reject(R"(<D:searchrequest xmlns:D="DAV:"><D:basicsearch>
      <D:where><D:eq><D:literal>x</D:literal></D:eq></D:where>
      </D:basicsearch></D:searchrequest>)");  // eq without prop
  reject(R"(<D:searchrequest xmlns:D="DAV:"><D:basicsearch>
      <D:where><D:and/></D:where>
      </D:basicsearch></D:searchrequest>)");  // empty and
  reject(R"(<D:searchrequest xmlns:D="DAV:"><D:basicsearch>
      <D:where><D:regexp><D:prop><D:displayname/></D:prop>
      <D:literal>.*</D:literal></D:regexp></D:where>
      </D:basicsearch></D:searchrequest>)");  // unsupported operator
  auto not_searchrequest = xml::parse_document("<wrong/>");
  ASSERT_TRUE(not_searchrequest.ok());
  EXPECT_FALSE(parse_search_request(*not_searchrequest.value()).ok());
}

// --- evaluation -----------------------------------------------------------

TEST(SearchEval, CompareValuesNumericVsString) {
  EXPECT_TRUE(compare_values(SearchOp::kEq, "10", "10.0"));   // numeric
  EXPECT_TRUE(compare_values(SearchOp::kLt, "9", "10"));      // numeric
  EXPECT_FALSE(compare_values(SearchOp::kLt, "9x", "10x"));   // string
  EXPECT_TRUE(compare_values(SearchOp::kLt, "abc", "abd"));
  EXPECT_TRUE(compare_values(SearchOp::kGte, "2.5", "2.5"));
  EXPECT_FALSE(compare_values(SearchOp::kEq, "h2o", "H2O"));  // case matters
}

TEST(SearchEval, ExpressionTreeAgainstPropertyMap) {
  std::map<xml::QName, std::string> props = {{kFormula, "H2O"},
                                             {kEnergy, "-76.4"}};
  auto lookup = [&](const xml::QName& name) -> std::optional<std::string> {
    auto it = props.find(name);
    if (it == props.end()) return std::nullopt;
    return it->second;
  };

  dav::SearchExpr eq{SearchOp::kEq, kFormula, "H2O", {}};
  EXPECT_TRUE(evaluate_search(eq, lookup, false));

  dav::SearchExpr lt{SearchOp::kLt, kEnergy, "-76", {}};
  EXPECT_TRUE(evaluate_search(lt, lookup, false));  // -76.4 < -76

  dav::SearchExpr missing{SearchOp::kEq, xml::QName("urn:x", "nope"), "v", {}};
  EXPECT_FALSE(evaluate_search(missing, lookup, false));

  dav::SearchExpr defined{SearchOp::kIsDefined, kEnergy, "", {}};
  EXPECT_TRUE(evaluate_search(defined, lookup, false));

  dav::SearchExpr collection{SearchOp::kIsCollection, {}, "", {}};
  EXPECT_FALSE(evaluate_search(collection, lookup, false));
  EXPECT_TRUE(evaluate_search(collection, lookup, true));

  dav::SearchExpr combined{SearchOp::kAnd, {}, "", {eq, lt}};
  EXPECT_TRUE(evaluate_search(combined, lookup, false));
  dav::SearchExpr negated{SearchOp::kNot, {}, "", {combined}};
  EXPECT_FALSE(evaluate_search(negated, lookup, false));
  dav::SearchExpr either{SearchOp::kOr, {}, "", {missing, eq}};
  EXPECT_TRUE(evaluate_search(either, lookup, false));

  dav::SearchExpr contains{SearchOp::kContains, kFormula, "2O", {}};
  EXPECT_TRUE(evaluate_search(contains, lookup, false));
}

// --- end-to-end through the protocol ------------------------------------

struct SearchStack : ::testing::Test {
  SearchStack() : client(stack.client()) {
    EXPECT_TRUE(client.mkcol("/lab").is_ok());
    add("/lab/water", "H2O", "-76.4");
    add("/lab/peroxide", "H2O2", "-151.5");
    add("/lab/uranyl", "O2U", "-28000.1");
    EXPECT_TRUE(client.mkcol("/lab/archive").is_ok());
    add("/lab/archive/old-water", "H2O", "-76.0");
  }
  void add(const std::string& path, const std::string& formula,
           const std::string& energy) {
    ASSERT_TRUE(client.put(path, "data for " + path).is_ok());
    ASSERT_TRUE(client
                    .proppatch(path,
                               {PropWrite::of_text(kFormula, formula),
                                PropWrite::of_text(kEnergy, energy)})
                    .is_ok());
  }
  DavStack stack;
  davclient::DavClient client;
};

TEST_F(SearchStack, EqualityOverScope) {
  auto result = client.search("/lab", Depth::kInfinity, {kFormula},
                              Where::eq(kFormula, "H2O"));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result.value().responses.size(), 2u);
  EXPECT_NE(result.value().find("/lab/water"), nullptr);
  EXPECT_NE(result.value().find("/lab/archive/old-water"), nullptr);
}

TEST_F(SearchStack, DepthOneLimitsScope) {
  auto result = client.search("/lab", Depth::kOne, {kFormula},
                              Where::eq(kFormula, "H2O"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().responses.size(), 1u);
  EXPECT_EQ(result.value().responses.front().href, "/lab/water");
}

TEST_F(SearchStack, NumericComparisonOnProperties) {
  // "energy below -100": peroxide and uranyl.
  auto result = client.search("/lab", Depth::kInfinity, {kEnergy},
                              Where::lt(kEnergy, "-100"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().responses.size(), 2u);
  EXPECT_NE(result.value().find("/lab/peroxide"), nullptr);
  EXPECT_NE(result.value().find("/lab/uranyl"), nullptr);
}

TEST_F(SearchStack, CombinatorsAndNegation) {
  auto result = client.search(
      "/lab", Depth::kInfinity, {kFormula},
      Where::contains(kFormula, "H2O") && !Where::eq(kFormula, "H2O"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().responses.size(), 1u);
  EXPECT_EQ(result.value().responses.front().href, "/lab/peroxide");
}

TEST_F(SearchStack, LivePropertiesSearchable) {
  // Collections only.
  auto collections = client.search("/lab", Depth::kInfinity,
                                   {xml::dav_name("displayname")},
                                   Where::is_collection());
  ASSERT_TRUE(collections.ok());
  ASSERT_EQ(collections.value().responses.size(), 2u);  // /lab + archive

  // Documents larger than 15 bytes ("data for /lab/peroxide" etc).
  auto big = client.search(
      "/lab", Depth::kInfinity, {xml::dav_name("getcontentlength")},
      Where::gt(xml::dav_name("getcontentlength"), "22"));
  ASSERT_TRUE(big.ok());
  for (const auto& response : big.value().responses) {
    auto length = response.prop(xml::dav_name("getcontentlength"));
    ASSERT_TRUE(length.has_value());
    EXPECT_GT(std::stoul(std::string(*length)), 22u);
  }
}

TEST_F(SearchStack, IsDefinedFindsAnnotatedResourcesOnly) {
  xml::QName note("urn:other", "note");
  ASSERT_TRUE(client.set_property("/lab/uranyl", note, "check me").is_ok());
  auto result = client.search("/lab", Depth::kInfinity, {note},
                              Where::is_defined(note));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().responses.size(), 1u);
  EXPECT_EQ(result.value().responses.front().href, "/lab/uranyl");
  EXPECT_EQ(result.value().responses.front().prop(note), "check me");
}

TEST_F(SearchStack, SearchAllReturnsWholeScope) {
  auto result = client.search_all("/lab", Depth::kInfinity, {kFormula});
  ASSERT_TRUE(result.ok());
  // /lab, 3 documents, archive, archive/old-water.
  EXPECT_EQ(result.value().responses.size(), 6u);
}

TEST_F(SearchStack, MissingScopeIs404) {
  auto result = client.search_all("/ghost", Depth::kInfinity, {kFormula});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

TEST_F(SearchStack, SelectedButUndefinedPropsReported404) {
  xml::QName ghost("urn:other", "ghost");
  auto result = client.search("/lab", Depth::kInfinity, {kFormula, ghost},
                              Where::eq(kFormula, "H2O2"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().responses.size(), 1u);
  const auto& response = result.value().responses.front();
  EXPECT_TRUE(response.prop(kFormula).has_value());
  ASSERT_EQ(response.missing.size(), 1u);
  EXPECT_EQ(response.missing[0], ghost);
}

TEST_F(SearchStack, OptionsAdvertisesDasl) {
  http::HttpRequest request;
  request.method = "OPTIONS";
  request.target = "/";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().headers.get("DASL"), "<DAV:basicsearch>");
}

}  // namespace
}  // namespace davpse
