// End-to-end DAV protocol tests: DavClient <-> HttpServer <-> DavServer
// over the in-memory network — the full stack the paper's measurements
// exercised.
#include "dav/server.h"

#include <gtest/gtest.h>

#include "davclient/client.h"
#include "core/schema_names.h"
#include "testing/env.h"

namespace davpse {
namespace {

using davclient::DavClient;
using davclient::Depth;
using davclient::ParserKind;
using davclient::PropWrite;
using testing::DavStack;

const xml::QName kColor("urn:test", "color");
const xml::QName kSize("urn:test", "size");

TEST(DavServer, OptionsAdvertisesDavClasses) {
  DavStack stack;
  auto client = stack.client();
  http::HttpRequest request;
  request.method = "OPTIONS";
  request.target = "/";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().headers.get("DAV"), "1,2,version-control");
  EXPECT_TRUE(response.value().headers.has("Allow"));
}

TEST(DavServer, PutGetDeleteDocument) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc.txt", "hello dav", "text/plain").is_ok());
  auto body = client.get("/doc.txt");
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value(), "hello dav");
  ASSERT_TRUE(client.remove("/doc.txt").is_ok());
  EXPECT_EQ(client.get("/doc.txt").status().code(), ErrorCode::kNotFound);
}

TEST(DavServer, PutPreservesContentType) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/m.xyz", "3\nmol\n...", "chemical/x-xyz").is_ok());
  auto found = client.propfind("/m.xyz", Depth::kZero,
                               {xml::dav_name("getcontenttype")});
  ASSERT_TRUE(found.ok());
  auto value =
      found.value().responses.front().prop(xml::dav_name("getcontenttype"));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "chemical/x-xyz");
}

TEST(DavServer, PutIntoMissingCollectionIsConflict) {
  DavStack stack;
  auto client = stack.client();
  Status status = client.put("/no/such/col/doc", "x");
  EXPECT_EQ(status.code(), ErrorCode::kConflict);
}

TEST(DavServer, MkcolSemantics) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  EXPECT_EQ(client.mkcol("/col").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(client.mkcol("/a/b").code(), ErrorCode::kConflict);
  ASSERT_TRUE(client.mkcol_recursive("/x/y/z").is_ok());
  EXPECT_TRUE(client.exists("/x/y/z").value());
}

TEST(DavServer, GetOnCollectionReturnsHtmlIndex) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  ASSERT_TRUE(client.put("/col/one", "1").is_ok());
  ASSERT_TRUE(client.put("/col/two", "2").is_ok());
  auto html = client.get("/col");
  ASSERT_TRUE(html.ok());
  EXPECT_NE(html.value().find("Index of /col"), std::string::npos);
  EXPECT_NE(html.value().find("one"), std::string::npos);
  EXPECT_NE(html.value().find("two"), std::string::npos);
}

TEST(DavServer, ProppatchThenPropfind) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  ASSERT_TRUE(client
                  .proppatch("/doc", {PropWrite::of_text(kColor, "blue"),
                                      PropWrite::of_text(kSize, "42")})
                  .is_ok());
  auto found = client.propfind("/doc", Depth::kZero, {kColor, kSize});
  ASSERT_TRUE(found.ok());
  const auto& response = found.value().responses.front();
  EXPECT_EQ(response.prop(kColor), "blue");
  EXPECT_EQ(response.prop(kSize), "42");

  // Update and remove.
  ASSERT_TRUE(client
                  .proppatch("/doc", {PropWrite::of_text(kColor, "red")},
                             {kSize})
                  .is_ok());
  EXPECT_EQ(client.get_property("/doc", kColor).value(), "red");
  auto after = client.propfind("/doc", Depth::kZero, {kSize});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().responses.front().missing.size(), 1u);
  EXPECT_EQ(after.value().responses.front().missing[0], kSize);
}

TEST(DavServer, PropertyValuesWithMarkupCharacters) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  std::string nasty = "a < b && \"c\" > 'd'";
  ASSERT_TRUE(client.set_property("/doc", kColor, nasty).is_ok());
  EXPECT_EQ(client.get_property("/doc", kColor).value(), nasty);
}

TEST(DavServer, XmlValuedProperty) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  std::string xml_value =
      "<t:point xmlns:t=\"urn:test\"><t:x>1</t:x><t:y>2</t:y></t:point>";
  ASSERT_TRUE(
      client.proppatch("/doc", {PropWrite::of_xml(kColor, xml_value)})
          .is_ok());
  auto found = client.propfind("/doc", Depth::kZero, {kColor});
  ASSERT_TRUE(found.ok());
  auto value = found.value().responses.front().prop(kColor);
  ASSERT_TRUE(value.has_value());
  EXPECT_NE(value->find("urn:test"), std::string::npos);
  EXPECT_NE(value->find(":x>1</"), std::string::npos);
}

TEST(DavServer, PropfindAllpropIncludesLiveAndDead) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "0123456789").is_ok());
  ASSERT_TRUE(client.set_property("/doc", kColor, "green").is_ok());
  auto all = client.propfind_all("/doc", Depth::kZero);
  ASSERT_TRUE(all.ok());
  const auto& response = all.value().responses.front();
  EXPECT_EQ(response.prop(xml::dav_name("getcontentlength")), "10");
  EXPECT_TRUE(response.prop(xml::dav_name("getlastmodified")).has_value());
  EXPECT_TRUE(response.prop(xml::dav_name("resourcetype")).has_value());
  EXPECT_EQ(response.prop(kColor), "green");
  EXPECT_FALSE(response.is_collection());
}

TEST(DavServer, PropfindDepth1EnumeratesChildren) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.put("/col/doc" + std::to_string(i), "x").is_ok());
  }
  auto found = client.propfind("/col", Depth::kOne,
                               {xml::dav_name("resourcetype")});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().responses.size(), 6u);  // col + 5 children
  const auto* self = found.value().find("/col");
  ASSERT_NE(self, nullptr);
  EXPECT_TRUE(self->is_collection());
}

TEST(DavServer, PropfindDepthInfinityWalksTree) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol_recursive("/a/b/c").is_ok());
  ASSERT_TRUE(client.put("/a/b/c/leaf", "x").is_ok());
  auto found = client.propfind_all("/a", Depth::kInfinity);
  ASSERT_TRUE(found.ok());
  // /a, /a/b, /a/b/c, /a/b/c/leaf
  EXPECT_EQ(found.value().responses.size(), 4u);
  EXPECT_NE(found.value().find("/a/b/c/leaf"), nullptr);
}

TEST(DavServer, PropfindNamesMode) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  ASSERT_TRUE(client.set_property("/doc", kColor, "blue").is_ok());
  auto names = client.propfind_names("/doc", Depth::kZero);
  ASSERT_TRUE(names.ok());
  const auto& response = names.value().responses.front();
  bool saw_color = false;
  for (const auto& entry : response.found) {
    if (entry.name == kColor) {
      saw_color = true;
      EXPECT_TRUE(entry.inner_xml.empty());  // names only, no values
    }
  }
  EXPECT_TRUE(saw_color);
}

TEST(DavServer, PropfindMissingResourceIs404) {
  DavStack stack;
  auto client = stack.client();
  auto found = client.propfind("/ghost", Depth::kZero, {kColor});
  EXPECT_EQ(found.status().code(), ErrorCode::kNotFound);
}

TEST(DavServer, CopyDocumentAndCollection) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  ASSERT_TRUE(client.put("/col/doc", "payload").is_ok());
  ASSERT_TRUE(client.set_property("/col/doc", kColor, "c").is_ok());

  ASSERT_TRUE(client.copy("/col", "/col2").is_ok());
  EXPECT_EQ(client.get("/col2/doc").value(), "payload");
  EXPECT_EQ(client.get_property("/col2/doc", kColor).value(), "c");
  // Source intact.
  EXPECT_EQ(client.get("/col/doc").value(), "payload");
}

TEST(DavServer, CopyHonorsOverwriteFlag) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/a", "A").is_ok());
  ASSERT_TRUE(client.put("/b", "B").is_ok());
  EXPECT_EQ(client.copy("/a", "/b", /*overwrite=*/false).code(),
            ErrorCode::kAlreadyExists);
  ASSERT_TRUE(client.copy("/a", "/b", /*overwrite=*/true).is_ok());
  EXPECT_EQ(client.get("/b").value(), "A");
}

TEST(DavServer, CopyIntoOwnSubtreeForbidden) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/col").is_ok());
  Status status = client.copy("/col", "/col/inner");
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(DavServer, MoveRenamesSubtree) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/old").is_ok());
  ASSERT_TRUE(client.put("/old/doc", "data").is_ok());
  ASSERT_TRUE(client.move("/old", "/new").is_ok());
  EXPECT_FALSE(client.exists("/old").value());
  EXPECT_EQ(client.get("/new/doc").value(), "data");
}

TEST(DavServer, DeleteCollectionIsRecursive) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol_recursive("/t/a/b").is_ok());
  ASSERT_TRUE(client.put("/t/a/b/leaf", "x").is_ok());
  ASSERT_TRUE(client.remove("/t").is_ok());
  EXPECT_FALSE(client.exists("/t").value());
  EXPECT_FALSE(client.exists("/t/a/b/leaf").value());
}

TEST(DavServer, DeleteRootForbidden) {
  DavStack stack;
  auto client = stack.client();
  EXPECT_EQ(client.remove("/").code(), ErrorCode::kPermissionDenied);
}

TEST(DavServer, LockBlocksOtherWriters) {
  DavStack stack;
  auto owner = stack.client();
  auto intruder = stack.client();
  ASSERT_TRUE(owner.put("/doc", "v1").is_ok());
  auto lock = owner.lock_exclusive("/doc", "owner-o");
  ASSERT_TRUE(lock.ok()) << lock.status().to_string();

  EXPECT_EQ(intruder.put("/doc", "v2").code(), ErrorCode::kLocked);
  EXPECT_EQ(intruder.remove("/doc").code(), ErrorCode::kLocked);
  EXPECT_EQ(intruder.set_property("/doc", kColor, "x").code(),
            ErrorCode::kLocked);
  // Reads still allowed.
  EXPECT_EQ(intruder.get("/doc").value(), "v1");

  // The holder can write by presenting the token... but our client
  // doesn't attach If headers automatically; unlock then write.
  ASSERT_TRUE(owner.unlock(lock.value()).is_ok());
  EXPECT_TRUE(intruder.put("/doc", "v2").is_ok());
}

TEST(DavServer, LockOnUnmappedUrlCreatesEmptyResource) {
  DavStack stack;
  auto client = stack.client();
  auto lock = client.lock_exclusive("/fresh", "me");
  ASSERT_TRUE(lock.ok());
  EXPECT_TRUE(client.exists("/fresh").value());
  EXPECT_EQ(client.get("/fresh").value(), "");
  ASSERT_TRUE(client.unlock(lock.value()).is_ok());
}

TEST(DavServer, LockDiscoveryReportsActiveLock) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  auto lock = client.lock_exclusive("/doc", "lock-owner-string");
  ASSERT_TRUE(lock.ok());
  auto found = client.propfind("/doc", Depth::kZero,
                               {xml::dav_name("lockdiscovery")});
  ASSERT_TRUE(found.ok());
  auto value =
      found.value().responses.front().prop(xml::dav_name("lockdiscovery"));
  ASSERT_TRUE(value.has_value());
  EXPECT_NE(value->find(lock.value().token), std::string_view::npos);
  EXPECT_NE(value->find("lock-owner-string"), std::string_view::npos);
}

TEST(DavServer, UnlockWithWrongTokenFails) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  auto lock = client.lock_exclusive("/doc", "me");
  ASSERT_TRUE(lock.ok());
  davclient::LockHandle bogus{"opaquelocktoken:bogus", "/doc"};
  EXPECT_EQ(client.unlock(bogus).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(client.unlock(lock.value()).is_ok());
}

TEST(DavServer, PropertySizeLimitEnforced) {
  // Fresh stack with a 1 KB configured property cap (the paper used
  // 10 MB; the mechanism is the same).
  dav::DavConfig config;
  TempDir temp("davcap");
  config.root = temp.path();
  config.max_property_bytes = 1024;
  dav::DavServer dav_server(config);
  http::ServerConfig http_config;
  http_config.endpoint = testing::unique_endpoint("davcap");
  http::HttpServer http_server(http_config, &dav_server);
  ASSERT_TRUE(http_server.start().is_ok());
  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;
  DavClient client(client_config);

  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  EXPECT_TRUE(
      client.set_property("/doc", kColor, std::string(512, 'v')).is_ok());
  Status status =
      client.set_property("/doc", kColor, std::string(2048, 'v'));
  EXPECT_EQ(status.code(), ErrorCode::kTooLarge);
  // The old value survives the failed batch.
  EXPECT_EQ(client.get_property("/doc", kColor).value().size(), 512u);
}

TEST(DavServer, SdbmEngineCapSurfacesThroughProtocol) {
  DavStack stack(dbm::Flavor::kSdbm);
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  // Over SDBM's 1 KB per-value engine cap: the PROPPATCH fails.
  Status status =
      client.set_property("/doc", kColor, std::string(4096, 'v'));
  EXPECT_EQ(status.code(), ErrorCode::kTooLarge);
  EXPECT_TRUE(
      client.set_property("/doc", kColor, std::string(900, 'v')).is_ok());
}

TEST(DavServer, PathTraversalRejected) {
  DavStack stack;
  auto client = stack.client();
  auto response = client.get("/../../etc/passwd");
  EXPECT_EQ(response.status().code(), ErrorCode::kInvalidArgument);
}

TEST(DavServer, UnknownMethodGets405) {
  DavStack stack;
  auto client = stack.client();
  http::HttpRequest request;
  request.method = "BREW";
  request.target = "/";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kMethodNotAllowed);
  EXPECT_TRUE(response.value().headers.has("Allow"));
}

TEST(DavServer, EscapedPathsRoundTrip) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/with space").is_ok());
  ASSERT_TRUE(client.put("/with space/doc+x", "data").is_ok());
  EXPECT_EQ(client.get("/with space/doc+x").value(), "data");
  auto found = client.propfind_all("/with space", Depth::kOne);
  ASSERT_TRUE(found.ok());
  EXPECT_NE(found.value().find("/with space/doc+x"), nullptr);
}

TEST(DavServer, SaxParserProducesSameResults) {
  DavStack stack;
  auto dom_client = stack.client(ParserKind::kDom);
  auto sax_client = stack.client(ParserKind::kSax);
  ASSERT_TRUE(dom_client.mkcol("/col").is_ok());
  for (int i = 0; i < 3; ++i) {
    std::string path = "/col/d" + std::to_string(i);
    ASSERT_TRUE(dom_client.put(path, "x").is_ok());
    ASSERT_TRUE(dom_client.set_property(path, kColor,
                                        "v" + std::to_string(i)).is_ok());
  }
  auto dom_result = dom_client.propfind("/col", Depth::kOne, {kColor});
  auto sax_result = sax_client.propfind("/col", Depth::kOne, {kColor});
  ASSERT_TRUE(dom_result.ok());
  ASSERT_TRUE(sax_result.ok());
  ASSERT_EQ(dom_result.value().responses.size(),
            sax_result.value().responses.size());
  for (size_t i = 0; i < dom_result.value().responses.size(); ++i) {
    const auto& dom_response = dom_result.value().responses[i];
    const auto& sax_response = sax_result.value().responses[i];
    EXPECT_EQ(dom_response.href, sax_response.href);
    ASSERT_EQ(dom_response.found.size(), sax_response.found.size());
    for (size_t j = 0; j < dom_response.found.size(); ++j) {
      EXPECT_EQ(dom_response.found[j].name, sax_response.found[j].name);
      EXPECT_EQ(dom_response.found[j].inner_xml,
                sax_response.found[j].inner_xml);
    }
  }
}

// -- If-Match preconditions (RFC 7232 lost-update protection) ------------

/// Current strong ETag of `path` via DAV:getetag.
std::string etag_of(DavClient& client, const std::string& path) {
  auto found =
      client.propfind(path, Depth::kZero, {xml::dav_name("getetag")});
  if (!found.ok()) return {};
  auto value = found.value().responses.front().prop(xml::dav_name("getetag"));
  return value ? std::string(*value) : std::string{};
}

http::HttpResponse exchange(DavClient& client, const std::string& method,
                            const std::string& target,
                            const std::string& if_match,
                            const std::string& body = {}) {
  http::HttpRequest request;
  request.method = method;
  request.target = target;
  request.headers.set("If-Match", if_match);
  request.body = body;
  auto response = client.http().execute(std::move(request));
  EXPECT_TRUE(response.ok());
  return response.ok() ? std::move(response).value() : http::HttpResponse{};
}

TEST(DavServer, IfMatchStalePutIs412) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc.txt", "original").is_ok());
  std::string etag = etag_of(client, "/doc.txt");
  ASSERT_FALSE(etag.empty());

  // Stale validator: the overwrite must be refused and the stored
  // body untouched — the lost-update case.
  auto refused =
      exchange(client, "PUT", "/doc.txt", "\"stale-etag\"", "clobbered");
  EXPECT_EQ(refused.status, 412);
  EXPECT_EQ(client.get("/doc.txt").value(), "original");

  // Current validator: the conditional overwrite goes through.
  auto accepted = exchange(client, "PUT", "/doc.txt", etag, "updated");
  EXPECT_EQ(accepted.status, 204);
  EXPECT_EQ(client.get("/doc.txt").value(), "updated");
}

TEST(DavServer, IfMatchListAndStarForms) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc.txt", "v1").is_ok());
  std::string etag = etag_of(client, "/doc.txt");

  // ETag list: any member matching passes.
  auto listed = exchange(client, "PUT", "/doc.txt",
                         "\"other\", " + etag + ", \"another\"", "v2");
  EXPECT_EQ(listed.status, 204);

  // "*" matches any existing resource...
  auto star = exchange(client, "PUT", "/doc.txt", "*", "v3");
  EXPECT_EQ(star.status, 204);

  // ...but fails on a missing one (RFC 7232: If-Match on a resource
  // with no current representation must not create it).
  auto missing = exchange(client, "PUT", "/new.txt", "*", "v1");
  EXPECT_EQ(missing.status, 412);
  EXPECT_FALSE(client.exists("/new.txt").value());
}

TEST(DavServer, IfMatchStaleDeleteIs412) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc.txt", "keep me").is_ok());
  std::string etag = etag_of(client, "/doc.txt");

  auto refused = exchange(client, "DELETE", "/doc.txt", "\"stale-etag\"");
  EXPECT_EQ(refused.status, 412);
  EXPECT_TRUE(client.exists("/doc.txt").value());

  auto accepted = exchange(client, "DELETE", "/doc.txt", etag);
  EXPECT_EQ(accepted.status, 204);
  EXPECT_FALSE(client.exists("/doc.txt").value());
}

// -- streaming multistatus (eager/streamed equivalence) ------------------

TEST(DavServer, StreamingMultistatusIsByteIdenticalToEager) {
  // Same store, two emitters: thresholds force the eager path on one
  // server and the streaming path on the other; the serialized
  // multistatus documents must match byte for byte.
  TempDir temp("streameq");
  dav::DavConfig config;
  config.root = temp.path();

  http::HttpRequest request;
  request.method = "PROPFIND";
  request.target = "/col";
  request.headers.set("Depth", "1");  // empty body: allprop

  std::string eager_body;
  {
    dav::DavConfig eager_config = config;
    eager_config.propfind_stream_threshold = SIZE_MAX;  // never stream
    dav::DavServer server(eager_config);
    ASSERT_TRUE(server.repository().make_collection("/col").is_ok());
    const xml::QName meta("urn:test", "meta");
    for (int i = 0; i < 40; ++i) {
      std::string path = "/col/doc" + std::to_string(i);
      ASSERT_TRUE(server.repository()
                      .write_document(path, "body " + std::to_string(i))
                      .is_ok());
      ASSERT_TRUE(server.repository()
                      .properties(path)
                      .set({{meta, dav::PropertyValue{
                                       "value " + std::to_string(i)}}})
                      .is_ok());
    }
    auto response = server.handle(request);
    EXPECT_EQ(response.status, 207);
    ASSERT_EQ(response.body_source, nullptr);  // eager: body materialized
    eager_body = std::move(response.body);
  }

  dav::DavConfig stream_config = config;
  stream_config.propfind_stream_threshold = 0;  // always stream
  dav::DavServer server(stream_config);
  auto response = server.handle(request);
  EXPECT_EQ(response.status, 207);
  ASSERT_NE(response.body_source, nullptr);  // streamed: body is a source
  std::string streamed_body;
  http::StringBodySink sink(&streamed_body, /*max_bytes=*/0);
  ASSERT_TRUE(http::drain_body(*response.body_source, sink).ok());

  EXPECT_FALSE(eager_body.empty());
  EXPECT_EQ(streamed_body, eager_body);
}

}  // namespace
}  // namespace davpse
