#include "dav/repository.h"

#include <gtest/gtest.h>

#include "util/fs.h"

namespace davpse::dav {
namespace {

struct RepoFixture : ::testing::Test {
  RepoFixture() : temp("repotest"), repo(temp.path(), dbm::Flavor::kGdbm) {}
  TempDir temp;
  FsRepository repo;
};

TEST_F(RepoFixture, RootIsACollection) {
  EXPECT_EQ(repo.stat("/").kind, ResourceKind::kCollection);
}

TEST_F(RepoFixture, DocumentLifecycle) {
  EXPECT_EQ(repo.stat("/doc").kind, ResourceKind::kMissing);
  ASSERT_TRUE(repo.write_document("/doc", "contents").is_ok());
  ResourceInfo info = repo.stat("/doc");
  EXPECT_EQ(info.kind, ResourceKind::kDocument);
  EXPECT_EQ(info.content_length, 8u);
  EXPECT_GT(info.mtime_seconds, 0);
  EXPECT_EQ(repo.read_document("/doc").value(), "contents");
  ASSERT_TRUE(repo.remove("/doc").is_ok());
  EXPECT_FALSE(repo.exists("/doc"));
}

TEST_F(RepoFixture, PutRequiresParentCollection) {
  Status status = repo.write_document("/no/parent/doc", "x");
  EXPECT_EQ(status.code(), ErrorCode::kConflict);
}

TEST_F(RepoFixture, CollectionLifecycle) {
  ASSERT_TRUE(repo.make_collection("/col").is_ok());
  EXPECT_EQ(repo.stat("/col").kind, ResourceKind::kCollection);
  EXPECT_EQ(repo.make_collection("/col").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(repo.make_collection("/a/b").code(), ErrorCode::kConflict);
  ASSERT_TRUE(repo.remove("/col").is_ok());
  EXPECT_FALSE(repo.exists("/col"));
}

TEST_F(RepoFixture, ListChildrenHidesDavDir) {
  ASSERT_TRUE(repo.make_collection("/col").is_ok());
  ASSERT_TRUE(repo.write_document("/col/b", "2").is_ok());
  ASSERT_TRUE(repo.write_document("/col/a", "1").is_ok());
  // Attaching metadata creates the hidden .DAV directory.
  ResourceProps db = repo.properties("/col/a");
  ASSERT_TRUE(db.set({{xml::QName("urn:t", "p"), {"v"}}}).is_ok());
  auto children = repo.list_children("/col");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(children.value(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(RepoFixture, PropertiesPersistAndRemove) {
  ASSERT_TRUE(repo.write_document("/doc", "x").is_ok());
  ResourceProps db = repo.properties("/doc");
  // DBM engine: the per-resource database file appears on first set.
  std::filesystem::path db_file = temp.path() / ".DAV" / "doc.props";
  EXPECT_FALSE(std::filesystem::exists(db_file));
  xml::QName name("urn:test", "color");
  ASSERT_TRUE(db.set({{name, {"blue"}}}).is_ok());
  EXPECT_TRUE(std::filesystem::exists(db_file));
  EXPECT_EQ(db.get(name).value().inner_xml, "blue");
  auto all = db.get_all();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 1u);
  EXPECT_EQ(all.value()[0].first, name);
  ASSERT_TRUE(db.remove({name}).is_ok());
  EXPECT_EQ(db.get(name).status().code(), ErrorCode::kNotFound);
  // Removing a missing property is a no-op success (RFC 2518).
  EXPECT_TRUE(db.remove({xml::QName("urn:test", "ghost")}).is_ok());
}

TEST_F(RepoFixture, DocumentCopyCarriesProperties) {
  ASSERT_TRUE(repo.write_document("/src", "data").is_ok());
  xml::QName name("urn:t", "tag");
  ASSERT_TRUE(repo.properties("/src").set({{name, {"v1"}}}).is_ok());
  ASSERT_TRUE(repo.copy("/src", "/dst").is_ok());
  EXPECT_EQ(repo.read_document("/dst").value(), "data");
  EXPECT_EQ(repo.properties("/dst").get(name).value().inner_xml, "v1");
  // Source untouched.
  EXPECT_EQ(repo.properties("/src").get(name).value().inner_xml, "v1");
}

TEST_F(RepoFixture, CollectionCopyIsDeepWithProperties) {
  ASSERT_TRUE(repo.make_collection("/tree").is_ok());
  ASSERT_TRUE(repo.make_collection("/tree/sub").is_ok());
  ASSERT_TRUE(repo.write_document("/tree/sub/leaf", "L").is_ok());
  xml::QName name("urn:t", "mark");
  ASSERT_TRUE(repo.properties("/tree").set({{name, {"root"}}}).is_ok());
  ASSERT_TRUE(
      repo.properties("/tree/sub/leaf").set({{name, {"leaf"}}}).is_ok());
  ASSERT_TRUE(repo.copy("/tree", "/copy").is_ok());
  EXPECT_EQ(repo.read_document("/copy/sub/leaf").value(), "L");
  EXPECT_EQ(repo.properties("/copy").get(name).value().inner_xml, "root");
  EXPECT_EQ(repo.properties("/copy/sub/leaf").get(name).value().inner_xml,
            "leaf");
}

TEST_F(RepoFixture, CopyRefusesExistingDestination) {
  ASSERT_TRUE(repo.write_document("/a", "1").is_ok());
  ASSERT_TRUE(repo.write_document("/b", "2").is_ok());
  EXPECT_EQ(repo.copy("/a", "/b").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(repo.copy("/missing", "/c").code(), ErrorCode::kNotFound);
  EXPECT_EQ(repo.copy("/a", "/no/parent").code(), ErrorCode::kConflict);
}

TEST_F(RepoFixture, MoveDocumentCarriesProperties) {
  ASSERT_TRUE(repo.write_document("/src", "data").is_ok());
  xml::QName name("urn:t", "tag");
  ASSERT_TRUE(repo.properties("/src").set({{name, {"v"}}}).is_ok());
  ASSERT_TRUE(repo.move("/src", "/dst").is_ok());
  EXPECT_FALSE(repo.exists("/src"));
  EXPECT_EQ(repo.read_document("/dst").value(), "data");
  EXPECT_EQ(repo.properties("/dst").get(name).value().inner_xml, "v");
  EXPECT_EQ(repo.properties("/src").get(name).status().code(),
            ErrorCode::kNotFound);
  EXPECT_FALSE(std::filesystem::exists(temp.path() / ".DAV" / "src.props"));
}

TEST_F(RepoFixture, RemoveDocumentDropsItsPropertyDb) {
  ASSERT_TRUE(repo.write_document("/doc", "x").is_ok());
  ASSERT_TRUE(
      repo.properties("/doc").set({{xml::QName("u", "p"), {"v"}}}).is_ok());
  std::filesystem::path db_file = temp.path() / ".DAV" / "doc.props";
  EXPECT_TRUE(std::filesystem::exists(db_file));
  ASSERT_TRUE(repo.remove("/doc").is_ok());
  EXPECT_FALSE(std::filesystem::exists(db_file));
}

TEST_F(RepoFixture, DiskUsageCountsDocAndProps) {
  ASSERT_TRUE(repo.write_document("/doc", std::string(1000, 'd')).is_ok());
  uint64_t doc_only = repo.disk_usage("/doc");
  EXPECT_EQ(doc_only, 1000u);
  ASSERT_TRUE(
      repo.properties("/doc").set({{xml::QName("u", "p"), {"v"}}}).is_ok());
  // Now the 25 KB GDBM initial allocation is part of the footprint.
  EXPECT_GE(repo.disk_usage("/doc"), 1000u + 25 * 1024u);
}

TEST_F(RepoFixture, CompactAllShrinksChurnedPropertyDbs) {
  ASSERT_TRUE(repo.make_collection("/col").is_ok());
  ASSERT_TRUE(repo.write_document("/col/doc", "x").is_ok());
  ResourceProps db = repo.properties("/col/doc");
  xml::QName name("urn:t", "churn");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.set({{name, {std::string(400, 'a' + i % 26)}}}).is_ok());
  }
  uint64_t before = repo.disk_usage("/col");
  ASSERT_TRUE(repo.compact_all("/col").is_ok());
  uint64_t after = repo.disk_usage("/col");
  EXPECT_LT(after, before);
  EXPECT_EQ(repo.properties("/col/doc").get(name).value().inner_xml.size(),
            400u);
}

TEST_F(RepoFixture, SdbmFlavorRepositoryEnforcesValueCap) {
  TempDir temp2("repotest-sdbm");
  FsRepository sdbm_repo(temp2.path(), dbm::Flavor::kSdbm);
  ASSERT_TRUE(sdbm_repo.write_document("/doc", "x").is_ok());
  ResourceProps db = sdbm_repo.properties("/doc");
  EXPECT_TRUE(db.set({{xml::QName("u", "ok"),
                       {std::string(1024, 'v')}}}).is_ok());
  Status status =
      db.set({{xml::QName("u", "big"), {std::string(2048, 'v')}}});
  EXPECT_EQ(status.code(), ErrorCode::kTooLarge);
}

}  // namespace
}  // namespace davpse::dav
