// §3.2.1 robustness reproduction: "metadata values as large as 100 MB
// and documents as large as 200 MB were created repeatedly without
// problems". Full-size runs belong to bench_limits; these tests keep
// CI fast with multi-megabyte payloads while exercising the identical
// code paths (scaled sizes are recorded in EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <memory>

#include "davclient/client.h"
#include "http/body.h"
#include "testing/env.h"
#include "util/random.h"

namespace davpse {
namespace {

using davclient::Depth;
using davclient::PropWrite;
using testing::DavStack;

const xml::QName kBigProp("urn:test", "big");

/// Deterministic byte generator posing as a body: produces `total`
/// bytes of a position-derived pattern without ever holding more than
/// one read's worth. Rewindable, so keep-alive retries can replay it.
class PatternSource final : public http::BodySource {
 public:
  explicit PatternSource(uint64_t total) : total_(total) {}

  Result<size_t> read(char* out, size_t max) override {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(max, total_ - offset_));
    for (size_t i = 0; i < n; ++i) {
      uint64_t pos = offset_ + i;
      out[i] = static_cast<char>((pos * 131 + (pos >> 9)) & 0xff);
    }
    offset_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return total_; }
  bool rewind() override {
    offset_ = 0;
    return true;
  }

 private:
  uint64_t total_;
  uint64_t offset_ = 0;
};

TEST(LargeObjects, MultiMegabyteDocumentRoundTrip) {
  DavStack stack;
  auto client = stack.client();
  Rng rng(5);
  std::string payload = rng.binary_blob(8 * 1024 * 1024);
  ASSERT_TRUE(client.put("/big.bin", payload).is_ok());
  auto fetched = client.get("/big.bin");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().size(), payload.size());
  EXPECT_EQ(fetched.value(), payload);
}

TEST(LargeObjects, RepeatedLargePutsAreStable) {
  DavStack stack;
  auto client = stack.client();
  Rng rng(6);
  for (int round = 0; round < 5; ++round) {
    std::string payload = rng.ascii_blob(2 * 1024 * 1024);
    ASSERT_TRUE(client.put("/cycled.bin", payload).is_ok()) << round;
    auto fetched = client.get("/cycled.bin");
    ASSERT_TRUE(fetched.ok()) << round;
    EXPECT_EQ(fetched.value(), payload) << round;
  }
}

TEST(LargeObjects, Streamed64MiBRoundTripByChecksum) {
  // The full 64 MiB travels client → server → disk → server → client
  // through the streaming pipeline; integrity is asserted with a
  // rolling checksum on both ends so no layer of this test (or of the
  // stack under test) ever materializes the object.
  constexpr uint64_t kSize = 64ull * 1024 * 1024;
  DavStack stack;
  auto client = stack.client();

  auto body = std::make_shared<PatternSource>(kSize);
  ASSERT_TRUE(client.put_from("/streamed.bin", body).is_ok());

  http::DigestBodySink expected;
  PatternSource reference(kSize);
  ASSERT_TRUE(http::drain_body(reference, expected).ok());

  http::DigestBodySink fetched;
  ASSERT_TRUE(client.get_to("/streamed.bin", &fetched).is_ok());
  EXPECT_EQ(fetched.bytes_seen(), kSize);
  EXPECT_EQ(fetched.digest(), expected.digest());
}

TEST(LargeObjects, MegabytePropertyValueUnderGdbm) {
  DavStack stack(dbm::Flavor::kGdbm);
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  Rng rng(7);
  std::string value = rng.ascii_blob(3 * 1024 * 1024);
  ASSERT_TRUE(
      client.proppatch("/doc", {PropWrite::of_text(kBigProp, value)}).is_ok());
  auto fetched = client.get_property("/doc", kBigProp);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), value);
}

TEST(LargeObjects, ManyPropertiesOnOneResource) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  Rng rng(8);
  std::vector<PropWrite> writes;
  for (int i = 0; i < 50; ++i) {
    writes.push_back(PropWrite::of_text(
        xml::QName("urn:test", "p" + std::to_string(i)),
        rng.ascii_blob(1024)));
  }
  ASSERT_TRUE(client.proppatch("/doc", writes).is_ok());
  auto all = client.propfind_all("/doc", Depth::kZero);
  ASSERT_TRUE(all.ok());
  size_t test_props = 0;
  for (const auto& entry : all.value().responses.front().found) {
    if (entry.name.ns == "urn:test") ++test_props;
  }
  EXPECT_EQ(test_props, 50u);
}

TEST(LargeObjects, DefaultCapRejectsOversizedProperty) {
  // The configured default is the paper's 10 MB; an 11 MB value fails
  // while leaving the resource intact.
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "body").is_ok());
  std::string value(11 * 1024 * 1024, 'v');
  Status status =
      client.proppatch("/doc", {PropWrite::of_text(kBigProp, value)});
  EXPECT_EQ(status.code(), ErrorCode::kTooLarge);
  EXPECT_EQ(client.get("/doc").value(), "body");
}

}  // namespace
}  // namespace davpse
