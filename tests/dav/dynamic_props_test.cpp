// Dynamically computed metadata (§4): registry behavior, the built-in
// providers, and the schema-translation scenario end to end.
#include "dav/dynamic_props.h"

#include <gtest/gtest.h>

#include "davclient/client.h"
#include "davclient/search.h"
#include "testing/env.h"

namespace davpse {
namespace {

using davclient::Depth;
using davclient::Where;
using testing::DavStack;

const xml::QName kFormula("http://purl.pnl.gov/ecce", "formula");
// The "other application's" vocabulary for the same concept.
const xml::QName kOtherFormula("urn:otherapp", "chemical-formula");
const xml::QName kSizeCategory("urn:otherapp", "size-category");
const xml::QName kDigest("urn:otherapp", "content-digest");

TEST(DynamicRegistry, RegisterComputeUnregister) {
  dav::DynamicPropertyRegistry registry;
  xml::QName name("urn:t", "answer");
  EXPECT_FALSE(registry.has(name));
  registry.register_provider(
      name, [](const dav::DynamicContext&) { return std::string("42"); });
  EXPECT_TRUE(registry.has(name));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.names(), (std::vector<xml::QName>{name}));

  dav::ResourceInfo info;
  std::string path = "/x";
  dav::DynamicContext context{
      path, info, [](const xml::QName&) { return std::nullopt; },
      [] { return Result<std::string>(std::string()); }};
  EXPECT_EQ(registry.compute(name, context), "42");
  EXPECT_FALSE(registry.compute(xml::QName("urn:t", "other"), context)
                   .has_value());
  registry.unregister(name);
  EXPECT_FALSE(registry.has(name));
}

struct DynamicStack : ::testing::Test {
  DynamicStack() : client(stack.client()) {
    // Install the three example providers.
    stack.dav->dynamic_properties().register_provider(
        kOtherFormula, dav::alias_property(kFormula));
    stack.dav->dynamic_properties().register_provider(
        kSizeCategory, dav::size_category_provider());
    stack.dav->dynamic_properties().register_provider(
        kDigest, dav::content_digest_provider());

    EXPECT_TRUE(client.mkcol("/data").is_ok());
    EXPECT_TRUE(client.put("/data/mol", "molecule body").is_ok());
    EXPECT_TRUE(client.set_property("/data/mol", kFormula, "H2O").is_ok());
    EXPECT_TRUE(
        client.put("/data/big", std::string(128 * 1024, 'b')).is_ok());
  }
  DavStack stack;
  davclient::DavClient client;
};

TEST_F(DynamicStack, AliasTranslatesSchemaOnTheFly) {
  // The other application asks in ITS vocabulary and gets Ecce's data.
  auto value = client.get_property("/data/mol", kOtherFormula);
  ASSERT_TRUE(value.ok()) << value.status().to_string();
  EXPECT_EQ(value.value(), "H2O");
  // Resources without the source property report the alias undefined.
  auto absent = client.propfind("/data/big", Depth::kZero, {kOtherFormula});
  ASSERT_TRUE(absent.ok());
  ASSERT_EQ(absent.value().responses.front().missing.size(), 1u);
}

TEST_F(DynamicStack, StoredPropertyShadowsDynamic) {
  ASSERT_TRUE(
      client.set_property("/data/mol", kOtherFormula, "OVERRIDE").is_ok());
  auto value = client.get_property("/data/mol", kOtherFormula);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), "OVERRIDE");
}

TEST_F(DynamicStack, SizeCategoryAndDigestProviders) {
  EXPECT_EQ(client.get_property("/data/mol", kSizeCategory).value(),
            "small");
  EXPECT_EQ(client.get_property("/data/big", kSizeCategory).value(),
            "medium");
  // Collections have no size category.
  auto on_collection = client.propfind("/data", Depth::kZero,
                                       {kSizeCategory});
  ASSERT_TRUE(on_collection.ok());
  EXPECT_EQ(on_collection.value().responses.front().missing.size(), 1u);

  auto digest = client.get_property("/data/mol", kDigest);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value().size(), 16u);
  // Deterministic: same content, same digest.
  EXPECT_EQ(client.get_property("/data/mol", kDigest).value(),
            digest.value());
  // Content change changes the digest.
  ASSERT_TRUE(client.put("/data/mol", "different body").is_ok());
  EXPECT_NE(client.get_property("/data/mol", kDigest).value(),
            digest.value());
}

TEST_F(DynamicStack, DynamicPropertiesSearchable) {
  // SEARCH over the translated vocabulary — the full integration
  // story: a foreign application both queries and filters in its own
  // schema.
  auto result = client.search("/data", Depth::kInfinity,
                              {kOtherFormula, kSizeCategory},
                              Where::eq(kOtherFormula, "H2O"));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  ASSERT_EQ(result.value().responses.size(), 1u);
  EXPECT_EQ(result.value().responses.front().href, "/data/mol");
  EXPECT_EQ(result.value().responses.front().prop(kSizeCategory), "small");

  auto medium = client.search("/data", Depth::kInfinity, {kSizeCategory},
                              Where::eq(kSizeCategory, "medium"));
  ASSERT_TRUE(medium.ok());
  ASSERT_EQ(medium.value().responses.size(), 1u);
  EXPECT_EQ(medium.value().responses.front().href, "/data/big");
}

TEST_F(DynamicStack, ProppatchCannotWriteThroughDynamicName) {
  // Writing to a dynamic name stores a dead property (which then
  // shadows); the provider itself is unaffected for other resources.
  ASSERT_TRUE(
      client.set_property("/data/big", kSizeCategory, "huge").is_ok());
  EXPECT_EQ(client.get_property("/data/big", kSizeCategory).value(), "huge");
  EXPECT_EQ(client.get_property("/data/mol", kSizeCategory).value(),
            "small");
}

}  // namespace
}  // namespace davpse
