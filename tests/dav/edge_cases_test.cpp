// Protocol edge cases: lock tokens presented through If headers,
// malformed request bodies, concurrent mixed workloads against the
// store-wide reader/writer locking, and miscellaneous RFC corners.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "davclient/client.h"
#include "testing/env.h"

namespace davpse {
namespace {

using davclient::Depth;
using davclient::PropWrite;
using testing::DavStack;

TEST(DavEdge, LockHolderWritesWithIfHeaderToken) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "v1").is_ok());
  auto lock = client.lock_exclusive("/doc", "owner");
  ASSERT_TRUE(lock.ok());

  // Without the token: refused, even for the client that locked it
  // (locks are token-based, not connection-based).
  EXPECT_EQ(client.put("/doc", "v2").code(), ErrorCode::kLocked);

  // With the token in an If header: accepted.
  http::HttpRequest request;
  request.method = "PUT";
  request.target = "/doc";
  request.body = "v2-with-token";
  request.headers.set("If", "(<" + lock.value().token + ">)");
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kNoContent);
  EXPECT_EQ(client.get("/doc").value(), "v2-with-token");

  // A wrong token in the If header is still refused.
  http::HttpRequest bad;
  bad.method = "PUT";
  bad.target = "/doc";
  bad.body = "nope";
  bad.headers.set("If", "(<opaquelocktoken:davpse-99999>)");
  auto refused = client.http().execute(std::move(bad));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().status, http::kLocked);
  ASSERT_TRUE(client.unlock(lock.value()).is_ok());
}

TEST(DavEdge, DepthInfinityLockCoversNewChildren) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol("/tree").is_ok());
  auto lock = client.lock_exclusive("/tree", "owner");
  ASSERT_TRUE(lock.ok());
  // Creating a child inside the locked tree requires the token.
  EXPECT_EQ(client.put("/tree/child", "x").code(), ErrorCode::kLocked);
  http::HttpRequest request;
  request.method = "PUT";
  request.target = "/tree/child";
  request.body = "x";
  request.headers.set("If", "(<" + lock.value().token + ">)");
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kCreated);
}

TEST(DavEdge, MalformedBodiesGet400) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  for (const char* method : {"PROPFIND", "PROPPATCH"}) {
    http::HttpRequest request;
    request.method = method;
    request.target = "/doc";
    request.body = "<not-xml";
    auto response = client.http().execute(std::move(request));
    ASSERT_TRUE(response.ok()) << method;
    EXPECT_EQ(response.value().status, http::kBadRequest) << method;
  }
  // Wrong root element types.
  http::HttpRequest wrong_root;
  wrong_root.method = "PROPFIND";
  wrong_root.target = "/doc";
  wrong_root.body = "<something-else/>";
  auto response = client.http().execute(std::move(wrong_root));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kBadRequest);
}

TEST(DavEdge, MkcolWithBodyIsUnsupportedMediaType) {
  DavStack stack;
  auto client = stack.client();
  http::HttpRequest request;
  request.method = "MKCOL";
  request.target = "/col";
  request.body = "<mkcol-extended-request/>";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kUnsupportedMediaType);
}

TEST(DavEdge, CopyMissingDestinationHeader) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  http::HttpRequest request;
  request.method = "COPY";
  request.target = "/doc";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kBadRequest);
}

TEST(DavEdge, MoveOntoItselfForbidden) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  EXPECT_EQ(client.move("/doc", "/doc").code(),
            ErrorCode::kPermissionDenied);
}

TEST(DavEdge, PropfindDepthHeaderDefaultsToInfinity) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.mkcol_recursive("/a/b").is_ok());
  ASSERT_TRUE(client.put("/a/b/leaf", "x").is_ok());
  // Raw request without a Depth header.
  http::HttpRequest request;
  request.method = "PROPFIND";
  request.target = "/a";
  auto response = client.http().execute(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kMultiStatus);
  auto parsed = davclient::parse_multistatus(response.value().body,
                                             davclient::ParserKind::kDom);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().responses.size(), 3u);  // /a, /a/b, /a/b/leaf
}

TEST(DavEdge, ConcurrentMixedWorkloadStaysConsistent) {
  DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/8);
  auto seeder = stack.client();
  ASSERT_TRUE(seeder.mkcol("/shared").is_ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        seeder.put("/shared/doc" + std::to_string(i), "seed").is_ok());
  }
  seeder.http().reset_connection();

  constexpr int kWriters = 3, kReaders = 5, kOps = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&stack, &failures, w] {
      auto client = stack.client();
      xml::QName prop("urn:stress", "p" + std::to_string(w));
      for (int i = 0; i < kOps; ++i) {
        std::string path = "/shared/doc" + std::to_string(i % 8);
        if (!client.put(path, "w" + std::to_string(w * 1000 + i)).is_ok()) {
          failures.fetch_add(1);
        }
        if (!client.set_property(path, prop, std::to_string(i)).is_ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&stack, &failures] {
      auto client = stack.client();
      for (int i = 0; i < kOps; ++i) {
        auto listing = client.propfind_all("/shared", Depth::kOne);
        if (!listing.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (const auto& response : listing.value().responses) {
          if (response.is_collection()) continue;
          auto body = client.get(response.href);
          if (!body.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Final state is readable and complete.
  auto final_listing = seeder.propfind_all("/shared", Depth::kOne);
  ASSERT_TRUE(final_listing.ok());
  EXPECT_EQ(final_listing.value().responses.size(), 9u);
}

TEST(DavEdge, UnicodeAndEscapedPropertyNamesAndValues) {
  DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/doc", "x").is_ok());
  xml::QName unicode_prop("urn:tëst", "prop-ñame");
  std::string value = "välue with € and \U0001F9EA";
  ASSERT_TRUE(client.set_property("/doc", unicode_prop, value).is_ok());
  EXPECT_EQ(client.get_property("/doc", unicode_prop).value(), value);
}

}  // namespace
}  // namespace davpse
