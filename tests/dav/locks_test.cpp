#include "dav/locks.h"

#include <gtest/gtest.h>

#include <thread>

namespace davpse::dav {
namespace {

TEST(Locks, ExclusiveAcquireAndRelease) {
  LockManager manager;
  auto lock = manager.acquire("/a", LockScope::kExclusive, true, "me", 0);
  ASSERT_TRUE(lock.ok());
  EXPECT_FALSE(lock.value().token.empty());
  EXPECT_EQ(manager.active_count(), 1u);
  ASSERT_TRUE(manager.release("/a", lock.value().token).is_ok());
  EXPECT_EQ(manager.active_count(), 0u);
}

TEST(Locks, ExclusiveConflictsWithEverything) {
  LockManager manager;
  auto first = manager.acquire("/a", LockScope::kExclusive, true, "one", 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(manager.acquire("/a", LockScope::kExclusive, true, "two", 0)
                .status()
                .code(),
            ErrorCode::kLocked);
  EXPECT_EQ(manager.acquire("/a", LockScope::kShared, true, "two", 0)
                .status()
                .code(),
            ErrorCode::kLocked);
}

TEST(Locks, SharedLocksCoexist) {
  LockManager manager;
  ASSERT_TRUE(manager.acquire("/a", LockScope::kShared, true, "one", 0).ok());
  ASSERT_TRUE(manager.acquire("/a", LockScope::kShared, true, "two", 0).ok());
  EXPECT_EQ(manager.active_count(), 2u);
  // But an exclusive request is refused.
  EXPECT_EQ(manager.acquire("/a", LockScope::kExclusive, true, "x", 0)
                .status()
                .code(),
            ErrorCode::kLocked);
}

TEST(Locks, DepthInfinityCoversDescendants) {
  LockManager manager;
  auto lock =
      manager.acquire("/tree", LockScope::kExclusive, true, "me", 0);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(
      manager.acquire("/tree/leaf", LockScope::kExclusive, true, "other", 0)
          .status()
          .code(),
      ErrorCode::kLocked);
  EXPECT_EQ(manager.check_write("/tree/deep/leaf", std::nullopt).code(),
            ErrorCode::kLocked);
  EXPECT_TRUE(
      manager.check_write("/tree/deep/leaf", lock.value().token).is_ok());
  EXPECT_TRUE(manager.check_write("/elsewhere", std::nullopt).is_ok());
}

TEST(Locks, DepthZeroDoesNotCoverChildren) {
  LockManager manager;
  ASSERT_TRUE(
      manager.acquire("/col", LockScope::kExclusive, false, "me", 0).ok());
  EXPECT_TRUE(manager.check_write("/col/child", std::nullopt).is_ok());
  EXPECT_EQ(manager.check_write("/col", std::nullopt).code(),
            ErrorCode::kLocked);
}

TEST(Locks, DepthInfinityRequestConflictsWithLockedDescendant) {
  LockManager manager;
  ASSERT_TRUE(
      manager.acquire("/tree/leaf", LockScope::kExclusive, true, "a", 0).ok());
  EXPECT_EQ(manager.acquire("/tree", LockScope::kExclusive, true, "b", 0)
                .status()
                .code(),
            ErrorCode::kLocked);
  // Depth-0 sibling request is fine.
  EXPECT_TRUE(
      manager.acquire("/tree/other", LockScope::kExclusive, true, "b", 0)
          .ok());
}

TEST(Locks, ReleaseRequiresMatchingToken) {
  LockManager manager;
  auto lock = manager.acquire("/a", LockScope::kExclusive, true, "me", 0);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(manager.release("/a", "opaquelocktoken:wrong").code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(manager.release("/b", lock.value().token).code(),
            ErrorCode::kNotFound);
  EXPECT_TRUE(manager.release("/a", lock.value().token).is_ok());
}

TEST(Locks, TimeoutExpires) {
  LockManager manager;
  auto lock = manager.acquire("/a", LockScope::kExclusive, true, "me", 0.05);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(manager.active_count(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(manager.active_count(), 0u);
  EXPECT_TRUE(manager.check_write("/a", std::nullopt).is_ok());
}

TEST(Locks, RefreshExtendsTimeout) {
  LockManager manager;
  auto lock = manager.acquire("/a", LockScope::kExclusive, true, "me", 0.08);
  ASSERT_TRUE(lock.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto refreshed = manager.refresh("/a", lock.value().token, 10.0);
  ASSERT_TRUE(refreshed.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(manager.active_count(), 1u);  // would have expired without refresh
}

TEST(Locks, RefreshUnknownTokenFails) {
  LockManager manager;
  EXPECT_EQ(manager.refresh("/a", "opaquelocktoken:nope", 10).status().code(),
            ErrorCode::kNotFound);
}

TEST(Locks, ForgetSubtreeDropsCoveredLocks) {
  LockManager manager;
  ASSERT_TRUE(
      manager.acquire("/tree/a", LockScope::kExclusive, true, "x", 0).ok());
  ASSERT_TRUE(
      manager.acquire("/tree/b", LockScope::kExclusive, true, "y", 0).ok());
  ASSERT_TRUE(
      manager.acquire("/other", LockScope::kExclusive, true, "z", 0).ok());
  manager.forget_subtree("/tree");
  EXPECT_EQ(manager.active_count(), 1u);
  EXPECT_EQ(manager.check_write("/other", std::nullopt).code(),
            ErrorCode::kLocked);
}

TEST(Locks, LocksCoveringReportsAncestors) {
  LockManager manager;
  auto lock = manager.acquire("/a", LockScope::kExclusive, true, "me", 0);
  ASSERT_TRUE(lock.ok());
  auto covering = manager.locks_covering("/a/b/c");
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0].token, lock.value().token);
  EXPECT_TRUE(manager.locks_covering("/unrelated").empty());
}

TEST(Locks, SharedLockStillRequiresTokenForWrites) {
  LockManager manager;
  auto lock = manager.acquire("/a", LockScope::kShared, true, "me", 0);
  ASSERT_TRUE(lock.ok());
  EXPECT_EQ(manager.check_write("/a", std::nullopt).code(),
            ErrorCode::kLocked);
  EXPECT_TRUE(manager.check_write("/a", lock.value().token).is_ok());
}

}  // namespace
}  // namespace davpse::dav
