// Every non-normal exchange leaves an access record: shed 503s,
// request-read timeouts (408), silently closed never-spoke
// connections, expired keep-alive idlers, and stall-budget violations
// all land in the event log with a trace id — the "what happened to my
// request" question must be answerable for requests that never reached
// a handler at all.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "http/server.h"
#include "net/network.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse::obs {
namespace {

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Value of `"key": "<value>"` in a JSON line; empty when absent.
std::string json_string_field(const std::string& line,
                              const std::string& key) {
  auto pos = line.find("\"" + key + "\": \"");
  if (pos == std::string::npos) return "";
  pos += key.size() + 5;
  auto end = line.find('"', pos);
  return line.substr(pos, end - pos);
}

bool wait_until(const std::function<bool()>& cond, double timeout = 5.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

class EchoHandler final : public http::Handler {
 public:
  http::HttpResponse handle(const http::HttpRequest&) override {
    return http::HttpResponse::make(http::kOk, "ok\n");
  }
};

class GatedHandler final : public http::Handler {
 public:
  http::HttpResponse handle(const http::HttpRequest&) override {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return http::HttpResponse::make(http::kOk, "ok\n");
  }
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
};

/// Fixture: an event log on a temp file plus a server config wired to
/// it. Each test adds its own knobs and handler.
struct LoggedServer {
  explicit LoggedServer(const std::string& endpoint_prefix)
      : temp("accesspaths") {
    EventLogConfig log_config;
    log_config.path = temp.path() / "access.jsonl";
    log_config.metrics = &registry;
    log = std::make_unique<EventLog>(log_config);
    if (!log->start().is_ok()) throw std::runtime_error("log start failed");
    config.endpoint = testing::unique_endpoint(endpoint_prefix);
    config.metrics = &registry;
    config.event_log = log.get();
  }

  /// First log line whose event field matches; empty when none.
  std::string find_event(const std::string& event) {
    log->drain();
    for (const std::string& line : read_lines(log->path())) {
      if (json_string_field(line, "event") == event) return line;
    }
    return "";
  }

  TempDir temp;
  Registry registry;
  std::unique_ptr<EventLog> log;
  http::ServerConfig config;
};

/// Reads until EOF (server closed its end) and returns everything.
std::string read_to_close(net::Stream& stream) {
  std::string reply;
  char buf[1024];
  for (;;) {
    auto n = stream.read(buf, sizeof buf);
    if (!n.ok() || n.value() == 0) break;
    reply.append(buf, n.value());
  }
  return reply;
}

TEST(AccessPathsTest, ShedConnectionIsLoggedWithTraceId) {
  LoggedServer fx("access-shed");
  GatedHandler handler;
  fx.config.workers = 1;
  fx.config.max_queue_depth = 1;
  http::HttpServer server(fx.config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // Occupy the lone worker, then fill the queue-depth slot.
  auto busy = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(
      busy.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] { return handler.entered.load() >= 1; }));
  auto queued = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(
      queued.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] {
    return fx.registry.counter("http.server.connections").value() >= 2 &&
           fx.registry.snapshot().gauge("http.server.parked") == 0;
  }));

  // The next arrival is shed: 503 on the wire WITH a trace id header,
  // and the same trace id in the access log.
  auto shed = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(shed.ok());
  (void)shed.value()->write("G");
  std::string reply = read_to_close(*shed.value());
  EXPECT_NE(reply.find("503"), std::string::npos);
  EXPECT_NE(reply.find("X-Trace-Id: "), std::string::npos);

  std::string line = fx.find_event("shed");
  ASSERT_FALSE(line.empty()) << "no shed access record";
  std::string trace_id = json_string_field(line, "trace_id");
  EXPECT_FALSE(trace_id.empty());
  EXPECT_NE(reply.find("X-Trace-Id: " + trace_id), std::string::npos)
      << "503 reply and access record disagree on the trace id";
  EXPECT_NE(line.find("\"status\": 503"), std::string::npos);

  handler.release.store(true);
  busy.value()->close();
  queued.value()->close();
  shed.value()->close();
}

TEST(AccessPathsTest, RequestReadTimeoutIsLoggedWithTraceId) {
  LoggedServer fx("access-408");
  EchoHandler handler;
  fx.config.request_read_timeout_seconds = 0.05;
  http::HttpServer server(fx.config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // Head promises a body that never arrives: the worker's body read
  // times out and answers 408.
  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.value()
                  ->write("PUT /slow.txt HTTP/1.1\r\nHost: h\r\n"
                          "Content-Length: 10\r\n\r\n")
                  .is_ok());
  std::string reply = read_to_close(*conn.value());
  EXPECT_NE(reply.find("408"), std::string::npos);
  EXPECT_NE(reply.find("X-Trace-Id: "), std::string::npos);

  std::string line = fx.find_event("read_timeout");
  ASSERT_FALSE(line.empty()) << "no read_timeout access record";
  EXPECT_EQ(json_string_field(line, "method"), "PUT");
  EXPECT_EQ(json_string_field(line, "path"), "/slow.txt");
  EXPECT_NE(line.find("\"status\": 408"), std::string::npos);
  std::string trace_id = json_string_field(line, "trace_id");
  EXPECT_FALSE(trace_id.empty());
  EXPECT_NE(reply.find("X-Trace-Id: " + trace_id), std::string::npos);
  conn.value()->close();
}

TEST(AccessPathsTest, NeverSpokeConnectionIsLoggedAsSilentClose) {
  LoggedServer fx("access-mute");
  EchoHandler handler;
  fx.config.request_read_timeout_seconds = 0.05;
  http::HttpServer server(fx.config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // Connect and never send a byte: the reactor expires the parked
  // fresh connection without spending a worker — but the event log
  // still gets a record (status 0: no request ever existed).
  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(wait_until([&] { return !fx.find_event("silent_close").empty(); }));
  std::string line = fx.find_event("silent_close");
  EXPECT_NE(line.find("\"status\": 0"), std::string::npos);
  EXPECT_NE(line.find("\"daemon\": -1"), std::string::npos);
  EXPECT_FALSE(json_string_field(line, "trace_id").empty());
  conn.value()->close();
}

TEST(AccessPathsTest, ExpiredKeepAliveIdlerIsLogged) {
  LoggedServer fx("access-idle");
  EchoHandler handler;
  fx.config.keep_alive_timeout_seconds = 0.05;
  http::HttpServer server(fx.config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // One served request, then idle past the keep-alive window.
  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      conn.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] { return !fx.find_event("idle_expired").empty(); }));
  std::string line = fx.find_event("idle_expired");
  // The connection had served a request, so the record says so.
  EXPECT_NE(line.find("\"keepalive_reuse\": true"), std::string::npos);
  conn.value()->close();
}

TEST(AccessPathsTest, StalledRequestIsLoggedAndTracePinned) {
  class SlowHandler final : public http::Handler {
   public:
    http::HttpResponse handle(const http::HttpRequest&) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      return http::HttpResponse::make(http::kOk, "late\n");
    }
  };

  LoggedServer fx("access-stall");
  SlowHandler handler;
  TailSampler tail;
  fx.config.stall_budget_seconds = 0.001;  // everything stalls
  fx.config.tail_sampler = &tail;
  http::HttpServer server(fx.config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      conn.value()->write("GET /slow HTTP/1.1\r\nHost: h\r\n"
                          "Connection: close\r\n\r\n")
          .is_ok());
  std::string reply = read_to_close(*conn.value());
  // Detection, not enforcement: the response still completes normally.
  EXPECT_NE(reply.find("200"), std::string::npos);
  EXPECT_NE(reply.find("late"), std::string::npos);

  EXPECT_GE(fx.registry.counter("http.server.stalled").value(), 1u);
  std::string line = fx.find_event("stalled");
  ASSERT_FALSE(line.empty()) << "no stalled access record";
  EXPECT_NE(line.find("\"status\": 200"), std::string::npos);
  std::string trace_id = json_string_field(line, "trace_id");
  ASSERT_FALSE(trace_id.empty());

  // force_retain pinned the trace in the tail sampler.
  auto timeline = tail.find(trace_id);
  ASSERT_TRUE(timeline.has_value()) << "stalled trace not retained";
  EXPECT_TRUE(timeline->pinned);
  EXPECT_NE(tail.to_json().find("\"pinned\": true"), std::string::npos);
  conn.value()->close();
}

}  // namespace
}  // namespace davpse::obs
