// End-to-end checks for the read-only `GET /.well-known/stats`
// endpoint: its JSON must agree with obs::Registry::snapshot(), and
// scraping it must not perturb the DAV counters it reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "http/client.h"
#include "http/message.h"
#include "obs/metrics.h"
#include "testing/env.h"

namespace davpse {
namespace {

/// First number following `"key": ` in `json`; -1 when absent.
double json_number(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1;
  pos = json.find(':', pos);
  if (pos == std::string::npos) return -1;
  return std::strtod(json.c_str() + pos + 1, nullptr);
}

/// The `{...}` object serialized for histogram `key`; empty if absent.
std::string histogram_object(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\": {");
  if (pos == std::string::npos) return "";
  auto open = json.find('{', pos);
  auto close = json.find('}', open);
  return json.substr(open, close - open + 1);
}

http::HttpClient raw_client(testing::DavStack& stack, obs::Registry* metrics) {
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  config.connect_label = "test.scraper";
  config.metrics = metrics;
  return http::HttpClient(std::move(config));
}

TEST(StatsEndpointTest, JsonMatchesProgrammaticSnapshot) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto dav = stack.client();
  ASSERT_TRUE(dav.put("/a.txt", "alpha").is_ok());
  ASSERT_TRUE(dav.put("/b.txt", "beta").is_ok());
  ASSERT_TRUE(dav.get("/a.txt").ok());
  ASSERT_TRUE(
      dav.propfind("/", davclient::Depth::kOne, {xml::dav_name("getetag")})
          .ok());

  auto scraper = raw_client(stack, &registry);
  auto response = scraper.get("/.well-known/stats");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, http::kOk);
  auto content_type = response.value().headers.get("Content-Type");
  ASSERT_TRUE(content_type.has_value());
  EXPECT_EQ(*content_type, "application/json");
  const std::string& json = response.value().body;

  // DAV counters are recorded before the stats handler runs and the
  // endpoint itself bypasses them, so the served JSON and a snapshot
  // taken now must agree on every dav.* value.
  auto snap = registry.snapshot();
  EXPECT_EQ(json_number(json, "dav.server.requests.PUT"),
            static_cast<double>(snap.counter("dav.server.requests.PUT")));
  EXPECT_EQ(snap.counter("dav.server.requests.PUT"), 2u);
  EXPECT_EQ(json_number(json, "dav.server.requests.GET"),
            static_cast<double>(snap.counter("dav.server.requests.GET")));
  EXPECT_EQ(json_number(json, "dav.server.requests.PROPFIND"),
            static_cast<double>(snap.counter("dav.server.requests.PROPFIND")));

  auto put_latency = snap.histogram("dav.server.latency_seconds.PUT");
  std::string hist = histogram_object(json, "dav.server.latency_seconds.PUT");
  ASSERT_FALSE(hist.empty());
  EXPECT_EQ(json_number(hist, "count"), static_cast<double>(put_latency.count));
  EXPECT_EQ(put_latency.count, 2u);
  EXPECT_DOUBLE_EQ(json_number(hist, "p50"), put_latency.p50);
  EXPECT_DOUBLE_EQ(json_number(hist, "p95"), put_latency.p95);
  EXPECT_DOUBLE_EQ(json_number(hist, "p99"), put_latency.p99);
}

TEST(StatsEndpointTest, ScrapingDoesNotPerturbDavCounters) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  ASSERT_TRUE(stack.client().put("/doc.txt", "body").is_ok());

  auto scraper = raw_client(stack, &registry);
  auto first = scraper.get("/.well-known/stats");
  auto second = scraper.get("/.well-known/stats");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Repeated scrapes leave every dav.* value untouched — no
  // dav.server.requests.GET appears from the scrapes themselves.
  EXPECT_EQ(json_number(first.value().body, "dav.server.requests.PUT"), 1);
  EXPECT_EQ(json_number(second.value().body, "dav.server.requests.PUT"), 1);
  EXPECT_EQ(json_number(second.value().body, "dav.server.requests.GET"),
            json_number(first.value().body, "dav.server.requests.GET"));
  EXPECT_EQ(registry.snapshot().counter("dav.server.requests.GET"), 0u);
}

TEST(StatsEndpointTest, HeadReturnsHeadersOnly) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto scraper = raw_client(stack, &registry);
  http::HttpRequest request;
  request.method = "HEAD";
  request.target = "/.well-known/stats";
  auto response = scraper.execute(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, http::kOk);
  EXPECT_TRUE(response.value().body.empty());
}

/// Deterministic in-memory source: `total` bytes of 'x', never holding
/// more than one wire block resident.
class PatternSource final : public http::BodySource {
 public:
  explicit PatternSource(uint64_t total) : total_(total) {}

  Result<size_t> read(char* buffer, size_t max_bytes) override {
    uint64_t remaining = total_ - offset_;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(max_bytes, remaining));
    std::memset(buffer, 'x', n);
    offset_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return total_; }
  bool rewind() override {
    offset_ = 0;
    return true;
  }

 private:
  uint64_t total_;
  uint64_t offset_ = 0;
};

// Acceptance check from the ISSUE: a streamed 64 MiB PUT shows up in
// the server's byte counters.
TEST(StatsEndpointTest, StreamedPutLandsInByteCounters) {
  constexpr uint64_t kSize = 64ull * 1024 * 1024;
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto dav = stack.client();
  ASSERT_TRUE(
      dav.put_from("/big.bin", std::make_shared<PatternSource>(kSize)).is_ok());

  auto snap = registry.snapshot();
  // bytes_in counts request payload bytes as they stream through the
  // server; the PUT above is the only request with a body so far.
  EXPECT_EQ(snap.counter("http.server.bytes_in"), kSize);
  EXPECT_EQ(json_number(registry.snapshot().to_json(), "http.server.bytes_in"),
            static_cast<double>(kSize));
}

}  // namespace
}  // namespace davpse
