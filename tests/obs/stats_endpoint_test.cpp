// End-to-end checks for the read-only observability endpoints
// (`/.well-known/stats`, `/.well-known/metrics`, `/.well-known/traces`):
// the stats JSON must agree with obs::Registry::snapshot(), the
// Prometheus text must expose the same snapshot with monotonically
// non-decreasing cumulative buckets, scraping must not perturb the DAV
// counters reported, non-GET/HEAD methods get an explicit 405, and the
// endpoints honor the server's auth configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "http/client.h"
#include "http/message.h"
#include "obs/metrics.h"
#include "testing/env.h"

namespace davpse {
namespace {

/// First number following `"key": ` in `json`; -1 when absent.
double json_number(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1;
  pos = json.find(':', pos);
  if (pos == std::string::npos) return -1;
  return std::strtod(json.c_str() + pos + 1, nullptr);
}

/// The `{...}` object serialized for histogram `key`; empty if absent.
std::string histogram_object(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\": {");
  if (pos == std::string::npos) return "";
  auto open = json.find('{', pos);
  auto close = json.find('}', open);
  return json.substr(open, close - open + 1);
}

http::HttpClient raw_client(testing::DavStack& stack, obs::Registry* metrics) {
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  config.connect_label = "test.scraper";
  config.metrics = metrics;
  return http::HttpClient(std::move(config));
}

TEST(StatsEndpointTest, JsonMatchesProgrammaticSnapshot) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto dav = stack.client();
  ASSERT_TRUE(dav.put("/a.txt", "alpha").is_ok());
  ASSERT_TRUE(dav.put("/b.txt", "beta").is_ok());
  ASSERT_TRUE(dav.get("/a.txt").ok());
  ASSERT_TRUE(
      dav.propfind("/", davclient::Depth::kOne, {xml::dav_name("getetag")})
          .ok());

  auto scraper = raw_client(stack, &registry);
  auto response = scraper.get("/.well-known/stats");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, http::kOk);
  auto content_type = response.value().headers.get("Content-Type");
  ASSERT_TRUE(content_type.has_value());
  EXPECT_EQ(*content_type, "application/json");
  const std::string& json = response.value().body;

  // DAV counters are recorded before the stats handler runs and the
  // endpoint itself bypasses them, so the served JSON and a snapshot
  // taken now must agree on every dav.* value.
  auto snap = registry.snapshot();
  EXPECT_EQ(json_number(json, "dav.server.requests.PUT"),
            static_cast<double>(snap.counter("dav.server.requests.PUT")));
  EXPECT_EQ(snap.counter("dav.server.requests.PUT"), 2u);
  EXPECT_EQ(json_number(json, "dav.server.requests.GET"),
            static_cast<double>(snap.counter("dav.server.requests.GET")));
  EXPECT_EQ(json_number(json, "dav.server.requests.PROPFIND"),
            static_cast<double>(snap.counter("dav.server.requests.PROPFIND")));

  auto put_latency = snap.histogram("dav.server.latency_seconds.PUT");
  std::string hist = histogram_object(json, "dav.server.latency_seconds.PUT");
  ASSERT_FALSE(hist.empty());
  EXPECT_EQ(json_number(hist, "count"), static_cast<double>(put_latency.count));
  EXPECT_EQ(put_latency.count, 2u);
  EXPECT_DOUBLE_EQ(json_number(hist, "p50"), put_latency.p50);
  EXPECT_DOUBLE_EQ(json_number(hist, "p95"), put_latency.p95);
  EXPECT_DOUBLE_EQ(json_number(hist, "p99"), put_latency.p99);
}

TEST(StatsEndpointTest, ScrapingDoesNotPerturbDavCounters) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  ASSERT_TRUE(stack.client().put("/doc.txt", "body").is_ok());

  auto scraper = raw_client(stack, &registry);
  auto first = scraper.get("/.well-known/stats");
  auto second = scraper.get("/.well-known/stats");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Repeated scrapes leave every dav.* value untouched — no
  // dav.server.requests.GET appears from the scrapes themselves.
  EXPECT_EQ(json_number(first.value().body, "dav.server.requests.PUT"), 1);
  EXPECT_EQ(json_number(second.value().body, "dav.server.requests.PUT"), 1);
  EXPECT_EQ(json_number(second.value().body, "dav.server.requests.GET"),
            json_number(first.value().body, "dav.server.requests.GET"));
  EXPECT_EQ(registry.snapshot().counter("dav.server.requests.GET"), 0u);
}

TEST(StatsEndpointTest, HeadReturnsHeadersOnly) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto scraper = raw_client(stack, &registry);
  http::HttpRequest request;
  request.method = "HEAD";
  request.target = "/.well-known/stats";
  auto response = scraper.execute(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, http::kOk);
  EXPECT_TRUE(response.value().body.empty());
}

TEST(StatsEndpointTest, NonReadMethodsGetExplicit405) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto scraper = raw_client(stack, &registry);
  for (const char* target :
       {"/.well-known/stats", "/.well-known/metrics",
        "/.well-known/traces"}) {
    for (const char* method : {"PUT", "POST", "DELETE", "PROPFIND"}) {
      http::HttpRequest request;
      request.method = method;
      request.target = target;
      if (std::strcmp(method, "PUT") == 0) request.body = "data";
      auto response = scraper.execute(std::move(request));
      ASSERT_TRUE(response.ok()) << response.status().to_string();
      EXPECT_EQ(response.value().status, http::kMethodNotAllowed)
          << method << " " << target;
      auto allow = response.value().headers.get("Allow");
      ASSERT_TRUE(allow.has_value()) << method << " " << target;
      EXPECT_EQ(*allow, "GET, HEAD");
    }
  }
  // In particular, the PUTs above must not have created resources
  // shadowing the endpoints, nor perturbed the DAV counters.
  EXPECT_EQ(registry.snapshot().counter("dav.server.requests.PUT"), 0u);
  auto still_json = scraper.get("/.well-known/stats");
  ASSERT_TRUE(still_json.ok());
  EXPECT_EQ(still_json.value().status, http::kOk);
}

TEST(MetricsEndpointTest, HeadReturnsHeadersOnly) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto scraper = raw_client(stack, &registry);
  for (const char* target :
       {"/.well-known/metrics", "/.well-known/traces"}) {
    http::HttpRequest request;
    request.method = "HEAD";
    request.target = target;
    auto response = scraper.execute(std::move(request));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, http::kOk) << target;
    EXPECT_TRUE(response.value().body.empty()) << target;
  }
}

TEST(MetricsEndpointTest, PrometheusTextMatchesSnapshot) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto dav = stack.client();
  ASSERT_TRUE(dav.put("/a.txt", "alpha").is_ok());
  ASSERT_TRUE(dav.put("/b.txt", "beta").is_ok());
  ASSERT_TRUE(dav.get("/a.txt").ok());

  auto scraper = raw_client(stack, &registry);
  auto response = scraper.get("/.well-known/metrics");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, http::kOk);
  auto content_type = response.value().headers.get("Content-Type");
  ASSERT_TRUE(content_type.has_value());
  EXPECT_EQ(*content_type, "text/plain; version=0.0.4; charset=utf-8");
  const std::string& body = response.value().body;

  // Every line parses as Prometheus text: either a "# TYPE" header or
  // "name[{labels}] value" with a sanitized, davpse_-prefixed name.
  std::istringstream lines(body);
  std::string line;
  size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    ASSERT_EQ(line.rfind("davpse_", 0), 0u) << line;
    auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    for (char c : name.substr(0, name.find('{'))) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == ':';
      ASSERT_TRUE(ok) << "bad metric-name char in: " << line;
    }
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    ASSERT_EQ(*end, '\0') << "unparseable value in: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);

  // The counters agree with a programmatic snapshot (scrapes don't
  // touch dav.*, so the values are still current).
  auto snap = registry.snapshot();
  auto sample_value = [&](const std::string& name) {
    auto pos = body.find("\n" + name + " ");
    if (pos == std::string::npos) return -1.0;
    return std::strtod(body.c_str() + pos + 1 + name.size(), nullptr);
  };
  EXPECT_EQ(sample_value("davpse_dav_server_requests_PUT"),
            static_cast<double>(snap.counter("dav.server.requests.PUT")));
  EXPECT_EQ(sample_value("davpse_dav_server_requests_GET"),
            static_cast<double>(snap.counter("dav.server.requests.GET")));

  // Histogram buckets are cumulative and monotonically non-decreasing,
  // ending in +Inf == _count == the snapshot's count.
  const std::string bucket_prefix =
      "davpse_dav_server_latency_seconds_PUT_bucket{le=\"";
  std::vector<double> cumulative;
  size_t pos = 0;
  while ((pos = body.find(bucket_prefix, pos)) != std::string::npos) {
    auto close = body.find("\"} ", pos);
    ASSERT_NE(close, std::string::npos);
    cumulative.push_back(std::strtod(body.c_str() + close + 3, nullptr));
    pos = close;
  }
  ASSERT_EQ(cumulative.size(), obs::Histogram::kBucketBounds.size() + 1);
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket " << i;
  }
  auto put_latency = snap.histogram("dav.server.latency_seconds.PUT");
  EXPECT_EQ(cumulative.back(), static_cast<double>(put_latency.count));
  EXPECT_EQ(put_latency.count, 2u);
  EXPECT_EQ(
      sample_value("davpse_dav_server_latency_seconds_PUT_count"),
      static_cast<double>(put_latency.count));
  // Per-bucket snapshot counts sum to the same cumulative sequence.
  uint64_t running = 0;
  for (size_t i = 0; i < put_latency.buckets.size(); ++i) {
    running += put_latency.buckets[i];
    EXPECT_EQ(cumulative[i], static_cast<double>(running)) << "bucket " << i;
  }
}

/// A stack with Basic auth enabled, optionally exempting scrapes.
struct AuthedStack {
  explicit AuthedStack(bool unauthenticated_scrape)
      : temp("authstack") {
    dav::DavConfig dav_config;
    dav_config.root = temp.path();
    dav_config.metrics = &registry;
    dav = std::make_unique<dav::DavServer>(dav_config);
    http::ServerConfig http_config;
    http_config.endpoint = testing::unique_endpoint("test-auth-dav");
    http_config.metrics = &registry;
    http_config.authenticator.add_user("ecce", "secret");
    http_config.unauthenticated_scrape = unauthenticated_scrape;
    server = std::make_unique<http::HttpServer>(http_config, dav.get());
    if (!server->start().is_ok()) std::abort();
  }

  http::HttpClient client(bool with_credentials) {
    http::ClientConfig config;
    config.endpoint = server->endpoint();
    config.metrics = &registry;
    if (with_credentials) config.credentials = {"ecce", "secret"};
    return http::HttpClient(std::move(config));
  }

  TempDir temp;
  obs::Registry registry;
  std::unique_ptr<dav::DavServer> dav;
  std::unique_ptr<http::HttpServer> server;
};

TEST(ScrapeAuthTest, EndpointsRequireAuthByDefault) {
  AuthedStack stack(/*unauthenticated_scrape=*/false);
  auto anonymous = stack.client(/*with_credentials=*/false);
  for (const char* target :
       {"/.well-known/stats", "/.well-known/metrics",
        "/.well-known/traces"}) {
    auto response = anonymous.get(target);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, http::kUnauthorized) << target;
  }
  auto authed = stack.client(/*with_credentials=*/true);
  auto response = authed.get("/.well-known/stats");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, http::kOk);
}

TEST(ScrapeAuthTest, ExplicitConfigAllowsReadOnlyUnauthenticatedScrape) {
  AuthedStack stack(/*unauthenticated_scrape=*/true);
  auto anonymous = stack.client(/*with_credentials=*/false);
  // Read-only scrapes pass without credentials...
  for (const char* target :
       {"/.well-known/stats", "/.well-known/metrics",
        "/.well-known/traces"}) {
    auto response = anonymous.get(target);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, http::kOk) << target;
  }
  // ...but nothing else does: DAV traffic still needs credentials, and
  // a write aimed under /.well-known/ is not exempt.
  auto put = anonymous.put("/doc.txt", "body");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.value().status, http::kUnauthorized);
  http::HttpRequest sneaky;
  sneaky.method = "PUT";
  sneaky.target = "/.well-known/stats";
  sneaky.body = "overwrite";
  auto refused = anonymous.execute(std::move(sneaky));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().status, http::kUnauthorized);
}

/// Deterministic in-memory source: `total` bytes of 'x', never holding
/// more than one wire block resident.
class PatternSource final : public http::BodySource {
 public:
  explicit PatternSource(uint64_t total) : total_(total) {}

  Result<size_t> read(char* buffer, size_t max_bytes) override {
    uint64_t remaining = total_ - offset_;
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(max_bytes, remaining));
    std::memset(buffer, 'x', n);
    offset_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return total_; }
  bool rewind() override {
    offset_ = 0;
    return true;
  }

 private:
  uint64_t total_;
  uint64_t offset_ = 0;
};

// Acceptance check from the ISSUE: a streamed 64 MiB PUT shows up in
// the server's byte counters.
TEST(StatsEndpointTest, StreamedPutLandsInByteCounters) {
  constexpr uint64_t kSize = 64ull * 1024 * 1024;
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  auto dav = stack.client();
  ASSERT_TRUE(
      dav.put_from("/big.bin", std::make_shared<PatternSource>(kSize)).is_ok());

  auto snap = registry.snapshot();
  // bytes_in counts request payload bytes as they stream through the
  // server; the PUT above is the only request with a body so far.
  EXPECT_EQ(snap.counter("http.server.bytes_in"), kSize);
  EXPECT_EQ(json_number(registry.snapshot().to_json(), "http.server.bytes_in"),
            static_cast<double>(kSize));
}

}  // namespace
}  // namespace davpse
