// Async access log: serialization, overflow (drop, never block),
// rotation, shutdown draining, and the end-to-end acceptance run — a
// saturating multi-daemon workload whose every exchange appears in the
// log exactly once with the trace id the server answered with.
#include "obs/eventlog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse::obs {
namespace {

std::vector<std::string> read_lines(const std::filesystem::path& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Value of `"key": "<value>"` in a JSON line; empty when absent.
std::string json_string_field(const std::string& line,
                              const std::string& key) {
  auto pos = line.find("\"" + key + "\": \"");
  if (pos == std::string::npos) return "";
  pos += key.size() + 5;
  auto end = line.find('"', pos);
  return line.substr(pos, end - pos);
}

TEST(EventLogSerializationTest, AccessRecordCarriesEveryField) {
  AccessRecord record;
  record.unix_seconds = 997574400.25;
  record.method = "PROPFIND";
  record.path = "/corpus/doc1";
  record.status = 207;
  record.bytes_in = 321;
  record.bytes_out = 4567;
  record.duration_seconds = 0.0125;
  record.trace_id = "t-abc-1";
  record.daemon_id = 3;
  record.keepalive_reuse = true;
  std::string line = EventLog::to_json_line(record);
  EXPECT_NE(line.find("\"kind\": \"access\""), std::string::npos);
  EXPECT_NE(line.find("\"ts\": 997574400.250000"), std::string::npos);
  EXPECT_NE(line.find("\"method\": \"PROPFIND\""), std::string::npos);
  EXPECT_NE(line.find("\"path\": \"/corpus/doc1\""), std::string::npos);
  EXPECT_NE(line.find("\"status\": 207"), std::string::npos);
  EXPECT_NE(line.find("\"bytes_in\": 321"), std::string::npos);
  EXPECT_NE(line.find("\"bytes_out\": 4567"), std::string::npos);
  EXPECT_NE(line.find("\"duration_seconds\": 0.0125"), std::string::npos);
  EXPECT_NE(line.find("\"trace_id\": \"t-abc-1\""), std::string::npos);
  EXPECT_NE(line.find("\"daemon\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"keepalive_reuse\": true"), std::string::npos);
}

TEST(EventLogSerializationTest, LogRecordEscapesMessage) {
  LogRecord record;
  record.unix_seconds = 1000000000.5;
  record.level = LogLevel::kWarn;
  record.thread_id = 7;
  record.message = "said \"hi\"\nand left";
  std::string line = EventLog::to_json_line(record);
  EXPECT_NE(line.find("\"kind\": \"log\""), std::string::npos);
  EXPECT_NE(line.find("\"level\": \"WARN\""), std::string::npos);
  EXPECT_NE(line.find("\"thread\": 7"), std::string::npos);
  EXPECT_NE(line.find("said \\\"hi\\\"\\nand left"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record, one line
}

TEST(EventLogTest, WritesQueuedRecordsAsJsonLines) {
  TempDir temp("eventlog");
  Registry registry;
  EventLogConfig config;
  config.path = temp.path() / "access.log";
  config.metrics = &registry;
  EventLog log(config);
  ASSERT_TRUE(log.start().is_ok());

  for (int i = 0; i < 5; ++i) {
    AccessRecord record;
    record.method = "GET";
    record.path = "/doc" + std::to_string(i);
    record.status = 200;
    EXPECT_TRUE(log.log_access(std::move(record)));
  }
  log.drain();
  EXPECT_EQ(log.written(), 5u);
  EXPECT_EQ(log.dropped(), 0u);

  auto lines = read_lines(config.path);
  ASSERT_EQ(lines.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(json_string_field(lines[i], "path"),
              "/doc" + std::to_string(i));
  }
}

TEST(EventLogTest, StartRejectsEmptyPath) {
  EventLog log(EventLogConfig{});
  EXPECT_FALSE(log.start().is_ok());
}

TEST(EventLogTest, SaturatedQueueDropsWithoutBlocking) {
  // No start(): the queue exists but nothing drains it, so the
  // capacity is reached deterministically. Every call must return
  // immediately — a blocking enqueue would hang this test.
  TempDir temp("eventlog");
  Registry registry;
  EventLogConfig config;
  config.path = temp.path() / "access.log";
  config.queue_capacity = 4;
  config.metrics = &registry;
  EventLog log(config);

  int accepted = 0, rejected = 0;
  for (int i = 0; i < 10; ++i) {
    AccessRecord record;
    record.path = "/r" + std::to_string(i);
    (log.log_access(std::move(record)) ? accepted : rejected)++;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(registry.snapshot().counter("obs.eventlog.dropped"), 6u);

  // The backlog enqueued before start() is flushed once the writer
  // exists, and stop() drains it fully.
  ASSERT_TRUE(log.start().is_ok());
  log.stop();
  EXPECT_EQ(log.written(), 4u);
  EXPECT_EQ(read_lines(config.path).size(), 4u);
}

TEST(EventLogTest, StopDrainsEverythingQueued) {
  TempDir temp("eventlog");
  Registry registry;
  EventLogConfig config;
  config.path = temp.path() / "access.log";
  config.metrics = &registry;
  EventLog log(config);
  ASSERT_TRUE(log.start().is_ok());
  for (int i = 0; i < 100; ++i) {
    AccessRecord record;
    record.path = "/burst" + std::to_string(i);
    ASSERT_TRUE(log.log_access(std::move(record)));
  }
  log.stop();  // must not lose the queued tail
  EXPECT_EQ(log.written(), 100u);
  EXPECT_EQ(read_lines(config.path).size(), 100u);
}

TEST(EventLogTest, RotatesBySizeKeepingBoundedHistory) {
  TempDir temp("eventlog");
  Registry registry;
  EventLogConfig config;
  config.path = temp.path() / "access.log";
  config.rotate_bytes = 2048;
  config.max_rotated_files = 2;
  config.metrics = &registry;
  EventLog log(config);
  ASSERT_TRUE(log.start().is_ok());
  for (int i = 0; i < 200; ++i) {
    AccessRecord record;
    record.method = "GET";
    record.path = "/rotation/padding/entry-" + std::to_string(i);
    record.status = 200;
    ASSERT_TRUE(log.log_access(std::move(record)));
  }
  log.stop();
  EXPECT_EQ(log.written(), 200u);
  EXPECT_GT(registry.snapshot().counter("obs.eventlog.rotations"), 0u);
  EXPECT_TRUE(std::filesystem::exists(config.path));
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(config.path.string() + ".1")));
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(config.path.string() + ".3")));
  // Nothing was lost across rotations: every line is accounted for in
  // the live file plus the retained history.
  size_t total = read_lines(config.path).size();
  for (size_t n = 1; n <= config.max_rotated_files; ++n) {
    auto rotated = std::filesystem::path(config.path.string() + "." +
                                         std::to_string(n));
    if (std::filesystem::exists(rotated)) {
      total += read_lines(rotated).size();
    }
  }
  EXPECT_LT(total, 200u);  // the oldest history fell off the end
  EXPECT_GT(total, 0u);
}

TEST(EventLogTest, LogSinkRoutesDavpseLogTraffic) {
  TempDir temp("eventlog");
  Registry registry;
  EventLogConfig config;
  config.path = temp.path() / "events.log";
  config.metrics = &registry;
  EventLog log(config);
  ASSERT_TRUE(log.start().is_ok());
  log.attach_log_sink();
  DAVPSE_LOG_WARN << "disk nearly full";
  DAVPSE_LOG_DEBUG << "below level, never emitted";
  log.drain();
  auto lines = read_lines(config.path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(json_string_field(lines[0], "kind"), "log");
  EXPECT_EQ(json_string_field(lines[0], "level"), "WARN");
  EXPECT_EQ(json_string_field(lines[0], "message"), "disk nearly full");
  log.stop();  // detaches the sink
  DAVPSE_LOG_WARN << "after detach";
  EXPECT_EQ(read_lines(config.path).size(), 1u);
}

// The ISSUE's acceptance criterion: a saturating multi-daemon run
// (more concurrent connections than daemons) finishes with dropped=0
// and every exchange in the access log exactly once, carrying the same
// trace id the client saw in X-Trace-Id.
TEST(EventLogAcceptanceTest, SaturatingRunLogsEveryExchangeOnce) {
  constexpr int kThreads = 8;       // > 5 daemons: the pool saturates
  constexpr int kRequests = 25;
  TempDir temp("eventlog");
  Registry registry;
  EventLogConfig config;
  config.path = temp.path() / "access.log";
  config.metrics = &registry;
  EventLog log(config);
  ASSERT_TRUE(log.start().is_ok());

  std::mutex mutex;
  std::map<std::string, std::string> expected;  // path -> trace id
  {
    testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry, &log);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        http::ClientConfig client_config;
        client_config.endpoint = stack.server->endpoint();
        client_config.metrics = &registry;
        http::HttpClient client(std::move(client_config));
        for (int i = 0; i < kRequests; ++i) {
          std::string path =
              "/load/t" + std::to_string(t) + "-" + std::to_string(i);
          auto response = client.put(path, "payload " + path);
          ASSERT_TRUE(response.ok()) << response.status().to_string();
          auto trace = response.value().headers.get("X-Trace-Id");
          ASSERT_TRUE(trace.has_value());
          std::lock_guard<std::mutex> lock(mutex);
          expected.emplace(path, std::string(*trace));
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }  // stack down: every exchange has been emitted
  log.stop();

  EXPECT_EQ(log.dropped(), 0u);
  std::map<std::string, std::vector<std::string>> logged;  // path -> ids
  std::set<int> daemons_seen;
  for (const std::string& line : read_lines(config.path)) {
    std::string path = json_string_field(line, "path");
    if (path.rfind("/load/", 0) != 0) continue;
    logged[path].push_back(json_string_field(line, "trace_id"));
    auto pos = line.find("\"daemon\": ");
    ASSERT_NE(pos, std::string::npos);
    daemons_seen.insert(std::atoi(line.c_str() + pos + 10));
  }
  ASSERT_EQ(logged.size(), expected.size());
  for (const auto& [path, trace_id] : expected) {
    ASSERT_EQ(logged.count(path), 1u) << path << " missing from log";
    ASSERT_EQ(logged[path].size(), 1u) << path << " logged twice";
    EXPECT_EQ(logged[path][0], trace_id) << path;
  }
  // Saturating the pool exercised more than one daemon.
  EXPECT_GT(daemons_seen.size(), 1u);
}

}  // namespace
}  // namespace davpse::obs
