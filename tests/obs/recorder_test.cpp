// Flight recorder: the sample ring is bounded, windowed deltas and
// rates derive from hand-driven samples, the health verdict walks
// ok → degraded → overloaded as shed rate and backlog grow, and the
// /.well-known/history and /health endpoints serve live data (503 on
// an overloaded verdict).
#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "dav/server.h"
#include "http/client.h"
#include "obs/metrics.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse::obs {
namespace {

/// First number following `"key": ` in `json`; -1 when absent.
double json_number(const std::string& json, const std::string& key) {
  auto pos = json.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1;
  pos = json.find(':', pos);
  if (pos == std::string::npos) return -1;
  return std::strtod(json.c_str() + pos + 1, nullptr);
}

TEST(FlightRecorderTest, RingIsBoundedByCapacity) {
  Registry registry;
  RecorderConfig config;
  config.metrics = &registry;
  config.capacity = 4;
  FlightRecorder recorder(config);
  for (int i = 0; i < 10; ++i) recorder.sample_now();
  EXPECT_EQ(recorder.sample_count(), 4u);
  EXPECT_EQ(registry.snapshot().counter("obs.recorder.samples"), 10u);
}

TEST(FlightRecorderTest, WindowedDeltasAndRatesFromHandDrivenSamples) {
  Registry registry;
  RecorderConfig config;
  config.metrics = &registry;
  FlightRecorder recorder(config);

  Counter& requests = registry.counter("http.server.requests.GET");
  recorder.sample_now();
  requests.add(40);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  recorder.sample_now();

  std::string history = recorder.history_json();
  EXPECT_NE(history.find("\"windows\""), std::string::npos);
  EXPECT_NE(history.find("\"1s\""), std::string::npos);
  EXPECT_NE(history.find("\"10s\""), std::string::npos);
  EXPECT_NE(history.find("\"60s\""), std::string::npos);
  // Only two samples: every window clamps to the same span and reports
  // the same delta. The counter moved by exactly 40 between samples.
  auto at = history.find("http.server.requests.GET");
  ASSERT_NE(at, std::string::npos);
  std::string entry = history.substr(at, 120);
  EXPECT_EQ(json_number(entry, "delta"), 40);
  EXPECT_GT(json_number(entry, "per_second"), 0);
  EXPECT_GT(json_number(history, "span_seconds"), 0);
  // Derived request rate sums the http.server.requests.* family.
  EXPECT_GT(json_number(history, "requests_per_second"), 0);
}

TEST(FlightRecorderTest, GaugeEnvelopesTrackMinAndMax) {
  Registry registry;
  RecorderConfig config;
  config.metrics = &registry;
  FlightRecorder recorder(config);

  Gauge& depth = registry.gauge("http.server.dispatch_depth");
  depth.set(5);
  recorder.sample_now();
  depth.set(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.sample_now();

  std::string history = recorder.history_json();
  auto at = history.find("\"http.server.dispatch_depth\"");
  ASSERT_NE(at, std::string::npos);
  std::string entry = history.substr(at, 120);
  EXPECT_EQ(json_number(entry, "last"), 1);
  EXPECT_EQ(json_number(entry, "min"), 1);
  EXPECT_EQ(json_number(entry, "max"), 5);
}

TEST(FlightRecorderTest, HealthWarmsUpOkThenReactsToLoadSignals) {
  Registry registry;
  RecorderConfig config;
  config.metrics = &registry;
  FlightRecorder recorder(config);

  // No samples at all: ok (a readiness probe must not flap at boot).
  EXPECT_EQ(recorder.health().verdict, FlightRecorder::Verdict::kOk);

  Counter& connections = registry.counter("http.server.connections");
  Counter& shed = registry.counter("http.server.shed");
  registry.gauge("http.server.workers").set(4);

  // Quiet window: ok, no reasons.
  recorder.sample_now();
  connections.add(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.sample_now();
  FlightRecorder::Health health = recorder.health();
  EXPECT_EQ(health.verdict, FlightRecorder::Verdict::kOk);
  EXPECT_TRUE(health.reasons.empty());

  // A trickle of sheds below the overload rate: degraded, with the
  // shed count spelled out.
  connections.add(100);
  shed.add(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.sample_now();
  health = recorder.health();
  EXPECT_EQ(health.verdict, FlightRecorder::Verdict::kDegraded);
  ASSERT_FALSE(health.reasons.empty());
  EXPECT_NE(health.reasons[0].find("shed"), std::string::npos);

  // Heavy shedding: overloaded, and health_json carries the verdict.
  shed.add(200);
  connections.add(200);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  recorder.sample_now();
  health = recorder.health();
  EXPECT_EQ(health.verdict, FlightRecorder::Verdict::kOverloaded);
  EXPECT_GE(health.shed_rate, config.overloaded_shed_rate);
  std::string json = recorder.health_json();
  EXPECT_NE(json.find("\"verdict\": \"overloaded\""), std::string::npos);
  EXPECT_NE(json.find("shed rate"), std::string::npos);
}

TEST(FlightRecorderTest, UtilizationAboveThresholdDegrades) {
  Registry registry;
  RecorderConfig config;
  config.metrics = &registry;
  FlightRecorder recorder(config);

  registry.gauge("http.server.workers").set(1);
  Counter& busy = registry.counter("http.server.worker_busy_micros.0");
  recorder.sample_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Claim ten wall-seconds of busy time — utilization clamps to 1.0,
  // comfortably over the 0.85 default.
  busy.add(10'000'000);
  recorder.sample_now();
  FlightRecorder::Health health = recorder.health();
  EXPECT_EQ(health.verdict, FlightRecorder::Verdict::kDegraded);
  EXPECT_GE(health.worker_utilization, config.degraded_utilization);
  ASSERT_FALSE(health.reasons.empty());
  EXPECT_NE(health.reasons[0].find("utilization"), std::string::npos);
}

TEST(FlightRecorderTest, BackgroundSamplerFillsTheRing) {
  Registry registry;
  RecorderConfig config;
  config.metrics = &registry;
  config.interval_seconds = 0.01;
  FlightRecorder recorder(config);
  ASSERT_TRUE(recorder.start().is_ok());
  EXPECT_FALSE(recorder.start().is_ok());  // already running
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (recorder.sample_count() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(recorder.sample_count(), 3u);
  recorder.stop();
  recorder.stop();  // idempotent
}

TEST(FlightRecorderTest, HistoryAndHealthEndpointsServeLiveData) {
  Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry);
  ASSERT_TRUE(stack.client().put("/doc.txt", "body").is_ok());
  stack.recorder->sample_now();
  stack.recorder->sample_now();

  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient scraper(std::move(config));

  auto history = scraper.get("/.well-known/history");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history.value().status, http::kOk);
  EXPECT_EQ(*history.value().headers.get("Content-Type"),
            "application/json");
  EXPECT_NE(history.value().body.find("\"windows\""), std::string::npos);
  EXPECT_NE(history.value().body.find("http.server.requests.PUT"),
            std::string::npos);

  auto health = scraper.get("/.well-known/health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, http::kOk);
  EXPECT_NE(health.value().body.find("\"verdict\": \"ok\""),
            std::string::npos);
  EXPECT_GT(json_number(health.value().body, "uptime_seconds"), 0);

  // Read-only like the other scrape endpoints.
  http::HttpRequest put;
  put.method = "PUT";
  put.target = "/.well-known/health";
  auto refused = scraper.execute(std::move(put));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused.value().status, http::kMethodNotAllowed);
}

TEST(FlightRecorderTest, EndpointsReturn404WithoutARecorder) {
  // A DavServer configured without a recorder must refuse, not crash.
  Registry registry;
  dav::DavConfig config;
  TempDir temp("norec");
  config.root = temp.path();
  config.metrics = &registry;
  dav::DavServer server(config);
  http::HttpRequest request;
  request.method = "GET";
  request.target = "/.well-known/history";
  EXPECT_EQ(server.handle(request).status, http::kNotFound);
  request.target = "/.well-known/health";
  EXPECT_EQ(server.handle(request).status, http::kNotFound);
}

}  // namespace
}  // namespace davpse::obs
