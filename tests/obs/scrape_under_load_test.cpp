// Observability must stay observable under duress: with thousands of
// connections parked and nearly every worker saturated, every
// /.well-known/ endpoint still answers promptly with a well-formed
// (never torn) snapshot. This is the test the sanitizer presets lean
// on — the scrapes race live metric updates, recorder samples, and
// reactor bookkeeping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dav/server.h"
#include "http/client.h"
#include "http/server.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/tail.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse::obs {
namespace {

bool wait_until(const std::function<bool()>& cond, double timeout = 10.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

/// Delegates to a DavServer but blocks on ordinary paths until
/// released — /.well-known/ scrapes pass straight through, so workers
/// can be pinned on "application" work while observability is probed.
class GateableDavHandler final : public http::Handler {
 public:
  explicit GateableDavHandler(dav::DavServer* inner) : inner_(inner) {}

  http::HttpResponse handle(const http::HttpRequest& request) override {
    if (!request.target.starts_with("/.well-known/")) {
      entered.fetch_add(1);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return inner_->handle(request);
  }

  std::atomic<int> entered{0};
  std::atomic<bool> release{false};

 private:
  dav::DavServer* inner_;
};

bool braces_balanced(const std::string& json) {
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0;
}

TEST(ScrapeUnderLoadTest, AllEndpointsAnswerWhileParkedAndSaturated) {
  Registry registry;
  TailSampler tail;
  TempDir temp("scrapeload");

  RecorderConfig recorder_config;
  recorder_config.interval_seconds = 0.05;  // sample aggressively
  recorder_config.metrics = &registry;
  FlightRecorder recorder(recorder_config);

  dav::DavConfig dav_config;
  dav_config.root = temp.path();
  dav_config.metrics = &registry;
  dav_config.tail_sampler = &tail;
  dav_config.recorder = &recorder;
  dav::DavServer dav(dav_config);
  GateableDavHandler handler(&dav);

  http::ServerConfig config;
  config.endpoint = testing::unique_endpoint("scrape-load");
  config.workers = 4;
  config.metrics = &registry;
  config.tail_sampler = &tail;
  http::HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());
  ASSERT_TRUE(recorder.start().is_ok());

  // Pin 3 of 4 workers on gated application requests.
  std::vector<std::unique_ptr<net::Stream>> gated;
  for (int i = 0; i < 3; ++i) {
    auto conn = net::Network::instance().connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        conn.value()->write("GET /busy HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
    gated.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(wait_until([&] { return handler.entered.load() >= 3; }));

  // Park 2000 fresh connections that never speak (no read deadline
  // configured, so they stay parked for the whole test).
  constexpr int kParked = 2000;
  std::vector<std::unique_ptr<net::Stream>> parked;
  parked.reserve(kParked);
  for (int i = 0; i < kParked; ++i) {
    auto conn = net::Network::instance().connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    parked.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.parked") >= kParked;
  })) << "fresh connections were not parked";

  // Scrape every endpoint repeatedly through the one free worker.
  http::ClientConfig client_config;
  client_config.endpoint = server.endpoint();
  client_config.connect_label = "test.scraper";
  http::HttpClient scraper(std::move(client_config));

  const std::vector<std::string> endpoints = {
      "/.well-known/stats",   "/.well-known/metrics",
      "/.well-known/traces",  "/.well-known/history",
      "/.well-known/health"};
  for (int round = 0; round < 5; ++round) {
    for (const std::string& endpoint : endpoints) {
      auto start = std::chrono::steady_clock::now();
      auto response = scraper.get(endpoint);
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      ASSERT_TRUE(response.ok()) << endpoint;
      // 200 for all; health may legitimately say 503-overloaded here
      // (3 of 4 workers pinned) — either way the body must be whole.
      ASSERT_TRUE(response.value().status == http::kOk ||
                  (endpoint == "/.well-known/health" &&
                   response.value().status == http::kServiceUnavailable))
          << endpoint << " -> " << response.value().status;
      EXPECT_LT(elapsed, 5.0)
          << endpoint << " blocked behind saturated workers";
      const std::string& body = response.value().body;
      ASSERT_FALSE(body.empty()) << endpoint;
      if (endpoint == "/.well-known/metrics") {
        // Prometheus text: complete exposition, no mid-line tear.
        EXPECT_NE(body.find("davpse_build_info"), std::string::npos);
        EXPECT_EQ(body.back(), '\n') << "truncated exposition";
      } else {
        EXPECT_TRUE(braces_balanced(body)) << endpoint << " body torn:\n"
                                           << body;
      }
    }
  }

  // The scheduler metrics the scrapes report must reflect this load.
  RegistrySnapshot snap = registry.snapshot();
  EXPECT_GE(snap.gauge("http.server.parked"), kParked);
  EXPECT_EQ(snap.gauge("http.server.workers"), 4);
  EXPECT_GE(snap.histogram("http.server.queue_wait_seconds").count, 1u);

  handler.release.store(true);
  for (auto& conn : gated) conn->close();
  for (auto& conn : parked) conn->close();
  recorder.stop();
}

}  // namespace
}  // namespace davpse::obs
