#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "http/client.h"
#include "testing/env.h"

namespace davpse::obs {
namespace {

bool has_span(const std::vector<SpanRecord>& spans, const std::string& name) {
  return std::any_of(spans.begin(), spans.end(),
                     [&](const SpanRecord& s) { return s.name == name; });
}

TEST(TraceLogTest, RingDropsOldestBeyondCapacity) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(SpanRecord{"t-1", "span." + std::to_string(i), 0, 0, 0});
  }
  auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().name, "span.2");
  EXPECT_EQ(spans.back().name, "span.4");
}

TEST(TraceLogTest, ForTraceFiltersById) {
  TraceLog log;
  log.record(SpanRecord{"t-a", "one", 0, 0, 0});
  log.record(SpanRecord{"t-b", "other", 0, 0, 0});
  log.record(SpanRecord{"t-a", "two", 0, 0, 0});
  auto spans = log.for_trace("t-a");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "one");
  EXPECT_EQ(spans[1].name, "two");
}

TEST(TraceIdTest, GeneratedIdsAreUnique) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(generate_trace_id());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceScopeTest, InstallsAndRestoresContext) {
  EXPECT_EQ(TraceContext::current(), nullptr);
  {
    TraceScope outer("t-outer");
    ASSERT_NE(TraceContext::current(), nullptr);
    EXPECT_EQ(TraceContext::current()->trace_id(), "t-outer");
    {
      TraceScope inner("t-inner");
      EXPECT_EQ(TraceContext::current()->trace_id(), "t-inner");
    }
    EXPECT_EQ(TraceContext::current()->trace_id(), "t-outer");
  }
  EXPECT_EQ(TraceContext::current(), nullptr);
}

TEST(SpanTest, RecordsIntoScopedLogWithNestingDepth) {
  TraceLog log;
  {
    TraceScope scope("t-nest", &log);
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  auto spans = log.for_trace("t-nest");
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first; depth reflects how many spans were open above.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  for (const auto& span : spans) EXPECT_GE(span.duration_seconds, 0.0);
}

TEST(SpanTest, InertWithoutInstalledContext) {
  TraceLog::global().clear();
  {
    Span span("orphan");
  }
  EXPECT_TRUE(TraceLog::global().snapshot().empty());
}

// The ISSUE's propagation requirement: the client-side and server-side
// spans of one HTTP exchange must share a trace id, carried by the
// X-Trace-Id header in both directions.
TEST(TracePropagationTest, ClientAndServerSpansShareOneTraceId) {
  testing::DavStack stack;
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(config));

  TraceLog::global().clear();
  auto response = client.put("/traced.txt", "payload");
  ASSERT_TRUE(response.ok()) << response.status().to_string();

  // The server echoes the trace id it served under.
  auto echoed = response.value().headers.get("X-Trace-Id");
  ASSERT_TRUE(echoed.has_value());
  const std::string trace_id(*echoed);
  EXPECT_FALSE(trace_id.empty());

  // Client span, HTTP-server span, and DAV-handler span all landed in
  // the global log under that one id (the server records its spans
  // before the response leaves, so they are visible here).
  auto spans = TraceLog::global().for_trace(trace_id);
  EXPECT_TRUE(has_span(spans, "http.client.PUT"));
  EXPECT_TRUE(has_span(spans, "http.server.PUT"));
  EXPECT_TRUE(has_span(spans, "dav.PUT"));
}

TEST(TracePropagationTest, CallerInstalledScopeWinsOverGenerated) {
  testing::DavStack stack;
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(config));

  TraceLog::global().clear();
  {
    TraceScope scope("t-caller-chosen");
    auto response = client.get("/missing.txt");
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    auto echoed = response.value().headers.get("X-Trace-Id");
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(*echoed, "t-caller-chosen");
  }
  auto spans = TraceLog::global().for_trace("t-caller-chosen");
  EXPECT_TRUE(has_span(spans, "http.client.GET"));
  EXPECT_TRUE(has_span(spans, "http.server.GET"));
}

TEST(TracePropagationTest, DistinctRequestsGetDistinctTraceIds) {
  testing::DavStack stack;
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(config));

  auto first = client.get("/a");
  auto second = client.get("/b");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto id_a = first.value().headers.get("X-Trace-Id");
  auto id_b = second.value().headers.get("X-Trace-Id");
  ASSERT_TRUE(id_a.has_value());
  ASSERT_TRUE(id_b.has_value());
  EXPECT_NE(*id_a, *id_b);
}

}  // namespace
}  // namespace davpse::obs
