#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "testing/env.h"

namespace davpse::obs {
namespace {

bool has_span(const std::vector<SpanRecord>& spans, const std::string& name) {
  return std::any_of(spans.begin(), spans.end(),
                     [&](const SpanRecord& s) { return s.name == name; });
}

TEST(TraceLogTest, RingDropsOldestBeyondCapacity) {
  TraceLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.record(SpanRecord{"t-1", "span." + std::to_string(i), 0, 0, 0});
  }
  auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().name, "span.2");
  EXPECT_EQ(spans.back().name, "span.4");
}

TEST(TraceLogTest, ForTraceFiltersById) {
  TraceLog log;
  log.record(SpanRecord{"t-a", "one", 0, 0, 0});
  log.record(SpanRecord{"t-b", "other", 0, 0, 0});
  log.record(SpanRecord{"t-a", "two", 0, 0, 0});
  auto spans = log.for_trace("t-a");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "one");
  EXPECT_EQ(spans[1].name, "two");
}

TEST(TraceIdTest, GeneratedIdsAreUnique) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(generate_trace_id());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceScopeTest, InstallsAndRestoresContext) {
  EXPECT_EQ(TraceContext::current(), nullptr);
  {
    TraceScope outer("t-outer");
    ASSERT_NE(TraceContext::current(), nullptr);
    EXPECT_EQ(TraceContext::current()->trace_id(), "t-outer");
    {
      TraceScope inner("t-inner");
      EXPECT_EQ(TraceContext::current()->trace_id(), "t-inner");
    }
    EXPECT_EQ(TraceContext::current()->trace_id(), "t-outer");
  }
  EXPECT_EQ(TraceContext::current(), nullptr);
}

TEST(SpanTest, RecordsIntoScopedLogWithNestingDepth) {
  TraceLog log;
  {
    TraceScope scope("t-nest", &log);
    Span outer("outer");
    {
      Span inner("inner");
    }
  }
  auto spans = log.for_trace("t-nest");
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first; depth reflects how many spans were open above.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  for (const auto& span : spans) EXPECT_GE(span.duration_seconds, 0.0);
}

TEST(SpanTest, AssignsSpanIdsAndParentLinkage) {
  TraceLog log;
  {
    TraceScope scope("t-tree", &log);
    Span a("a");
    {
      Span b("b");
      { Span c("c"); }
    }
    { Span d("d"); }  // sibling of b, child of a
  }
  auto spans = log.for_trace("t-tree");
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: c, b, d, a. Ids assigned in open order: a=1,
  // b=2, c=3, d=4; each span's parent is the innermost open span at
  // its construction.
  EXPECT_EQ(spans[0].name, "c");
  EXPECT_EQ(spans[0].span_id, 3u);
  EXPECT_EQ(spans[0].parent_id, 2u);
  EXPECT_EQ(spans[1].name, "b");
  EXPECT_EQ(spans[1].span_id, 2u);
  EXPECT_EQ(spans[1].parent_id, 1u);
  EXPECT_EQ(spans[2].name, "d");
  EXPECT_EQ(spans[2].span_id, 4u);
  EXPECT_EQ(spans[2].parent_id, 1u);
  EXPECT_EQ(spans[3].name, "a");
  EXPECT_EQ(spans[3].span_id, 1u);
  EXPECT_EQ(spans[3].parent_id, 0u);
}

// Ring eviction across interleaved traces: capacity counts spans, not
// traces, and the survivors are the most recent regardless of owner.
TEST(TraceLogTest, RingEvictionInterleavesAcrossTraces) {
  TraceLog log(4);
  for (int i = 0; i < 4; ++i) {
    log.record(SpanRecord{"t-old", "old." + std::to_string(i), 0, 0, 0});
  }
  log.record(SpanRecord{"t-new", "new.0", 0, 0, 0});
  log.record(SpanRecord{"t-new", "new.1", 0, 0, 0});
  EXPECT_EQ(log.for_trace("t-old").size(), 2u);  // oldest two evicted
  EXPECT_EQ(log.for_trace("t-new").size(), 2u);
  EXPECT_EQ(log.snapshot().size(), 4u);
}

// for_trace must stay ordered (oldest first) and crash-free while
// other threads are actively recording into the same ring.
TEST(TraceLogTest, ForTraceOrderedUnderConcurrentWriters) {
  constexpr int kWriters = 4;
  constexpr int kSpansEach = 200;
  TraceLog log(kWriters * kSpansEach);  // nothing needs to be evicted
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      while (!go.load()) {}
      TraceScope scope("t-writer-" + std::to_string(w), &log);
      for (int i = 0; i < kSpansEach; ++i) {
        Span span("seq." + std::to_string(i));
      }
    });
  }
  go.store(true);
  // Read concurrently with the writers: results are a consistent
  // prefix — names strictly in sequence order for each trace.
  for (int probe = 0; probe < 50; ++probe) {
    for (int w = 0; w < kWriters; ++w) {
      auto spans = log.for_trace("t-writer-" + std::to_string(w));
      for (size_t i = 0; i < spans.size(); ++i) {
        ASSERT_EQ(spans[i].name, "seq." + std::to_string(i));
      }
    }
  }
  for (auto& writer : writers) writer.join();
  for (int w = 0; w < kWriters; ++w) {
    auto spans = log.for_trace("t-writer-" + std::to_string(w));
    ASSERT_EQ(spans.size(), static_cast<size_t>(kSpansEach));
    for (size_t i = 0; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i].name, "seq." + std::to_string(i));
      // Sequential top-level spans: fresh id per span, no parent.
      EXPECT_EQ(spans[i].span_id, i + 1);
      EXPECT_EQ(spans[i].parent_id, 0u);
    }
  }
}

TEST(SpanTest, InertWithoutInstalledContext) {
  TraceLog::global().clear();
  {
    Span span("orphan");
  }
  EXPECT_TRUE(TraceLog::global().snapshot().empty());
}

// The ISSUE's propagation requirement: the client-side and server-side
// spans of one HTTP exchange must share a trace id, carried by the
// X-Trace-Id header in both directions.
TEST(TracePropagationTest, ClientAndServerSpansShareOneTraceId) {
  testing::DavStack stack;
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(config));

  TraceLog::global().clear();
  auto response = client.put("/traced.txt", "payload");
  ASSERT_TRUE(response.ok()) << response.status().to_string();

  // The server echoes the trace id it served under.
  auto echoed = response.value().headers.get("X-Trace-Id");
  ASSERT_TRUE(echoed.has_value());
  const std::string trace_id(*echoed);
  EXPECT_FALSE(trace_id.empty());

  // Client span, HTTP-server span, and DAV-handler span all landed in
  // the global log under that one id (the server records its spans
  // before the response leaves, so they are visible here).
  auto spans = TraceLog::global().for_trace(trace_id);
  EXPECT_TRUE(has_span(spans, "http.client.PUT"));
  EXPECT_TRUE(has_span(spans, "http.server.PUT"));
  EXPECT_TRUE(has_span(spans, "dav.PUT"));
}

TEST(TracePropagationTest, CallerInstalledScopeWinsOverGenerated) {
  testing::DavStack stack;
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(config));

  TraceLog::global().clear();
  {
    TraceScope scope("t-caller-chosen");
    auto response = client.get("/missing.txt");
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    auto echoed = response.value().headers.get("X-Trace-Id");
    ASSERT_TRUE(echoed.has_value());
    EXPECT_EQ(*echoed, "t-caller-chosen");
  }
  auto spans = TraceLog::global().for_trace("t-caller-chosen");
  EXPECT_TRUE(has_span(spans, "http.client.GET"));
  EXPECT_TRUE(has_span(spans, "http.server.GET"));
}

TEST(TracePropagationTest, DistinctRequestsGetDistinctTraceIds) {
  testing::DavStack stack;
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(config));

  auto first = client.get("/a");
  auto second = client.get("/b");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto id_a = first.value().headers.get("X-Trace-Id");
  auto id_b = second.value().headers.get("X-Trace-Id");
  ASSERT_TRUE(id_a.has_value());
  ASSERT_TRUE(id_b.has_value());
  EXPECT_NE(*id_a, *id_b);
}

}  // namespace
}  // namespace davpse::obs
