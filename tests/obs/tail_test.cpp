// Tail sampler: retention policy (N slowest + over-threshold pool,
// both bounded), nested-timeline JSON, and the end-to-end acceptance
// path — a delayed request retrieved from GET /.well-known/traces as a
// nested span tree.
#include "obs/tail.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "http/client.h"
#include "testing/env.h"

namespace davpse::obs {
namespace {

TraceTimeline timeline(const std::string& id, double duration) {
  TraceTimeline t;
  t.trace_id = id;
  t.duration_seconds = duration;
  return t;
}

TEST(TailSamplerTest, KeepsTheSlowestEvictingTheFastest) {
  TailSampler::Config config;
  config.slowest_capacity = 2;
  config.threshold_seconds = 100.0;  // threshold pool out of the way
  TailSampler sampler(config);
  sampler.offer(timeline("t-mid", 0.2));
  sampler.offer(timeline("t-slow", 0.9));
  sampler.offer(timeline("t-fast", 0.05));   // never admitted
  sampler.offer(timeline("t-slower", 1.5));  // evicts t-mid

  auto retained = sampler.snapshot();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].trace_id, "t-slower");  // slowest first
  EXPECT_EQ(retained[1].trace_id, "t-slow");
  EXPECT_FALSE(sampler.find("t-fast").has_value());
  EXPECT_FALSE(sampler.find("t-mid").has_value());
  EXPECT_TRUE(sampler.find("t-slower").has_value());
}

TEST(TailSamplerTest, OverThresholdPoolIsFifoBounded) {
  TailSampler::Config config;
  config.slowest_capacity = 1;  // heap keeps only the single slowest
  config.threshold_seconds = 0.5;
  config.threshold_capacity = 2;
  TailSampler sampler(config);
  sampler.offer(timeline("t-a", 0.6));
  sampler.offer(timeline("t-b", 0.7));
  sampler.offer(timeline("t-c", 0.8));  // evicts t-a from the pool

  // t-c survives in both pools (deduplicated); t-b only in the
  // threshold pool; t-a fell off its FIFO end and out of the heap.
  auto retained = sampler.snapshot();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].trace_id, "t-c");
  EXPECT_EQ(retained[1].trace_id, "t-b");
  EXPECT_FALSE(sampler.find("t-a").has_value());
}

TEST(TailSamplerTest, UnderThresholdStillCompetesInSlowestHeap) {
  TailSampler sampler;  // defaults: threshold 0.5 s, 32 slowest
  sampler.offer(timeline("t-quick", 0.001));
  EXPECT_TRUE(sampler.find("t-quick").has_value());  // heap not full yet
}

TEST(TailSamplerTest, ClearForgetsEverything) {
  TailSampler sampler;
  sampler.offer(timeline("t-x", 1.0));
  sampler.clear();
  EXPECT_TRUE(sampler.snapshot().empty());
  EXPECT_EQ(sampler.to_json(), "{\"traces\": []}\n");
}

TEST(TailSamplerTest, JsonNestsSpansByParentLinkage) {
  TraceTimeline t = timeline("t-tree", 0.3);
  t.spans.push_back({"t-tree", "child.early", 0.01, 0.05, 1, 2, 1});
  t.spans.push_back({"t-tree", "child.late", 0.07, 0.02, 1, 3, 1});
  t.spans.push_back({"t-tree", "root", 0.0, 0.3, 0, 1, 0});
  TailSampler sampler;
  sampler.offer(std::move(t));

  std::string json = sampler.to_json();
  // The root span holds both children, ordered by start time.
  auto root = json.find("\"name\": \"root\"");
  ASSERT_NE(root, std::string::npos);
  auto early = json.find("\"name\": \"child.early\"");
  auto late = json.find("\"name\": \"child.late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(root, early);  // children nest inside the root object
  EXPECT_LT(early, late);  // ordered by start_offset
  EXPECT_NE(json.find("\"span_count\": 3"), std::string::npos);
}

// A TraceScope given a sampler collects the whole span tree and offers
// it on destruction, linked parent→child.
TEST(TailScopeTest, ScopeOffersCollectedTreeToSampler) {
  TraceLog log;
  TailSampler sampler;
  {
    TraceScope scope("t-scoped", &log, &sampler);
    Span outer("outer");
    { Span inner("inner"); }
  }
  auto retained = sampler.find("t-scoped");
  ASSERT_TRUE(retained.has_value());
  ASSERT_EQ(retained->spans.size(), 2u);
  EXPECT_GE(retained->duration_seconds, 0.0);
  // Completion order: inner first. Linkage: inner's parent is outer.
  EXPECT_EQ(retained->spans[0].name, "inner");
  EXPECT_EQ(retained->spans[1].name, "outer");
  EXPECT_EQ(retained->spans[1].parent_id, 0u);
  EXPECT_EQ(retained->spans[0].parent_id, retained->spans[1].span_id);
}

// The ISSUE's acceptance criterion: a request delayed above the tail
// threshold is afterwards retrievable from /.well-known/traces as a
// nested timeline.
TEST(TailEndpointTest, DelayedRequestServedAsNestedTimeline) {
  Registry registry;
  TailSampler::Config config;
  config.threshold_seconds = 0.005;  // 5 ms: the delayed request trips it
  TailSampler sampler(config);
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry, nullptr,
                          &sampler);
  // A dynamic property whose provider stalls makes the PROPFIND slow
  // inside the DAV handler — the delay lands in the server's spans.
  stack.dav->dynamic_properties().register_provider(
      xml::QName("http://purl.pnl.gov/ecce", "slow-to-compute"),
      [](const dav::DynamicContext&) -> std::optional<std::string> {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return std::string("done");
      });

  http::ClientConfig client_config;
  client_config.endpoint = stack.server->endpoint();
  http::HttpClient client(std::move(client_config));
  auto put = client.put("/slow.txt", "body");
  ASSERT_TRUE(put.ok());

  davclient::DavClient dav = stack.client();
  auto found = dav.propfind(
      "/slow.txt", davclient::Depth::kZero,
      {xml::QName("http://purl.pnl.gov/ecce", "slow-to-compute")});
  ASSERT_TRUE(found.ok());

  // The slow PROPFIND was retained with its full span tree. The offer
  // happens when the server-side TraceScope unwinds — after the
  // response has already reached the client — so poll briefly.
  std::vector<TraceTimeline> retained;
  const TraceTimeline* slow = nullptr;
  for (int attempt = 0; attempt < 400 && slow == nullptr; ++attempt) {
    retained = sampler.snapshot();
    for (const auto& t : retained) {
      for (const auto& span : t.spans) {
        if (span.name == "dav.PROPFIND") slow = &t;
      }
    }
    if (slow == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_NE(slow, nullptr) << "slow PROPFIND not retained";
  EXPECT_GE(slow->duration_seconds, config.threshold_seconds);

  // ...and /.well-known/traces serves it as nested JSON: the DAV
  // handler span inside the HTTP server span, under the trace id.
  auto traces = client.get("/.well-known/traces");
  ASSERT_TRUE(traces.ok());
  EXPECT_EQ(traces.value().status, http::kOk);
  auto content_type = traces.value().headers.get("Content-Type");
  ASSERT_TRUE(content_type.has_value());
  EXPECT_EQ(*content_type, "application/json");
  const std::string& json = traces.value().body;
  auto trace_pos = json.find("\"trace_id\": \"" + slow->trace_id + "\"");
  ASSERT_NE(trace_pos, std::string::npos);
  auto server_span = json.find("\"name\": \"http.server.PROPFIND\"", trace_pos);
  auto dav_span = json.find("\"name\": \"dav.PROPFIND\"", trace_pos);
  ASSERT_NE(server_span, std::string::npos);
  ASSERT_NE(dav_span, std::string::npos);
  EXPECT_LT(server_span, dav_span);  // handler span nested inside
  EXPECT_NE(json.find("\"children\": ["), std::string::npos);
}

}  // namespace
}  // namespace davpse::obs
