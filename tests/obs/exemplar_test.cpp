// Histogram exemplars: opt-in capture of the slowest trace id per
// bucket, surfaced in the JSON snapshot and as OpenMetrics exemplars
// in the Prometheus exposition — and, end to end, an exemplar scraped
// from /.well-known/metrics resolves to a retained span tree at
// /.well-known/traces.
#include <gtest/gtest.h>

#include <regex>
#include <string>

#include "http/client.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "testing/env.h"

namespace davpse::obs {
namespace {

TEST(ExemplarTest, DisabledHistogramCapturesNothing) {
  Histogram histogram;
  TraceLog log;
  TraceScope scope("t-disabled", &log);
  histogram.observe(0.003);
  Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_FALSE(snap.slowest_exemplar().has_value());
}

TEST(ExemplarTest, NoTraceContextMeansNoExemplar) {
  Histogram histogram;
  histogram.enable_exemplars();
  histogram.observe(0.003);  // no TraceScope on this thread
  EXPECT_FALSE(histogram.snapshot().slowest_exemplar().has_value());
}

TEST(ExemplarTest, CapturesTraceIdOfObservation) {
  Histogram histogram;
  histogram.enable_exemplars();
  EXPECT_TRUE(histogram.exemplars_enabled());
  histogram.enable_exemplars();  // idempotent
  TraceLog log;
  {
    TraceScope scope("t-captured", &log);
    histogram.observe(0.003);
  }
  auto exemplar = histogram.snapshot().slowest_exemplar();
  ASSERT_TRUE(exemplar.has_value());
  EXPECT_EQ(exemplar->trace_id, "t-captured");
  EXPECT_DOUBLE_EQ(exemplar->value_seconds, 0.003);
  EXPECT_GT(exemplar->unix_seconds, 0);
}

TEST(ExemplarTest, SlowerObservationInSameBucketWins) {
  Histogram histogram;
  histogram.enable_exemplars();
  TraceLog log;
  // 3 ms and 4 ms land in the same (2, 5] ms bucket; the slower one
  // must own the exemplar no matter the order it arrives in.
  {
    TraceScope scope("t-slower", &log);
    histogram.observe(0.004);
  }
  {
    TraceScope scope("t-faster", &log);
    histogram.observe(0.003);
  }
  auto exemplar = histogram.snapshot().slowest_exemplar();
  ASSERT_TRUE(exemplar.has_value());
  EXPECT_EQ(exemplar->trace_id, "t-slower");

  {
    TraceScope scope("t-slowest", &log);
    histogram.observe(0.0045);
  }
  exemplar = histogram.snapshot().slowest_exemplar();
  ASSERT_TRUE(exemplar.has_value());
  EXPECT_EQ(exemplar->trace_id, "t-slowest");
}

TEST(ExemplarTest, EachBucketKeepsItsOwnExemplar) {
  Histogram histogram;
  histogram.enable_exemplars();
  TraceLog log;
  {
    TraceScope scope("t-fast-bucket", &log);
    histogram.observe(0.003);
  }
  {
    TraceScope scope("t-slow-bucket", &log);
    histogram.observe(0.3);
  }
  Histogram::Snapshot snap = histogram.snapshot();
  int captured = 0;
  for (const auto& exemplar : snap.exemplars) {
    if (exemplar.has_value()) ++captured;
  }
  EXPECT_EQ(captured, 2);
  // slowest_exemplar() prefers the highest non-empty bucket.
  ASSERT_TRUE(snap.slowest_exemplar().has_value());
  EXPECT_EQ(snap.slowest_exemplar()->trace_id, "t-slow-bucket");
}

TEST(ExemplarTest, JsonAndPrometheusCarryExemplars) {
  Registry registry;
  Histogram& histogram = registry.histogram("test.latency_seconds");
  histogram.enable_exemplars();
  TraceLog log;
  {
    TraceScope scope("t-exposed", &log);
    histogram.observe(0.003);
  }
  RegistrySnapshot snap = registry.snapshot();

  std::string json = snap.to_json();
  EXPECT_NE(json.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(json.find("t-exposed"), std::string::npos);

  // OpenMetrics exemplar syntax on the owning cumulative bucket line:
  //   davpse_..._bucket{le="0.005"} 1 # {trace_id="t-exposed"} 0.003 ...
  std::string prom = snap.to_prometheus();
  auto line_at = prom.find("le=\"0.005\"");
  ASSERT_NE(line_at, std::string::npos);
  std::string line = prom.substr(line_at, prom.find('\n', line_at) - line_at);
  EXPECT_NE(line.find("# {trace_id=\"t-exposed\"}"), std::string::npos);
  // A histogram without exemplars stays plain-Prometheus compatible.
  registry.histogram("plain.latency_seconds").observe(0.003);
  prom = registry.snapshot().to_prometheus();
  auto plain_at = prom.find("davpse_plain_latency_seconds_bucket");
  ASSERT_NE(plain_at, std::string::npos);
  std::string plain_line =
      prom.substr(plain_at, prom.find('\n', plain_at) - plain_at);
  EXPECT_EQ(plain_line.find('#'), std::string::npos);
}

TEST(ExemplarTest, ScrapedExemplarResolvesToRetainedTrace) {
  // End to end: run real requests through the stack, scrape
  // /.well-known/metrics, pull a trace id out of an exemplar, and find
  // that trace retained at /.well-known/traces.
  Registry registry;
  TailSampler tail;
  testing::DavStack stack(dbm::Flavor::kGdbm, 5, &registry, nullptr, &tail);
  auto client = stack.client();
  ASSERT_TRUE(client.put("/a.txt", "alpha").is_ok());
  ASSERT_TRUE(client.get("/a.txt").ok());

  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  config.connect_label = "test.scraper";
  http::HttpClient scraper(std::move(config));

  auto metrics = scraper.get("/.well-known/metrics");
  ASSERT_TRUE(metrics.ok());
  const std::string& exposition = metrics.value().body;
  std::smatch match;
  ASSERT_TRUE(std::regex_search(exposition, match,
                                std::regex{"# \\{trace_id=\"([^\"]+)\"\\}"}))
      << exposition;
  std::string trace_id = match[1];

  auto traces = scraper.get("/.well-known/traces");
  ASSERT_TRUE(traces.ok());
  EXPECT_NE(traces.value().body.find(trace_id), std::string::npos)
      << "exemplar trace " << trace_id << " not retained";
}

}  // namespace
}  // namespace davpse::obs
