#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace davpse::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndDelta) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_seconds, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST(HistogramTest, PercentilesReportBucketUpperBounds) {
  Histogram histogram;
  // 90 observations in the (5e-4, 1e-3] bucket, 10 in (2e-2, 5e-2].
  for (int i = 0; i < 90; ++i) histogram.observe(0.0008);
  for (int i = 0; i < 10; ++i) histogram.observe(0.03);
  auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.p50, 1e-3);
  EXPECT_DOUBLE_EQ(snap.p95, 5e-2);
  EXPECT_DOUBLE_EQ(snap.p99, 5e-2);
  EXPECT_NEAR(snap.sum_seconds, 90 * 0.0008 + 10 * 0.03, 1e-6);
}

TEST(HistogramTest, OverflowClampsToLargestBound) {
  Histogram histogram;
  histogram.observe(120.0);  // beyond the 50 s ladder
  auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.p50, Histogram::kBucketBounds.back());
}

TEST(RegistryTest, ReferencesAreStable) {
  Registry registry;
  Counter& first = registry.counter("stable");
  first.add(5);
  // Registering other metrics must not move the earlier one.
  for (int i = 0; i < 100; ++i) {
    registry.counter("other." + std::to_string(i));
  }
  Counter& again = registry.counter("stable");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 5u);
}

TEST(RegistryTest, SnapshotAccessorsDefaultForUnknownNames) {
  Registry registry;
  registry.counter("present").add(3);
  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("present"), 3u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.gauge("absent"), 0);
  EXPECT_EQ(snap.histogram("absent").count, 0u);
}

TEST(RegistryTest, ToJsonContainsEverySection) {
  Registry registry;
  registry.counter("reqs").add(7);
  registry.gauge("live").set(2);
  registry.histogram("lat").observe(0.001);
  std::string json = registry.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"reqs\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"live\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1"), std::string::npos);
}

// The ISSUE's stress requirement: N threads x M ops against one
// registry must land on exact final counts — no lost updates through
// the shared-lock lookup path or the atomic update path.
TEST(RegistryStressTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  Registry registry;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      // Cache the shared counter once (the documented hot-path idiom)
      // but hit the per-thread one through a fresh lookup every time,
      // so both access patterns are exercised under contention.
      Counter& shared = registry.counter("stress.shared");
      const std::string mine = "stress.thread." + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.add(1);
        registry.counter(mine).add(1);
        registry.histogram("stress.latency").observe(1e-4);
        registry.gauge("stress.level").add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("stress.shared"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counter("stress.thread." + std::to_string(t)),
              static_cast<uint64_t>(kOpsPerThread));
  }
  EXPECT_EQ(snap.histogram("stress.latency").count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.gauge("stress.level"),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
}

// Racing first-time registrations of the same name must converge on a
// single metric object.
TEST(RegistryStressTest, ConcurrentRegistrationYieldsOneMetric) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back(
        [&registry, &seen, t] { seen[t] = &registry.counter("race.same"); });
  }
  for (auto& worker : workers) worker.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

}  // namespace
}  // namespace davpse::obs
