#include "oodb/schema.h"

#include <gtest/gtest.h>

namespace davpse::oodb {
namespace {

Schema two_class_schema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .add_class("Molecule", {{"name", FieldType::kString},
                                          {"charge", FieldType::kInt64}})
                  .is_ok());
  EXPECT_TRUE(schema
                  .add_class("Atom", {{"symbol", FieldType::kString},
                                      {"x", FieldType::kDouble}})
                  .is_ok());
  EXPECT_TRUE(schema.compile().is_ok());
  return schema;
}

TEST(Schema, CompileAssignsIdsInOrder) {
  Schema schema = two_class_schema();
  EXPECT_TRUE(schema.compiled());
  ASSERT_NE(schema.find("Molecule"), nullptr);
  ASSERT_NE(schema.find("Atom"), nullptr);
  EXPECT_EQ(schema.find("Molecule")->class_id, 1u);
  EXPECT_EQ(schema.find("Atom")->class_id, 2u);
  EXPECT_EQ(schema.find(1u)->name, "Molecule");
  EXPECT_EQ(schema.find(99u), nullptr);
  EXPECT_EQ(schema.find("Ghost"), nullptr);
}

TEST(Schema, FieldIndexLookup) {
  Schema schema = two_class_schema();
  const ClassDef* molecule = schema.find("Molecule");
  EXPECT_EQ(molecule->field_index("name"), 0);
  EXPECT_EQ(molecule->field_index("charge"), 1);
  EXPECT_EQ(molecule->field_index("ghost"), -1);
}

TEST(Schema, DuplicateClassRejected) {
  Schema schema;
  ASSERT_TRUE(schema.add_class("A", {}).is_ok());
  EXPECT_EQ(schema.add_class("A", {}).code(), ErrorCode::kAlreadyExists);
}

TEST(Schema, NoAdditionsAfterCompile) {
  Schema schema = two_class_schema();
  Status status = schema.add_class("Late", {});
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(schema.compile().code(), ErrorCode::kInvalidArgument);
}

TEST(Schema, FingerprintStableAndSensitive) {
  Schema a = two_class_schema();
  Schema b = two_class_schema();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Any change — renamed field, different type, extra class — alters
  // the fingerprint (the schema-evolution recompilation signal).
  Schema renamed;
  ASSERT_TRUE(renamed
                  .add_class("Molecule", {{"title", FieldType::kString},
                                          {"charge", FieldType::kInt64}})
                  .is_ok());
  ASSERT_TRUE(renamed
                  .add_class("Atom", {{"symbol", FieldType::kString},
                                      {"x", FieldType::kDouble}})
                  .is_ok());
  ASSERT_TRUE(renamed.compile().is_ok());
  EXPECT_NE(renamed.fingerprint(), a.fingerprint());

  Schema retyped;
  ASSERT_TRUE(retyped
                  .add_class("Molecule", {{"name", FieldType::kString},
                                          {"charge", FieldType::kDouble}})
                  .is_ok());
  ASSERT_TRUE(retyped
                  .add_class("Atom", {{"symbol", FieldType::kString},
                                      {"x", FieldType::kDouble}})
                  .is_ok());
  ASSERT_TRUE(retyped.compile().is_ok());
  EXPECT_NE(retyped.fingerprint(), a.fingerprint());
}

TEST(Schema, SerializeDeserializeRoundTrip) {
  Schema schema = two_class_schema();
  auto restored = Schema::deserialize(schema.serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().to_string();
  EXPECT_EQ(restored.value().fingerprint(), schema.fingerprint());
  EXPECT_EQ(restored.value().class_count(), 2u);
  EXPECT_EQ(restored.value().find("Atom")->fields[1].name, "x");
  EXPECT_EQ(restored.value().find("Atom")->fields[1].type,
            FieldType::kDouble);
}

TEST(Schema, DeserializeRejectsTruncation) {
  Schema schema = two_class_schema();
  std::string blob = schema.serialize();
  for (size_t cut : {size_t{0}, size_t{3}, blob.size() / 2, blob.size() - 1}) {
    auto restored = Schema::deserialize(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(restored.ok()) << "cut at " << cut;
  }
}

}  // namespace
}  // namespace davpse::oodb
