// OODB wire-protocol robustness: frame framing, the HELLO gate, error
// replies for malformed payloads, and unknown opcodes — driven through
// raw streams rather than the client library.
#include "oodb/protocol.h"

#include <gtest/gtest.h>

#include "net/pipe.h"
#include "oodb/server.h"
#include "testing/env.h"

namespace davpse::oodb {
namespace {

Schema tiny_schema() {
  Schema schema;
  EXPECT_TRUE(schema.add_class("T", {{"v", FieldType::kInt64}}).is_ok());
  EXPECT_TRUE(schema.compile().is_ok());
  return schema;
}

TEST(Frames, RoundTripOverPipe) {
  auto pair = net::make_pipe();
  std::string payload;
  frame_put_u64(&payload, 123456789ULL);
  frame_put_bytes(&payload, "binary\0data");
  ASSERT_TRUE(write_frame(pair.a.get(), Op::kRead, payload).is_ok());
  auto frame = read_frame(pair.b.get());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().op, Op::kRead);
  EXPECT_EQ(frame.value().payload, payload);

  FrameCursor cursor{frame.value().payload};
  uint64_t id;
  std::string bytes;
  ASSERT_TRUE(cursor.u64(&id));
  EXPECT_EQ(id, 123456789ULL);
  ASSERT_TRUE(cursor.bytes(&bytes));
  EXPECT_EQ(bytes, "binary");  // \0-truncated literal: 6 bytes
}

TEST(Frames, TruncatedFrameIsUnavailable) {
  auto pair = net::make_pipe();
  ASSERT_TRUE(pair.a->write(std::string("\x10\x00\x00\x00", 4)).is_ok());
  pair.a->shutdown_write();  // declared 16-byte payload never arrives
  auto frame = read_frame(pair.b.get());
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), ErrorCode::kUnavailable);
}

TEST(FrameCursor, BoundsChecking) {
  std::string payload;
  frame_put_u32(&payload, 7);
  FrameCursor cursor{payload};
  uint64_t too_big;
  EXPECT_FALSE(cursor.u64(&too_big));  // only 4 bytes available
  uint32_t ok_value;
  ASSERT_TRUE(cursor.u32(&ok_value));
  EXPECT_EQ(ok_value, 7u);
  std::string bytes;
  EXPECT_FALSE(cursor.bytes(&bytes));  // exhausted
}

struct RawSession {
  explicit RawSession(const std::string& endpoint) {
    auto connected = net::Network::instance().connect(endpoint);
    EXPECT_TRUE(connected.ok());
    stream = std::move(connected).value();
  }
  Frame call(Op op, std::string_view payload) {
    EXPECT_TRUE(write_frame(stream.get(), op, payload).is_ok());
    auto frame = read_frame(stream.get());
    EXPECT_TRUE(frame.ok());
    return std::move(frame).value();
  }
  std::unique_ptr<net::Stream> stream;
};

TEST(OodbProtocol, HelloGateBlocksEverythingElse) {
  testing::OodbStack stack(tiny_schema());
  RawSession session(stack.endpoint());
  Frame denied = session.call(Op::kStats, "");
  EXPECT_EQ(denied.op, Op::kError);
  EXPECT_NE(denied.payload.find("HELLO"), std::string::npos);

  std::string hello;
  frame_put_u64(&hello, tiny_schema().fingerprint());
  Frame ok = session.call(Op::kHello, hello);
  EXPECT_EQ(ok.op, Op::kOk);
  Frame stats = session.call(Op::kStats, "");
  EXPECT_EQ(stats.op, Op::kOk);
}

TEST(OodbProtocol, MalformedPayloadsReturnErrors) {
  testing::OodbStack stack(tiny_schema());
  RawSession session(stack.endpoint());
  std::string hello;
  frame_put_u64(&hello, tiny_schema().fingerprint());
  ASSERT_EQ(session.call(Op::kHello, hello).op, Op::kOk);

  EXPECT_EQ(session.call(Op::kRead, "abc").op, Op::kError);   // short id
  EXPECT_EQ(session.call(Op::kAlloc, "").op, Op::kError);     // no count
  std::string zero_alloc;
  frame_put_u64(&zero_alloc, 0);
  EXPECT_EQ(session.call(Op::kAlloc, zero_alloc).op, Op::kError);
  EXPECT_EQ(session.call(static_cast<Op>(77), "").op, Op::kError);
  // The session survives all of it.
  EXPECT_EQ(session.call(Op::kStats, "").op, Op::kOk);
}

TEST(OodbProtocol, ReadMissingObjectIsNotFoundError) {
  testing::OodbStack stack(tiny_schema());
  RawSession session(stack.endpoint());
  std::string hello;
  frame_put_u64(&hello, tiny_schema().fingerprint());
  ASSERT_EQ(session.call(Op::kHello, hello).op, Op::kOk);
  std::string read;
  frame_put_u64(&read, 424242);
  Frame reply = session.call(Op::kRead, read);
  EXPECT_EQ(reply.op, Op::kError);
  EXPECT_NE(reply.payload.find("NOT_FOUND"), std::string::npos);
}

TEST(OodbProtocol, WrongFingerprintRejectedWithConflict) {
  testing::OodbStack stack(tiny_schema());
  RawSession session(stack.endpoint());
  std::string hello;
  frame_put_u64(&hello, 0xDEADBEEF);
  Frame reply = session.call(Op::kHello, hello);
  EXPECT_EQ(reply.op, Op::kError);
  EXPECT_NE(reply.payload.find("CONFLICT"), std::string::npos);
}

}  // namespace
}  // namespace davpse::oodb
