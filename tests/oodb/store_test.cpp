#include "oodb/store.h"

#include <gtest/gtest.h>

#include "util/fs.h"

namespace davpse::oodb {
namespace {

Schema simple_schema() {
  Schema schema;
  EXPECT_TRUE(
      schema.add_class("Thing", {{"label", FieldType::kString}}).is_ok());
  EXPECT_TRUE(schema.compile().is_ok());
  return schema;
}

PersistentObject make_thing(const Schema& schema, ObjectId id,
                            const std::string& label) {
  PersistentObject object(*schema.find("Thing"), id);
  object.set(0, label);
  return object;
}

TEST(SegmentStore, AllocateSequential) {
  SegmentStore store(simple_schema());
  EXPECT_EQ(store.allocate(1), 1u);
  EXPECT_EQ(store.allocate(5), 2u);
  EXPECT_EQ(store.allocate(1), 7u);
}

TEST(SegmentStore, WriteReadRemove) {
  Schema schema = simple_schema();
  SegmentStore store(simple_schema());
  ObjectId id = store.allocate(1);
  ASSERT_TRUE(store.write(make_thing(schema, id, "hello")).is_ok());
  EXPECT_TRUE(store.contains(id));
  auto fetched = store.read(id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().get_string(0), "hello");
  ASSERT_TRUE(store.remove(id).is_ok());
  EXPECT_FALSE(store.contains(id));
  EXPECT_EQ(store.read(id).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(store.remove(id).code(), ErrorCode::kNotFound);
}

TEST(SegmentStore, SegmentAssignmentByAllocationOrder) {
  EXPECT_EQ(segment_of(1), 0u);
  EXPECT_EQ(segment_of(kSegmentCapacity), 0u);
  EXPECT_EQ(segment_of(kSegmentCapacity + 1), 1u);
}

TEST(SegmentStore, ReadSegmentReturnsCohort) {
  Schema schema = simple_schema();
  SegmentStore store(simple_schema());
  // Fill the first segment and one object of the second.
  for (uint64_t i = 0; i < kSegmentCapacity + 1; ++i) {
    ObjectId id = store.allocate(1);
    ASSERT_TRUE(
        store.write(make_thing(schema, id, "o" + std::to_string(id))).is_ok());
  }
  EXPECT_EQ(store.read_segment(0).size(), kSegmentCapacity);
  EXPECT_EQ(store.read_segment(1).size(), 1u);
  EXPECT_TRUE(store.read_segment(7).empty());
}

TEST(SegmentStore, RootsRoundTrip) {
  SegmentStore store(simple_schema());
  EXPECT_EQ(store.get_root("projects"), kNullObject);
  store.set_root("projects", 17);
  EXPECT_EQ(store.get_root("projects"), 17u);
  EXPECT_EQ(store.root_names(), (std::vector<std::string>{"projects"}));
}

TEST(SegmentStore, SaveLoadRoundTrip) {
  TempDir temp("oodbstore");
  Schema schema = simple_schema();
  auto path = temp.path() / "store.oodb";
  {
    SegmentStore store(simple_schema());
    for (int i = 0; i < 300; ++i) {  // spans multiple segments
      ObjectId id = store.allocate(1);
      ASSERT_TRUE(store.write(make_thing(schema, id,
                                         "obj" + std::to_string(id)))
                      .is_ok());
    }
    store.set_root("main", 5);
    ASSERT_TRUE(store.save(path).is_ok());
  }
  auto loaded = SegmentStore::load(path, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  SegmentStore& store = *loaded.value();
  EXPECT_EQ(store.object_count(), 300u);
  EXPECT_EQ(store.get_root("main"), 5u);
  EXPECT_EQ(store.read(150).value().get_string(0), "obj150");
  // Allocation continues after the loaded high-water mark.
  EXPECT_GE(store.allocate(1), 301u);
}

TEST(SegmentStore, LoadRejectsSchemaMismatch) {
  TempDir temp("oodbstore");
  auto path = temp.path() / "store.oodb";
  {
    SegmentStore store(simple_schema());
    ASSERT_TRUE(store.save(path).is_ok());
  }
  Schema evolved;
  ASSERT_TRUE(evolved
                  .add_class("Thing", {{"label", FieldType::kString},
                                       {"extra", FieldType::kInt64}})
                  .is_ok());
  ASSERT_TRUE(evolved.compile().is_ok());
  auto loaded = SegmentStore::load(path, evolved);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kConflict);
  EXPECT_NE(loaded.status().message().find("recompile"), std::string::npos);
}

TEST(SegmentStore, LoadRejectsGarbage) {
  TempDir temp("oodbstore");
  auto path = temp.path() / "garbage";
  ASSERT_TRUE(write_file_atomic(path, std::string(5000, 'g')).is_ok());
  auto loaded = SegmentStore::load(path, simple_schema());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kMalformed);
}

TEST(SegmentStore, ImageCarriesHiddenSegmentOverhead) {
  Schema schema = simple_schema();
  SegmentStore store(simple_schema());
  uint64_t empty_image = store.image_bytes();
  EXPECT_GE(empty_image, kStoreHeaderBytes);

  // One object per segment maximizes hidden overhead per byte stored.
  size_t segments = 5;
  uint64_t payload = 0;
  for (size_t s = 0; s < segments; ++s) {
    ObjectId id = s * kSegmentCapacity + 1;
    PersistentObject object = make_thing(schema, id, "x");
    payload += object.encode().size();
    ASSERT_TRUE(store.write(object).is_ok());
  }
  uint64_t image = store.image_bytes();
  // Every occupied segment pays kHiddenSegmentBytes of index space.
  EXPECT_GE(image, kStoreHeaderBytes + payload +
                       segments * kHiddenSegmentBytes);
}

TEST(SegmentStore, AllIdsSorted) {
  Schema schema = simple_schema();
  SegmentStore store(simple_schema());
  ObjectId first = store.allocate(3);
  for (ObjectId id = first + 2;; --id) {
    ASSERT_TRUE(store.write(make_thing(schema, id, "x")).is_ok());
    if (id == first) break;
  }
  EXPECT_EQ(store.all_ids(), (std::vector<ObjectId>{1, 2, 3}));
}

}  // namespace
}  // namespace davpse::oodb
