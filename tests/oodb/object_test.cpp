#include "oodb/object.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace davpse::oodb {
namespace {

ClassDef every_type_class() {
  ClassDef def;
  def.class_id = 7;
  def.name = "Everything";
  def.fields = {{"i", FieldType::kInt64},     {"d", FieldType::kDouble},
                {"s", FieldType::kString},    {"r", FieldType::kObjectRef},
                {"da", FieldType::kDoubleArray},
                {"ra", FieldType::kRefArray}};
  return def;
}

TEST(PersistentObject, DefaultsPerFieldType) {
  ClassDef def = every_type_class();
  PersistentObject object(def, 42);
  EXPECT_EQ(object.id(), 42u);
  EXPECT_EQ(object.class_id(), 7u);
  EXPECT_EQ(object.field_count(), 6u);
  EXPECT_EQ(object.get_int(0), 0);
  EXPECT_DOUBLE_EQ(object.get_double(1), 0.0);
  EXPECT_TRUE(object.get_string(2).empty());
  EXPECT_EQ(object.get_ref(3), kNullObject);
  EXPECT_TRUE(object.get_double_array(4).empty());
  EXPECT_TRUE(object.get_ref_array(5).empty());
}

TEST(PersistentObject, TypeMismatchYieldsDefaults) {
  ClassDef def = every_type_class();
  PersistentObject object(def, 1);
  object.set(0, int64_t{99});
  // Asking for the wrong type returns the type's default, not garbage.
  EXPECT_DOUBLE_EQ(object.get_double(0), 0.0);
  EXPECT_TRUE(object.get_string(0).empty());
  EXPECT_EQ(object.get_int(0), 99);
}

TEST(PersistentObject, EncodeDecodeAllTypes) {
  ClassDef def = every_type_class();
  PersistentObject object(def, 1234567890123ULL);
  object.set(0, int64_t{-5});
  object.set(1, 3.14159);
  object.set(2, std::string("uranium \0 oxide", 15));
  object.set(3, ObjectId{77});
  object.set(4, std::vector<double>{1.0, -2.5, 1e300});
  object.set(5, std::vector<ObjectId>{1, 2, 3, 4});

  auto decoded = PersistentObject::decode(object.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  const PersistentObject& copy = decoded.value();
  EXPECT_EQ(copy.id(), object.id());
  EXPECT_EQ(copy.class_id(), object.class_id());
  EXPECT_EQ(copy.get_int(0), -5);
  EXPECT_DOUBLE_EQ(copy.get_double(1), 3.14159);
  EXPECT_EQ(copy.get_string(2), object.get_string(2));
  EXPECT_EQ(copy.get_ref(3), 77u);
  EXPECT_EQ(copy.get_double_array(4),
            (std::vector<double>{1.0, -2.5, 1e300}));
  EXPECT_EQ(copy.get_ref_array(5), (std::vector<ObjectId>{1, 2, 3, 4}));
}

TEST(PersistentObject, DecodeRejectsTruncation) {
  ClassDef def = every_type_class();
  PersistentObject object(def, 5);
  object.set(2, std::string(100, 's'));
  std::string encoded = object.encode();
  for (size_t cut = 0; cut < encoded.size(); cut += 13) {
    auto decoded =
        PersistentObject::decode(std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(PersistentObject, DecodeRejectsUnknownTag) {
  ClassDef def;
  def.class_id = 1;
  def.fields = {{"i", FieldType::kInt64}};
  PersistentObject object(def, 9);
  std::string encoded = object.encode();
  encoded[16] = '\x7f';  // corrupt the first field tag
  auto decoded = PersistentObject::decode(encoded);
  EXPECT_FALSE(decoded.ok());
}

TEST(PersistentObject, MemoryBytesGrowsWithPayload) {
  ClassDef def = every_type_class();
  PersistentObject small(def, 1);
  PersistentObject large(def, 2);
  large.set(4, std::vector<double>(10000, 1.0));
  EXPECT_GT(large.memory_bytes(), small.memory_bytes() + 70000);
}

class ObjectCodecRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjectCodecRoundTrip, RandomObjects) {
  Rng rng(GetParam());
  ClassDef def = every_type_class();
  for (int i = 0; i < 40; ++i) {
    PersistentObject object(def, rng.uniform(1, 1'000'000'000));
    object.set(0, static_cast<int64_t>(rng.uniform(0, UINT64_MAX)));
    object.set(1, rng.uniform_real(-1e12, 1e12));
    object.set(2, rng.binary_blob(rng.uniform(0, 2000)));
    object.set(3, ObjectId{rng.uniform(0, 1000)});
    std::vector<double> doubles(rng.uniform(0, 300));
    for (double& d : doubles) d = rng.uniform_real(-1, 1);
    object.set(4, doubles);
    std::vector<ObjectId> refs(rng.uniform(0, 50));
    for (ObjectId& r : refs) r = rng.uniform(1, 99999);
    object.set(5, refs);

    auto decoded = PersistentObject::decode(object.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().encode(), object.encode());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectCodecRoundTrip,
                         ::testing::Values(3, 7, 31, 127));

}  // namespace
}  // namespace davpse::oodb
