// OODB client/server integration: handshake, cache-forward faulting,
// commits, and persistence through the page server.
#include <gtest/gtest.h>

#include "testing/env.h"

namespace davpse::oodb {
namespace {

using testing::OodbStack;

Schema pair_schema() {
  Schema schema;
  EXPECT_TRUE(schema
                  .add_class("Node", {{"label", FieldType::kString},
                                      {"next", FieldType::kObjectRef}})
                  .is_ok());
  EXPECT_TRUE(schema.compile().is_ok());
  return schema;
}

TEST(OodbClientServer, OpenHandshakeSucceedsOnMatchingSchema) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  EXPECT_TRUE(client->open().is_ok());
  EXPECT_TRUE(client->is_open());
}

TEST(OodbClientServer, SchemaMismatchRefusedAtHello) {
  OodbStack stack(pair_schema());
  Schema other;
  ASSERT_TRUE(other.add_class("Node", {{"label", FieldType::kString}}).is_ok());
  ASSERT_TRUE(other.compile().is_ok());
  auto client = stack.client(other);
  Status status = client->open();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kConflict);
}

TEST(OodbClientServer, UncompiledSchemaRejectedLocally) {
  Schema uncompiled;
  ASSERT_TRUE(uncompiled.add_class("Node", {}).is_ok());
  OodbStack stack(pair_schema());
  OodbClientConfig config;
  config.endpoint = stack.endpoint();
  OodbClient client(config, uncompiled);
  EXPECT_EQ(client.open().code(), ErrorCode::kInvalidArgument);
}

TEST(OodbClientServer, CreateCommitReadBack) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto writer = stack.client(schema);
  ASSERT_TRUE(writer->open().is_ok());
  auto object = writer->create("Node");
  ASSERT_TRUE(object.ok());
  object.value()->set(0, std::string("head"));
  ObjectId id = object.value()->id();
  ASSERT_TRUE(writer->commit().is_ok());

  auto reader = stack.client(schema);
  ASSERT_TRUE(reader->open().is_ok());
  auto fetched = reader->read(id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value()->get_string(0), "head");
}

TEST(OodbClientServer, CreateUnknownClassFails) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  ASSERT_TRUE(client->open().is_ok());
  EXPECT_EQ(client->create("Ghost").status().code(), ErrorCode::kNotFound);
}

TEST(OodbClientServer, UncommittedWritesInvisibleToOthers) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto writer = stack.client(schema);
  ASSERT_TRUE(writer->open().is_ok());
  auto object = writer->create("Node");
  ASSERT_TRUE(object.ok());
  ObjectId id = object.value()->id();

  auto reader = stack.client(schema);
  ASSERT_TRUE(reader->open().is_ok());
  EXPECT_EQ(reader->read(id).status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(writer->commit().is_ok());
  EXPECT_TRUE(reader->read(id).ok());
}

TEST(OodbClientServer, CacheForwardFaultsWholeSegment) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto writer = stack.client(schema);
  ASSERT_TRUE(writer->open().is_ok());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 40; ++i) {  // all land in segment 0
    auto object = writer->create("Node");
    ASSERT_TRUE(object.ok());
    object.value()->set(0, "n" + std::to_string(i));
    ids.push_back(object.value()->id());
  }
  ASSERT_TRUE(writer->commit().is_ok());

  auto reader = stack.client(schema, /*cache_forward=*/true);
  ASSERT_TRUE(reader->open().is_ok());
  ASSERT_TRUE(reader->read(ids[0]).ok());
  EXPECT_EQ(reader->segment_fetches(), 1u);
  // The rest of the cohort is already cached: no further fetches.
  for (ObjectId id : ids) {
    ASSERT_TRUE(reader->read(id).ok());
  }
  EXPECT_EQ(reader->segment_fetches(), 1u);
  EXPECT_GE(reader->cached_objects(), ids.size());
}

TEST(OodbClientServer, NonCacheForwardFetchesObjectByObject) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto writer = stack.client(schema);
  ASSERT_TRUE(writer->open().is_ok());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 10; ++i) {
    auto object = writer->create("Node");
    ASSERT_TRUE(object.ok());
    ids.push_back(object.value()->id());
  }
  ASSERT_TRUE(writer->commit().is_ok());

  auto reader = stack.client(schema, /*cache_forward=*/false);
  ASSERT_TRUE(reader->open().is_ok());
  for (ObjectId id : ids) {
    ASSERT_TRUE(reader->read(id).ok());
  }
  EXPECT_EQ(reader->object_fetches(), ids.size());
  EXPECT_EQ(reader->segment_fetches(), 0u);
}

TEST(OodbClientServer, DirtyTrackingShipsUpdates) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  ASSERT_TRUE(client->open().is_ok());
  auto object = client->create("Node");
  ASSERT_TRUE(object.ok());
  object.value()->set(0, std::string("v1"));
  ObjectId id = object.value()->id();
  ASSERT_TRUE(client->commit().is_ok());

  object.value()->set(0, std::string("v2"));
  client->mark_dirty(id);
  ASSERT_TRUE(client->commit().is_ok());

  auto reader = stack.client(schema);
  ASSERT_TRUE(reader->open().is_ok());
  EXPECT_EQ(reader->read(id).value()->get_string(0), "v2");
}

TEST(OodbClientServer, RootsVisibleAcrossClients) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto a = stack.client(schema);
  ASSERT_TRUE(a->open().is_ok());
  auto object = a->create("Node");
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(a->commit().is_ok());
  ASSERT_TRUE(a->set_root("entry", object.value()->id()).is_ok());

  auto b = stack.client(schema);
  ASSERT_TRUE(b->open().is_ok());
  auto root = b->get_root("entry");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), object.value()->id());
  EXPECT_EQ(b->get_root("unset").value(), kNullObject);
}

TEST(OodbClientServer, RemoveDeletesServerSide) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  ASSERT_TRUE(client->open().is_ok());
  auto object = client->create("Node");
  ASSERT_TRUE(object.ok());
  ObjectId id = object.value()->id();
  ASSERT_TRUE(client->commit().is_ok());
  ASSERT_TRUE(client->remove(id).is_ok());
  auto reader = stack.client(schema, /*cache_forward=*/false);
  ASSERT_TRUE(reader->open().is_ok());
  EXPECT_EQ(reader->read(id).status().code(), ErrorCode::kNotFound);
}

TEST(OodbClientServer, CommitPersistsStoreImageToDisk) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  ASSERT_TRUE(client->open().is_ok());
  auto object = client->create("Node");
  ASSERT_TRUE(object.ok());
  object.value()->set(0, std::string("persisted"));
  ObjectId id = object.value()->id();
  ASSERT_TRUE(client->commit().is_ok());

  auto image = SegmentStore::load(stack.temp.path() / "store.oodb", schema);
  ASSERT_TRUE(image.ok()) << image.status().to_string();
  EXPECT_EQ(image.value()->read(id).value().get_string(0), "persisted");
}

TEST(OodbClientServer, StatsReportCounts) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  ASSERT_TRUE(client->open().is_ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(client->create("Node").ok());
  }
  ASSERT_TRUE(client->commit().is_ok());
  auto stats = client->stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().first, 7u);
  EXPECT_GT(stats.value().second, kStoreHeaderBytes);
}

TEST(OodbClientServer, InvalidateCacheRefetches) {
  Schema schema = pair_schema();
  OodbStack stack(pair_schema());
  auto client = stack.client(schema);
  ASSERT_TRUE(client->open().is_ok());
  auto object = client->create("Node");
  ASSERT_TRUE(object.ok());
  ObjectId id = object.value()->id();
  ASSERT_TRUE(client->commit().is_ok());
  EXPECT_GT(client->cached_objects(), 0u);
  client->invalidate_cache();
  EXPECT_EQ(client->cached_objects(), 0u);
  EXPECT_TRUE(client->read(id).ok());
  EXPECT_GT(client->cached_objects(), 0u);
}

}  // namespace
}  // namespace davpse::oodb
