#include "net/network.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/network_model.h"

namespace davpse::net {
namespace {

TEST(Network, ConnectRefusedWithoutListener) {
  Network network;
  auto stream = network.connect("nobody-home");
  EXPECT_FALSE(stream.ok());
  // Refused connect = the endpoint is down, not "the resource does not
  // exist": kUnavailable, so retry loops and the cache's stale-serving
  // path treat it as a transient outage.
  EXPECT_EQ(stream.status().code(), ErrorCode::kUnavailable);
}

TEST(Network, ListenAcceptConnect) {
  Network network;
  auto listener = network.listen("svc");
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto accepted = listener.value()->accept();
    ASSERT_TRUE(accepted.ok());
    char buf[8];
    auto got = accepted.value()->read(buf, sizeof buf);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(buf, got.value()), "hi");
    EXPECT_TRUE(accepted.value()->write("yo").is_ok());
  });
  auto client = network.connect("svc");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->write("hi").is_ok());
  char buf[8];
  auto reply = client.value()->read(buf, sizeof buf);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(std::string(buf, reply.value()), "yo");
  server.join();
}

TEST(Network, DuplicateEndpointRejected) {
  Network network;
  auto first = network.listen("svc");
  ASSERT_TRUE(first.ok());
  auto second = network.listen("svc");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kAlreadyExists);
}

TEST(Network, EndpointFreedOnListenerDestruction) {
  Network network;
  { auto listener = network.listen("svc"); ASSERT_TRUE(listener.ok()); }
  auto again = network.listen("svc");
  EXPECT_TRUE(again.ok());
}

TEST(Network, ShutdownWakesAccept) {
  Network network;
  auto listener = network.listen("svc");
  ASSERT_TRUE(listener.ok());
  std::thread closer([&] { listener.value()->shutdown(); });
  auto accepted = listener.value()->accept();
  closer.join();
  EXPECT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), ErrorCode::kUnavailable);
}

TEST(Network, PendingConnectionSurvivesUntilAccept) {
  Network network;
  auto listener = network.listen("svc");
  ASSERT_TRUE(listener.ok());
  auto client = network.connect("svc");  // no accept() yet
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->write("queued").is_ok());
  auto accepted = listener.value()->accept();
  ASSERT_TRUE(accepted.ok());
  char buf[16];
  auto got = accepted.value()->read(buf, sizeof buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, got.value()), "queued");
}

TEST(Network, ManyConcurrentConnections) {
  Network network;
  auto listener = network.listen("svc");
  ASSERT_TRUE(listener.ok());
  constexpr int kClients = 16;
  std::thread server([&] {
    for (int i = 0; i < kClients; ++i) {
      auto accepted = listener.value()->accept();
      ASSERT_TRUE(accepted.ok());
      auto echo = accepted.value()->read_all();
      ASSERT_TRUE(echo.ok());
      EXPECT_TRUE(accepted.value()->write(echo.value()).is_ok());
    }
  });
  std::vector<std::thread> clients;
  std::atomic<int> successes{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto stream = network.connect("svc");
      ASSERT_TRUE(stream.ok());
      std::string message = "client-" + std::to_string(i);
      ASSERT_TRUE(stream.value()->write(message).is_ok());
      stream.value()->shutdown_write();
      auto reply = stream.value()->read_all();
      ASSERT_TRUE(reply.ok());
      EXPECT_EQ(reply.value(), message);
      successes.fetch_add(1);
    });
  }
  for (auto& thread : clients) thread.join();
  server.join();
  EXPECT_EQ(successes.load(), kClients);
}

TEST(Network, TotalBytesAccumulates) {
  Network network;
  auto listener = network.listen("svc");
  ASSERT_TRUE(listener.ok());
  auto client = network.connect("svc");
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->write("0123456789").is_ok());
  auto accepted = listener.value()->accept();
  ASSERT_TRUE(accepted.ok());
  char buf[16];
  (void)accepted.value()->read(buf, sizeof buf);
  EXPECT_EQ(network.total_bytes(), 10u);
}

TEST(NetworkModel, ModeledTimeMatchesLinkMath) {
  NetworkModel model(LinkProfile::paper_lan());
  model.add_bytes(150'000'000 / 8);  // one second of the 150 Mbit/s link
  model.add_round_trips(10);
  EXPECT_NEAR(model.modeled_seconds(), 1.0 + 10 * 0.0003, 1e-9);
  model.reset();
  EXPECT_EQ(model.bytes(), 0u);
  EXPECT_DOUBLE_EQ(model.modeled_seconds(), 0.0);
}

}  // namespace
}  // namespace davpse::net
