#include "net/pipe.h"

#include <gtest/gtest.h>

#include <thread>

#include "util/clock.h"

namespace davpse::net {
namespace {

TEST(Pipe, SimpleWriteRead) {
  auto pair = make_pipe();
  ASSERT_TRUE(pair.a->write("hello").is_ok());
  char buf[16];
  auto got = pair.b->read(buf, sizeof buf);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, got.value()), "hello");
}

TEST(Pipe, Duplex) {
  auto pair = make_pipe();
  ASSERT_TRUE(pair.a->write("ping").is_ok());
  ASSERT_TRUE(pair.b->write("pong").is_ok());
  char buf[16];
  auto from_a = pair.b->read(buf, sizeof buf);
  ASSERT_TRUE(from_a.ok());
  EXPECT_EQ(std::string(buf, from_a.value()), "ping");
  auto from_b = pair.a->read(buf, sizeof buf);
  ASSERT_TRUE(from_b.ok());
  EXPECT_EQ(std::string(buf, from_b.value()), "pong");
}

TEST(Pipe, EofAfterShutdownWrite) {
  auto pair = make_pipe();
  ASSERT_TRUE(pair.a->write("last").is_ok());
  pair.a->shutdown_write();
  auto all = pair.b->read_all();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), "last");
  // Subsequent reads keep returning clean EOF.
  char buf[4];
  auto eof = pair.b->read(buf, sizeof buf);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof.value(), 0u);
}

TEST(Pipe, WriteAfterPeerCloseFails) {
  auto pair = make_pipe();
  pair.b->close();
  // The reader side is gone; a (possibly large) write must fail rather
  // than block forever.
  std::string big(1 << 20, 'x');
  Status status = pair.a->write(big);
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
}

TEST(Pipe, BackpressureBlocksUntilDrained) {
  auto pair = make_pipe(/*capacity=*/1024);
  std::string payload(10 * 1024, 'p');
  std::thread writer([&] {
    EXPECT_TRUE(pair.a->write(payload).is_ok());
    pair.a->shutdown_write();
  });
  auto all = pair.b->read_all();
  writer.join();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), payload.size());
  EXPECT_EQ(all.value(), payload);
}

TEST(Pipe, ReadTimeout) {
  auto pair = make_pipe();
  pair.b->set_read_timeout(0.05);
  char buf[4];
  StopWatch watch;
  auto got = pair.b->read(buf, sizeof buf);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(watch.elapsed_wall(), 0.04);
  // Data arriving later is still readable after clearing the timeout.
  pair.b->set_read_timeout(0);
  ASSERT_TRUE(pair.a->write("late").is_ok());
  auto late = pair.b->read(buf, sizeof buf);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(std::string(buf, late.value()), "late");
}

TEST(Pipe, TrafficCounterTracksBothDirections) {
  auto pair = make_pipe();
  ASSERT_TRUE(pair.a->write("12345").is_ok());
  ASSERT_TRUE(pair.b->write("123").is_ok());
  char buf[8];
  (void)pair.b->read(buf, sizeof buf);
  (void)pair.a->read(buf, sizeof buf);
  EXPECT_EQ(pair.traffic->bytes_a_to_b.load(), 5u);
  EXPECT_EQ(pair.traffic->bytes_b_to_a.load(), 3u);
  EXPECT_EQ(pair.traffic->total(), 8u);
  EXPECT_EQ(pair.a->traffic(), pair.traffic.get());
}

TEST(Pipe, LargeTransferIntegrity) {
  auto pair = make_pipe(64 * 1024);
  std::string payload;
  payload.reserve(3 * 1024 * 1024);
  for (int i = 0; payload.size() < 3 * 1024 * 1024; ++i) {
    payload += static_cast<char>(i * 131 + 7);
  }
  std::thread writer([&] {
    EXPECT_TRUE(pair.a->write(payload).is_ok());
    pair.a->shutdown_write();
  });
  auto all = pair.b->read_all();
  writer.join();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value(), payload);
}

TEST(Pipe, ReadExactAndPrematureEof) {
  auto pair = make_pipe();
  ASSERT_TRUE(pair.a->write("abcdef").is_ok());
  char buf[4];
  ASSERT_TRUE(pair.b->read_exact(buf, 4).is_ok());
  EXPECT_EQ(std::string(buf, 4), "abcd");
  pair.a->shutdown_write();
  Status status = pair.b->read_exact(buf, 4);  // only 2 bytes remain
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace davpse::net
