// HTTP/1.1 pipelining: ordering, keep-alive interaction, recovery when
// the server's per-connection request cap closes a connection
// mid-batch, and the DAV-level propfind_many wrapper.
#include <gtest/gtest.h>

#include <atomic>

#include "davclient/client.h"
#include "http/client.h"
#include "http/server.h"
#include "testing/env.h"

namespace davpse::http {
namespace {

/// Echoes the request target so response ordering is verifiable.
class TargetEcho final : public Handler {
 public:
  HttpResponse handle(const HttpRequest& request) override {
    calls.fetch_add(1);
    return HttpResponse::make(200, "echo:" + request.target);
  }
  std::atomic<int> calls{0};
};

struct PipelineFixture {
  explicit PipelineFixture(size_t cap = 100) {
    ServerConfig config;
    config.endpoint = testing::unique_endpoint("pipeline");
    config.max_requests_per_connection = cap;
    endpoint = config.endpoint;
    server = std::make_unique<HttpServer>(config, &handler);
    EXPECT_TRUE(server->start().is_ok());
  }
  HttpClient client() {
    ClientConfig config;
    config.endpoint = endpoint;
    return HttpClient(config);
  }
  TargetEcho handler;
  std::string endpoint;
  std::unique_ptr<HttpServer> server;
};

std::vector<HttpRequest> make_gets(int count) {
  std::vector<HttpRequest> requests;
  for (int i = 0; i < count; ++i) {
    HttpRequest request;
    request.method = "GET";
    request.target = "/r" + std::to_string(i);
    requests.push_back(std::move(request));
  }
  return requests;
}

TEST(Pipeline, ResponsesArriveInOrder) {
  PipelineFixture fixture;
  auto client = fixture.client();
  auto responses = client.execute_pipelined(make_gets(20));
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(responses.value().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses.value()[i].body, "echo:/r" + std::to_string(i));
  }
  EXPECT_EQ(client.connections_opened(), 1u);
}

TEST(Pipeline, EmptyBatch) {
  PipelineFixture fixture;
  auto client = fixture.client();
  auto responses = client.execute_pipelined({});
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses.value().empty());
}

TEST(Pipeline, RecoversFromPerConnectionCap) {
  PipelineFixture fixture(/*cap=*/7);
  auto client = fixture.client();
  auto responses = client.execute_pipelined(make_gets(20));
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(responses.value().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses.value()[i].body, "echo:/r" + std::to_string(i));
  }
  // ceil(20/7) = 3 connections.
  EXPECT_EQ(client.connections_opened(), 3u);
  EXPECT_EQ(fixture.handler.calls.load(), 20);
}

TEST(Pipeline, BatchCountsOneModeledRoundTripPerConnection) {
  PipelineFixture fixture;
  auto client = fixture.client();
  net::NetworkModel model(net::LinkProfile::paper_lan());
  client.set_network_model(&model);
  auto responses = client.execute_pipelined(make_gets(50));
  ASSERT_TRUE(responses.ok());
  // 1 connect + 1 batch round trip, vs 51 for serial requests.
  EXPECT_EQ(model.round_trips(), 2u);
}

TEST(Pipeline, MixedWithSerialRequestsOnSameClient) {
  PipelineFixture fixture;
  auto client = fixture.client();
  auto single = client.get("/warmup");
  ASSERT_TRUE(single.ok());
  auto batch = client.execute_pipelined(make_gets(5));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().size(), 5u);
  auto after = client.get("/after");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().body, "echo:/after");
  EXPECT_EQ(client.connections_opened(), 1u);
}

TEST(PipelineDav, PropfindManyReturnsPerPathResults) {
  testing::DavStack stack;
  auto seeder = stack.client();
  xml::QName tag("urn:t", "tag");
  for (int i = 0; i < 10; ++i) {
    std::string path = "/doc" + std::to_string(i);
    ASSERT_TRUE(seeder.put(path, "body").is_ok());
    ASSERT_TRUE(
        seeder.set_property(path, tag, "v" + std::to_string(i)).is_ok());
  }
  auto client = stack.client();
  std::vector<std::string> paths;
  for (int i = 0; i < 10; ++i) paths.push_back("/doc" + std::to_string(i));
  auto results = client.propfind_many(paths, {tag});
  ASSERT_TRUE(results.ok()) << results.status().to_string();
  ASSERT_EQ(results.value().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(results.value()[i].responses.size(), 1u);
    EXPECT_EQ(results.value()[i].responses.front().prop(tag),
              "v" + std::to_string(i));
  }
}

TEST(PipelineDav, PropfindManyMissingPathFails) {
  testing::DavStack stack;
  auto client = stack.client();
  ASSERT_TRUE(client.put("/exists", "x").is_ok());
  auto results =
      client.propfind_many({"/exists", "/ghost"}, {xml::dav_name("getetag")});
  EXPECT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace davpse::http
