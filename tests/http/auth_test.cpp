#include "http/auth.h"

#include <gtest/gtest.h>

namespace davpse::http {
namespace {

// "nocolon" in base64 — a credential blob without the required ':'.
std::string credential_without_colon() { return "bm9jb2xvbg=="; }

TEST(BasicAuth, HeaderEncoding) {
  EXPECT_EQ(basic_auth_header({"Aladdin", "open sesame"}),
            "Basic QWxhZGRpbjpvcGVuIHNlc2FtZQ==");
}

TEST(BasicAuth, ParseRoundTrip) {
  HeaderMap headers;
  headers.set("Authorization", basic_auth_header({"user", "pa:ss"}));
  auto credentials = parse_basic_auth(headers);
  ASSERT_TRUE(credentials.has_value());
  EXPECT_EQ(credentials->user, "user");
  EXPECT_EQ(credentials->password, "pa:ss");  // first ':' splits
}

TEST(BasicAuth, ParseRejections) {
  HeaderMap headers;
  EXPECT_FALSE(parse_basic_auth(headers).has_value());  // absent
  headers.set("Authorization", "Bearer token");
  EXPECT_FALSE(parse_basic_auth(headers).has_value());  // wrong scheme
  headers.set("Authorization", "Basic !!!notbase64!!!");
  EXPECT_FALSE(parse_basic_auth(headers).has_value());  // bad encoding
  headers.set("Authorization", "Basic " + credential_without_colon());
  EXPECT_FALSE(parse_basic_auth(headers).has_value());  // no colon
}

TEST(Authenticator, DisabledAcceptsEverything) {
  BasicAuthenticator authenticator;
  EXPECT_FALSE(authenticator.enabled());
  HttpRequest request;
  EXPECT_TRUE(authenticator.authorize(request));
}

TEST(Authenticator, ValidatesAccounts) {
  BasicAuthenticator authenticator;
  authenticator.add_user("alice", "secret");
  EXPECT_TRUE(authenticator.enabled());

  HttpRequest request;
  EXPECT_FALSE(authenticator.authorize(request));  // no credentials

  request.headers.set("Authorization",
                      basic_auth_header({"alice", "secret"}));
  EXPECT_TRUE(authenticator.authorize(request));

  request.headers.set("Authorization",
                      basic_auth_header({"alice", "wrong"}));
  EXPECT_FALSE(authenticator.authorize(request));

  request.headers.set("Authorization", basic_auth_header({"bob", "secret"}));
  EXPECT_FALSE(authenticator.authorize(request));
}

TEST(Authenticator, ChallengeShape) {
  HttpResponse challenge = BasicAuthenticator::challenge();
  EXPECT_EQ(challenge.status, kUnauthorized);
  auto value = challenge.headers.get("WWW-Authenticate");
  ASSERT_TRUE(value.has_value());
  EXPECT_NE(value->find("Basic"), std::string_view::npos);
}

}  // namespace
}  // namespace davpse::http
