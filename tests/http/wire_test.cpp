#include "http/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>

#include "net/pipe.h"
#include "util/random.h"

namespace davpse::http {
namespace {

/// Pushes raw bytes at a reader through a pipe.
std::unique_ptr<net::Stream> stream_of(net::PipePair& pair,
                                       std::string_view raw) {
  EXPECT_TRUE(pair.a->write(raw).is_ok());
  pair.a->shutdown_write();
  return std::move(pair.b);
}

TEST(WireRequest, ParsesSimpleGet) {
  auto pair = net::make_pipe();
  auto stream = stream_of(
      pair, "GET /a/b HTTP/1.1\r\nHost: svc\r\nX-Custom: v\r\n\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_EQ(request.value().method, "GET");
  EXPECT_EQ(request.value().target, "/a/b");
  EXPECT_EQ(request.value().version, "HTTP/1.1");
  EXPECT_EQ(request.value().headers.get("host"), "svc");
  EXPECT_EQ(request.value().headers.get("x-custom"), "v");
  EXPECT_TRUE(request.value().body.empty());
}

TEST(WireRequest, ParsesContentLengthBody) {
  auto pair = net::make_pipe();
  auto stream = stream_of(
      pair, "PUT /doc HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().body, "hello");
}

TEST(WireRequest, ParsesChunkedBody) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n5\r\nhello\r\n6;ext=1\r\n world\r\n0\r\n\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_EQ(request.value().body, "hello world");
}

TEST(WireRequest, KeepAliveSequenceOnOneConnection) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "GET /1 HTTP/1.1\r\n\r\n"
                          "GET /2 HTTP/1.1\r\n\r\n");
  WireReader reader(stream.get());
  auto first = reader.read_request();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().target, "/1");
  auto second = reader.read_request();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().target, "/2");
  auto third = reader.read_request();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), ErrorCode::kUnavailable);
}

TEST(WireRequest, EnforcesBodyLimit) {
  auto pair = net::make_pipe();
  auto stream = stream_of(
      pair, "PUT /big HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request(/*max_body=*/100);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), ErrorCode::kTooLarge);
}

struct BadRequestCase {
  const char* name;
  const char* wire;
  ErrorCode code;
};

class WireRequestRejects : public ::testing::TestWithParam<BadRequestCase> {};

TEST_P(WireRequestRejects, Rejected) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair, GetParam().wire);
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), GetParam().code) << GetParam().wire;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WireRequestRejects,
    ::testing::Values(
        BadRequestCase{"TwoTokens", "GET /x\r\n\r\n", ErrorCode::kMalformed},
        BadRequestCase{"BadVersion", "GET /x HTTP/2.0\r\n\r\n",
                       ErrorCode::kUnsupported},
        BadRequestCase{"HeaderNoColon",
                       "GET /x HTTP/1.1\r\nBadHeader\r\n\r\n",
                       ErrorCode::kMalformed},
        BadRequestCase{"SpaceInFieldName",
                       "GET /x HTTP/1.1\r\nBad Header: v\r\n\r\n",
                       ErrorCode::kMalformed},
        BadRequestCase{"TruncatedBody",
                       "PUT /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
                       ErrorCode::kUnavailable},
        BadRequestCase{"BadChunkSize",
                       "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                       "\r\nXYZ\r\n",
                       ErrorCode::kMalformed},
        BadRequestCase{"MissingChunkCrlf",
                       "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                       "\r\n3\r\nabcXX0\r\n\r\n",
                       ErrorCode::kMalformed},
        BadRequestCase{"UnknownCoding",
                       "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
                       ErrorCode::kUnsupported}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(WireResponse, RoundTrip) {
  auto pair = net::make_pipe();
  HttpResponse sent = HttpResponse::make(207, "<xml/>", "text/xml");
  ASSERT_TRUE(write_response(pair.a.get(), sent).is_ok());
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_EQ(received.value().status, 207);
  EXPECT_EQ(received.value().body, "<xml/>");
  EXPECT_EQ(received.value().headers.get("Content-Type"), "text/xml");
  EXPECT_TRUE(received.value().headers.has("Date"));
  EXPECT_TRUE(received.value().headers.has("Server"));
}

TEST(WireResponse, NoContentHasNoBody) {
  auto pair = net::make_pipe();
  ASSERT_TRUE(pair.a->write("HTTP/1.1 204 No Content\r\n\r\n").is_ok());
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().status, 204);
  EXPECT_TRUE(received.value().body.empty());
}

TEST(WireResponse, ParsesChunkedBody) {
  auto pair = net::make_pipe();
  ASSERT_TRUE(pair.a
                  ->write("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n4\r\nWiki\r\n5\r\npedia\r\n0\r\n"
                          "Trailer: x\r\n\r\n")
                  .is_ok());
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_EQ(received.value().body, "Wikipedia");
}

TEST(WireResponse, RejectsGarbageStatusLine) {
  auto pair = net::make_pipe();
  ASSERT_TRUE(pair.a->write("NOT-HTTP garbage\r\n\r\n").is_ok());
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), ErrorCode::kMalformed);
}

TEST(WireRequest, RoundTripWithWriteRequest) {
  auto pair = net::make_pipe();
  HttpRequest sent;
  sent.method = "PROPFIND";
  sent.target = "/Ecce/proj";
  sent.headers.set("Depth", "1");
  sent.body = "<propfind/>";
  ASSERT_TRUE(write_request(pair.a.get(), sent).is_ok());
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_request();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().method, "PROPFIND");
  EXPECT_EQ(received.value().target, "/Ecce/proj");
  EXPECT_EQ(received.value().headers.get("Depth"), "1");
  EXPECT_EQ(received.value().body, "<propfind/>");
}

TEST(WireRequest, PropertyRandomBodiesRoundTrip) {
  Rng rng(91);
  for (int i = 0; i < 30; ++i) {
    auto pair = net::make_pipe(16 * 1024);
    HttpRequest sent;
    sent.method = "PUT";
    sent.target = "/doc";
    std::string body = rng.binary_blob(rng.uniform(0, 100'000));
    sent.body = body;
    std::thread writer([&] {
      EXPECT_TRUE(write_request(pair.a.get(), sent).is_ok());
      pair.a->shutdown_write();
    });
    WireReader reader(pair.b.get());
    auto received = reader.read_request();
    writer.join();
    ASSERT_TRUE(received.ok());
    EXPECT_EQ(received.value().body, body);
  }
}

// -- chunked-coding edge cases (incremental decoder) ---------------------

TEST(WireChunked, ZeroLengthBody) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n0\r\n\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_TRUE(request.value().body.empty());
}

TEST(WireChunked, ExtensionsAfterSemicolonIgnored) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n5;name=value;flag\r\nhello\r\n"
                          "0;last\r\n\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_TRUE(request.ok()) << request.status().to_string();
  EXPECT_EQ(request.value().body, "hello");
}

TEST(WireChunked, TrailerSectionConsumed) {
  auto pair = net::make_pipe();
  // Trailers after the terminating chunk must be consumed so the next
  // keep-alive request parses from a clean boundary.
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n3\r\nabc\r\n0\r\n"
                          "X-Checksum: 99\r\nX-Other: y\r\n\r\n"
                          "GET /next HTTP/1.1\r\n\r\n");
  WireReader reader(stream.get());
  auto first = reader.read_request();
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(first.value().body, "abc");
  auto second = reader.read_request();
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second.value().target, "/next");
}

TEST(WireChunked, TruncatedMidChunkIsUnavailable) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\nA\r\nhal");  // promises 10 bytes, sends 3
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), ErrorCode::kUnavailable);
}

TEST(WireChunked, TruncatedBeforeTerminatorIsUnavailable) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n3\r\nabc\r\n");  // EOF where 0\r\n\r\n is due
  WireReader reader(stream.get());
  auto request = reader.read_request();
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), ErrorCode::kUnavailable);
}

TEST(WireChunked, BodyLimitAbortsMidDecode) {
  auto pair = net::make_pipe();
  // Chunked carries no Content-Length, so the limit can only trip
  // while decoding: the second chunk's size line pushes the running
  // total past max_body before any of its data is read.
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n40\r\n" + std::string(0x40, 'a') +
                          "\r\n40\r\n" + std::string(0x40, 'b') +
                          "\r\n0\r\n\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request(/*max_body=*/100);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), ErrorCode::kTooLarge);
}

TEST(WireChunked, IncrementalReadsDeliverWholeBody) {
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
  WireReader reader(stream.get());
  auto head = reader.read_request_head();
  ASSERT_TRUE(head.ok());
  auto source = reader.open_body(head.value().headers, /*max_body=*/0);
  ASSERT_TRUE(source.ok()) << source.status().to_string();
  EXPECT_FALSE(source.value()->length().has_value());  // chunked: unknown
  // Tiny reads must cross chunk boundaries transparently.
  std::string assembled;
  char tiny[3];
  for (;;) {
    auto n = source.value()->read(tiny, sizeof tiny);
    ASSERT_TRUE(n.ok()) << n.status().to_string();
    if (n.value() == 0) break;
    assembled.append(tiny, n.value());
  }
  EXPECT_EQ(assembled, "hello world");
}

TEST(WireChunked, OversizedChunkSizeLineRejected) {
  // 17+ hex digits would wrap uint64 during accumulation; the decoder
  // must reject the size line even with no body limit configured.
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n1FFFFFFFFFFFFFFFF\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request(/*max_body=*/0);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), ErrorCode::kMalformed);
}

TEST(WireChunked, HugeChunkCannotWrapPastBodyLimit) {
  // 0xFFFFFFFFFFFFFFCE = 2^64 - 50. With 64 bytes already consumed,
  // `consumed + chunk_size` wraps to 14 — the limit check must not be
  // fooled into accepting the chunk.
  auto pair = net::make_pipe();
  auto stream = stream_of(pair,
                          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                          "\r\n40\r\n" + std::string(0x40, 'a') +
                          "\r\nFFFFFFFFFFFFFFCE\r\n");
  WireReader reader(stream.get());
  auto request = reader.read_request(/*max_body=*/100);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), ErrorCode::kTooLarge);
}

/// A source whose length() disagrees with the bytes it can produce —
/// e.g. a file that changed size after length() was sampled.
class MislengthedSource final : public BodySource {
 public:
  MislengthedSource(std::string data, uint64_t declared)
      : data_(std::move(data)), declared_(declared) {}

  Result<size_t> read(char* buf, size_t max) override {
    size_t n = std::min(max, data_.size() - pos_);
    std::memcpy(buf, data_.data() + pos_, n);
    pos_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return declared_; }

 private:
  std::string data_;
  uint64_t declared_;
  size_t pos_ = 0;
};

TEST(WireStreamedBody, SourceLongerThanDeclaredNeverCorruptsFraming) {
  auto pair = net::make_pipe();
  HttpRequest sent;
  sent.method = "PUT";
  sent.target = "/doc";
  sent.body_source = std::make_shared<MislengthedSource>("helloEXTRA", 5);
  ASSERT_TRUE(write_request(pair.a.get(), sent).is_ok());
  HttpRequest next;
  next.method = "GET";
  next.target = "/after";
  ASSERT_TRUE(write_request(pair.a.get(), next).is_ok());
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_request();
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_EQ(received.value().body, "hello");  // clamped at Content-Length
  auto second = reader.read_request();
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second.value().target, "/after");
}

TEST(WireStreamedBody, SourceShorterThanDeclaredIsInternalError) {
  auto pair = net::make_pipe();
  HttpRequest sent;
  sent.method = "PUT";
  sent.target = "/doc";
  sent.body_source = std::make_shared<MislengthedSource>("abc", 10);
  Status written = write_request(pair.a.get(), sent);
  EXPECT_FALSE(written.is_ok());
  EXPECT_EQ(written.code(), ErrorCode::kInternal);
}

// -- write coalescing (single write per frame) ---------------------------

/// Counts write() calls — the byte-counter assertion behind the
/// coalescing contract: head+body and [size|payload|CRLF] chunk frames
/// each leave in exactly one stream write.
class CountingStream final : public net::Stream {
 public:
  explicit CountingStream(net::Stream* inner) : inner_(inner) {}

  Result<size_t> read(char* buf, size_t max) override {
    return inner_->read(buf, max);
  }
  Status write(std::string_view data) override {
    ++writes;
    bytes_out += data.size();
    return inner_->write(data);
  }
  void shutdown_write() override { inner_->shutdown_write(); }
  void close() override { inner_->close(); }

  int writes = 0;
  uint64_t bytes_out = 0;

 private:
  net::Stream* inner_;
};

/// Unknown-length source serving `total` bytes in reads capped at
/// `per_read` — drives a deterministic chunk count through the
/// chunked encoder.
class DribbleSource final : public BodySource {
 public:
  DribbleSource(size_t total, size_t per_read)
      : total_(total), per_read_(per_read) {}

  Result<size_t> read(char* buf, size_t max) override {
    size_t n = std::min({max, per_read_, total_ - sent_});
    std::memset(buf, 'x', n);
    sent_ += n;
    return n;
  }

 private:
  size_t total_;
  size_t per_read_;
  size_t sent_ = 0;
};

TEST(WireCoalescing, SmallEagerResponseIsOneWrite) {
  auto pair = net::make_pipe();
  CountingStream counting(pair.a.get());
  HttpResponse sent = HttpResponse::make(200, "hello", "text/plain");
  ASSERT_TRUE(write_response(&counting, sent).is_ok());
  EXPECT_EQ(counting.writes, 1);  // head and body coalesced
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().body, "hello");
}

TEST(WireCoalescing, ChunkedBodyIsOneWritePerChunkPlusTerminator) {
  auto pair = net::make_pipe();
  CountingStream counting(pair.a.get());
  HttpResponse sent = HttpResponse::make(200);
  // 8 chunks of 1000 bytes. Per chunk exactly one write (size line +
  // payload + CRLF in one frame, head riding the first); the
  // final 0\r\n\r\n terminator is the +1.
  sent.body_source = std::make_shared<DribbleSource>(8000, 1000);
  ASSERT_TRUE(write_response(&counting, sent).is_ok());
  EXPECT_EQ(counting.writes, 8 + 1);
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_EQ(received.value().body, std::string(8000, 'x'));
}

TEST(WireCoalescing, EmptyChunkedBodyIsOneWrite) {
  auto pair = net::make_pipe();
  CountingStream counting(pair.a.get());
  HttpResponse sent = HttpResponse::make(200);
  sent.body_source = std::make_shared<DribbleSource>(0, 1000);
  ASSERT_TRUE(write_response(&counting, sent).is_ok());
  EXPECT_EQ(counting.writes, 1);  // head + terminator in one frame
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().body.empty());
}

TEST(WireCoalescing, KnownLengthStreamedBodyCoalescesWithHead) {
  auto pair = net::make_pipe();
  CountingStream counting(pair.a.get());
  HttpRequest sent;
  sent.method = "PUT";
  sent.target = "/doc";
  sent.body_source = std::make_shared<MislengthedSource>("hello", 5);
  ASSERT_TRUE(write_request(&counting, sent).is_ok());
  EXPECT_EQ(counting.writes, 1);  // head + Content-Length body, one frame
  pair.a->shutdown_write();
  WireReader reader(pair.b.get());
  auto received = reader.read_request();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().body, "hello");
}

/// Clamps every read to one byte, so chunk size lines, payloads,
/// CRLFs, and the terminator all arrive split across reads.
class OneByteReadStream final : public net::Stream {
 public:
  explicit OneByteReadStream(net::Stream* inner) : inner_(inner) {}

  Result<size_t> read(char* buf, size_t max) override {
    return inner_->read(buf, std::min<size_t>(max, 1));
  }
  Status write(std::string_view data) override { return inner_->write(data); }
  void shutdown_write() override { inner_->shutdown_write(); }
  void close() override { inner_->close(); }

 private:
  net::Stream* inner_;
};

TEST(WireChunked, OneByteReadGranularityReassemblesSplitHeaders) {
  auto pair = net::make_pipe();
  HttpResponse sent = HttpResponse::make(200);
  sent.body_source = std::make_shared<DribbleSource>(5000, 1000);
  ASSERT_TRUE(write_response(pair.a.get(), sent).is_ok());
  pair.a->shutdown_write();
  OneByteReadStream trickle(pair.b.get());
  WireReader reader(&trickle);
  auto received = reader.read_response();
  ASSERT_TRUE(received.ok()) << received.status().to_string();
  EXPECT_EQ(received.value().body, std::string(5000, 'x'));
}

TEST(WireRequest, LargeBodyStreamsThroughSmallPipe) {
  auto pair = net::make_pipe(/*capacity=*/8 * 1024);
  std::string body(2 * 1024 * 1024, 'B');
  HttpRequest sent;
  sent.method = "PUT";
  sent.target = "/big";
  sent.body = body;
  std::thread writer([&] {
    EXPECT_TRUE(write_request(pair.a.get(), sent).is_ok());
    pair.a->shutdown_write();
  });
  WireReader reader(pair.b.get());
  auto received = reader.read_request();
  writer.join();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().body.size(), body.size());
  EXPECT_EQ(received.value().body, body);
}

}  // namespace
}  // namespace davpse::http
