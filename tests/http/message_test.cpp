#include "http/message.h"

#include <gtest/gtest.h>

namespace davpse::http {
namespace {

TEST(HeaderMap, CaseInsensitiveLookup) {
  HeaderMap headers;
  headers.set("Content-Type", "text/xml");
  EXPECT_EQ(headers.get("content-type"), "text/xml");
  EXPECT_EQ(headers.get("CONTENT-TYPE"), "text/xml");
  EXPECT_FALSE(headers.get("Content-Length").has_value());
  EXPECT_TRUE(headers.has("content-TYPE"));
}

TEST(HeaderMap, SetReplacesAddAppends) {
  HeaderMap headers;
  headers.add("Via", "a");
  headers.add("Via", "b");
  EXPECT_EQ(headers.get_all("via").size(), 2u);
  headers.set("Via", "c");
  auto all = headers.get_all("via");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], "c");
}

TEST(HeaderMap, RemoveErasesAllMatches) {
  HeaderMap headers;
  headers.add("X", "1");
  headers.add("x", "2");
  headers.add("Y", "3");
  headers.remove("X");
  EXPECT_FALSE(headers.has("x"));
  EXPECT_TRUE(headers.has("Y"));
  EXPECT_EQ(headers.size(), 1u);
}

TEST(HeaderMap, GetUintParsing) {
  HeaderMap headers;
  headers.set("Content-Length", "1048576");
  headers.set("Bad", "12x");
  headers.set("Spacey", "  42  ");
  EXPECT_EQ(headers.get_uint("Content-Length"), 1048576u);
  EXPECT_FALSE(headers.get_uint("Bad").has_value());
  EXPECT_EQ(headers.get_uint("Spacey"), 42u);
  EXPECT_FALSE(headers.get_uint("Missing").has_value());
}

TEST(KeepAlive, Http11DefaultsOnAndCloseTurnsOff) {
  HttpRequest request;
  EXPECT_TRUE(request.keep_alive());
  request.headers.set("Connection", "close");
  EXPECT_FALSE(request.keep_alive());
  request.headers.set("Connection", "Close");
  EXPECT_FALSE(request.keep_alive());
  HttpResponse response;
  EXPECT_TRUE(response.keep_alive());
  response.headers.set("Connection", "close");
  EXPECT_FALSE(response.keep_alive());
}

TEST(ResponseFactories, MakeAndMultistatus) {
  HttpResponse plain = HttpResponse::make(204);
  EXPECT_EQ(plain.status, 204);
  EXPECT_TRUE(plain.body.empty());

  HttpResponse with_body = HttpResponse::make(404, "gone\n");
  EXPECT_EQ(with_body.status, 404);
  EXPECT_EQ(with_body.headers.get("Content-Type"), "text/plain");

  HttpResponse ms = HttpResponse::multistatus("<x/>");
  EXPECT_EQ(ms.status, kMultiStatus);
  EXPECT_EQ(ms.headers.get("Content-Type"), "text/xml; charset=\"utf-8\"");
}

TEST(ReasonPhrases, DavCodesCovered) {
  EXPECT_EQ(reason_phrase(207), "Multi-Status");
  EXPECT_EQ(reason_phrase(423), "Locked");
  EXPECT_EQ(reason_phrase(424), "Failed Dependency");
  EXPECT_EQ(reason_phrase(507), "Insufficient Storage");
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(999), "Unknown");
}

}  // namespace
}  // namespace davpse::http
