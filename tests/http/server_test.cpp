#include "http/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "http/client.h"

namespace davpse::http {
namespace {

std::string unique_endpoint() {
  static std::atomic<int> counter{0};
  return "httptest-" + std::to_string(counter.fetch_add(1));
}

/// Echo handler: returns method, target, and body length; sleeps if
/// asked via the X-Delay-Ms header.
class EchoHandler final : public Handler {
 public:
  HttpResponse handle(const HttpRequest& request) override {
    calls.fetch_add(1);
    if (auto delay = request.headers.get_uint("X-Delay-Ms")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(*delay));
    }
    if (request.target == "/throw") {
      throw std::runtime_error("handler exploded");
    }
    return HttpResponse::make(
        200, request.method + " " + request.target + " " +
                 std::to_string(request.body.size()));
  }
  std::atomic<int> calls{0};
};

struct ServerFixture {
  explicit ServerFixture(ServerConfig config = {}) {
    config.endpoint = unique_endpoint();
    endpoint = config.endpoint;
    server = std::make_unique<HttpServer>(config, &handler);
    EXPECT_TRUE(server->start().is_ok());
  }
  HttpClient client(ConnectionPolicy policy = ConnectionPolicy::kPersistent) {
    ClientConfig config;
    config.endpoint = endpoint;
    config.policy = policy;
    return HttpClient(config);
  }
  EchoHandler handler;
  std::string endpoint;
  std::unique_ptr<HttpServer> server;
};

TEST(HttpServer, BasicRequestResponse) {
  ServerFixture fixture;
  auto client = fixture.client();
  auto response = client.get("/hello");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "GET /hello 0");
}

TEST(HttpServer, PutBodyDelivered) {
  ServerFixture fixture;
  auto client = fixture.client();
  auto response = client.put("/doc", std::string(1234, 'x'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().body, "PUT /doc 1234");
}

TEST(HttpServer, KeepAliveReusesConnection) {
  ServerFixture fixture;
  auto client = fixture.client(ConnectionPolicy::kPersistent);
  for (int i = 0; i < 10; ++i) {
    auto response = client.get("/r" + std::to_string(i));
    ASSERT_TRUE(response.ok());
  }
  EXPECT_EQ(client.connections_opened(), 1u);
  EXPECT_EQ(client.requests_sent(), 10u);
}

TEST(HttpServer, PerRequestPolicyReconnects) {
  ServerFixture fixture;
  auto client = fixture.client(ConnectionPolicy::kPerRequest);
  for (int i = 0; i < 5; ++i) {
    auto response = client.get("/r");
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.value().keep_alive());
  }
  EXPECT_EQ(client.connections_opened(), 5u);
}

TEST(HttpServer, RequestCapClosesConnectionAndClientRecovers) {
  ServerConfig config;
  config.max_requests_per_connection = 3;
  ServerFixture fixture(config);
  auto client = fixture.client();
  for (int i = 0; i < 7; ++i) {
    auto response = client.get("/r");
    ASSERT_TRUE(response.ok()) << i;
  }
  // 3 requests per connection: connections 1..3 (ceil(7/3)).
  EXPECT_EQ(client.connections_opened(), 3u);
}

TEST(HttpServer, ParallelClients) {
  ServerConfig config;
  config.daemons = 8;
  ServerFixture fixture(config);
  constexpr int kThreads = 8, kRequests = 20;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto client = fixture.client();
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.get("/parallel");
        if (!response.ok() || response.value().status != 200) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fixture.handler.calls.load(), kThreads * kRequests);
  EXPECT_EQ(fixture.server->requests_served(),
            static_cast<uint64_t>(kThreads * kRequests));
}

TEST(HttpServer, SlowRequestsServedConcurrently) {
  ServerConfig config;
  config.daemons = 4;
  ServerFixture fixture(config);
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto client = fixture.client();
      HttpRequest request;
      request.method = "GET";
      request.target = "/slow";
      request.headers.set("X-Delay-Ms", "100");
      auto response = client.execute(std::move(request));
      EXPECT_TRUE(response.ok());
    });
  }
  for (auto& thread : threads) thread.join();
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // Serial execution would take >= 0.4 s.
  EXPECT_LT(elapsed, 0.35);
}

TEST(HttpServer, HandlerExceptionBecomes500) {
  ServerFixture fixture;
  auto client = fixture.client();
  auto response = client.get("/throw");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, kInternalError);
  EXPECT_NE(response.value().body.find("handler exploded"),
            std::string::npos);
  // The connection survives for the next request.
  auto next = client.get("/ok");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().status, 200);
}

TEST(HttpServer, OversizedBodyRejected) {
  ServerConfig config;
  config.max_body_bytes = 64;
  ServerFixture fixture(config);
  auto client = fixture.client();
  auto response = client.put("/big", std::string(1000, 'x'));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, kRequestTooLarge);
}

TEST(HttpServer, BasicAuthEnforced) {
  ServerConfig config;
  config.authenticator.add_user("alice", "secret");
  ServerFixture fixture(config);

  auto anonymous = fixture.client();
  auto denied = anonymous.get("/protected");
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(denied.value().status, kUnauthorized);
  EXPECT_TRUE(denied.value().headers.has("WWW-Authenticate"));

  ClientConfig authed_config;
  authed_config.endpoint = fixture.endpoint;
  authed_config.credentials = Credentials{"alice", "secret"};
  HttpClient authed(authed_config);
  auto allowed = authed.get("/protected");
  ASSERT_TRUE(allowed.ok());
  EXPECT_EQ(allowed.value().status, 200);

  ClientConfig wrong_config;
  wrong_config.endpoint = fixture.endpoint;
  wrong_config.credentials = Credentials{"alice", "hunter2"};
  HttpClient wrong(wrong_config);
  auto rejected = wrong.get("/protected");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, kUnauthorized);
}

TEST(HttpServer, MalformedRequestGets400AndClose) {
  ServerFixture fixture;
  auto stream = net::Network::instance().connect(fixture.endpoint);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream.value()->write("THIS IS NOT HTTP\r\n\r\n").is_ok());
  auto reply = stream.value()->read_all();
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.value().find("400"), std::string::npos);
}

TEST(HttpServer, ConnectAfterStopRefused) {
  auto fixture = std::make_unique<ServerFixture>();
  std::string endpoint = fixture->endpoint;
  fixture->server->stop();
  auto stream = net::Network::instance().connect(endpoint);
  EXPECT_FALSE(stream.ok());
  (void)endpoint;
}

TEST(HttpClient, ConnectionRefusedSurfacesError) {
  ClientConfig config;
  config.endpoint = "no-such-service";
  HttpClient client(config);
  auto response = client.get("/x");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), ErrorCode::kUnavailable);
}

TEST(HttpClient, NetworkModelAccountsTraffic) {
  ServerFixture fixture;
  auto client = fixture.client();
  net::NetworkModel model(net::LinkProfile::paper_lan());
  client.set_network_model(&model);
  auto response = client.put("/doc", std::string(10000, 'z'));
  ASSERT_TRUE(response.ok());
  EXPECT_GT(model.bytes(), 10000u);       // body + headers + response
  EXPECT_GE(model.round_trips(), 2u);     // connect + request
  EXPECT_GT(model.modeled_seconds(), 0.0);
}

}  // namespace
}  // namespace davpse::http
