// End-to-end streaming behavior of the HTTP server + DAV handler:
// bodies flow through the wire decoder in blocks, and the configured
// body limit aborts an oversized upload *during* decode — the server
// answers 413 and closes before the client has shipped the body, not
// after buffering it.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>

#include "dav/server.h"
#include "davclient/client.h"
#include "http/body.h"
#include "http/client.h"
#include "http/server.h"
#include "http/wire.h"
#include "net/network.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse {
namespace {

using testing::unique_endpoint;

/// DAV stack with a wire-level body limit.
struct LimitedStack {
  explicit LimitedStack(uint64_t max_body_bytes) : temp("limited") {
    dav::DavConfig dav_config;
    dav_config.root = temp.path();
    dav = std::make_unique<dav::DavServer>(dav_config);
    http::ServerConfig http_config;
    http_config.endpoint = unique_endpoint("test-limited");
    http_config.max_body_bytes = max_body_bytes;
    server = std::make_unique<http::HttpServer>(http_config, dav.get());
    Status status = server->start();
    if (!status.is_ok()) {
      throw std::runtime_error(status.to_string());
    }
  }

  TempDir temp;
  std::unique_ptr<dav::DavServer> dav;
  std::unique_ptr<http::HttpServer> server;
};

TEST(StreamingLimit, ChunkedUploadAbortsMidDecodeWith413) {
  LimitedStack stack(/*max_body_bytes=*/64 * 1024);
  auto stream = net::Network::instance().connect(stack.server->endpoint());
  ASSERT_TRUE(stream.ok());
  // Announce a 1 MiB chunk but send none of its data: if the limit
  // were enforced after buffering, the server would now block waiting
  // for the body. The streaming decoder rejects the chunk size line
  // itself, so the 413 arrives while the upload is still pending.
  ASSERT_TRUE(stream.value()
                  ->write("PUT /big.bin HTTP/1.1\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n"
                          "100000\r\n")
                  .is_ok());
  http::WireReader reader(stream.value().get());
  auto response = reader.read_response();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 413);
  EXPECT_FALSE(response.value().keep_alive());  // framing lost: close
  auto next = reader.read_response();
  EXPECT_FALSE(next.ok());  // connection is gone
}

TEST(StreamingLimit, DeclaredOversizeRejectedBeforeAnyBodyByte) {
  LimitedStack stack(/*max_body_bytes=*/64 * 1024);
  auto stream = net::Network::instance().connect(stack.server->endpoint());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream.value()
                  ->write("PUT /big.bin HTTP/1.1\r\n"
                          "Content-Length: 1048576\r\n\r\n")
                  .is_ok());
  http::WireReader reader(stream.value().get());
  auto response = reader.read_response();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 413);
  EXPECT_FALSE(response.value().keep_alive());
}

TEST(StreamingLimit, UnderLimitStreamedPutSucceeds) {
  LimitedStack stack(/*max_body_bytes=*/64 * 1024);
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  davclient::DavClient client(config, davclient::ParserKind::kDom);
  std::string payload(32 * 1024, 'p');
  ASSERT_TRUE(client.put("/ok.bin", payload).is_ok());
  auto fetched = client.get("/ok.bin");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), payload);
}

TEST(StreamingLimit, ConnectionSurvivesWithinLimitKeepAlive) {
  // Under-limit requests on one keep-alive connection keep framing
  // intact even though PUT bodies take the streaming path.
  LimitedStack stack(/*max_body_bytes=*/64 * 1024);
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  davclient::DavClient client(config, davclient::ParserKind::kDom);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        client.put("/doc" + std::to_string(i), std::string(1024, 'x'))
            .is_ok());
  }
  EXPECT_EQ(client.http().connections_opened(), 1u);
}

TEST(StreamingGet, ResponseStreamsWithContentLength) {
  testing::DavStack stack;
  auto client = stack.client();
  std::string payload(300 * 1024, 'q');
  ASSERT_TRUE(client.put("/doc.bin", payload).is_ok());
  // Raw-wire GET: the streamed response must carry Content-Length
  // (the file source knows its size), so keep-alive framing holds.
  auto stream = net::Network::instance().connect(stack.server->endpoint());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(
      stream.value()->write("GET /doc.bin HTTP/1.1\r\n\r\n").is_ok());
  http::WireReader reader(stream.value().get());
  auto response = reader.read_response();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().headers.get("Content-Length"),
            std::to_string(payload.size()));
  EXPECT_EQ(response.value().body, payload);
}

TEST(StreamingClient, DeadConnectionRetryNeverReusesTouchedSink) {
  // A reused keep-alive connection that dies mid-response-body must
  // NOT be retried once bytes have reached the caller's sink: a
  // replayed full body would land after the partial bytes, silently
  // corrupting the streamed output.
  std::string endpoint = testing::unique_endpoint("test-dirty-sink");
  auto listener = net::Network::instance().listen(endpoint);
  ASSERT_TRUE(listener.ok());
  std::thread fake_server([&] {
    auto conn = listener.value()->accept();
    ASSERT_TRUE(conn.ok());
    http::WireReader reader(conn.value().get());
    // First exchange completes, so the next request reuses the
    // connection.
    auto first = reader.read_request();
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(
        conn.value()
            ->write("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
            .is_ok());
    // Second exchange: 2xx head plus a partial body, then the
    // connection dies.
    auto second = reader.read_request();
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(
        conn.value()
            ->write("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc")
            .is_ok());
  });
  http::ClientConfig config;
  config.endpoint = endpoint;
  http::HttpClient client(config);
  std::string out1;
  http::StringBodySink sink1(&out1);
  auto ok = client.get_to("/a", &sink1);
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_EQ(out1, "hello");
  std::string out2;
  http::StringBodySink sink2(&out2);
  auto dropped = client.get_to("/b", &sink2);
  fake_server.join();
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), ErrorCode::kUnavailable);
  // Exactly the bytes that arrived before the drop — no replay.
  EXPECT_EQ(out2, "abc");
}

TEST(StreamingPut, ConflictCleansUpSpoolFile) {
  // A streamed PUT spools its body off the wire before the store lock;
  // when the conflict check then fails (missing parent collection) the
  // spool file must be removed, not leaked.
  testing::DavStack stack;
  auto client = stack.client();
  EXPECT_FALSE(client.put("/nope/doc.bin", std::string(1024, 'x')).is_ok());
  std::filesystem::path spool = stack.temp.path() / ".DAV" / "spool";
  std::error_code ec;
  if (std::filesystem::exists(spool, ec)) {
    EXPECT_TRUE(std::filesystem::is_empty(spool, ec));
  }
}

}  // namespace
}  // namespace davpse
