// The Figure 4 mapping, exercised over the full DAV stack: the
// object/factory layer saves a calculation, and both Ecce itself and
// schema-ignorant DAV clients can read the result.
#include "core/dav_factory.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dav_storage.h"
#include "core/schema_names.h"
#include "core/workload.h"
#include "testing/env.h"

namespace davpse::ecce {
namespace {

using davclient::Depth;
using testing::DavStack;

struct DavFactoryFixture : ::testing::Test {
  DavFactoryFixture()
      : client(stack.client()), storage(&client), factory(&storage) {
    EXPECT_TRUE(factory.initialize().is_ok());
  }
  DavStack stack;
  davclient::DavClient client;
  DavStorage storage;
  DavCalculationFactory factory;
};

/// Loaded calculations report outputs in canonical (name-sorted)
/// order; bring locally-built expectations into the same order.
void normalize_outputs(Calculation* calculation) {
  for (CalcTask& task : calculation->tasks) {
    std::sort(task.outputs.begin(), task.outputs.end(),
              [](const OutputProperty& a, const OutputProperty& b) {
                return a.name < b.name;
              });
  }
}

void expect_calculations_equal(Calculation a, Calculation b) {
  normalize_outputs(&a);
  normalize_outputs(&b);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.description, b.description);
  EXPECT_EQ(a.theory, b.theory);
  ASSERT_EQ(a.molecule.atoms.size(), b.molecule.atoms.size());
  EXPECT_EQ(a.molecule.charge, b.molecule.charge);
  for (size_t i = 0; i < a.molecule.atoms.size(); ++i) {
    EXPECT_EQ(a.molecule.atoms[i].symbol, b.molecule.atoms[i].symbol);
    EXPECT_NEAR(a.molecule.atoms[i].x, b.molecule.atoms[i].x, 1e-6);
  }
  EXPECT_EQ(a.basis.name, b.basis.name);
  EXPECT_EQ(a.basis.shells.size(), b.basis.shells.size());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].name, b.tasks[i].name);
    EXPECT_EQ(a.tasks[i].kind, b.tasks[i].kind);
    EXPECT_EQ(a.tasks[i].state, b.tasks[i].state);
    EXPECT_EQ(a.tasks[i].input_deck, b.tasks[i].input_deck);
    EXPECT_EQ(a.tasks[i].job.host, b.tasks[i].job.host);
    EXPECT_EQ(a.tasks[i].job.scheduler_id, b.tasks[i].job.scheduler_id);
    ASSERT_EQ(a.tasks[i].outputs.size(), b.tasks[i].outputs.size());
    for (size_t j = 0; j < a.tasks[i].outputs.size(); ++j) {
      EXPECT_EQ(a.tasks[i].outputs[j].name, b.tasks[i].outputs[j].name);
      EXPECT_EQ(a.tasks[i].outputs[j].values, b.tasks[i].outputs[j].values);
    }
  }
}

TEST_F(DavFactoryFixture, ProjectLifecycle) {
  ASSERT_TRUE(factory.create_project("aqueous").is_ok());
  ASSERT_TRUE(factory.create_project("gasphase").is_ok());
  auto projects = factory.list_projects();
  ASSERT_TRUE(projects.ok());
  EXPECT_EQ(projects.value(),
            (std::vector<std::string>{"aqueous", "gasphase"}));
}

TEST_F(DavFactoryFixture, SaveLoadFullCalculation) {
  Calculation original = make_uo2_calculation();
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", original).is_ok());
  auto loaded = factory.load_calculation("p", original.name,
                                         LoadParts::all());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  expect_calculations_equal(original, loaded.value());
}

TEST_F(DavFactoryFixture, LoadPartsAreSelective) {
  Calculation original = make_uo2_calculation();
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", original).is_ok());

  auto molecule_only = factory.load_calculation(
      "p", original.name, LoadParts::molecule_only());
  ASSERT_TRUE(molecule_only.ok());
  EXPECT_EQ(molecule_only.value().molecule.atoms.size(), 50u);
  EXPECT_TRUE(molecule_only.value().basis.shells.empty());
  for (const CalcTask& task : molecule_only.value().tasks) {
    EXPECT_TRUE(task.outputs.empty());
    EXPECT_TRUE(task.input_deck.empty());
  }

  LoadParts no_outputs = LoadParts::all();
  no_outputs.outputs = false;
  auto editor_view =
      factory.load_calculation("p", original.name, no_outputs);
  ASSERT_TRUE(editor_view.ok());
  EXPECT_FALSE(editor_view.value().tasks.empty());
  for (const CalcTask& task : editor_view.value().tasks) {
    EXPECT_TRUE(task.outputs.empty());
    EXPECT_FALSE(task.input_deck.empty());
  }
}

TEST_F(DavFactoryFixture, ProjectSummaryReadsMetadataOnly) {
  ASSERT_TRUE(factory.create_project("p").is_ok());
  Calculation small = make_small_calculation("calc-a", 3);
  Calculation uo2 = make_uo2_calculation();
  ASSERT_TRUE(factory.save_calculation("p", small).is_ok());
  ASSERT_TRUE(factory.save_calculation("p", uo2).is_ok());
  auto summary = factory.project_summary("p");
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  ASSERT_EQ(summary.value().size(), 2u);
  const CalcSummary* uo2_row = nullptr;
  for (const auto& row : summary.value()) {
    if (row.name == uo2.name) uo2_row = &row;
  }
  ASSERT_NE(uo2_row, nullptr);
  EXPECT_EQ(uo2_row->theory, TheoryLevel::kDFT);
  EXPECT_EQ(uo2_row->state, RunState::kComplete);
  EXPECT_EQ(uo2_row->formula, "H30O19U");
}

TEST_F(DavFactoryFixture, UpdateTaskStatePersists) {
  Calculation calc = make_small_calculation("c", 1);
  calc.tasks[0].state = RunState::kCreated;
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(
      factory.update_task_state("p", "c", "task-1", RunState::kRunning)
          .is_ok());
  auto loaded = factory.load_calculation("p", "c", LoadParts::all());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().tasks[0].state, RunState::kRunning);
}

TEST_F(DavFactoryFixture, AttachOutputAddsProperty) {
  Calculation calc = make_small_calculation("c", 2);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  size_t before = 0;
  {
    auto loaded = factory.load_calculation("p", "c", LoadParts::all());
    ASSERT_TRUE(loaded.ok());
    before = loaded.value().tasks[0].outputs.size();
  }
  OutputProperty extra = make_property("dipole", "Debye", 256, 9);
  ASSERT_TRUE(factory.attach_output("p", "c", "task-1", extra).is_ok());
  auto loaded = factory.load_calculation("p", "c", LoadParts::all());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().tasks[0].outputs.size(), before + 1);
}

TEST_F(DavFactoryFixture, CopyCalculationIsServerSideAndDeep) {
  Calculation calc = make_small_calculation("orig", 4);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(factory.copy_calculation("p", "orig", "copy").is_ok());
  auto original = factory.load_calculation("p", "orig", LoadParts::all());
  auto copied = factory.load_calculation("p", "copy", LoadParts::all());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(copied.ok());
  Calculation expected = original.value();
  expected.name = "copy";
  expect_calculations_equal(expected, copied.value());
}

TEST_F(DavFactoryFixture, RemoveCalculationDeletesSubtree) {
  Calculation calc = make_small_calculation("c", 6);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(factory.remove_calculation("p", "c").is_ok());
  EXPECT_FALSE(
      factory.load_calculation("p", "c", LoadParts::all()).ok());
  auto names = factory.list_calculations("p");
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names.value().empty());
}

TEST_F(DavFactoryFixture, BasisLibraryRoundTrip) {
  auto library = make_basis_library(4);
  for (const BasisSet& basis : library) {
    ASSERT_TRUE(factory.save_library_basis(basis).is_ok());
  }
  auto names = factory.list_library_bases();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 4u);
  auto loaded = factory.load_library_basis(library[2].name);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().shells.size(), library[2].shells.size());
}

TEST_F(DavFactoryFixture, MoleculeDiscoverableWithoutEcceSchema) {
  // "applications could search the data store for DAV documents
  // matching the formula metadata and render a 3D display of the
  // molecule without understanding the rest of the Ecce schema."
  Calculation calc = make_uo2_calculation();
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());

  auto naive = stack.client();  // fresh client, no factory layer
  auto result = naive.propfind("/Ecce", Depth::kInfinity,
                               {kFormulaProp, kFormatProp});
  ASSERT_TRUE(result.ok());
  int molecules_found = 0;
  for (const auto& response : result.value().responses) {
    auto formula = response.prop(kFormulaProp);
    auto format = response.prop(kFormatProp);
    if (formula && format) {
      ++molecules_found;
      EXPECT_EQ(*formula, "H30O19U");
      // The raw document is independently fetchable and parseable.
      auto body = naive.get(response.href);
      ASSERT_TRUE(body.ok());
      EXPECT_TRUE(Molecule::from_xyz(body.value()).ok());
    }
  }
  EXPECT_EQ(molecules_found, 1);
}

TEST_F(DavFactoryFixture, RelocateOutputKeepsVirtualDocumentIntact) {
  // §3.2.3: "an application or a DAV implementation might elect to
  // store large documents on an archive system... the DAV structure
  // can be reorganized without breaking existing applications."
  Calculation calc = make_uo2_calculation();
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());

  auto before = factory.load_calculation("p", calc.name, LoadParts::all());
  ASSERT_TRUE(before.ok());

  // Archive the 1.8 MB normal-modes document out of the calc subtree.
  ASSERT_TRUE(factory
                  .relocate_output("p", calc.name, "task-2", "normal-modes",
                                   "/Archive/large-properties/normal-modes")
                  .is_ok());
  // Physically gone from the task collection...
  EXPECT_FALSE(
      client.exists("/Ecce/p/" + calc.name + "/task-2/prop-normal-modes")
          .value());
  EXPECT_TRUE(
      client.exists("/Archive/large-properties/normal-modes").value());

  // ...but the application-level view is unchanged.
  auto after = factory.load_calculation("p", calc.name, LoadParts::all());
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  expect_calculations_equal(before.value(), after.value());

  // Relocating something unknown fails cleanly.
  EXPECT_EQ(factory
                .relocate_output("p", calc.name, "task-2", "ghost",
                                 "/Archive/x")
                .code(),
            ErrorCode::kNotFound);
}

TEST_F(DavFactoryFixture, CopyRebasesMemberHrefs) {
  Calculation calc = make_small_calculation("orig", 42);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(factory.copy_calculation("p", "orig", "copy").is_ok());

  // Mutate the ORIGINAL's outputs; the copy must not see the change
  // (i.e. its member hrefs point into its own subtree).
  OutputProperty replacement = make_property("prop-1", "a.u.", 512, 777);
  ASSERT_TRUE(
      factory.attach_output("p", "orig", "task-1", replacement).is_ok());
  auto original = factory.load_calculation("p", "orig", LoadParts::all());
  auto copied = factory.load_calculation("p", "copy", LoadParts::all());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(copied.ok());
  // The original gained/changed an output; the copy kept the old set.
  EXPECT_EQ(copied.value().tasks[0].outputs.size(),
            calc.tasks[0].outputs.size());
}

TEST_F(DavFactoryFixture, LoadMissingCalculationFails) {
  ASSERT_TRUE(factory.create_project("p").is_ok());
  auto loaded = factory.load_calculation("p", "ghost", LoadParts::all());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace davpse::ecce
