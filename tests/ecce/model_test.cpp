#include "core/model.h"

#include <gtest/gtest.h>

#include "core/workload.h"

namespace davpse::ecce {
namespace {

TEST(ModelEnums, RoundTripAllValues) {
  for (TheoryLevel theory : {TheoryLevel::kSCF, TheoryLevel::kDFT,
                             TheoryLevel::kMP2, TheoryLevel::kCCSD}) {
    auto parsed = theory_from_string(to_string(theory));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), theory);
  }
  for (TaskKind kind : {TaskKind::kGeometryOptimization, TaskKind::kEnergy,
                        TaskKind::kFrequency, TaskKind::kESP}) {
    auto parsed = task_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  for (RunState state : {RunState::kCreated, RunState::kSubmitted,
                         RunState::kRunning, RunState::kComplete,
                         RunState::kFailed}) {
    auto parsed = run_state_from_string(to_string(state));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), state);
  }
}

TEST(ModelEnums, UnknownStringsRejected) {
  EXPECT_FALSE(theory_from_string("B3LYP?").ok());
  EXPECT_FALSE(task_kind_from_string("").ok());
  EXPECT_FALSE(run_state_from_string("COMPLETE").ok());  // case-sensitive
}

TEST(InputDeck, ContainsGeometryBasisAndTaskDirective) {
  Calculation calc = make_uo2_calculation();
  const CalcTask& optimize = calc.tasks[0];
  std::string deck = generate_input_deck(calc, optimize);
  EXPECT_NE(deck.find("charge 2"), std::string::npos);
  EXPECT_NE(deck.find("geometry units angstroms"), std::string::npos);
  EXPECT_NE(deck.find("U "), std::string::npos);
  EXPECT_NE(deck.find(calc.basis.name), std::string::npos);
  EXPECT_NE(deck.find("task dft optimize"), std::string::npos);

  const CalcTask& frequency = calc.tasks[1];
  EXPECT_NE(generate_input_deck(calc, frequency).find("task dft freq"),
            std::string::npos);
}

TEST(Calculation, OutputBytesSumsAllTasks) {
  Calculation calc = make_uo2_calculation();
  size_t expected = 0;
  for (const CalcTask& task : calc.tasks) {
    for (const OutputProperty& output : task.outputs) {
      expected += output.values.size() * sizeof(double);
    }
  }
  EXPECT_EQ(calc.output_bytes(), expected);
  EXPECT_GT(calc.output_bytes(), 1800 * 1024u);
}

}  // namespace
}  // namespace davpse::ecce
