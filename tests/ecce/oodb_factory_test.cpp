// The Ecce 1.5 baseline binding: the same factory contract, backed by
// persistent object classes in the OODB.
#include "core/oodb_factory.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/workload.h"
#include "testing/env.h"

namespace davpse::ecce {
namespace {

using testing::OodbStack;

struct OodbFactoryFixture : ::testing::Test {
  OodbFactoryFixture()
      : schema(ecce_oodb_schema()),
        stack(ecce_oodb_schema()),
        client(stack.client(schema)),
        factory(client.get()) {
    EXPECT_TRUE(factory.initialize().is_ok());
  }
  oodb::Schema schema;
  OodbStack stack;
  std::unique_ptr<oodb::OodbClient> client;
  OodbCalculationFactory factory;
};

TEST_F(OodbFactoryFixture, ProjectLifecycle) {
  ASSERT_TRUE(factory.create_project("alpha").is_ok());
  ASSERT_TRUE(factory.create_project("beta").is_ok());
  auto projects = factory.list_projects();
  ASSERT_TRUE(projects.ok());
  EXPECT_EQ(projects.value(), (std::vector<std::string>{"alpha", "beta"}));
  auto none = factory.list_calculations("alpha");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(OodbFactoryFixture, SaveLoadRoundTrip) {
  Calculation original = make_uo2_calculation();
  // Loaded calculations report outputs in canonical name order.
  for (CalcTask& task : original.tasks) {
    std::sort(task.outputs.begin(), task.outputs.end(),
              [](const OutputProperty& a, const OutputProperty& b) {
                return a.name < b.name;
              });
  }
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", original).is_ok());

  auto loaded =
      factory.load_calculation("p", original.name, LoadParts::all());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  const Calculation& copy = loaded.value();
  EXPECT_EQ(copy.description, original.description);
  EXPECT_EQ(copy.theory, original.theory);
  ASSERT_EQ(copy.molecule.atoms.size(), original.molecule.atoms.size());
  EXPECT_EQ(copy.molecule.atoms[0].symbol, "U");
  EXPECT_EQ(copy.basis.shells.size(), original.basis.shells.size());
  ASSERT_EQ(copy.tasks.size(), original.tasks.size());
  for (size_t i = 0; i < copy.tasks.size(); ++i) {
    EXPECT_EQ(copy.tasks[i].input_deck, original.tasks[i].input_deck);
    EXPECT_EQ(copy.tasks[i].job.host, original.tasks[i].job.host);
    ASSERT_EQ(copy.tasks[i].outputs.size(), original.tasks[i].outputs.size());
    for (size_t j = 0; j < copy.tasks[i].outputs.size(); ++j) {
      EXPECT_EQ(copy.tasks[i].outputs[j].values,
                original.tasks[i].outputs[j].values);
    }
  }
}

TEST_F(OodbFactoryFixture, EveryAtomBecomesAnObject) {
  Calculation calc = make_uo2_calculation();
  ASSERT_TRUE(factory.create_project("p").is_ok());
  auto before = client->stats();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  auto after = client->stats();
  ASSERT_TRUE(after.ok());
  uint64_t created = after.value().first - before.value().first;
  // 50 atoms + molecule + basis shells + tasks + jobs + properties +
  // value chunks: the object-shredding that produced the paper's
  // 420k-objects-for-259-calculations store.
  uint64_t chunks = 0;
  for (const CalcTask& task : calc.tasks) {
    for (const OutputProperty& output : task.outputs) {
      chunks += (output.values.size() + kPropChunkDoubles - 1) /
                kPropChunkDoubles;
    }
  }
  EXPECT_GE(created, 50u + chunks);
  EXPECT_GT(chunks, 100u);  // the 1.8 MB property alone shreds widely
}

TEST_F(OodbFactoryFixture, SummaryFaultsMoleculesIn) {
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(
      factory.save_calculation("p", make_small_calculation("c1", 1)).is_ok());
  ASSERT_TRUE(
      factory.save_calculation("p", make_small_calculation("c2", 2)).is_ok());
  auto summary = factory.project_summary("p");
  ASSERT_TRUE(summary.ok()) << summary.status().to_string();
  ASSERT_EQ(summary.value().size(), 2u);
  EXPECT_FALSE(summary.value()[0].formula.empty());
}

TEST_F(OodbFactoryFixture, UpdateTaskStateAndAttachOutput) {
  Calculation calc = make_small_calculation("c", 3);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(
      factory.update_task_state("p", "c", "task-1", RunState::kFailed)
          .is_ok());
  OutputProperty extra = make_property("spin", "au", 128, 4);
  ASSERT_TRUE(factory.attach_output("p", "c", "task-1", extra).is_ok());

  // A different client sees the committed changes.
  auto other_client = stack.client(schema);
  OodbCalculationFactory other(other_client.get());
  ASSERT_TRUE(other.initialize().is_ok());
  auto loaded = other.load_calculation("p", "c", LoadParts::all());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().tasks[0].state, RunState::kFailed);
  bool found_spin = false;
  for (const OutputProperty& output : loaded.value().tasks[0].outputs) {
    if (output.name == "spin") found_spin = true;
  }
  EXPECT_TRUE(found_spin);
  EXPECT_EQ(
      other.update_task_state("p", "c", "ghost", RunState::kFailed).code(),
      ErrorCode::kNotFound);
}

TEST_F(OodbFactoryFixture, CopyCalculationIsClientSideDeepCopy) {
  Calculation calc = make_small_calculation("orig", 7);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(factory.copy_calculation("p", "orig", "copy").is_ok());
  auto copied = factory.load_calculation("p", "copy", LoadParts::all());
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied.value().name, "copy");
  EXPECT_EQ(copied.value().tasks.size(), calc.tasks.size());
}

TEST_F(OodbFactoryFixture, RemoveCalculationReclaimsObjects) {
  Calculation calc = make_small_calculation("c", 8);
  ASSERT_TRUE(factory.create_project("p").is_ok());
  auto before = client->stats();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  ASSERT_TRUE(factory.remove_calculation("p", "c").is_ok());
  auto after = client->stats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().first, before.value().first);
  auto names = factory.list_calculations("p");
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names.value().empty());
}

TEST_F(OodbFactoryFixture, BasisLibraryRoundTrip) {
  auto library = make_basis_library(3);
  for (const BasisSet& basis : library) {
    ASSERT_TRUE(factory.save_library_basis(basis).is_ok());
  }
  auto names = factory.list_library_bases();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value().size(), 3u);
  auto loaded = factory.load_library_basis(library[0].name);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name, library[0].name);
  EXPECT_EQ(loaded.value().shells.size(), library[0].shells.size());
  EXPECT_FALSE(factory.load_library_basis("no-such-basis").ok());
}

TEST_F(OodbFactoryFixture, SchemaEvolutionLocksOutOldStores) {
  // The motivating pain (§2): "a schema evolution process made painful
  // by outdated schema/application compilation cycles". Extending Ecce
  // (here: molecular dynamics support = one new class) makes the
  // evolved application unable to even open yesterday's store — while
  // the DAV architecture needs no agreement at all (every other test
  // in this repo adds new metadata freely).
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(
      factory.save_calculation("p", make_small_calculation("c", 9)).is_ok());
  ASSERT_TRUE(client->commit().is_ok());

  oodb::Schema evolved;
  for (const auto& def : schema.classes()) {
    std::vector<oodb::FieldDef> fields = def.fields;
    ASSERT_TRUE(evolved.add_class(def.name, std::move(fields)).is_ok());
  }
  ASSERT_TRUE(evolved
                  .add_class("MdTrajectory",
                             {{"frames", oodb::FieldType::kInt64},
                              {"data", oodb::FieldType::kDoubleArray}})
                  .is_ok());
  ASSERT_TRUE(evolved.compile().is_ok());
  EXPECT_NE(evolved.fingerprint(), schema.fingerprint());

  auto evolved_client = stack.client(evolved);
  Status status = evolved_client->open();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kConflict);
}

TEST_F(OodbFactoryFixture, SchemaHasExpectedClasses) {
  oodb::Schema s = ecce_oodb_schema();
  EXPECT_TRUE(s.compiled());
  for (const char* name :
       {"Directory", "Calculation", "Molecule", "Atom", "BasisSet",
        "BasisShell", "Task", "Job", "Property", "PropChunk"}) {
    EXPECT_NE(s.find(name), nullptr) << name;
  }
  // Deterministic: two constructions agree (client/server handshake).
  EXPECT_EQ(s.fingerprint(), ecce_oodb_schema().fingerprint());
}

}  // namespace
}  // namespace davpse::ecce
