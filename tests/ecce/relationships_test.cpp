// Relationship metadata: codec round trips, read-modify-write
// semantics, reverse lookup via SEARCH, and the pedigree-tracking
// scenario (derived data pointing back at its sources).
#include "core/relationships.h"

#include <gtest/gtest.h>

#include "testing/env.h"

namespace davpse::ecce {
namespace {

using testing::DavStack;

TEST(RelationshipCodec, RoundTrip) {
  std::vector<Relationship> rels = {
      {"derived-from", "/Ecce/p/calc1"},
      {"annotates", "/notebook/page 7"},  // space survives XML attr
      {"precedes", "/Ecce/p/calc3"},
  };
  auto decoded = decode_relationships(encode_relationships(rels));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), 3u);
  for (size_t i = 0; i < rels.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].type, rels[i].type);
    EXPECT_EQ(decoded.value()[i].href, rels[i].href);
  }
}

TEST(RelationshipCodec, EmptyAndMalformed) {
  auto empty = decode_relationships("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_FALSE(decode_relationships("<unclosed").ok());
  EXPECT_FALSE(decode_relationships(
                   "<e:rel xmlns:e=\"http://purl.pnl.gov/ecce\" "
                   "type=\"x\"/>")  // missing href
                   .ok());
  // Foreign elements between entries are tolerated and skipped.
  std::string mixed =
      encode_relationships({{"has-part", "/a"}}) + "<other xmlns=\"u\"/>";
  auto decoded = decode_relationships(mixed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 1u);
}

struct RelFixture : ::testing::Test {
  RelFixture() : client(stack.client()) {
    EXPECT_TRUE(client.mkcol("/store").is_ok());
    for (const char* name : {"raw", "refined", "report"}) {
      EXPECT_TRUE(client.put(std::string("/store/") + name, name).is_ok());
    }
  }
  DavStack stack;
  davclient::DavClient client;
};

TEST_F(RelFixture, AddAndReadBack) {
  ASSERT_TRUE(add_relationship(client, "/store/refined", kRelDerivedFrom,
                               "/store/raw")
                  .is_ok());
  auto rels = relationships_of(client, "/store/refined");
  ASSERT_TRUE(rels.ok()) << rels.status().to_string();
  ASSERT_EQ(rels.value().size(), 1u);
  EXPECT_EQ(rels.value()[0].type, "derived-from");
  EXPECT_EQ(rels.value()[0].href, "/store/raw");
  // Resources without relationships report an empty list.
  auto none = relationships_of(client, "/store/raw");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(RelFixture, DuplicatesIgnoredDistinctAccumulate) {
  ASSERT_TRUE(add_relationship(client, "/store/report", kRelDerivedFrom,
                               "/store/refined")
                  .is_ok());
  ASSERT_TRUE(add_relationship(client, "/store/report", kRelDerivedFrom,
                               "/store/refined")
                  .is_ok());
  ASSERT_TRUE(add_relationship(client, "/store/report", kRelDerivedFrom,
                               "/store/raw")
                  .is_ok());
  ASSERT_TRUE(add_relationship(client, "/store/report", kRelAnnotates,
                               "/store/raw")
                  .is_ok());
  auto rels = relationships_of(client, "/store/report");
  ASSERT_TRUE(rels.ok());
  EXPECT_EQ(rels.value().size(), 3u);
}

TEST_F(RelFixture, RemoveRelationship) {
  ASSERT_TRUE(add_relationship(client, "/store/refined", kRelDerivedFrom,
                               "/store/raw")
                  .is_ok());
  ASSERT_TRUE(remove_relationship(client, "/store/refined",
                                  kRelDerivedFrom, "/store/raw")
                  .is_ok());
  auto rels = relationships_of(client, "/store/refined");
  ASSERT_TRUE(rels.ok());
  EXPECT_TRUE(rels.value().empty());
  EXPECT_EQ(remove_relationship(client, "/store/refined", kRelDerivedFrom,
                                "/store/raw")
                .code(),
            ErrorCode::kNotFound);
}

TEST_F(RelFixture, ReverseLookupViaSearch) {
  // Pedigree: refined and report both derive from raw.
  ASSERT_TRUE(add_relationship(client, "/store/refined", kRelDerivedFrom,
                               "/store/raw")
                  .is_ok());
  ASSERT_TRUE(add_relationship(client, "/store/report", kRelDerivedFrom,
                               "/store/raw")
                  .is_ok());
  ASSERT_TRUE(add_relationship(client, "/store/report", kRelAnnotates,
                               "/store/refined")
                  .is_ok());

  auto derived = find_related(client, "/store", kRelDerivedFrom,
                              "/store/raw");
  ASSERT_TRUE(derived.ok()) << derived.status().to_string();
  ASSERT_EQ(derived.value().size(), 2u);

  auto annotators = find_related(client, "/store", kRelAnnotates,
                                 "/store/refined");
  ASSERT_TRUE(annotators.ok());
  ASSERT_EQ(annotators.value().size(), 1u);
  EXPECT_EQ(annotators.value()[0], "/store/report");

  auto nothing = find_related(client, "/store", kRelSupersedes,
                              "/store/raw");
  ASSERT_TRUE(nothing.ok());
  EXPECT_TRUE(nothing.value().empty());
}

TEST_F(RelFixture, RelationshipsSurviveCopyAndMove) {
  ASSERT_TRUE(add_relationship(client, "/store/refined", kRelDerivedFrom,
                               "/store/raw")
                  .is_ok());
  ASSERT_TRUE(client.copy("/store/refined", "/store/refined2").is_ok());
  auto copied = relationships_of(client, "/store/refined2");
  ASSERT_TRUE(copied.ok());
  ASSERT_EQ(copied.value().size(), 1u);
  ASSERT_TRUE(client.move("/store/refined", "/store/renamed").is_ok());
  auto moved = relationships_of(client, "/store/renamed");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value().size(), 1u);
}

}  // namespace
}  // namespace davpse::ecce
