// The client-side cache extension: ETag revalidation semantics,
// invalidation on every mutation path, and coherence against writers
// that bypass the cache.
#include "core/caching_storage.h"

#include <gtest/gtest.h>

#include "core/dav_factory.h"
#include "core/workload.h"
#include "testing/env.h"

namespace davpse::ecce {
namespace {

using testing::DavStack;

struct CacheFixture : ::testing::Test {
  CacheFixture() : client(stack.client()), storage(&client) {
    EXPECT_TRUE(storage.create_container("/d").is_ok());
    EXPECT_TRUE(
        storage.write_object("/d/doc", "version-1", "text/plain").is_ok());
  }
  DavStack stack;
  davclient::DavClient client;
  CachingDavStorage storage;
};

TEST_F(CacheFixture, SecondReadIsARevalidatedHit) {
  auto first = storage.read_object("/d/doc");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), "version-1");
  EXPECT_EQ(storage.misses(), 1u);
  EXPECT_EQ(storage.hits(), 0u);

  auto second = storage.read_object("/d/doc");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), "version-1");
  EXPECT_EQ(storage.misses(), 1u);
  EXPECT_EQ(storage.hits(), 1u);
  EXPECT_EQ(storage.cached_documents(), 1u);
  EXPECT_EQ(storage.cached_bytes(), 9u);
}

TEST_F(CacheFixture, LocalWriteInvalidates) {
  ASSERT_TRUE(storage.read_object("/d/doc").ok());
  ASSERT_TRUE(
      storage.write_object("/d/doc", "version-2", "text/plain").is_ok());
  auto read = storage.read_object("/d/doc");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "version-2");
  EXPECT_EQ(storage.misses(), 2u);  // both reads were full fetches
}

TEST_F(CacheFixture, ForeignWriteCaughtByEtagValidation) {
  ASSERT_TRUE(storage.read_object("/d/doc").ok());
  // Another client writes behind the cache's back.
  auto other = stack.client();
  // Ensure a different mtime second is not required: size changes too.
  ASSERT_TRUE(other.put("/d/doc", "foreign-version-longer").is_ok());
  auto read = storage.read_object("/d/doc");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "foreign-version-longer");
}

TEST_F(CacheFixture, RemoveInvalidatesSubtree) {
  ASSERT_TRUE(
      storage.write_object("/d/doc2", "x", "text/plain").is_ok());
  ASSERT_TRUE(storage.read_object("/d/doc").ok());
  ASSERT_TRUE(storage.read_object("/d/doc2").ok());
  EXPECT_EQ(storage.cached_documents(), 2u);
  ASSERT_TRUE(storage.remove("/d").is_ok());
  EXPECT_EQ(storage.cached_documents(), 0u);
  EXPECT_EQ(storage.read_object("/d/doc").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CacheFixture, MoveAndCopyInvalidateTargets) {
  ASSERT_TRUE(storage.read_object("/d/doc").ok());
  ASSERT_TRUE(storage.move("/d/doc", "/d/renamed").is_ok());
  EXPECT_EQ(storage.read_object("/d/doc").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(storage.read_object("/d/renamed").value(), "version-1");

  ASSERT_TRUE(storage.copy("/d/renamed", "/d/copy").is_ok());
  EXPECT_EQ(storage.read_object("/d/copy").value(), "version-1");
}

TEST_F(CacheFixture, ClearResetsEverything) {
  ASSERT_TRUE(storage.read_object("/d/doc").ok());
  ASSERT_TRUE(storage.read_object("/d/doc").ok());
  storage.clear();
  EXPECT_EQ(storage.hits(), 0u);
  EXPECT_EQ(storage.cached_documents(), 0u);
  auto read = storage.read_object("/d/doc");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(storage.misses(), 1u);
}

TEST(CachingFactory, RepeatedToolLoadsRevalidateInsteadOfRefetch) {
  // The factory stack works unchanged over the caching storage — the
  // decorator drops in exactly where Figure 2 says a cache would go.
  DavStack stack;
  auto client = stack.client();
  CachingDavStorage storage(&client);
  DavCalculationFactory factory(&storage);
  ASSERT_TRUE(factory.initialize().is_ok());
  ASSERT_TRUE(factory.create_project("p").is_ok());
  Calculation calc = make_uo2_calculation();
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());

  auto first = factory.load_calculation("p", calc.name, LoadParts::all());
  ASSERT_TRUE(first.ok());
  uint64_t misses_after_first = storage.misses();
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(storage.hits(), 0u);

  auto second = factory.load_calculation("p", calc.name, LoadParts::all());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(storage.misses(), misses_after_first);  // no re-shipping
  EXPECT_GT(storage.hits(), 0u);
  EXPECT_EQ(second.value().output_bytes(), first.value().output_bytes());
}

}  // namespace
}  // namespace davpse::ecce
