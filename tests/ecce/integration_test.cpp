// Cross-cutting Ecce scenarios: factory parity (same model through
// both architectures), the §3.2.4 migration, the Section 4 agents, and
// the Table 3 tool kernels end-to-end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/agents.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/migrate.h"
#include "core/oodb_factory.h"
#include "core/schema_names.h"
#include "core/tools.h"
#include "core/workload.h"
#include "testing/env.h"
#include "util/fs.h"

namespace davpse::ecce {
namespace {

using testing::DavStack;
using testing::OodbStack;

TEST(FactoryParity, SameCalculationThroughBothArchitectures) {
  Calculation original = make_uo2_calculation();

  DavStack dav_stack;
  auto dav_client = dav_stack.client();
  DavStorage storage(&dav_client);
  DavCalculationFactory dav_factory(&storage);
  ASSERT_TRUE(dav_factory.initialize().is_ok());
  ASSERT_TRUE(dav_factory.create_project("p").is_ok());
  ASSERT_TRUE(dav_factory.save_calculation("p", original).is_ok());

  oodb::Schema schema = ecce_oodb_schema();
  OodbStack oodb_stack(ecce_oodb_schema());
  auto oodb_client = oodb_stack.client(schema);
  OodbCalculationFactory oodb_factory(oodb_client.get());
  ASSERT_TRUE(oodb_factory.initialize().is_ok());
  ASSERT_TRUE(oodb_factory.create_project("p").is_ok());
  ASSERT_TRUE(oodb_factory.save_calculation("p", original).is_ok());

  auto from_dav =
      dav_factory.load_calculation("p", original.name, LoadParts::all());
  auto from_oodb =
      oodb_factory.load_calculation("p", original.name, LoadParts::all());
  ASSERT_TRUE(from_dav.ok());
  ASSERT_TRUE(from_oodb.ok());

  const Calculation& a = from_dav.value();
  const Calculation& b = from_oodb.value();
  EXPECT_EQ(a.description, b.description);
  EXPECT_EQ(a.theory, b.theory);
  ASSERT_EQ(a.molecule.atoms.size(), b.molecule.atoms.size());
  for (size_t i = 0; i < a.molecule.atoms.size(); ++i) {
    EXPECT_EQ(a.molecule.atoms[i].symbol, b.molecule.atoms[i].symbol);
    EXPECT_NEAR(a.molecule.atoms[i].x, b.molecule.atoms[i].x, 1e-6);
    EXPECT_NEAR(a.molecule.atoms[i].y, b.molecule.atoms[i].y, 1e-6);
    EXPECT_NEAR(a.molecule.atoms[i].z, b.molecule.atoms[i].z, 1e-6);
  }
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].input_deck, b.tasks[i].input_deck);
    ASSERT_EQ(a.tasks[i].outputs.size(), b.tasks[i].outputs.size());
    for (size_t j = 0; j < a.tasks[i].outputs.size(); ++j) {
      EXPECT_EQ(a.tasks[i].outputs[j].values, b.tasks[i].outputs[j].values);
    }
  }
}

TEST(Migration, TwoStageOodbToDav) {
  // Legacy store: projects of small calculations plus a basis library.
  oodb::Schema schema = ecce_oodb_schema();
  OodbStack oodb_stack(ecce_oodb_schema());
  auto oodb_client = oodb_stack.client(schema);
  OodbCalculationFactory source(oodb_client.get());
  ASSERT_TRUE(source.initialize().is_ok());
  constexpr int kProjects = 2, kCalcsPerProject = 3;
  for (int p = 0; p < kProjects; ++p) {
    std::string project = "proj" + std::to_string(p);
    ASSERT_TRUE(source.create_project(project).is_ok());
    for (int c = 0; c < kCalcsPerProject; ++c) {
      ASSERT_TRUE(source
                      .save_calculation(
                          project, make_small_calculation(
                                       "calc" + std::to_string(c),
                                       p * 100 + c + 1))
                      .is_ok());
    }
  }
  for (const BasisSet& basis : make_basis_library(2)) {
    ASSERT_TRUE(source.save_library_basis(basis).is_ok());
  }

  // Raw files on "the user's local disk" (stage 2 input).
  TempDir raw_dir("rawfiles");
  namespace fs = std::filesystem;
  fs::create_directories(raw_dir.path() / "proj0" / "calc1");
  ASSERT_TRUE(write_file_atomic(raw_dir.path() / "proj0" / "calc1" /
                                    "output.log",
                                std::string(5000, 'L'))
                  .is_ok());
  ASSERT_TRUE(write_file_atomic(
                  raw_dir.path() / "proj0" / "calc1" / "restart.db",
                  std::string(2000, 'R'))
                  .is_ok());

  // Destination stack.
  DavStack dav_stack;
  auto dav_client = dav_stack.client();
  DavStorage storage(&dav_client);
  DavCalculationFactory dest(&storage);

  Migrator migrator(&source, &dest, &storage);
  auto report = migrator.migrate_all();
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report.value().projects, static_cast<size_t>(kProjects));
  EXPECT_EQ(report.value().calculations,
            static_cast<size_t>(kProjects * kCalcsPerProject));

  MigrationReport stage2 = report.value();
  ASSERT_TRUE(migrator.move_raw_files(raw_dir.path(), &stage2).is_ok());
  EXPECT_EQ(stage2.raw_files_moved, 2u);
  EXPECT_EQ(stage2.raw_bytes_moved, 7000u);

  // Everything is readable through the new architecture.
  for (int p = 0; p < kProjects; ++p) {
    std::string project = "proj" + std::to_string(p);
    for (int c = 0; c < kCalcsPerProject; ++c) {
      std::string name = "calc" + std::to_string(c);
      auto from_source =
          source.load_calculation(project, name, LoadParts::all());
      auto from_dest = dest.load_calculation(project, name, LoadParts::all());
      ASSERT_TRUE(from_source.ok());
      ASSERT_TRUE(from_dest.ok()) << project << "/" << name;
      EXPECT_EQ(from_dest.value().tasks.size(),
                from_source.value().tasks.size());
      EXPECT_EQ(from_dest.value().output_bytes(),
                from_source.value().output_bytes());
    }
  }
  // Raw files became members of the calculation virtual document.
  auto raw = dav_client.get("/Ecce/proj0/calc1/raw-output.log");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.value().size(), 5000u);
  // Library migrated too.
  auto bases = dest.list_library_bases();
  ASSERT_TRUE(bases.ok());
  EXPECT_EQ(bases.value().size(), 2u);
}

TEST(Agents, FormulaSearchFindsOnlyMolecules) {
  DavStack stack;
  auto client = stack.client();
  DavStorage storage(&client);
  DavCalculationFactory factory(&storage);
  ASSERT_TRUE(factory.initialize().is_ok());
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(
      factory.save_calculation("p", make_uo2_calculation()).is_ok());
  ASSERT_TRUE(
      factory.save_calculation("p", make_small_calculation("w", 11)).is_ok());

  FormulaSearchAgent agent(&client);
  auto all = agent.search("/Ecce");
  ASSERT_TRUE(all.ok());
  // save_calculation stamps ecce:formula on the calculation collection
  // AND the molecule document; only documents are reported.
  EXPECT_EQ(all.value().size(), 2u);
  auto filtered = agent.search("/Ecce", "H30O19U");
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered.value().size(), 1u);
  EXPECT_EQ(filtered.value()[0].format, "xyz");

  auto none = agent.search("/Ecce", "C60");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());

  // The DASL strategy returns exactly the same hits with server-side
  // filtering.
  FormulaSearchAgent dasl(&client,
                          FormulaSearchAgent::Strategy::kServerSearch);
  auto dasl_all = dasl.search("/Ecce");
  ASSERT_TRUE(dasl_all.ok()) << dasl_all.status().to_string();
  ASSERT_EQ(dasl_all.value().size(), all.value().size());
  for (size_t i = 0; i < all.value().size(); ++i) {
    EXPECT_EQ(dasl_all.value()[i].path, all.value()[i].path);
    EXPECT_EQ(dasl_all.value()[i].formula, all.value()[i].formula);
  }
  auto dasl_filtered = dasl.search("/Ecce", "H30O19U");
  ASSERT_TRUE(dasl_filtered.ok());
  EXPECT_EQ(dasl_filtered.value().size(), 1u);
}

TEST(Agents, ThermoAgentAnnotatesAndEcceSeesIt) {
  DavStack stack;
  auto client = stack.client();
  DavStorage storage(&client);
  DavCalculationFactory factory(&storage);
  ASSERT_TRUE(factory.initialize().is_ok());
  ASSERT_TRUE(factory.create_project("p").is_ok());
  ASSERT_TRUE(
      factory.save_calculation("p", make_uo2_calculation()).is_ok());

  ThermoAgent agent(&client);
  auto annotated = agent.annotate("/Ecce");
  ASSERT_TRUE(annotated.ok()) << annotated.status().to_string();
  EXPECT_EQ(annotated.value(), 1u);

  // The new metadata is immediately queryable alongside Ecce's own —
  // no schema change, no Ecce involvement.
  std::string molecule_path = "/Ecce/p/uo2-15h2o-dft/molecule";
  auto enthalpy = client.get_property(molecule_path, kThermoEnthalpyProp);
  ASSERT_TRUE(enthalpy.ok());
  EXPECT_FALSE(enthalpy.value().empty());
  auto source = client.get_property(molecule_path, kThermoSourceProp);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value(), "thermo-agent/1.0");
  // Ecce's own metadata is untouched.
  auto formula = client.get_property(molecule_path, kFormulaProp);
  ASSERT_TRUE(formula.ok());
  EXPECT_EQ(formula.value(), "H30O19U");
}

TEST(Agents, ThermoEstimateIsDeterministicAndSizeMonotone) {
  ThermoEstimate small = estimate_thermo(make_water_cluster(2, 1));
  ThermoEstimate small_again = estimate_thermo(make_water_cluster(2, 1));
  EXPECT_DOUBLE_EQ(small.enthalpy_kj_mol, small_again.enthalpy_kj_mol);
  ThermoEstimate large = estimate_thermo(make_water_cluster(20, 1));
  EXPECT_GT(large.entropy_j_mol_k, small.entropy_j_mol_k);
  EXPECT_LT(large.enthalpy_kj_mol, small.enthalpy_kj_mol);
}

TEST(ToolKernels, AllSixRunAgainstDavFactory) {
  DavStack stack;
  auto client = stack.client();
  DavStorage storage(&client);
  DavCalculationFactory factory(&storage);
  ASSERT_TRUE(factory.initialize().is_ok());
  ASSERT_TRUE(factory.create_project("p").is_ok());
  Calculation calc = make_uo2_calculation();
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  for (const BasisSet& basis : make_basis_library(5)) {
    ASSERT_TRUE(factory.save_library_basis(basis).is_ok());
  }

  auto tools = make_all_tools(&factory);
  ASSERT_EQ(tools.size(), 6u);
  for (auto& tool : tools) {
    ASSERT_TRUE(tool->start().is_ok()) << tool->name();
    ASSERT_TRUE(tool->load("p", calc.name).is_ok()) << tool->name();
  }
  // Selectivity: the viewer holds the 1.8 MB outputs, the builder only
  // the molecule, the launcher neither.
  size_t builder = tools[0]->resident_bytes();
  size_t basis_tool = tools[1]->resident_bytes();
  size_t viewer = tools[3]->resident_bytes();
  size_t launcher = tools[5]->resident_bytes();
  EXPECT_LT(builder, 16 * 1024u);
  EXPECT_GT(viewer, 1800 * 1024u);
  EXPECT_LT(launcher, viewer / 10);
  EXPECT_GT(basis_tool, 0u);
}

TEST(ToolKernels, CalcManagerSummarizesProject) {
  DavStack stack;
  auto client = stack.client();
  DavStorage storage(&client);
  DavCalculationFactory factory(&storage);
  ASSERT_TRUE(factory.initialize().is_ok());
  ASSERT_TRUE(factory.create_project("p").is_ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(factory
                    .save_calculation("p", make_small_calculation(
                                               "c" + std::to_string(i), i + 1))
                    .is_ok());
  }
  CalcManagerTool manager(&factory);
  ASSERT_TRUE(manager.start().is_ok());
  ASSERT_TRUE(manager.load_project("p").is_ok());
  EXPECT_EQ(manager.summaries().size(), 4u);
}

TEST(ToolKernels, AllSixRunAgainstOodbFactory) {
  oodb::Schema schema = ecce_oodb_schema();
  OodbStack stack(ecce_oodb_schema());
  auto client = stack.client(schema);
  OodbCalculationFactory factory(client.get());
  ASSERT_TRUE(factory.initialize().is_ok());
  ASSERT_TRUE(factory.create_project("p").is_ok());
  Calculation calc = make_small_calculation("c", 21);
  ASSERT_TRUE(factory.save_calculation("p", calc).is_ok());
  for (const BasisSet& basis : make_basis_library(3)) {
    ASSERT_TRUE(factory.save_library_basis(basis).is_ok());
  }
  auto tools = make_all_tools(&factory);
  for (auto& tool : tools) {
    ASSERT_TRUE(tool->start().is_ok()) << tool->name();
    ASSERT_TRUE(tool->load("p", calc.name).is_ok()) << tool->name();
  }
}

}  // namespace
}  // namespace davpse::ecce
