#include "core/chem.h"

#include <gtest/gtest.h>

#include "core/workload.h"

namespace davpse::ecce {
namespace {

TEST(Molecule, Uo2BenchmarkShape) {
  Molecule molecule = make_uo2_15h2o();
  EXPECT_EQ(molecule.atoms.size(), 50u);  // the paper's 50-atom system
  EXPECT_EQ(molecule.charge, 2);
  size_t uranium = 0, oxygen = 0, hydrogen = 0;
  for (const Atom& atom : molecule.atoms) {
    if (atom.symbol == "U") ++uranium;
    if (atom.symbol == "O") ++oxygen;
    if (atom.symbol == "H") ++hydrogen;
  }
  EXPECT_EQ(uranium, 1u);
  EXPECT_EQ(oxygen, 19u);
  EXPECT_EQ(hydrogen, 30u);
}

TEST(Molecule, EmpiricalFormulaHillOrder) {
  Molecule water;
  water.atoms = {{"O", 0, 0, 0}, {"H", 0, 0, 1}, {"H", 0, 1, 0}};
  EXPECT_EQ(water.empirical_formula(), "H2O");

  Molecule methane;
  methane.atoms = {{"C", 0, 0, 0}, {"H", 1, 0, 0}, {"H", 0, 1, 0},
                   {"H", 0, 0, 1}, {"H", 1, 1, 1}};
  EXPECT_EQ(methane.empirical_formula(), "CH4");

  EXPECT_EQ(make_uo2_15h2o().empirical_formula(), "H30O19U");
}

TEST(Molecule, SymmetryGuess) {
  Molecule lone;
  lone.atoms = {{"He", 0, 0, 0}};
  EXPECT_EQ(lone.symmetry_group(), "Kh");
  Molecule diatomic;
  diatomic.atoms = {{"C", 0, 0, 0}, {"O", 0, 0, 1.1}};
  EXPECT_EQ(diatomic.symmetry_group(), "C*v");
  Molecule linear;
  linear.atoms = {{"O", 0, 0, -1.16}, {"C", 0, 0, 0}, {"O", 0, 0, 1.16}};
  EXPECT_EQ(linear.symmetry_group(), "D*h");
  EXPECT_EQ(make_uo2_15h2o().symmetry_group(), "C1");
}

TEST(Molecule, XyzRoundTrip) {
  Molecule original = make_uo2_15h2o();
  auto parsed = Molecule::from_xyz(original.to_xyz());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().atoms.size(), original.atoms.size());
  EXPECT_EQ(parsed.value().name, original.name);
  for (size_t i = 0; i < original.atoms.size(); ++i) {
    EXPECT_EQ(parsed.value().atoms[i].symbol, original.atoms[i].symbol);
    EXPECT_NEAR(parsed.value().atoms[i].x, original.atoms[i].x, 1e-6);
    EXPECT_NEAR(parsed.value().atoms[i].y, original.atoms[i].y, 1e-6);
    EXPECT_NEAR(parsed.value().atoms[i].z, original.atoms[i].z, 1e-6);
  }
}

TEST(Molecule, XyzRejectsMalformed) {
  EXPECT_FALSE(Molecule::from_xyz("").ok());
  EXPECT_FALSE(Molecule::from_xyz("abc\nname\n").ok());
  EXPECT_FALSE(Molecule::from_xyz("2\nname\nO 0 0 0\n").ok());  // count short
  EXPECT_FALSE(Molecule::from_xyz("1\nname\nO 0 zero 0\n").ok());
  EXPECT_FALSE(Molecule::from_xyz("1\nname\nO 0 0\n").ok());  // 3 fields
}

TEST(Molecule, PdbRoundTrip) {
  Molecule original = make_water_cluster(4, 99);
  auto parsed = Molecule::from_pdb(original.to_pdb());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().atoms.size(), original.atoms.size());
  EXPECT_EQ(parsed.value().name, original.name);
  for (size_t i = 0; i < original.atoms.size(); ++i) {
    EXPECT_EQ(parsed.value().atoms[i].symbol, original.atoms[i].symbol);
    EXPECT_NEAR(parsed.value().atoms[i].x, original.atoms[i].x, 1e-3);
  }
}

TEST(Molecule, PdbRejectsMalformed) {
  EXPECT_FALSE(Molecule::from_pdb("no atom records here\n").ok());
  EXPECT_FALSE(Molecule::from_pdb("HETATM short\n").ok());
}

TEST(BasisSet, TextRoundTrip) {
  BasisSet original = make_basis_set("cc-pVDZ", {"U", "O", "H"}, 5);
  auto parsed = BasisSet::from_text(original.to_text());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().name, original.name);
  ASSERT_EQ(parsed.value().shells.size(), original.shells.size());
  for (size_t i = 0; i < original.shells.size(); ++i) {
    EXPECT_EQ(parsed.value().shells[i].element, original.shells[i].element);
    EXPECT_EQ(parsed.value().shells[i].shell_type,
              original.shells[i].shell_type);
    ASSERT_EQ(parsed.value().shells[i].exponents.size(),
              original.shells[i].exponents.size());
    for (size_t j = 0; j < original.shells[i].exponents.size(); ++j) {
      EXPECT_NEAR(parsed.value().shells[i].exponents[j] /
                      original.shells[i].exponents[j],
                  1.0, 1e-6);
    }
  }
}

TEST(BasisSet, FromTextRejections) {
  EXPECT_FALSE(BasisSet::from_text("").ok());
  EXPECT_FALSE(BasisSet::from_text("garbage\n").ok());
  EXPECT_FALSE(BasisSet::from_text("BASIS noquotes\n").ok());
  EXPECT_FALSE(
      BasisSet::from_text("BASIS \"x\"\n 1.0 2.0\nEND\n").ok());  // primitive
                                                                  // before
                                                                  // shell
}

TEST(OutputProperty, BytesRoundTrip) {
  OutputProperty original = make_property("gradient", "Hartree/Bohr",
                                          100 * 1024, 77);
  EXPECT_TRUE(original.shape_consistent());
  auto parsed = OutputProperty::from_bytes(original.to_bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().name, original.name);
  EXPECT_EQ(parsed.value().units, original.units);
  EXPECT_EQ(parsed.value().dimensions, original.dimensions);
  EXPECT_EQ(parsed.value().values, original.values);
}

TEST(OutputProperty, SizeTargetsApproximated) {
  OutputProperty big = make_property("modes", "A", 1800 * 1024, 1);
  size_t payload = big.values.size() * sizeof(double);
  EXPECT_NEAR(static_cast<double>(payload), 1800 * 1024.0, 1024.0);
}

TEST(OutputProperty, FromBytesRejections) {
  EXPECT_FALSE(OutputProperty::from_bytes("").ok());
  EXPECT_FALSE(OutputProperty::from_bytes("WRONGMAGIC___").ok());
  OutputProperty original = make_property("p", "u", 1024, 2);
  std::string encoded = original.to_bytes();
  EXPECT_FALSE(
      OutputProperty::from_bytes(encoded.substr(0, encoded.size() / 2)).ok());
}

TEST(Workload, SmallCalculationsAreSmallAndDeterministic) {
  Calculation a = make_small_calculation("c1", 5);
  Calculation b = make_small_calculation("c1", 5);
  EXPECT_EQ(a.molecule.atoms.size(), b.molecule.atoms.size());
  EXPECT_EQ(a.output_bytes(), b.output_bytes());
  EXPECT_LE(a.molecule.atoms.size(), 12u);
  EXPECT_LE(a.output_bytes(), 6 * 4096u);
  EXPECT_FALSE(a.tasks.empty());
  EXPECT_FALSE(a.tasks[0].input_deck.empty());
}

TEST(Workload, Uo2CalculationMatchesPaperScale) {
  Calculation calc = make_uo2_calculation();
  EXPECT_EQ(calc.molecule.atoms.size(), 50u);
  EXPECT_EQ(calc.tasks.size(), 3u);
  size_t max_property = 0;
  for (const CalcTask& task : calc.tasks) {
    for (const OutputProperty& output : task.outputs) {
      max_property = std::max(max_property,
                              output.values.size() * sizeof(double));
    }
  }
  // "individual output properties up to 1.8 MB in size"
  EXPECT_NEAR(static_cast<double>(max_property), 1800 * 1024.0, 2048.0);
}

TEST(Workload, BasisLibraryHasDistinctNames) {
  auto library = make_basis_library(15);
  ASSERT_EQ(library.size(), 15u);
  for (size_t i = 0; i < library.size(); ++i) {
    EXPECT_FALSE(library[i].shells.empty());
    for (size_t j = i + 1; j < library.size(); ++j) {
      EXPECT_NE(library[i].name, library[j].name);
    }
  }
}

}  // namespace
}  // namespace davpse::ecce
