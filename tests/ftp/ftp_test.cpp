#include "ftp/ftp.h"

#include <gtest/gtest.h>

#include <atomic>

#include "util/fs.h"
#include "util/random.h"

namespace davpse::ftp {
namespace {

std::string unique_endpoint() {
  static std::atomic<int> counter{0};
  return "ftptest-" + std::to_string(counter.fetch_add(1));
}

struct FtpFixture {
  FtpFixture() : temp("ftptest") {
    FtpServerConfig config;
    config.endpoint = unique_endpoint();
    config.root = temp.path();
    config.user = "chemist";
    config.password = "s3cret";
    endpoint = config.endpoint;
    server = std::make_unique<FtpServer>(config);
    EXPECT_TRUE(server->start().is_ok());
  }
  TempDir temp;
  std::string endpoint;
  std::unique_ptr<FtpServer> server;
};

TEST(Ftp, LoginStoreRetrieve) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  std::string payload("binary\0payload", 14);
  ASSERT_TRUE(client.store("output.dat", payload).is_ok());
  auto fetched = client.retrieve("output.dat");
  ASSERT_TRUE(fetched.ok()) << fetched.status().to_string();
  EXPECT_EQ(fetched.value(), payload);
  EXPECT_TRUE(client.quit().is_ok());
}

TEST(Ftp, StoredFileLandsOnDisk) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  ASSERT_TRUE(client.store("f.bin", "0123456789").is_ok());
  std::string contents;
  ASSERT_TRUE(read_file(fixture.temp.path() / "f.bin", &contents).is_ok());
  EXPECT_EQ(contents, "0123456789");
}

TEST(Ftp, WrongPasswordRejected) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  Status status = client.login("chemist", "wrong");
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(Ftp, CommandsBeforeLoginRejected) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  Status status = client.store("f", "data");
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
}

TEST(Ftp, RetrieveMissingFileIsNotFound) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  auto fetched = client.retrieve("missing.dat");
  EXPECT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), ErrorCode::kNotFound);
}

TEST(Ftp, PathTraversalNamesRejected) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  EXPECT_FALSE(client.store("../escape", "x").is_ok());
  EXPECT_FALSE(client.store("a/b", "x").is_ok());
  EXPECT_FALSE(client.retrieve("..").ok());
}

TEST(Ftp, LargeBinaryTransferIntegrity) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  Rng rng(13);
  std::string payload = rng.binary_blob(5 * 1024 * 1024);
  ASSERT_TRUE(client.store("big.bin", payload).is_ok());
  auto fetched = client.retrieve("big.bin");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), payload);
}

TEST(Ftp, MultipleTransfersOnOneSession) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  for (int i = 0; i < 5; ++i) {
    std::string name = "file" + std::to_string(i);
    std::string data = "payload-" + std::to_string(i);
    ASSERT_TRUE(client.store(name, data).is_ok());
    auto fetched = client.retrieve(name);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value(), data);
  }
}

TEST(Ftp, NetworkModelAccountsDataBytes) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  net::NetworkModel model(net::LinkProfile::paper_lan());
  client.set_network_model(&model);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  std::string payload(100'000, 'd');
  ASSERT_TRUE(client.store("d.bin", payload).is_ok());
  EXPECT_GE(model.bytes(), payload.size());
  EXPECT_GE(model.round_trips(), 5u);  // greeting, USER, PASS, TYPE, PASV...
}

TEST(Ftp, OverwriteExistingFile) {
  FtpFixture fixture;
  FtpClient client(fixture.endpoint);
  ASSERT_TRUE(client.login("chemist", "s3cret").is_ok());
  ASSERT_TRUE(client.store("f", "first").is_ok());
  ASSERT_TRUE(client.store("f", "second").is_ok());
  EXPECT_EQ(client.retrieve("f").value(), "second");
}

}  // namespace
}  // namespace davpse::ftp
