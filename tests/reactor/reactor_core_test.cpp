// Server-level reactor-core behavior: idle keep-alive connections park
// without consuming workers, shedding never blocks the reactor on a
// non-reading peer, the in-flight gauge provably drains, stop() with
// thousands of parked connections returns promptly, and pipelined
// bytes buffered past one request are never stranded.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "http/server.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "testing/env.h"

namespace davpse::http {
namespace {

class EchoHandler final : public Handler {
 public:
  HttpResponse handle(const HttpRequest&) override {
    return HttpResponse::make(kOk, "ok\n");
  }
};

class GatedHandler final : public Handler {
 public:
  HttpResponse handle(const HttpRequest&) override {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return HttpResponse::make(kOk, "ok\n");
  }
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
};

bool wait_until(const std::function<bool()>& cond, double timeout = 5.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

/// Writes one GET and reads the complete "ok\n"-bodied response,
/// leaving the connection open (server side goes keep-alive idle).
void serve_one_get(net::Stream& stream) {
  ASSERT_TRUE(stream.write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  std::string reply;
  char buf[512];
  while (reply.find("ok\n") == std::string::npos) {
    auto n = stream.read(buf, sizeof buf);
    ASSERT_TRUE(n.ok()) << n.status().to_string();
    ASSERT_GT(n.value(), 0u) << "connection closed mid-response";
    reply.append(buf, n.value());
  }
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos);
}

TEST(ReactorCore, IdleKeepAliveConnectionsDoNotConsumeWorkers) {
  // Under the old thread-per-connection model this test cannot pass:
  // 50 idle keep-alive connections with ONE worker would pin it for
  // the full 15 s idle window. The reactor parks them all.
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-idle");
  config.workers = 1;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kIdle = 50;
  std::vector<std::unique_ptr<net::Stream>> conns;
  for (int i = 0; i < kIdle; ++i) {
    auto conn = net::Network::instance().connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    serve_one_get(*conn.value());
    conns.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.parked") >= kIdle;
  })) << "idle connections were not parked";

  // The single worker is free: a fresh client is served immediately.
  ClientConfig client_config;
  client_config.endpoint = server.endpoint();
  HttpClient client(client_config);
  auto response = client.get("/");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, kOk);
  // The worker finishes its post-reply bookkeeping (busy time, gauge
  // decrements) after the client has already read the response.
  EXPECT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.in_flight") == 0;
  })) << "in-flight gauge did not drain after the response was read";

  // And every parked connection is still live for another request.
  serve_one_get(*conns[0]);
  serve_one_get(*conns[kIdle - 1]);
  for (auto& conn : conns) conn->close();
}

TEST(ReactorCore, ShedWriteNeverBlocksOnNonReadingPeer) {
  // Regression: the shed path used to write the 503 with a blocking
  // Stream::write from the accept path. On a tiny-capacity network a
  // peer that never reads would wedge that thread — and with it every
  // subsequent accept. The reactor sends the 503 with one non-blocking
  // write and drops the rest.
  net::Network tiny(32);  // 503 reply (~100 B) cannot fully fit
  obs::Registry registry;
  GatedHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-shed");
  config.workers = 1;
  config.max_queue_depth = 1;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start(tiny).is_ok());

  // Occupy the lone worker.
  auto busy = tiny.connect(server.endpoint());
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(
      busy.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] { return handler.entered.load() >= 1; }));

  // Fill the queue-depth slot with a second pending request.
  auto queued = tiny.connect(server.endpoint());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(
      queued.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.parked") == 0 &&
           registry.counter("http.server.connections").value() >= 2;
  }));

  // Non-reading peers that must be shed. A blocked reactor would stop
  // accepting after the first one; all three must be shed promptly.
  std::vector<std::unique_ptr<net::Stream>> mute;
  for (int i = 0; i < 3; ++i) {
    auto conn = tiny.connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    (void)conn.value()->write("G");  // arrives, but the peer never reads
    mute.push_back(std::move(conn).value());
  }
  EXPECT_TRUE(wait_until([&] {
    return registry.counter("http.server.shed").value() >= 3;
  })) << "reactor stalled behind a non-reading shed target";

  handler.release.store(true);
  for (auto& conn : mute) conn->close();
  busy.value()->close();
  queued.value()->close();

  // The in-flight gauge drains to zero along every path — served,
  // shed, and aborted alike.
  EXPECT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.in_flight") == 0;
  }));
}

TEST(ReactorCore, StopWithThousandsOfParkedConnectionsReturnsPromptly) {
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-stop");
  config.workers = 4;
  config.keep_alive_timeout_seconds = 60;  // stop() must not wait this out
  config.metrics = &registry;
  auto server = std::make_unique<HttpServer>(config, &handler);
  ASSERT_TRUE(server->start().is_ok());

  constexpr int kConns = 2000;
  std::vector<std::unique_ptr<net::Stream>> conns;
  conns.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto conn = net::Network::instance().connect(server->endpoint());
    ASSERT_TRUE(conn.ok());
    serve_one_get(*conn.value());
    conns.push_back(std::move(conn).value());
  }
  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.parked") >= kConns;
  }));
  EXPECT_EQ(server->requests_served(), static_cast<uint64_t>(kConns));

  auto start = std::chrono::steady_clock::now();
  server->stop();
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // Poller wakeup + O(1) close per connection: nowhere near the 60 s
  // keep-alive window, and no per-connection timeout waits.
  EXPECT_LT(elapsed, 5.0);
  EXPECT_EQ(registry.snapshot().gauge("http.server.parked"), 0);
  EXPECT_EQ(registry.snapshot().gauge("http.server.in_flight"), 0);

  // Every parked peer was aborted, not leaked: reads now fail or EOF.
  char buf[8];
  auto n = conns[0]->read(buf, sizeof buf);
  EXPECT_TRUE(!n.ok() || n.value() == 0);
  for (auto& conn : conns) conn->close();
}

TEST(ReactorCore, StopAbortsMidRequestStreams) {
  obs::Registry registry;
  GatedHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-abort");
  config.workers = 1;
  config.metrics = &registry;
  auto server = std::make_unique<HttpServer>(config, &handler);
  ASSERT_TRUE(server->start().is_ok());

  auto conn = net::Network::instance().connect(server->endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      conn.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] { return handler.entered.load() == 1; }));

  // Stop while the worker is inside the handler. The handler finishes
  // (release below), the response write hits an aborted stream, and
  // stop() joins without waiting on the peer.
  std::thread stopper([&] { server->stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  handler.release.store(true);
  stopper.join();
  EXPECT_EQ(registry.snapshot().gauge("http.server.in_flight"), 0);
  conn.value()->close();
}

TEST(ReactorCore, PipelinedRequestsBufferedPastOneParseAreServed) {
  // Two full requests in one write: the WireReader buffers bytes past
  // the first head, where stream-level readiness cannot see them. The
  // worker must serve the follow-up inline instead of parking.
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-pipeline");
  config.workers = 1;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.value()
                  ->write("GET /a HTTP/1.1\r\nHost: h\r\n\r\n"
                          "GET /b HTTP/1.1\r\nHost: h\r\n\r\n")
                  .is_ok());
  std::string replies;
  char buf[1024];
  ASSERT_TRUE(wait_until([&] {
    auto n = conn.value()->try_read(buf, sizeof buf);
    if (n.ok() && n.value().bytes > 0) replies.append(buf, n.value().bytes);
    size_t count = 0;
    for (size_t at = replies.find("HTTP/1.1 200");
         at != std::string::npos;
         at = replies.find("HTTP/1.1 200", at + 1)) {
      ++count;
    }
    return count == 2;
  })) << replies;
  EXPECT_EQ(server.requests_served(), 2u);
  conn.value()->close();
}

TEST(ReactorCore, MaxParkedCapClosesInsteadOfParking) {
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-cap");
  config.workers = 2;
  config.max_parked = 2;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kConns = 5;
  std::vector<std::unique_ptr<net::Stream>> conns;
  for (int i = 0; i < kConns; ++i) {
    auto conn = net::Network::instance().connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    serve_one_get(*conn.value());
    conns.push_back(std::move(conn).value());
  }
  EXPECT_EQ(server.requests_served(), static_cast<uint64_t>(kConns));
  // Only the cap's worth may stay parked; the rest were closed after
  // their response (bounded idle-connection memory under a flood).
  EXPECT_TRUE(wait_until([&] {
    int closed = 0;
    for (auto& conn : conns) {
      char buf[8];
      auto n = conn->try_read(buf, sizeof buf);
      if (!n.ok() || (n.value().bytes == 0 && !n.value().would_block)) {
        ++closed;
      }
    }
    return closed == kConns - 2;
  }));
  EXPECT_LE(registry.snapshot().gauge("http.server.parked"), 2);
  for (auto& conn : conns) conn->close();
}

TEST(ReactorCore, KeepAliveIdleExpiryClosesParkedConnectionSilently) {
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-expiry");
  config.workers = 1;
  config.keep_alive_timeout_seconds = 0.05;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  serve_one_get(*conn.value());
  // The reactor expires the parked connection without a worker and
  // without writing anything: the next read is EOF/abort, not a reply.
  char buf[64];
  ASSERT_TRUE(wait_until([&] {
    auto n = conn.value()->try_read(buf, sizeof buf);
    return !n.ok() || (n.value().bytes == 0 && !n.value().would_block);
  })) << "idle connection was not expired";
  EXPECT_EQ(registry.snapshot().gauge("http.server.parked"), 0);
  EXPECT_EQ(registry.snapshot().gauge("http.server.in_flight"), 0);
  conn.value()->close();
}

TEST(ReactorCore, FreshConnectionThatNeverSpeaksExpiresWithoutAWorker) {
  obs::Registry registry;
  GatedHandler handler;
  handler.release.store(true);
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("reactor-mute");
  config.workers = 1;
  config.request_read_timeout_seconds = 0.05;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  auto mute = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(mute.ok());
  char buf[8];
  ASSERT_TRUE(wait_until([&] {
    auto n = mute.value()->try_read(buf, sizeof buf);
    return !n.ok() || (n.value().bytes == 0 && !n.value().would_block);
  })) << "mute connection was not expired";
  // It was closed by the reactor while parked: no worker ever ran.
  EXPECT_EQ(handler.entered.load(), 0);
  EXPECT_EQ(registry.snapshot().gauge("http.server.in_flight"), 0);
  mute.value()->close();
}

}  // namespace
}  // namespace davpse::http
