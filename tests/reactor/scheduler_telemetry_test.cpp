// Scheduler telemetry: the reactor core exposes where request time
// actually goes — dispatch-queue wait, per-worker busy time and the
// derived utilization gauge, run-queue depth, parked-connection age,
// and poller wait/wake latency — all from the same registry the
// /.well-known/ endpoints serve.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "http/server.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "testing/env.h"

namespace davpse::http {
namespace {

class EchoHandler final : public Handler {
 public:
  HttpResponse handle(const HttpRequest&) override {
    return HttpResponse::make(kOk, "ok\n");
  }
};

class GatedHandler final : public Handler {
 public:
  HttpResponse handle(const HttpRequest&) override {
    entered.fetch_add(1);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return HttpResponse::make(kOk, "ok\n");
  }
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
};

bool wait_until(const std::function<bool()>& cond, double timeout = 5.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

/// Reads one already-pending "ok\n"-bodied response off the wire.
void read_one_response(net::Stream& stream) {
  std::string reply;
  char buf[512];
  while (reply.find("ok\n") == std::string::npos) {
    auto n = stream.read(buf, sizeof buf);
    ASSERT_TRUE(n.ok()) << n.status().to_string();
    ASSERT_GT(n.value(), 0u) << "connection closed mid-response";
    reply.append(buf, n.value());
  }
}

void serve_one_get(net::Stream& stream) {
  ASSERT_TRUE(stream.write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  read_one_response(stream);
}

TEST(SchedulerTelemetry, QueueWaitIsMeasuredForRequestsBehindABusyWorker) {
  obs::Registry registry;
  GatedHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("sched-queue");
  config.workers = 1;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // First request occupies the lone worker; three more must sit in
  // the dispatch queue behind it.
  auto busy = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(busy.ok());
  ASSERT_TRUE(
      busy.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] { return handler.entered.load() >= 1; }));

  std::vector<std::unique_ptr<net::Stream>> queued;
  for (int i = 0; i < 3; ++i) {
    auto conn = net::Network::instance().connect(server.endpoint());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(
        conn.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
    queued.push_back(std::move(conn).value());
  }
  // Run-queue depth is visible while they wait.
  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.dispatch_depth") >= 3;
  })) << "dispatch depth gauge never saw the backlog";

  // Let them wait a measurable moment, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  handler.release.store(true);
  for (auto& conn : queued) read_one_response(*conn);

  obs::RegistrySnapshot snap = registry.snapshot();
  auto queue_wait = snap.histogram("http.server.queue_wait_seconds");
  EXPECT_GE(queue_wait.count, 4u);  // every dispatched request is timed
  // The three queued requests waited >= 20 ms; the bucketed p99 upper
  // bound must reflect a wait of that order, not microseconds.
  EXPECT_GE(queue_wait.p99, 0.02);
  EXPECT_EQ(snap.gauge("http.server.dispatch_depth"), 0)
      << "depth gauge did not return to zero after drain";

  busy.value()->close();
  for (auto& conn : queued) conn->close();
}

TEST(SchedulerTelemetry, WorkerBusyTimeAndUtilizationAreTracked) {
  obs::Registry registry;
  GatedHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("sched-util");
  config.workers = 2;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  EXPECT_EQ(registry.snapshot().gauge("http.server.workers"), 2);

  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      conn.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok());
  ASSERT_TRUE(wait_until([&] { return handler.entered.load() >= 1; }));

  // One of two workers active: the instantaneous utilization gauge
  // reads 0.5 in parts-per-million.
  EXPECT_EQ(registry.snapshot().gauge("http.server.worker_utilization_ppm"),
            500'000);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  handler.release.store(true);
  read_one_response(*conn.value());

  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot().gauge("http.server.worker_utilization_ppm") ==
           0;
  })) << "utilization did not fall back to zero after the drain";

  // The serving worker accumulated busy time (in µs) under its own
  // counter; the handler held it for >= 20 ms.
  obs::RegistrySnapshot snap = registry.snapshot();
  uint64_t busy = snap.counter("http.server.worker_busy_micros.0") +
                  snap.counter("http.server.worker_busy_micros.1");
  EXPECT_GE(busy, 20'000u);
  conn.value()->close();
}

TEST(SchedulerTelemetry, ParkedAgeIsObservedOnUnparkAndExpiry) {
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("sched-parked");
  config.workers = 1;
  config.keep_alive_timeout_seconds = 0.1;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // Request, idle a beat, request again on the same connection: the
  // unpark observes how long the connection sat parked.
  auto conn = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(conn.ok());
  serve_one_get(*conn.value());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  serve_one_get(*conn.value());
  obs::RegistrySnapshot snap = registry.snapshot();
  auto parked_age = snap.histogram("http.server.parked_age_seconds");
  EXPECT_GE(parked_age.count, 1u);
  EXPECT_GE(parked_age.p99, 0.02);

  // Let the keep-alive window lapse: expiry also observes the age.
  uint64_t before = parked_age.count;
  ASSERT_TRUE(wait_until([&] {
    return registry.snapshot()
               .histogram("http.server.parked_age_seconds")
               .count > before;
  })) << "expiry did not record the parked age";
  conn.value()->close();
}

TEST(SchedulerTelemetry, PollerWaitAndWakeLatencyAreMeasured) {
  obs::Registry registry;
  EchoHandler handler;
  ServerConfig config;
  config.endpoint = testing::unique_endpoint("sched-poller");
  config.workers = 1;
  config.metrics = &registry;
  HttpServer server(config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  ClientConfig client_config;
  client_config.endpoint = server.endpoint();
  HttpClient client(client_config);
  for (int i = 0; i < 5; ++i) {
    auto response = client.get("/");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, kOk);
  }

  obs::RegistrySnapshot snap = registry.snapshot();
  // Every reactor cycle times its blocking wait; every readiness
  // delivery times arrival -> drain.
  EXPECT_GE(snap.histogram("net.poller.wait_seconds").count, 1u);
  EXPECT_GE(snap.histogram("net.poller.wake_seconds").count, 1u);
}

}  // namespace
}  // namespace davpse::http
