// Unit coverage for the reactor's readiness layer: the Poller
// rendezvous, ByteQueue watcher edge/level semantics, the non-blocking
// try_read/try_write tri-states, and Listener::try_accept.
#include "net/poller.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "net/network.h"
#include "net/pipe.h"

namespace davpse::net {
namespace {

TEST(Poller, WaitReturnsPostedTokensInArrivalOrder) {
  Poller poller;
  poller.on_ready(7);
  poller.on_ready(3);
  poller.on_ready(7);  // dedup while pending
  auto ready = poller.wait(0);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0], 7u);
  EXPECT_EQ(ready[1], 3u);
  // Drained: the next poll sees nothing.
  EXPECT_TRUE(poller.wait(0).empty());
  // After draining, the same token may be posted again.
  poller.on_ready(7);
  ASSERT_EQ(poller.wait(0).size(), 1u);
}

TEST(Poller, WakeIsStickyAndYieldsEmptySet) {
  Poller poller;
  poller.wake();  // posted before anyone waits
  auto ready = poller.wait(-1);
  EXPECT_TRUE(ready.empty());
  // Consumed: a zero-timeout poll no longer sees the wake.
  EXPECT_TRUE(poller.wait(0).empty());
}

TEST(Poller, TimedWaitExpiresWithoutTokens) {
  Poller poller;
  auto start = std::chrono::steady_clock::now();
  auto ready = poller.wait(0.02);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_TRUE(ready.empty());
  EXPECT_GE(elapsed, 0.015);
}

TEST(Poller, BlockedWaitWokenByConcurrentPost) {
  Poller poller;
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    poller.on_ready(42);
  });
  auto ready = poller.wait(-1);
  poster.join();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 42u);
}

TEST(Watcher, RegistrationFiresImmediatelyWhenAlreadyReadable) {
  // Level-triggered at registration: data that arrived before the park
  // must not be lost.
  Poller poller;
  auto pipe = make_pipe();
  ASSERT_TRUE(pipe.a->write("hello").is_ok());
  EXPECT_TRUE(pipe.b->watch_readable(&poller, 11));
  auto ready = poller.wait(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 11u);
}

TEST(Watcher, FiresOnEmptyToNonEmptyTransitionOnly) {
  Poller poller;
  auto pipe = make_pipe();
  ASSERT_TRUE(pipe.b->watch_readable(&poller, 5));
  EXPECT_TRUE(poller.wait(0).empty());  // nothing readable yet
  ASSERT_TRUE(pipe.a->write("x").is_ok());
  ASSERT_TRUE(pipe.a->write("y").is_ok());  // no transition: no second post
  auto ready = poller.wait(0);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 5u);
}

TEST(Watcher, EofAndAbortAreReadableEvents) {
  {
    Poller poller;
    auto pipe = make_pipe();
    ASSERT_TRUE(pipe.b->watch_readable(&poller, 1));
    pipe.a->shutdown_write();
    ASSERT_EQ(poller.wait(0).size(), 1u);  // EOF wakes a parked reader
  }
  {
    Poller poller;
    auto pipe = make_pipe();
    ASSERT_TRUE(pipe.a->watch_readable(&poller, 2));
    pipe.a->close();  // aborts a's own inbound queue
    ASSERT_GE(poller.wait(0).size(), 1u);
  }
}

TEST(Watcher, DeregistrationStopsEvents) {
  Poller poller;
  auto pipe = make_pipe();
  ASSERT_TRUE(pipe.b->watch_readable(&poller, 9));
  ASSERT_TRUE(pipe.b->watch_readable(nullptr, 0));
  ASSERT_TRUE(pipe.a->write("data").is_ok());
  EXPECT_TRUE(poller.wait(0).empty());
}

TEST(TryRead, TriState) {
  auto pipe = make_pipe();
  char buf[16];
  // Empty + open writer: would-block.
  auto r = pipe.b->try_read(buf, sizeof buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().bytes, 0u);
  EXPECT_TRUE(r.value().would_block);
  // Data present: bytes returned without blocking.
  ASSERT_TRUE(pipe.a->write("abc").is_ok());
  r = pipe.b->try_read(buf, sizeof buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(buf, r.value().bytes), "abc");
  // Writer closed + drained: clean EOF (bytes=0, would_block=false).
  pipe.a->shutdown_write();
  r = pipe.b->try_read(buf, sizeof buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().bytes, 0u);
  EXPECT_FALSE(r.value().would_block);
}

TEST(TryRead, AbortSurfacesUnavailable) {
  // close() aborts the closer's own inbound queue (the peer sees a
  // clean write-side EOF), so the hard-abort read error surfaces on
  // the closed stream itself.
  auto pipe = make_pipe();
  pipe.b->close();
  char buf[4];
  auto r = pipe.b->try_read(buf, sizeof buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
}

TEST(TryWrite, PartialWriteAtCapacityThenZero) {
  auto pipe = make_pipe(4);  // tiny pipe: fills after 4 bytes
  auto wrote = pipe.a->try_write("abcdef");
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), 4u);  // only what fits
  wrote = pipe.a->try_write("gh");
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), 0u);  // full: would block
  // Draining the reader reopens room.
  char buf[8];
  auto r = pipe.b->try_read(buf, sizeof buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().bytes, 4u);
  wrote = pipe.a->try_write("gh");
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), 2u);
}

TEST(TryWrite, ClosedPeerIsUnavailable) {
  auto pipe = make_pipe();
  pipe.b->close();
  auto wrote = pipe.a->try_write("x");
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.status().code(), ErrorCode::kUnavailable);
}

TEST(TryAccept, DrainsPendingThenWouldBlocks) {
  Network network;
  auto listener = network.listen("try-accept");
  ASSERT_TRUE(listener.ok());
  // Nothing pending: nullptr, not an error.
  auto none = listener.value()->try_accept();
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), nullptr);

  auto c1 = network.connect("try-accept");
  auto c2 = network.connect("try-accept");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(listener.value()->try_accept().value(), nullptr);
  EXPECT_NE(listener.value()->try_accept().value(), nullptr);
  EXPECT_EQ(listener.value()->try_accept().value(), nullptr);

  listener.value()->shutdown();
  auto down = listener.value()->try_accept();
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), ErrorCode::kUnavailable);
}

TEST(TryAccept, WatcherFiresOnEnqueueAndShutdown) {
  Network network;
  auto listener = network.listen("accept-watch");
  ASSERT_TRUE(listener.ok());
  Poller poller;
  listener.value()->set_accept_watcher(&poller, 0);
  EXPECT_TRUE(poller.wait(0).empty());

  auto conn = network.connect("accept-watch");
  ASSERT_TRUE(conn.ok());
  auto ready = poller.wait(-1);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0u);

  (void)listener.value()->try_accept();
  listener.value()->shutdown();  // shutdown is a readiness event too
  ASSERT_EQ(poller.wait(-1).size(), 1u);
  // The poller is declared after the listener here, so it dies first:
  // deregister before ~Listener's shutdown() fires the watcher again.
  listener.value()->set_accept_watcher(nullptr, 0);
}

}  // namespace
}  // namespace davpse::net
