// DOM-vs-SAX multistatus parser equivalence, including a generator-
// based property sweep: both strategies must produce identical
// structures for arbitrary generated multistatus bodies.
#include "davclient/multistatus.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/strings.h"
#include "xml/writer.h"

namespace davpse::davclient {
namespace {

const char kSample[] = R"(<?xml version="1.0" encoding="utf-8"?>
<D:multistatus xmlns:D="DAV:">
  <D:response>
    <D:href>/Ecce/proj%20x/calc</D:href>
    <D:propstat>
      <D:prop>
        <e:formula xmlns:e="http://purl.pnl.gov/ecce">H30O17U</e:formula>
        <D:resourcetype><D:collection/></D:resourcetype>
      </D:prop>
      <D:status>HTTP/1.1 200 OK</D:status>
    </D:propstat>
    <D:propstat>
      <D:prop><e:missing xmlns:e="http://purl.pnl.gov/ecce"/></D:prop>
      <D:status>HTTP/1.1 404 Not Found</D:status>
    </D:propstat>
  </D:response>
  <D:response>
    <D:href>/other</D:href>
    <D:propstat>
      <D:prop><D:getcontentlength>42</D:getcontentlength></D:prop>
      <D:status>HTTP/1.1 200 OK</D:status>
    </D:propstat>
  </D:response>
</D:multistatus>)";

const xml::QName kFormula("http://purl.pnl.gov/ecce", "formula");
const xml::QName kMissing("http://purl.pnl.gov/ecce", "missing");

class BothParsers : public ::testing::TestWithParam<ParserKind> {};

TEST_P(BothParsers, ParsesSampleDocument) {
  auto parsed = parse_multistatus(kSample, GetParam());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const Multistatus& ms = parsed.value();
  ASSERT_EQ(ms.responses.size(), 2u);

  const ResourceResponse& first = ms.responses[0];
  EXPECT_EQ(first.href, "/Ecce/proj x/calc");  // percent-decoded
  EXPECT_EQ(first.prop(kFormula), "H30O17U");
  EXPECT_TRUE(first.is_collection());
  ASSERT_EQ(first.missing.size(), 1u);
  EXPECT_EQ(first.missing[0], kMissing);

  const ResourceResponse& second = ms.responses[1];
  EXPECT_EQ(second.href, "/other");
  EXPECT_EQ(second.prop(xml::dav_name("getcontentlength")), "42");
  EXPECT_FALSE(second.is_collection());

  EXPECT_NE(ms.find("/other"), nullptr);
  EXPECT_EQ(ms.find("/nope"), nullptr);
}

TEST_P(BothParsers, FailedPropstatRecorded) {
  const char doc[] = R"(<D:multistatus xmlns:D="DAV:"><D:response>
      <D:href>/doc</D:href>
      <D:propstat>
        <D:prop><p:big xmlns:p="urn:p"/></D:prop>
        <D:status>HTTP/1.1 507 Insufficient Storage</D:status>
      </D:propstat>
    </D:response></D:multistatus>)";
  auto parsed = parse_multistatus(doc, GetParam());
  ASSERT_TRUE(parsed.ok());
  const auto& response = parsed.value().responses.front();
  ASSERT_EQ(response.failed.size(), 1u);
  EXPECT_EQ(response.failed[0].status, 507);
  EXPECT_EQ(response.failed[0].name, xml::QName("urn:p", "big"));
}

TEST_P(BothParsers, RejectsNonMultistatusRoot) {
  auto parsed = parse_multistatus("<wrong/>", GetParam());
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kMalformed);
}

TEST_P(BothParsers, RejectsMalformedXml) {
  auto parsed = parse_multistatus("<D:multistatus xmlns:D=\"DAV:\">",
                                  GetParam());
  EXPECT_FALSE(parsed.ok());
}

TEST_P(BothParsers, HandlesAbsoluteUriHrefs) {
  const char doc[] = R"(<D:multistatus xmlns:D="DAV:"><D:response>
      <D:href>http://server:80/a/b</D:href>
      <D:propstat><D:prop><D:displayname>b</D:displayname></D:prop>
      <D:status>HTTP/1.1 200 OK</D:status></D:propstat>
    </D:response></D:multistatus>)";
  auto parsed = parse_multistatus(doc, GetParam());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().responses.front().href, "/a/b");
}

INSTANTIATE_TEST_SUITE_P(Strategies, BothParsers,
                         ::testing::Values(ParserKind::kDom,
                                           ParserKind::kSax),
                         [](const auto& info) {
                           return info.param == ParserKind::kDom ? "Dom"
                                                                 : "Sax";
                         });

// --- generator-based DOM==SAX equivalence ------------------------------

std::string generate_multistatus(Rng& rng, size_t responses,
                                 size_t props_per_response) {
  xml::XmlWriter writer;
  writer.prefer_prefix("DAV:", "D");
  writer.declaration();
  writer.start_element(xml::dav_name("multistatus"));
  for (size_t r = 0; r < responses; ++r) {
    writer.start_element(xml::dav_name("response"));
    writer.text_element(xml::dav_name("href"),
                        "/obj" + std::to_string(r));
    writer.start_element(xml::dav_name("propstat"));
    writer.start_element(xml::dav_name("prop"));
    for (size_t p = 0; p < props_per_response; ++p) {
      xml::QName name("urn:gen" + std::to_string(rng.uniform(1, 3)),
                      "p" + std::to_string(p));
      writer.start_element(name);
      if (rng.coin(0.3)) {
        // Nested XML value.
        writer.start_element(xml::QName("urn:val", "inner"));
        writer.text(rng.ascii_blob(rng.uniform(0, 30)));
        writer.end_element();
      } else {
        writer.text(rng.ascii_blob(rng.uniform(0, 50)));
      }
      writer.end_element();
    }
    writer.end_element();
    writer.text_element(xml::dav_name("status"), "HTTP/1.1 200 OK");
    writer.end_element();
    if (rng.coin(0.4)) {
      writer.start_element(xml::dav_name("propstat"));
      writer.start_element(xml::dav_name("prop"));
      writer.empty_element(xml::QName("urn:gen1", "absent"));
      writer.end_element();
      writer.text_element(xml::dav_name("status"),
                          "HTTP/1.1 404 Not Found");
      writer.end_element();
    }
    writer.end_element();
  }
  writer.end_element();
  return writer.take();
}

void expect_equivalent(const Multistatus& dom, const Multistatus& sax) {
  ASSERT_EQ(dom.responses.size(), sax.responses.size());
  for (size_t i = 0; i < dom.responses.size(); ++i) {
    const auto& d = dom.responses[i];
    const auto& s = sax.responses[i];
    EXPECT_EQ(d.href, s.href);
    ASSERT_EQ(d.found.size(), s.found.size());
    for (size_t j = 0; j < d.found.size(); ++j) {
      EXPECT_EQ(d.found[j].name, s.found[j].name);
      EXPECT_EQ(d.found[j].inner_xml, s.found[j].inner_xml)
          << d.found[j].name.to_string();
    }
    ASSERT_EQ(d.missing.size(), s.missing.size());
    for (size_t j = 0; j < d.missing.size(); ++j) {
      EXPECT_EQ(d.missing[j], s.missing[j]);
    }
  }
}

class DomSaxEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomSaxEquivalence, GeneratedBodiesParseIdentically) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 8; ++iteration) {
    std::string body = generate_multistatus(rng, rng.uniform(0, 10),
                                            rng.uniform(0, 8));
    auto dom = parse_multistatus(body, ParserKind::kDom);
    auto sax = parse_multistatus(body, ParserKind::kSax);
    ASSERT_TRUE(dom.ok()) << dom.status().to_string() << "\n" << body;
    ASSERT_TRUE(sax.ok()) << sax.status().to_string() << "\n" << body;
    expect_equivalent(dom.value(), sax.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomSaxEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace davpse::davclient
