#include "util/strings.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace davpse {
namespace {

TEST(Trim, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t\r\nabc\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitSkipEmpty, DropsEmptyFields) {
  EXPECT_EQ(split_skip_empty("/a//b/", '/'),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_skip_empty("///", '/').empty());
}

TEST(AsciiCase, LowerAndIequals) {
  EXPECT_EQ(ascii_lower("Content-TYPE"), "content-type");
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "abcd"));
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/Ecce/proj", "/Ecce"));
  EXPECT_FALSE(starts_with("/Ec", "/Ecce"));
  EXPECT_TRUE(ends_with("file.props", ".props"));
  EXPECT_FALSE(ends_with("props", ".props"));
}

TEST(Join, InsertsSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(PercentEncode, EncodesReservedKeepsSlash) {
  EXPECT_EQ(percent_encode_path("/a b/c"), "/a%20b/c");
  EXPECT_EQ(percent_encode_path("/plain-path_1.2~x/"), "/plain-path_1.2~x/");
  EXPECT_EQ(percent_encode_path("100%"), "100%25");
}

TEST(PercentDecode, RoundTripsAndRejectsBadEscapes) {
  std::string out;
  ASSERT_TRUE(percent_decode("/a%20b", &out));
  EXPECT_EQ(out, "/a b");
  EXPECT_FALSE(percent_decode("%zz", &out));
  EXPECT_FALSE(percent_decode("%4", &out));
  EXPECT_FALSE(percent_decode("abc%", &out));
}

TEST(PercentCodec, PropertyRoundTripArbitraryBytes) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    std::string original = rng.binary_blob(rng.uniform(0, 64));
    std::string decoded;
    ASSERT_TRUE(percent_decode(percent_encode_path(original), &decoded));
    EXPECT_EQ(decoded, original);
  }
}

TEST(FormatBytes, HumanUnits) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(35ull * 1024 * 1024), "35.0 MB");
}

TEST(FormatSeconds, MillisecondPrecision) {
  EXPECT_EQ(format_seconds(3.482), "3.482 s");
  EXPECT_EQ(format_seconds(0.0), "0.000 s");
}

}  // namespace
}  // namespace davpse
