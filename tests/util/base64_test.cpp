#include "util/base64.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace davpse {
namespace {

// RFC 4648 §10 test vectors.
TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  std::string out;
  ASSERT_TRUE(base64_decode("Zm9vYmFy", &out));
  EXPECT_EQ(out, "foobar");
  ASSERT_TRUE(base64_decode("Zg==", &out));
  EXPECT_EQ(out, "f");
  ASSERT_TRUE(base64_decode("", &out));
  EXPECT_EQ(out, "");
}

TEST(Base64, RejectsMalformedInput) {
  std::string out;
  EXPECT_FALSE(base64_decode("Zg", &out));       // bad length
  EXPECT_FALSE(base64_decode("Zg=a", &out));     // data after padding
  EXPECT_FALSE(base64_decode("Z===", &out));     // too much padding
  EXPECT_FALSE(base64_decode("Zm9v!A==", &out)); // illegal character
  EXPECT_FALSE(base64_decode("====", &out));     // all padding
}

TEST(Base64, BasicAuthShape) {
  // The classic RFC 2617 example credential.
  EXPECT_EQ(base64_encode("Aladdin:open sesame"),
            "QWxhZGRpbjpvcGVuIHNlc2FtZQ==");
}

class Base64RoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(Base64RoundTrip, ArbitraryBinary) {
  Rng rng(GetParam() * 977 + 5);
  for (int i = 0; i < 50; ++i) {
    std::string original = rng.binary_blob(GetParam() + rng.uniform(0, 3));
    std::string decoded;
    ASSERT_TRUE(base64_decode(base64_encode(original), &decoded));
    EXPECT_EQ(decoded, original);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 16, 63, 255, 4096));

}  // namespace
}  // namespace davpse
