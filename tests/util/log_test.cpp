// The single-emission-path contract of util/log: every message funnels
// through log_message(), which applies the level filter once, stamps
// time + thread id, and forwards to the optional sink.
#include "util/log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/clock.h"

namespace davpse {
namespace {

/// Captures sink deliveries and restores the default level/sink state
/// on destruction, so tests don't leak configuration into each other.
class SinkCapture {
 public:
  SinkCapture() {
    set_log_sink([this](LogLevel level, double unix_seconds,
                        uint64_t thread_id, const std::string& message) {
      entries_.push_back({level, unix_seconds, thread_id, message});
    });
  }
  ~SinkCapture() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }

  struct Entry {
    LogLevel level;
    double unix_seconds;
    uint64_t thread_id;
    std::string message;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

TEST(LogTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(LogTest, DefaultLevelIsWarnAndUp) {
  // Benches rely on this default to stay quiet without configuration.
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(LogTest, MacroFiltersBelowThreshold) {
  SinkCapture sink;
  set_log_level(LogLevel::kWarn);
  DAVPSE_LOG_DEBUG << "dropped-debug";
  DAVPSE_LOG_INFO << "dropped-info";
  DAVPSE_LOG_WARN << "kept-warn";
  DAVPSE_LOG_ERROR << "kept-error";
  ASSERT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(sink.entries()[0].message, "kept-warn");
  EXPECT_EQ(sink.entries()[0].level, LogLevel::kWarn);
  EXPECT_EQ(sink.entries()[1].message, "kept-error");
  EXPECT_EQ(sink.entries()[1].level, LogLevel::kError);
}

TEST(LogTest, DirectCallsGoThroughTheSameFilter) {
  // log_message is the single emission path: direct callers are
  // filtered identically to the macros.
  SinkCapture sink;
  set_log_level(LogLevel::kError);
  log_message(LogLevel::kWarn, "filtered");
  log_message(LogLevel::kError, "delivered");
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].message, "delivered");
}

TEST(LogTest, LoweringThresholdAdmitsDebug) {
  SinkCapture sink;
  set_log_level(LogLevel::kDebug);
  DAVPSE_LOG_DEBUG << "now-visible";
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].message, "now-visible");
}

TEST(LogTest, SinkReceivesTimestampAndThreadId) {
  SinkCapture sink;
  set_log_level(LogLevel::kInfo);
  double before = unix_time_seconds();
  DAVPSE_LOG_INFO << "stamped";
  double after = unix_time_seconds();
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_GE(sink.entries()[0].unix_seconds, before);
  EXPECT_LE(sink.entries()[0].unix_seconds, after);
  EXPECT_EQ(sink.entries()[0].thread_id, log_thread_id());
}

TEST(LogTest, ThreadIdsAreStablePerThreadAndDistinctAcross) {
  uint64_t mine = log_thread_id();
  EXPECT_EQ(log_thread_id(), mine);  // stable on repeat
  uint64_t other = 0;
  std::thread worker([&] { other = log_thread_id(); });
  worker.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

TEST(LogTest, RemovingSinkStopsDelivery) {
  std::vector<std::string> seen;
  set_log_level(LogLevel::kInfo);
  set_log_sink([&](LogLevel, double, uint64_t, const std::string& message) {
    seen.push_back(message);
  });
  DAVPSE_LOG_INFO << "while-attached";
  set_log_sink(nullptr);
  DAVPSE_LOG_INFO << "after-detach";
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "while-attached");
}

}  // namespace
}  // namespace davpse
