#include "util/fs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace davpse {
namespace {

namespace fs = std::filesystem;

TEST(TempDirTest, CreatesAndRemoves) {
  fs::path captured;
  {
    TempDir dir("fstest");
    captured = dir.path();
    EXPECT_TRUE(fs::is_directory(captured));
  }
  EXPECT_FALSE(fs::exists(captured));
}

TEST(FileIo, WriteThenRead) {
  TempDir dir("fstest");
  fs::path file = dir.path() / "data.bin";
  std::string payload = "hello\0world", contents;
  ASSERT_TRUE(write_file_atomic(file, payload).is_ok());
  ASSERT_TRUE(read_file(file, &contents).is_ok());
  EXPECT_EQ(contents, payload);
}

TEST(FileIo, AtomicReplaceLeavesNoTempFile) {
  TempDir dir("fstest");
  fs::path file = dir.path() / "doc";
  ASSERT_TRUE(write_file_atomic(file, "one").is_ok());
  ASSERT_TRUE(write_file_atomic(file, "two").is_ok());
  std::string contents;
  ASSERT_TRUE(read_file(file, &contents).is_ok());
  EXPECT_EQ(contents, "two");
  size_t entries = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir.path())) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(FileIo, ReadMissingIsNotFound) {
  TempDir dir("fstest");
  std::string contents;
  Status status = read_file(dir.path() / "nope", &contents);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
}

TEST(DiskUsage, SumsRecursively) {
  TempDir dir("fstest");
  fs::create_directories(dir.path() / "sub" / "deeper");
  ASSERT_TRUE(write_file_atomic(dir.path() / "a", std::string(100, 'x')).is_ok());
  ASSERT_TRUE(
      write_file_atomic(dir.path() / "sub" / "b", std::string(50, 'y')).is_ok());
  ASSERT_TRUE(write_file_atomic(dir.path() / "sub" / "deeper" / "c",
                                std::string(7, 'z'))
                  .is_ok());
  EXPECT_EQ(disk_usage(dir.path()), 157u);
  EXPECT_EQ(disk_usage(dir.path() / "sub"), 57u);
  EXPECT_EQ(disk_usage(dir.path() / "a"), 100u);
  EXPECT_EQ(disk_usage(dir.path() / "missing"), 0u);
}

TEST(CopyTree, CopiesNestedStructure) {
  TempDir dir("fstest");
  fs::create_directories(dir.path() / "src" / "inner");
  ASSERT_TRUE(
      write_file_atomic(dir.path() / "src" / "inner" / "f", "data").is_ok());
  ASSERT_TRUE(copy_tree(dir.path() / "src", dir.path() / "dst").is_ok());
  std::string contents;
  ASSERT_TRUE(read_file(dir.path() / "dst" / "inner" / "f", &contents).is_ok());
  EXPECT_EQ(contents, "data");
}

}  // namespace
}  // namespace davpse
