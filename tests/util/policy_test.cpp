#include "util/policy.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace davpse {
namespace {

TEST(Deadline, NeverNeverExpires) {
  Deadline deadline = Deadline::never();
  EXPECT_TRUE(deadline.is_never());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(deadline.allows(1e9));
}

TEST(Deadline, AfterCountsDown) {
  Deadline deadline = Deadline::after(1000.0);
  EXPECT_FALSE(deadline.is_never());
  EXPECT_FALSE(deadline.expired());
  double remaining = deadline.remaining_seconds();
  EXPECT_GT(remaining, 999.0);
  EXPECT_LE(remaining, 1000.0);
  EXPECT_TRUE(deadline.allows(10.0));
  EXPECT_FALSE(deadline.allows(2000.0));
}

TEST(Deadline, AlreadyExpired) {
  Deadline deadline = Deadline::after(0);
  EXPECT_TRUE(deadline.expired());
  EXPECT_FALSE(deadline.allows(0.001));
}

TEST(RetryPolicy, NoneIsSingleAttempt) {
  RetryPolicy policy = RetryPolicy::none();
  EXPECT_EQ(policy.max_attempts, 1);
  EXPECT_TRUE(policy.start_deadline().is_never());
}

TEST(RetryPolicy, ExponentialBackoffWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  policy.jitter = 0;
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(1, 0.5), 0.01);
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(2, 0.5), 0.02);
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(3, 0.5), 0.04);
  // Clamped to the cap from here on.
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(4, 0.5), 0.05);
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(10, 0.5), 0.05);
}

TEST(RetryPolicy, JitterShrinksTowardFloor) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.jitter = 0.5;
  // unit = 0 keeps the full backoff; unit -> 1 shaves off up to the
  // jitter fraction, so sleeps land in [b*(1-jitter), b].
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(1, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(policy.backoff_before_attempt(1, 1.0), 0.05);
  double mid = policy.backoff_before_attempt(1, 0.4);
  EXPECT_GT(mid, 0.05);
  EXPECT_LT(mid, 0.1);
}

TEST(RetryPolicy, OverallDeadlineSeedsDeadline) {
  RetryPolicy policy;
  policy.overall_deadline_seconds = 500.0;
  Deadline deadline = policy.start_deadline();
  EXPECT_FALSE(deadline.is_never());
  EXPECT_GT(deadline.remaining_seconds(), 499.0);
}

TEST(Status, RetryableClassification) {
  EXPECT_TRUE(is_retryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(is_retryable(ErrorCode::kTimeout));
  EXPECT_FALSE(is_retryable(ErrorCode::kNotFound));
  EXPECT_FALSE(is_retryable(ErrorCode::kPermissionDenied));
  EXPECT_FALSE(is_retryable(ErrorCode::kInternal));
  EXPECT_TRUE(
      Status(ErrorCode::kUnavailable, "connection refused").is_retryable());
  EXPECT_FALSE(Status::ok().is_retryable());
}

}  // namespace
}  // namespace davpse
