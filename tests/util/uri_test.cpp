#include "util/uri.h"

#include <gtest/gtest.h>

namespace davpse {
namespace {

TEST(ParseUri, AbsoluteHttp) {
  auto uri = parse_uri("http://server:8080/a/b%20c");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri.value().scheme, "http");
  EXPECT_EQ(uri.value().host, "server");
  EXPECT_EQ(uri.value().port, 8080);
  EXPECT_EQ(uri.value().path, "/a/b c");
  EXPECT_EQ(uri.value().encoded_path(), "/a/b%20c");
}

TEST(ParseUri, HostWithoutPortOrPath) {
  auto uri = parse_uri("http://server");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri.value().port, 0);
  EXPECT_EQ(uri.value().path, "/");
}

TEST(ParseUri, PathOnly) {
  auto uri = parse_uri("/Ecce/proj/calc");
  ASSERT_TRUE(uri.ok());
  EXPECT_TRUE(uri.value().scheme.empty());
  EXPECT_EQ(uri.value().path, "/Ecce/proj/calc");
}

TEST(ParseUri, StripsQueryAndFragment) {
  auto uri = parse_uri("/a/b?x=1#frag");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri.value().path, "/a/b");
}

TEST(ParseUri, Rejections) {
  EXPECT_FALSE(parse_uri("").ok());
  EXPECT_FALSE(parse_uri("relative/path").ok());
  EXPECT_FALSE(parse_uri("http:///nohost").ok());
  EXPECT_FALSE(parse_uri("http://h:99999/").ok());
  EXPECT_FALSE(parse_uri("http://h:12ab/").ok());
  EXPECT_FALSE(parse_uri("/bad%zzescape").ok());
}

TEST(NormalizePath, CollapsesAndResolves) {
  EXPECT_EQ(normalize_path("/a/b/c").value(), "/a/b/c");
  EXPECT_EQ(normalize_path("/a//b/").value(), "/a/b");
  EXPECT_EQ(normalize_path("/a/./b").value(), "/a/b");
  EXPECT_EQ(normalize_path("/a/x/../b").value(), "/a/b");
  EXPECT_EQ(normalize_path("/").value(), "/");
  EXPECT_EQ(normalize_path("//").value(), "/");
}

TEST(NormalizePath, RejectsEscapes) {
  EXPECT_FALSE(normalize_path("/..").ok());
  EXPECT_FALSE(normalize_path("/a/../..").ok());
  EXPECT_FALSE(normalize_path("relative").ok());
  EXPECT_FALSE(normalize_path("").ok());
}

TEST(PathHelpers, SegmentsParentBasename) {
  EXPECT_EQ(path_segments("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(path_segments("/").empty());
  EXPECT_EQ(parent_path("/a/b"), "/a");
  EXPECT_EQ(parent_path("/a"), "/");
  EXPECT_EQ(parent_path("/"), "/");
  EXPECT_EQ(basename_of("/a/b"), "b");
  EXPECT_EQ(basename_of("/"), "");
  EXPECT_EQ(join_path("/a", "b"), "/a/b");
  EXPECT_EQ(join_path("/", "b"), "/b");
}

TEST(PathIsWithin, AncestryChecks) {
  EXPECT_TRUE(path_is_within("/a/b", "/a"));
  EXPECT_TRUE(path_is_within("/a", "/a"));
  EXPECT_TRUE(path_is_within("/anything", "/"));
  EXPECT_FALSE(path_is_within("/ab", "/a"));  // no segment-boundary match
  EXPECT_FALSE(path_is_within("/a", "/a/b"));
}

}  // namespace
}  // namespace davpse
