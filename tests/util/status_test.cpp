#include "util/status.h"

#include <gtest/gtest.h>

namespace davpse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = error(ErrorCode::kNotFound, "no such thing");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.to_string(), "NOT_FOUND: no such thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(error(ErrorCode::kTimeout, "too slow"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Status helper_returning_early(bool fail) {
  DAVPSE_RETURN_IF_ERROR(fail ? error(ErrorCode::kInternal, "boom")
                              : Status::ok());
  return error(ErrorCode::kConflict, "reached end");
}

TEST(ReturnIfError, PropagatesOnlyErrors) {
  EXPECT_EQ(helper_returning_early(true).code(), ErrorCode::kInternal);
  EXPECT_EQ(helper_returning_early(false).code(), ErrorCode::kConflict);
}

}  // namespace
}  // namespace davpse
