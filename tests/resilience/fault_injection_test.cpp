// Unit coverage for the deterministic fault injector: every fault kind
// fires when asked, schedules replay exactly from a seed, and the
// wrapper stays transparent (timeouts, byte accounting) when no fault
// fires.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "net/network.h"
#include "obs/metrics.h"

namespace davpse::net {
namespace {

/// One-connection peer: accepts on its own inner network and runs `fn`
/// on the accepted stream.
struct Peer {
  Network network;
  std::unique_ptr<Listener> listener;
  std::thread thread;

  explicit Peer(std::function<void(Stream&)> fn) {
    auto bound = network.listen("peer");
    if (!bound.ok()) throw std::runtime_error("listen failed");
    listener = std::move(bound).value();
    thread = std::thread([this, fn = std::move(fn)] {
      auto stream = listener->accept();
      if (stream.ok()) fn(*stream.value());
    });
  }

  ~Peer() {
    listener->shutdown();
    if (thread.joinable()) thread.join();
  }
};

TEST(FaultInjection, ForcedConnectFailuresThenRecovery) {
  obs::Registry registry;
  Peer peer([](Stream& stream) {
    char buf[16];
    (void)stream.read(buf, sizeof buf);
  });
  FaultConfig config;
  config.metrics = &registry;
  FaultInjectingNetwork faulty(config, &peer.network);
  faulty.injector().fail_next_connects(2);

  for (int i = 0; i < 2; ++i) {
    auto refused = faulty.connect("peer");
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), ErrorCode::kUnavailable);
  }
  auto ok = faulty.connect("peer");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(registry.counter("resilience.injected.connect_failures").value(),
            2u);
  (void)ok.value()->write("x");
}

TEST(FaultInjection, ReadResetSurfacesUnavailable) {
  obs::Registry registry;
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.read_reset = 1.0;
  config.metrics = &registry;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  auto n = stream.value()->read(buf, sizeof buf);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(registry.counter("resilience.injected.read_resets").value(), 1u);
}

TEST(FaultInjection, TruncationIsStickyCleanEof) {
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.truncate = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  for (int i = 0; i < 3; ++i) {
    auto n = stream.value()->read(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0u);  // premature clean EOF, forever
  }
}

TEST(FaultInjection, CorruptionFlipsExactlyOneBit) {
  std::string received;
  Peer peer([&received](Stream& stream) {
    char buf[64];
    for (;;) {
      auto n = stream.read(buf, sizeof buf);
      if (!n.ok() || n.value() == 0) return;
      received.append(buf, n.value());
    }
  });
  FaultConfig config;
  config.corrupt = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  const std::string sent = "payload-block";
  ASSERT_TRUE(stream.value()->write(sent).is_ok());
  stream.value()->shutdown_write();
  // Join the peer to make `received` safe to inspect. The write-side
  // shutdown gives the peer a clean EOF, so the thread finishes on its
  // own; shutting the listener down first could cancel a not-yet-run
  // accept and drop the connection entirely.
  peer.thread.join();

  ASSERT_EQ(received.size(), sent.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < sent.size(); ++i) {
    unsigned char diff =
        static_cast<unsigned char>(sent[i] ^ received[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultInjection, WriteResetFailsBeforeAnyByte) {
  std::string received;
  size_t peer_read = 0;
  Peer peer([&peer_read](Stream& stream) {
    char buf[64];
    auto n = stream.read(buf, sizeof buf);
    if (n.ok()) peer_read = n.value();
  });
  FaultConfig config;
  config.write_reset = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  auto wrote = stream.value()->write("never-arrives");
  ASSERT_FALSE(wrote.is_ok());
  EXPECT_EQ(wrote.code(), ErrorCode::kUnavailable);
  peer.listener->shutdown();
  peer.thread.join();
  EXPECT_EQ(peer_read, 0u);  // the peer saw EOF, not data
}

TEST(FaultInjection, StreamSeedsAreDeterministic) {
  FaultConfig config;
  config.seed = 42;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next_stream_seed(), b.next_stream_seed());
  }
  FaultConfig other = config;
  other.seed = 43;
  FaultInjector c(other);
  EXPECT_NE(FaultInjector(config).next_stream_seed(), c.next_stream_seed());
}

// Regression: a read deadline set on the wrapper must reach the inner
// pipe — a transparent wrapper that swallowed set_read_timeout would
// reintroduce the stalled-peer hang the server deadlines exist to fix.
TEST(FaultInjection, ReadTimeoutForwardsThroughWrapper) {
  Peer peer([](Stream& stream) {
    char buf[16];
    (void)stream.read(buf, sizeof buf);  // never writes anything back
  });
  FaultConfig config;  // no faults: fully transparent
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  stream.value()->set_read_timeout(0.05);
  char buf[16];
  auto n = stream.value()->read(buf, sizeof buf);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kTimeout);
  stream.value()->close();
}

TEST(FaultInjection, BytesWrittenForwardsThroughWrapper) {
  Peer peer([](Stream& stream) {
    char buf[64];
    while (true) {
      auto n = stream.read(buf, sizeof buf);
      if (!n.ok() || n.value() == 0) return;
    }
  });
  FaultConfig config;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream.value()->bytes_written(), 0u);
  ASSERT_TRUE(stream.value()->write("12345").is_ok());
  EXPECT_EQ(stream.value()->bytes_written(), 5u);
  stream.value()->close();
}

// --- non-blocking paths ----------------------------------------------------
// The reactor server reads readiness and first bytes through
// try_read/try_write; injected faults must surface there exactly as
// they do on the blocking twins, or a fault schedule would behave
// differently depending on which core the server runs.

TEST(FaultInjectionNonBlocking, ReadResetSurfacesUnavailable) {
  obs::Registry registry;
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.read_reset = 1.0;
  config.metrics = &registry;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  auto n = stream.value()->try_read(buf, sizeof buf);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(registry.counter("resilience.injected.read_resets").value(), 1u);
}

TEST(FaultInjectionNonBlocking, TruncationIsStickyCleanEofNotWouldBlock) {
  // A torn frame must read as connection loss (clean EOF mid-message),
  // never as would-block — a reactor treating it as "try again later"
  // would park the connection forever.
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.truncate = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  for (int i = 0; i < 3; ++i) {
    auto n = stream.value()->try_read(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value().bytes, 0u);
    EXPECT_FALSE(n.value().would_block);  // EOF, forever
  }
}

TEST(FaultInjectionNonBlocking, InjectedDelayBecomesWouldBlockNotASleep) {
  // A drawn read delay must never stall the calling (reactor) thread:
  // it is reported as a spurious would-block instead.
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.read_delay = 1.0;
  config.delay_seconds = 0.5;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  auto start = std::chrono::steady_clock::now();
  auto n = stream.value()->try_read(buf, sizeof buf);
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().bytes, 0u);
  EXPECT_TRUE(n.value().would_block);
  EXPECT_LT(elapsed, 0.1);  // nowhere near the 0.5 s injected delay
}

TEST(FaultInjectionNonBlocking, WriteResetMidwayDeliversTornPrefix) {
  std::string received;
  Peer peer([&received](Stream& stream) {
    char buf[64];
    for (;;) {
      auto n = stream.read(buf, sizeof buf);
      if (!n.ok() || n.value() == 0) return;
      received.append(buf, n.value());
    }
  });
  FaultConfig config;
  config.write_reset_midway = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  const std::string sent = "frame-that-tears";
  auto wrote = stream.value()->try_write(sent);
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.status().code(), ErrorCode::kUnavailable);
  peer.thread.join();
  // The ambiguous case: a strict prefix arrived, then the line died.
  EXPECT_LT(received.size(), sent.size());
}

TEST(FaultInjectionNonBlocking, SeededScheduleReplaysAcrossBothApis) {
  // The same (seed, connection ordinal) must fire the same fault at
  // the same operation index whether the caller reads blocking or
  // non-blocking — otherwise a recorded failing schedule would not
  // replay under the reactor.
  // Every fault draw happens per *call*, so both runs must issue the
  // same call sequence: the peer stages all 64 bytes up front and the
  // client waits for them, so neither path ever retries on empty.
  auto fault_index = [](bool use_try_read) {
    Peer peer([](Stream& stream) {
      (void)stream.write(std::string(64, 'x'));
      char ack[1];
      (void)stream.read(ack, 1);  // hold the connection open
    });
    FaultConfig config;
    config.seed = 7;
    config.read_reset = 0.2;
    FaultInjectingNetwork faulty(config, &peer.network);
    auto stream = faulty.connect("peer");
    if (!stream.ok()) return -2;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    char buf[1];
    for (int i = 0; i < 64; ++i) {
      if (use_try_read) {
        auto n = stream.value()->try_read(buf, 1);
        if (!n.ok()) return i;
      } else {
        auto n = stream.value()->read(buf, 1);
        if (!n.ok()) return i;
      }
    }
    return -1;
  };
  int blocking = fault_index(false);
  int non_blocking = fault_index(true);
  ASSERT_GE(blocking, 0);
  EXPECT_EQ(blocking, non_blocking);
}

}  // namespace
}  // namespace davpse::net
