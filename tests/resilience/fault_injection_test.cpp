// Unit coverage for the deterministic fault injector: every fault kind
// fires when asked, schedules replay exactly from a seed, and the
// wrapper stays transparent (timeouts, byte accounting) when no fault
// fires.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>

#include "net/network.h"
#include "obs/metrics.h"

namespace davpse::net {
namespace {

/// One-connection peer: accepts on its own inner network and runs `fn`
/// on the accepted stream.
struct Peer {
  Network network;
  std::unique_ptr<Listener> listener;
  std::thread thread;

  explicit Peer(std::function<void(Stream&)> fn) {
    auto bound = network.listen("peer");
    if (!bound.ok()) throw std::runtime_error("listen failed");
    listener = std::move(bound).value();
    thread = std::thread([this, fn = std::move(fn)] {
      auto stream = listener->accept();
      if (stream.ok()) fn(*stream.value());
    });
  }

  ~Peer() {
    listener->shutdown();
    if (thread.joinable()) thread.join();
  }
};

TEST(FaultInjection, ForcedConnectFailuresThenRecovery) {
  obs::Registry registry;
  Peer peer([](Stream& stream) {
    char buf[16];
    (void)stream.read(buf, sizeof buf);
  });
  FaultConfig config;
  config.metrics = &registry;
  FaultInjectingNetwork faulty(config, &peer.network);
  faulty.injector().fail_next_connects(2);

  for (int i = 0; i < 2; ++i) {
    auto refused = faulty.connect("peer");
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), ErrorCode::kUnavailable);
  }
  auto ok = faulty.connect("peer");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(registry.counter("resilience.injected.connect_failures").value(),
            2u);
  (void)ok.value()->write("x");
}

TEST(FaultInjection, ReadResetSurfacesUnavailable) {
  obs::Registry registry;
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.read_reset = 1.0;
  config.metrics = &registry;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  auto n = stream.value()->read(buf, sizeof buf);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(registry.counter("resilience.injected.read_resets").value(), 1u);
}

TEST(FaultInjection, TruncationIsStickyCleanEof) {
  Peer peer([](Stream& stream) { (void)stream.write("hello"); });
  FaultConfig config;
  config.truncate = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  char buf[16];
  for (int i = 0; i < 3; ++i) {
    auto n = stream.value()->read(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0u);  // premature clean EOF, forever
  }
}

TEST(FaultInjection, CorruptionFlipsExactlyOneBit) {
  std::string received;
  Peer peer([&received](Stream& stream) {
    char buf[64];
    for (;;) {
      auto n = stream.read(buf, sizeof buf);
      if (!n.ok() || n.value() == 0) return;
      received.append(buf, n.value());
    }
  });
  FaultConfig config;
  config.corrupt = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  const std::string sent = "payload-block";
  ASSERT_TRUE(stream.value()->write(sent).is_ok());
  stream.value()->shutdown_write();
  // Join the peer to make `received` safe to inspect. The write-side
  // shutdown gives the peer a clean EOF, so the thread finishes on its
  // own; shutting the listener down first could cancel a not-yet-run
  // accept and drop the connection entirely.
  peer.thread.join();

  ASSERT_EQ(received.size(), sent.size());
  int flipped_bits = 0;
  for (size_t i = 0; i < sent.size(); ++i) {
    unsigned char diff =
        static_cast<unsigned char>(sent[i] ^ received[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(FaultInjection, WriteResetFailsBeforeAnyByte) {
  std::string received;
  size_t peer_read = 0;
  Peer peer([&peer_read](Stream& stream) {
    char buf[64];
    auto n = stream.read(buf, sizeof buf);
    if (n.ok()) peer_read = n.value();
  });
  FaultConfig config;
  config.write_reset = 1.0;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  auto wrote = stream.value()->write("never-arrives");
  ASSERT_FALSE(wrote.is_ok());
  EXPECT_EQ(wrote.code(), ErrorCode::kUnavailable);
  peer.listener->shutdown();
  peer.thread.join();
  EXPECT_EQ(peer_read, 0u);  // the peer saw EOF, not data
}

TEST(FaultInjection, StreamSeedsAreDeterministic) {
  FaultConfig config;
  config.seed = 42;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next_stream_seed(), b.next_stream_seed());
  }
  FaultConfig other = config;
  other.seed = 43;
  FaultInjector c(other);
  EXPECT_NE(FaultInjector(config).next_stream_seed(), c.next_stream_seed());
}

// Regression: a read deadline set on the wrapper must reach the inner
// pipe — a transparent wrapper that swallowed set_read_timeout would
// reintroduce the stalled-peer hang the server deadlines exist to fix.
TEST(FaultInjection, ReadTimeoutForwardsThroughWrapper) {
  Peer peer([](Stream& stream) {
    char buf[16];
    (void)stream.read(buf, sizeof buf);  // never writes anything back
  });
  FaultConfig config;  // no faults: fully transparent
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  stream.value()->set_read_timeout(0.05);
  char buf[16];
  auto n = stream.value()->read(buf, sizeof buf);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), ErrorCode::kTimeout);
  stream.value()->close();
}

TEST(FaultInjection, BytesWrittenForwardsThroughWrapper) {
  Peer peer([](Stream& stream) {
    char buf[64];
    while (true) {
      auto n = stream.read(buf, sizeof buf);
      if (!n.ok() || n.value() == 0) return;
    }
  });
  FaultConfig config;
  FaultInjectingNetwork faulty(config, &peer.network);
  auto stream = faulty.connect("peer");
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream.value()->bytes_written(), 0u);
  ASSERT_TRUE(stream.value()->write("12345").is_ok());
  EXPECT_EQ(stream.value()->bytes_written(), 5u);
  stream.value()->close();
}

}  // namespace
}  // namespace davpse::net
