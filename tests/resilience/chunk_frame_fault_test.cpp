// Seeded fault matrix for chunk-frame integrity: with the coalesced
// single-write framing, a mid-frame connection failure (partial write
// then reset, or truncation) must surface as the retryable
// kUnavailable on BOTH ends — the writer reports "connection lost", and
// the reader sees either a clean short body (kUnavailable from the
// decoder) but NEVER a size-line parse error (kMalformed). Under the
// old three-write framing, a reset landing between the size line and
// its payload left the decoder reading payload bytes as the next size
// line — exactly the misclassification this matrix proves gone.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "http/wire.h"
#include "net/fault.h"
#include "net/pipe.h"
#include "obs/metrics.h"

namespace davpse::http {
namespace {

/// Unknown-length source: `chunks` reads of `chunk_bytes` then EOF, so
/// the encoder emits exactly that many chunk frames.
class PatternSource final : public BodySource {
 public:
  PatternSource(int chunks, size_t chunk_bytes)
      : remaining_(chunks), chunk_bytes_(chunk_bytes) {}

  Result<size_t> read(char* buf, size_t max) override {
    if (remaining_ == 0) return 0;
    size_t n = std::min(chunk_bytes_, max);
    for (size_t i = 0; i < n; ++i) {
      buf[i] = static_cast<char>('a' + (i % 26));
    }
    --remaining_;
    return n;
  }

 private:
  int remaining_;
  size_t chunk_bytes_;
};

struct MatrixOutcome {
  bool writer_ok;
  ErrorCode writer_code;  // meaningful when !writer_ok
  bool reader_ok;
  ErrorCode reader_code;  // meaningful when !reader_ok
};

/// Streams one chunked response through a fault-injecting wrapper on
/// the writer side and fully drains the reader. Returns both verdicts.
MatrixOutcome run_streamed_exchange(net::FaultInjector* injector,
                                    uint64_t stream_seed) {
  auto pair = net::make_pipe(16 * 1024);
  auto faulty = std::make_unique<net::FaultInjectingStream>(
      std::move(pair.a), injector, stream_seed);

  MatrixOutcome outcome{};
  std::thread writer([&] {
    HttpResponse response = HttpResponse::make(200);
    response.body_source = std::make_shared<PatternSource>(12, 2048);
    Status written = write_response(faulty.get(), response);
    outcome.writer_ok = written.is_ok();
    outcome.writer_code = written.code();
    faulty->shutdown_write();
  });

  WireReader reader(pair.b.get());
  auto received = reader.read_response();
  outcome.reader_ok = received.ok();
  outcome.reader_code = received.status().code();
  writer.join();
  return outcome;
}

TEST(ChunkFrameFaults, MidwayResetIsRetryableNeverMalformed) {
  obs::Registry registry;
  net::FaultConfig config;
  config.write_reset_midway = 0.15;
  config.metrics = &registry;
  net::FaultInjector injector(config);

  int failures = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    MatrixOutcome outcome = run_streamed_exchange(&injector, seed);
    if (outcome.writer_ok) {
      // No fault fired on this seed: the exchange must be clean.
      EXPECT_TRUE(outcome.reader_ok) << "seed " << seed;
      continue;
    }
    ++failures;
    // Writer side: mid-frame loss is the retryable kUnavailable,
    // whatever point inside the frame the reset landed on.
    EXPECT_EQ(outcome.writer_code, ErrorCode::kUnavailable)
        << "seed " << seed;
    // Reader side: a torn frame must read as a dead/truncated
    // connection, never as a protocol error — kMalformed would make
    // the client treat a transient network fault as a peer bug.
    ASSERT_FALSE(outcome.reader_ok) << "seed " << seed;
    EXPECT_EQ(outcome.reader_code, ErrorCode::kUnavailable)
        << "seed " << seed;
  }
  // The 15% per-write rate over 40 seeds x 13 writes must actually
  // exercise the failure path many times over.
  EXPECT_GE(failures, 10) << "fault schedule injected too few resets";
  EXPECT_EQ(registry.counter("resilience.injected.write_resets").value(),
            static_cast<uint64_t>(failures));
}

TEST(ChunkFrameFaults, PreSendResetIsRetryableOnBothEnds) {
  obs::Registry registry;
  net::FaultConfig config;
  config.write_reset = 0.2;
  config.metrics = &registry;
  net::FaultInjector injector(config);

  int failures = 0;
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    MatrixOutcome outcome = run_streamed_exchange(&injector, seed);
    if (outcome.writer_ok) {
      EXPECT_TRUE(outcome.reader_ok) << "seed " << seed;
      continue;
    }
    ++failures;
    EXPECT_EQ(outcome.writer_code, ErrorCode::kUnavailable)
        << "seed " << seed;
    ASSERT_FALSE(outcome.reader_ok) << "seed " << seed;
    EXPECT_EQ(outcome.reader_code, ErrorCode::kUnavailable)
        << "seed " << seed;
  }
  EXPECT_GE(failures, 8) << "fault schedule injected too few resets";
}

TEST(ChunkFrameFaults, SameSeedReplaysIdentically) {
  net::FaultConfig config;
  config.write_reset_midway = 0.3;
  // Two injectors from the same schedule seed: outcome per stream seed
  // must be bit-for-bit reproducible — the property that makes a
  // failing matrix entry debuggable.
  net::FaultInjector first(config);
  net::FaultInjector second(config);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    MatrixOutcome a = run_streamed_exchange(&first, seed);
    MatrixOutcome b = run_streamed_exchange(&second, seed);
    EXPECT_EQ(a.writer_ok, b.writer_ok) << "seed " << seed;
    EXPECT_EQ(a.reader_ok, b.reader_ok) << "seed " << seed;
  }
}

}  // namespace
}  // namespace davpse::http
