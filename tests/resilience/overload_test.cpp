// Overload shedding and per-request read deadlines: an HTTP server with
// a tiny daemon pool must answer "503, back off" immediately instead of
// queueing without bound, and a peer that stalls mid-request must not
// pin a daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "http/client.h"
#include "http/server.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "testing/env.h"

namespace davpse::http {
namespace {

class SlowHandler final : public Handler {
 public:
  explicit SlowHandler(double seconds) : seconds_(seconds) {}
  HttpResponse handle(const HttpRequest&) override {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds_));
    return HttpResponse::make(kOk, "served\n");
  }

 private:
  double seconds_;
};

ClientConfig client_config(const std::string& endpoint,
                           obs::Registry* metrics) {
  ClientConfig config;
  config.endpoint = endpoint;
  config.metrics = metrics;
  return config;
}

TEST(Overload, ShedsWith503AndRetryAfter) {
  obs::Registry registry;
  SlowHandler handler(0.1);
  ServerConfig server_config;
  server_config.endpoint = testing::unique_endpoint("overload");
  server_config.daemons = 1;
  server_config.max_queue_depth = 1;
  server_config.retry_after_seconds = 2;
  server_config.metrics = &registry;
  HttpServer server(server_config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kClients = 6;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      ClientConfig config =
          client_config(server.endpoint(), &registry);
      config.retry = RetryPolicy::none();  // observe the raw 503
      HttpClient client(config);
      auto response = client.get("/");
      if (!response.ok()) {
        ++other;
        return;
      }
      if (response.value().status == kOk) {
        ++ok_count;
      } else if (response.value().status == kServiceUnavailable) {
        // The shed reply must carry the backoff hint.
        EXPECT_EQ(response.value().headers.get_uint("Retry-After"),
                  std::optional<uint64_t>(2));
        ++shed_count;
      } else {
        ++other;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(shed_count.load(), 1);
  EXPECT_EQ(registry.counter("http.server.shed").value(),
            static_cast<uint64_t>(shed_count.load()));

  // The pool itself never jammed: a fresh request still gets served.
  HttpClient after(client_config(server.endpoint(), &registry));
  auto response = after.get("/");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, kOk);

  // The in-flight gauge must drain to exactly zero once the burst is
  // over: every path — served, shed, aborted — balances its increment.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (registry.snapshot().gauge("http.server.in_flight") != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(registry.snapshot().gauge("http.server.in_flight"), 0);
}

TEST(Overload, RetryingClientsRideThroughShedding) {
  obs::Registry registry;
  SlowHandler handler(0.02);
  ServerConfig server_config;
  server_config.endpoint = testing::unique_endpoint("overload-retry");
  server_config.daemons = 1;
  server_config.max_queue_depth = 1;
  server_config.retry_after_seconds = 0;  // client backoff governs
  server_config.metrics = &registry;
  HttpServer server(server_config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kClients = 6;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientConfig config = client_config(server.endpoint(), &registry);
      config.connect_label = "overload.client" + std::to_string(i);
      config.retry.max_attempts = 20;
      config.retry.initial_backoff_seconds = 0.005;
      config.retry.max_backoff_seconds = 0.05;
      HttpClient client(config);
      auto response = client.get("/");
      if (response.ok() && response.value().status == kOk) ++ok_count;
    });
  }
  for (auto& thread : threads) thread.join();
  // Every client eventually got through by honoring the 503 backoff.
  EXPECT_EQ(ok_count.load(), kClients);
}

TEST(ReadDeadline, SilentConnectionNeverPinsADaemon) {
  obs::Registry registry;
  SlowHandler handler(0.0);
  ServerConfig server_config;
  server_config.endpoint = testing::unique_endpoint("deadline-idle");
  server_config.daemons = 1;  // a single pinned daemon would jam it all
  server_config.request_read_timeout_seconds = 0.05;
  server_config.metrics = &registry;
  HttpServer server(server_config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  // Connect and send nothing. The lone daemon must shake this off.
  auto mute = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(mute.ok());

  HttpClient client(client_config(server.endpoint(), &registry));
  auto response = client.get("/");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, kOk);
  mute.value()->close();
}

TEST(ReadDeadline, StalledBodyGets408AndDaemonRecovers) {
  obs::Registry registry;
  SlowHandler handler(0.0);
  ServerConfig server_config;
  server_config.endpoint = testing::unique_endpoint("deadline-body");
  server_config.daemons = 1;
  server_config.request_read_timeout_seconds = 0.05;
  server_config.metrics = &registry;
  HttpServer server(server_config, &handler);
  ASSERT_TRUE(server.start().is_ok());

  auto stalled = net::Network::instance().connect(server.endpoint());
  ASSERT_TRUE(stalled.ok());
  // Complete head, then stop three bytes into a ten-byte body.
  ASSERT_TRUE(stalled.value()
                  ->write("PUT /x HTTP/1.1\r\nHost: h\r\n"
                          "Content-Length: 10\r\n\r\nabc")
                  .is_ok());
  std::string reply;
  char buf[512];
  for (;;) {
    auto n = stalled.value()->read(buf, sizeof buf);
    if (!n.ok() || n.value() == 0) break;
    reply.append(buf, n.value());
  }
  EXPECT_NE(reply.find("HTTP/1.1 408"), std::string::npos) << reply;
  stalled.value()->close();

  // The daemon is free again for a well-behaved client.
  HttpClient client(client_config(server.endpoint(), &registry));
  auto response = client.get("/");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, kOk);
}

}  // namespace
}  // namespace davpse::http
