// The seeded fault matrix: PUT/GET/PROPFIND/LOCK round-trips through a
// real DAV stack under each injected fault kind. The contract under
// test is the retry loop's safety envelope —
//   * a fault the policy can recover from ends in success,
//   * a persistent fault ends in a clean retryable Status (kUnavailable
//     or kTimeout), never a hang, crash, or mangled result,
//   * a non-replay-safe request (PUT, LOCK) is processed by the server
//     at most once per logical call, whatever the schedule does.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "davclient/client.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "testing/env.h"
#include "util/status.h"
#include "xml/qname.h"

namespace davpse {
namespace {

struct FaultCase {
  std::string name;
  net::FaultConfig config;  // seed filled per run
  bool expect_success;      // recoverable schedule vs persistent fault
};

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  {
    // Persistent mid-read reset: replay-safe methods retry and still
    // fail cleanly; non-replay-safe methods fail on the first loss.
    FaultCase c;
    c.name = "read_reset";
    c.config.read_reset = 1.0;
    c.expect_success = false;
    cases.push_back(c);
  }
  {
    // Reset before any byte leaves: provably-unsent, so every method
    // retries — but the fault never clears, so the budget runs out.
    FaultCase c;
    c.name = "write_reset";
    c.config.write_reset = 1.0;
    c.expect_success = false;
    cases.push_back(c);
  }
  {
    // Premature clean EOF mid-response.
    FaultCase c;
    c.name = "truncate";
    c.config.truncate = 1.0;
    c.expect_success = false;
    cases.push_back(c);
  }
  {
    // Injected stalls only: slow but correct.
    FaultCase c;
    c.name = "read_delay";
    c.config.read_delay = 1.0;
    c.config.delay_seconds = 0.001;
    c.expect_success = true;
    cases.push_back(c);
  }
  return cases;
}

davclient::DavClient faulty_client(testing::DavStack& stack,
                                   net::Network* network,
                                   obs::Registry* metrics) {
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  config.metrics = metrics;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_seconds = 0.001;
  config.retry.max_backoff_seconds = 0.01;
  return davclient::DavClient(config, davclient::ParserKind::kDom, network);
}

uint64_t put_count(const obs::Registry& registry) {
  return registry.snapshot().counter("http.server.requests.PUT");
}

/// Runs one method through the faulty client; returns its Status.
Status run_method(davclient::DavClient& client, const std::string& method,
                  const std::string& path, const std::string& body) {
  if (method == "GET") return client.get(path).status();
  if (method == "PUT") return client.put(path, body);
  if (method == "PROPFIND") {
    return client
        .propfind(path, davclient::Depth::kZero, {xml::dav_name("getetag")})
        .status();
  }
  if (method == "LOCK") {
    auto lock = client.lock_exclusive(path, "matrix-test", 60);
    if (lock.ok()) (void)client.unlock(lock.value());
    return lock.status();
  }
  return Status(ErrorCode::kInvalidArgument, "unknown method " + method);
}

TEST(FaultMatrix, EveryMethodUnderEveryFault) {
  const std::vector<uint64_t> seeds = {1, 7, 1234};
  const std::vector<std::string> methods = {"GET", "PROPFIND", "PUT", "LOCK"};
  for (const FaultCase& fault : fault_cases()) {
    for (uint64_t seed : seeds) {
      obs::Registry registry;
      testing::DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/5, &registry);
      // Seed the repository over the clean network so read-only methods
      // have something to fetch.
      auto clean = stack.client();
      ASSERT_TRUE(clean.put("/doc.txt", "seeded-content").is_ok());

      net::FaultConfig config = fault.config;
      config.seed = seed;
      config.metrics = &registry;
      net::FaultInjectingNetwork faulty_net(config);
      auto client = faulty_client(stack, &faulty_net, &registry);

      for (const std::string& method : methods) {
        SCOPED_TRACE(fault.name + "/" + method + "/seed" +
                     std::to_string(seed));
        uint64_t puts_before = put_count(registry);
        std::string target =
            method == "PUT" ? "/put-" + fault.name + ".txt" : "/doc.txt";
        std::string body = "body-" + fault.name + std::to_string(seed);
        Status status = run_method(client, method, target, body);
        if (fault.expect_success) {
          EXPECT_TRUE(status.is_ok()) << status.to_string();
        } else {
          // Either the retry loop recovered or the failure surfaced as
          // a clean retryable error — never anything else.
          EXPECT_TRUE(status.is_ok() || status.is_retryable())
              << status.to_string();
        }
        if (method == "PUT") {
          // The server must never have processed this PUT twice: a
          // replayed non-idempotent write would record a duplicate
          // version under DeltaV-lite auto-checkin.
          EXPECT_LE(put_count(registry) - puts_before, 1u);
        }
        // The client's connection state must be clean enough for the
        // *next* row — reset explicitly like a fresh caller would.
        client.http().reset_connection();
      }
    }
  }
}

// A single forced refusal is the canonical recoverable fault: the
// request provably never left, so even PUT replays — and succeeds on
// the retry, with exactly one server-side write.
TEST(FaultMatrix, ForcedConnectFailureRecoversForEveryMethod) {
  const std::vector<std::string> methods = {"GET", "PROPFIND", "PUT", "LOCK"};
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/5, &registry);
  auto clean = stack.client();
  ASSERT_TRUE(clean.put("/doc.txt", "seeded-content").is_ok());

  net::FaultConfig config;
  config.metrics = &registry;
  net::FaultInjectingNetwork faulty_net(config);
  auto client = faulty_client(stack, &faulty_net, &registry);

  for (const std::string& method : methods) {
    SCOPED_TRACE(method);
    uint64_t puts_before = put_count(registry);
    faulty_net.injector().fail_next_connects(1);
    std::string target = method == "PUT" ? "/forced-put.txt" : "/doc.txt";
    Status status = run_method(client, method, target, "forced-body");
    EXPECT_TRUE(status.is_ok()) << status.to_string();
    if (method == "PUT") {
      EXPECT_EQ(put_count(registry) - puts_before, 1u);
    }
    client.http().reset_connection();
  }
  EXPECT_EQ(registry.counter("resilience.injected.connect_failures").value(),
            4u);
}

}  // namespace
}  // namespace davpse
