// Stale-serving degradation: when the repository goes down, the
// client-side cache keeps answering reads from its last-validated
// copies — marked stale — instead of erroring. The PSE reads through an
// outage; only uncached objects fail.
#include <gtest/gtest.h>

#include <string>

#include "core/caching_storage.h"
#include "davclient/client.h"
#include "obs/metrics.h"
#include "testing/env.h"
#include "util/status.h"

namespace davpse::ecce {
namespace {

davclient::DavClient quick_client(testing::DavStack& stack,
                                  obs::Registry* metrics) {
  http::ClientConfig config;
  config.endpoint = stack.server->endpoint();
  config.metrics = metrics;
  // Keep the outage path fast: one retry with a tiny backoff.
  config.retry.max_attempts = 2;
  config.retry.initial_backoff_seconds = 0.001;
  config.retry.max_backoff_seconds = 0.005;
  return davclient::DavClient(config);
}

TEST(StaleServe, OutageServesCachedCopyMarkedStale) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/5, &registry);
  auto client = quick_client(stack, &registry);
  CachingDavStorage storage(&client, &registry);

  ASSERT_TRUE(
      storage.write_object("/doc.txt", "cached-content", "text/plain")
          .is_ok());
  Freshness freshness = Freshness::kStale;
  auto fresh_read = storage.read_object("/doc.txt", &freshness);
  ASSERT_TRUE(fresh_read.ok());
  EXPECT_EQ(fresh_read.value(), "cached-content");
  EXPECT_EQ(freshness, Freshness::kFresh);
  EXPECT_EQ(storage.stale_served(), 0u);

  // Repository outage: every connect is now refused.
  stack.server->stop();

  auto stale_read = storage.read_object("/doc.txt", &freshness);
  ASSERT_TRUE(stale_read.ok()) << stale_read.status().to_string();
  EXPECT_EQ(stale_read.value(), "cached-content");
  EXPECT_EQ(freshness, Freshness::kStale);
  EXPECT_EQ(storage.stale_served(), 1u);
  EXPECT_EQ(registry.counter("ecce.cache.stale_served").value(), 1u);

  // The nullptr-freshness overload degrades the same way.
  auto plain_read = storage.read_object("/doc.txt");
  ASSERT_TRUE(plain_read.ok());
  EXPECT_EQ(plain_read.value(), "cached-content");
  EXPECT_EQ(storage.stale_served(), 2u);
}

TEST(StaleServe, UncachedObjectStillFailsDuringOutage) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/5, &registry);
  auto client = quick_client(stack, &registry);
  CachingDavStorage storage(&client, &registry);

  ASSERT_TRUE(
      storage.write_object("/cached.txt", "kept", "text/plain").is_ok());
  ASSERT_TRUE(storage.read_object("/cached.txt").ok());
  stack.server->stop();

  Freshness freshness = Freshness::kFresh;
  auto missing = storage.read_object("/never-read.txt", &freshness);
  ASSERT_FALSE(missing.ok());
  // The outage error surfaces — retryable, so callers can distinguish
  // "repository down" from "object does not exist".
  EXPECT_TRUE(missing.status().is_retryable())
      << missing.status().to_string();
  EXPECT_EQ(registry.counter("ecce.cache.stale_served").value(), 0u);
}

TEST(StaleServe, NotFoundNeverDegradesToStale) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/5, &registry);
  auto client = quick_client(stack, &registry);
  CachingDavStorage storage(&client, &registry);

  ASSERT_TRUE(
      storage.write_object("/doc.txt", "original", "text/plain").is_ok());
  ASSERT_TRUE(storage.read_object("/doc.txt").ok());

  // The object is deleted behind the cache's back: the next read must
  // report kNotFound, not quietly serve the dead cached copy.
  ASSERT_TRUE(client.remove("/doc.txt").is_ok());
  auto gone = storage.read_object("/doc.txt");
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(storage.stale_served(), 0u);
}

TEST(StaleServe, CacheLevelRetryPolicyRecoversTransientOutage) {
  obs::Registry registry;
  testing::DavStack stack(dbm::Flavor::kGdbm, /*daemons=*/5, &registry);
  auto client = quick_client(stack, &registry);
  RetryPolicy cache_retry;
  cache_retry.max_attempts = 3;
  cache_retry.initial_backoff_seconds = 0.001;
  CachingDavStorage storage(&client, &registry, cache_retry);

  ASSERT_TRUE(
      storage.write_object("/doc.txt", "content", "text/plain").is_ok());
  Freshness freshness = Freshness::kStale;
  auto read = storage.read_object("/doc.txt", &freshness);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(freshness, Freshness::kFresh);
}

}  // namespace
}  // namespace davpse::ecce
