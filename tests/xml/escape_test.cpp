#include "xml/escape.h"

#include <gtest/gtest.h>

namespace davpse::xml {
namespace {

TEST(Escape, TextEscapesMarkup) {
  EXPECT_EQ(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(escape_text("plain"), "plain");
  EXPECT_EQ(escape_text("\"quotes'stay\""), "\"quotes'stay\"");
}

TEST(Escape, AttributeAlsoEscapesQuotes) {
  EXPECT_EQ(escape_attribute("a\"b"), "a&quot;b");
  EXPECT_EQ(escape_attribute("<&>"), "&lt;&amp;&gt;");
}

TEST(Unescape, InvertsTextEscaping) {
  EXPECT_EQ(unescape_text("a&lt;b&gt;&amp;c"), "a<b>&c");
  EXPECT_EQ(unescape_text("&quot;&apos;"), "\"'");
  EXPECT_EQ(unescape_text("no entities"), "no entities");
  // Unknown entities pass through untouched.
  EXPECT_EQ(unescape_text("&unknown;"), "&unknown;");
  EXPECT_EQ(unescape_text("dangling &"), "dangling &");
}

TEST(Unescape, RoundTripsEscapeText) {
  const std::string samples[] = {
      "", "plain", "<<<>>>", "&&&", "a < b && c > d",
      "mixed \"quotes\" & 'apostrophes' <tags>"};
  for (const auto& sample : samples) {
    EXPECT_EQ(unescape_text(escape_text(sample)), sample) << sample;
  }
}

TEST(XmlSafeText, ControlByteDetection) {
  EXPECT_TRUE(is_xml_safe_text("normal text\twith\ntabs\rand newlines"));
  EXPECT_FALSE(is_xml_safe_text(std::string("bin\0ary", 7)));
  EXPECT_FALSE(is_xml_safe_text("\x01"));
  EXPECT_TRUE(is_xml_safe_text("\x7f\x80"));  // high bytes are fine
}

}  // namespace
}  // namespace davpse::xml
