#include "xml/writer.h"

#include <gtest/gtest.h>

namespace davpse::xml {
namespace {

TEST(Writer, SimpleDocument) {
  XmlWriter writer;
  writer.start_element(QName("", "root"));
  writer.text("hello");
  writer.end_element();
  EXPECT_EQ(writer.take(), "<root>hello</root>");
}

TEST(Writer, Declaration) {
  XmlWriter writer;
  writer.declaration();
  writer.empty_element(QName("", "r"));
  EXPECT_EQ(writer.take(),
            "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<r/>");
}

TEST(Writer, SelfClosingEmptyElement) {
  XmlWriter writer;
  writer.start_element(QName("", "a"));
  writer.empty_element(QName("", "b"));
  writer.end_element();
  EXPECT_EQ(writer.take(), "<a><b/></a>");
}

TEST(Writer, NamespaceDeclaredOnFirstUse) {
  XmlWriter writer;
  writer.prefer_prefix("DAV:", "D");
  writer.start_element(dav_name("multistatus"));
  writer.empty_element(dav_name("response"));
  writer.end_element();
  EXPECT_EQ(writer.take(),
            "<D:multistatus xmlns:D=\"DAV:\"><D:response/></D:multistatus>");
}

TEST(Writer, AutoPrefixesForUnknownNamespaces) {
  XmlWriter writer;
  writer.start_element(QName("urn:a", "root"));
  writer.empty_element(QName("urn:b", "child"));
  writer.end_element();
  std::string xml = writer.take();
  EXPECT_NE(xml.find("xmlns:ns1=\"urn:a\""), std::string::npos);
  EXPECT_NE(xml.find("xmlns:ns2=\"urn:b\""), std::string::npos);
}

TEST(Writer, NamespaceScopeEndsWithElement) {
  XmlWriter writer;
  writer.start_element(QName("", "root"));
  writer.empty_element(QName("urn:x", "a"));
  writer.empty_element(QName("urn:x", "b"));
  writer.end_element();
  std::string xml = writer.take();
  // Declared twice: the binding from <a> went out of scope before <b>.
  size_t first = xml.find("xmlns:ns1=\"urn:x\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(xml.find("xmlns:ns2=\"urn:x\"", first + 1), std::string::npos);
}

TEST(Writer, SiblingReusesAncestorBinding) {
  XmlWriter writer;
  writer.start_element(QName("urn:x", "root"));
  writer.empty_element(QName("urn:x", "child"));
  writer.end_element();
  std::string xml = writer.take();
  // Only one declaration: the child reuses the root's binding.
  size_t first = xml.find("xmlns:");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(xml.find("xmlns:", first + 1), std::string::npos);
}

TEST(Writer, AttributesAndEscaping) {
  XmlWriter writer;
  writer.start_element(QName("", "e"));
  writer.attribute("name", "a\"<>&b");
  writer.text("x<y");
  writer.end_element();
  EXPECT_EQ(writer.take(),
            "<e name=\"a&quot;&lt;&gt;&amp;b\">x&lt;y</e>");
}

TEST(Writer, TextElementConvenience) {
  XmlWriter writer;
  writer.start_element(QName("", "root"));
  writer.text_element(QName("", "inner"), "value");
  writer.text_element(QName("", "empty"), "");
  writer.end_element();
  EXPECT_EQ(writer.take(), "<root><inner>value</inner><empty/></root>");
}

TEST(Writer, RawContentEmbedding) {
  XmlWriter writer;
  writer.start_element(QName("", "root"));
  writer.raw("<pre-serialized xmlns=\"urn:z\"/>");
  writer.end_element();
  EXPECT_EQ(writer.take(),
            "<root><pre-serialized xmlns=\"urn:z\"/></root>");
}

TEST(Writer, DepthTracksNesting) {
  XmlWriter writer;
  EXPECT_EQ(writer.depth(), 0u);
  writer.start_element(QName("", "a"));
  writer.start_element(QName("", "b"));
  EXPECT_EQ(writer.depth(), 2u);
  writer.end_element();
  writer.end_element();
  EXPECT_EQ(writer.depth(), 0u);
}

}  // namespace
}  // namespace davpse::xml
