#include "xml/dom.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "xml/writer.h"

namespace davpse::xml {
namespace {

TEST(Dom, ParseAndNavigate) {
  auto doc = parse_document(
      R"(<D:multistatus xmlns:D="DAV:">
           <D:response><D:href>/a</D:href></D:response>
           <D:response><D:href>/b</D:href></D:response>
         </D:multistatus>)");
  ASSERT_TRUE(doc.ok());
  const Element& root = *doc.value();
  EXPECT_EQ(root.name(), dav_name("multistatus"));
  auto responses = root.children_named(dav_name("response"));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0]->child_text(dav_name("href")), "/a");
  EXPECT_EQ(responses[1]->child_text(dav_name("href")), "/b");
  EXPECT_EQ(root.first_child(dav_name("missing")), nullptr);
  EXPECT_EQ(root.child_text(dav_name("missing")), "");
}

TEST(Dom, AttributesAccessible) {
  auto doc = parse_document(R"(<e a="1" b="two"/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attribute("a"), "1");
  EXPECT_EQ(doc.value()->attribute("b"), "two");
  EXPECT_EQ(doc.value()->attribute("c"), "");
}

TEST(Dom, TextAccumulatesAcrossEntitiesAndCdata) {
  auto doc = parse_document("<e>a&amp;b<![CDATA[<c>]]>d</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->text(), "a&b<c>d");
}

TEST(Dom, SubtreeSize) {
  auto doc = parse_document("<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->subtree_size(), 4u);
}

TEST(Dom, ToXmlReparsesToSameStructure) {
  auto doc = parse_document(
      R"(<root xmlns:p="urn:p"><p:x>text &amp; entity</p:x><plain/></root>)");
  ASSERT_TRUE(doc.ok());
  auto reparsed = parse_document(doc.value()->to_xml());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value()->subtree_size(), doc.value()->subtree_size());
  EXPECT_EQ(reparsed.value()->first_child(QName("urn:p", "x"))->text(),
            "text & entity");
}

TEST(Dom, MalformedInputRejected) {
  EXPECT_FALSE(parse_document("<a><b></a>").ok());
  EXPECT_FALSE(parse_document("").ok());
}

// --- Property-based: random documents survive write->parse->write ------

struct RandomDocParams {
  uint64_t seed;
  int max_depth;
  int max_children;
};

void generate(Rng& rng, XmlWriter* writer, Element* shadow, int depth,
              int max_depth, int max_children) {
  size_t child_count = depth >= max_depth ? 0 : rng.uniform(0, max_children);
  for (size_t i = 0; i < child_count; ++i) {
    bool namespaced = rng.coin(0.4);
    QName name(namespaced ? "urn:ns" + std::to_string(rng.uniform(1, 3)) : "",
               rng.identifier(1, 8));
    writer->start_element(name);
    Element* child = shadow->add_child(name);
    if (rng.coin(0.6)) {
      std::string text = rng.ascii_blob(rng.uniform(0, 20));
      writer->text(text);
      child->append_text(text);
    }
    generate(rng, writer, child, depth + 1, max_depth, max_children);
    writer->end_element();
  }
}

bool structurally_equal(const Element& a, const Element& b) {
  if (!(a.name() == b.name())) return false;
  if (a.text() != b.text()) return false;
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!structurally_equal(*a.children()[i], *b.children()[i])) return false;
  }
  return true;
}

class DomRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomRoundTrip, RandomDocumentsRoundTrip) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 10; ++iteration) {
    XmlWriter writer;
    Element expected(QName("", "root"));
    writer.start_element(expected.name());
    generate(rng, &writer, &expected, 0, 4, 4);
    writer.end_element();
    std::string xml = writer.take();

    auto parsed = parse_document(xml);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string() << "\n" << xml;
    EXPECT_TRUE(structurally_equal(expected, *parsed.value())) << xml;

    // Second generation: serialize the parsed tree and parse again.
    auto reparsed = parse_document(parsed.value()->to_xml());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_TRUE(structurally_equal(*parsed.value(), *reparsed.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace davpse::xml
