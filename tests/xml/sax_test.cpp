#include "xml/sax.h"

#include <gtest/gtest.h>

namespace davpse::xml {
namespace {

/// Records events as readable strings for assertion.
class Recorder final : public SaxHandler {
 public:
  void on_start_element(const QName& name,
                        const std::vector<SaxAttribute>& attributes) override {
    std::string event = "start " + name.to_string();
    for (const auto& attr : attributes) {
      event += " @" + attr.name.to_string() + "=" + attr.value;
    }
    events.push_back(std::move(event));
  }
  void on_end_element(const QName& name) override {
    events.push_back("end " + name.to_string());
  }
  void on_characters(std::string_view text) override {
    if (!events.empty() && events.back().starts_with("text ")) {
      events.back() += text;  // merge adjacent runs for stable asserts
    } else {
      events.push_back("text " + std::string(text));
    }
  }

  std::vector<std::string> events;
};

std::vector<std::string> parse_events(std::string_view xml) {
  Recorder recorder;
  SaxParser parser;
  Status status = parser.parse(xml, &recorder);
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  return recorder.events;
}

Status parse_status(std::string_view xml) {
  Recorder recorder;
  SaxParser parser;
  return parser.parse(xml, &recorder);
}

TEST(Sax, SimpleElement) {
  EXPECT_EQ(parse_events("<a>hi</a>"),
            (std::vector<std::string>{"start a", "text hi", "end a"}));
}

TEST(Sax, SelfClosing) {
  EXPECT_EQ(parse_events("<a/>"),
            (std::vector<std::string>{"start a", "end a"}));
}

TEST(Sax, NestedWithWhitespaceText) {
  auto events = parse_events("<a> <b/> </a>");
  EXPECT_EQ(events, (std::vector<std::string>{"start a", "text  ", "start b",
                                              "end b", "text  ", "end a"}));
}

TEST(Sax, AttributesWithBothQuoteStyles) {
  auto events = parse_events(R"(<a x="1" y='2'/>)");
  EXPECT_EQ(events,
            (std::vector<std::string>{"start a @x=1 @y=2", "end a"}));
}

TEST(Sax, DefaultNamespaceAppliesToElementsNotAttributes) {
  auto events = parse_events(R"(<a xmlns="urn:n" x="1"><b/></a>)");
  EXPECT_EQ(events, (std::vector<std::string>{"start {urn:n}a @x=1",
                                              "start {urn:n}b",
                                              "end {urn:n}b", "end {urn:n}a"}));
}

TEST(Sax, PrefixedNamespaces) {
  auto events = parse_events(
      R"(<D:multistatus xmlns:D="DAV:"><D:href>/x</D:href></D:multistatus>)");
  EXPECT_EQ(events,
            (std::vector<std::string>{"start {DAV:}multistatus",
                                      "start {DAV:}href", "text /x",
                                      "end {DAV:}href",
                                      "end {DAV:}multistatus"}));
}

TEST(Sax, PrefixScopingAndShadowing) {
  auto events = parse_events(
      R"(<p:a xmlns:p="urn:1"><p:b xmlns:p="urn:2"/><p:c/></p:a>)");
  EXPECT_EQ(events, (std::vector<std::string>{
                        "start {urn:1}a", "start {urn:2}b", "end {urn:2}b",
                        "start {urn:1}c", "end {urn:1}c", "end {urn:1}a"}));
}

TEST(Sax, EntityDecoding) {
  auto events = parse_events("<a>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</a>");
  EXPECT_EQ(events, (std::vector<std::string>{"start a", "text <>&\"'AB",
                                              "end a"}));
}

TEST(Sax, EntityInAttribute) {
  auto events = parse_events(R"(<a v="x&amp;y"/>)");
  EXPECT_EQ(events, (std::vector<std::string>{"start a @v=x&y", "end a"}));
}

TEST(Sax, UnicodeCharacterReference) {
  auto events = parse_events("<a>&#x00E9;</a>");  // é
  EXPECT_EQ(events, (std::vector<std::string>{"start a", "text \xC3\xA9",
                                              "end a"}));
}

TEST(Sax, CdataPassedVerbatim) {
  auto events = parse_events("<a><![CDATA[<not-a-tag>&amp;]]></a>");
  EXPECT_EQ(events, (std::vector<std::string>{
                        "start a", "text <not-a-tag>&amp;", "end a"}));
}

TEST(Sax, CommentsAndPisSkipped) {
  auto events =
      parse_events("<?xml version=\"1.0\"?><!-- c --><a><!-- inside --><b/>"
                   "<?pi data?></a><!-- after -->");
  EXPECT_EQ(events, (std::vector<std::string>{"start a", "start b", "end b",
                                              "end a"}));
}

TEST(Sax, DoctypeSkipped) {
  auto events = parse_events(
      "<!DOCTYPE root [<!ELEMENT root ANY>]><root/>");
  EXPECT_EQ(events, (std::vector<std::string>{"start root", "end root"}));
}

// Malformed-document rejection matrix.
class SaxRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(SaxRejects, ReturnsMalformed) {
  Status status = parse_status(GetParam());
  EXPECT_FALSE(status.is_ok()) << "accepted: " << GetParam();
  EXPECT_EQ(status.code(), ErrorCode::kMalformed);
}

INSTANTIATE_TEST_SUITE_P(
    BadDocuments, SaxRejects,
    ::testing::Values(
        "",                               // empty
        "just text",                      // no root element
        "<a>",                            // unterminated
        "<a></b>",                        // mismatched tags
        "<a><b></a></b>",                 // interleaved
        "<a/><b/>",                       // two roots
        "<a>trailing</a>junk",            // content after root
        "<a attr></a>",                   // attribute without value
        "<a attr=value/>",                // unquoted value
        "<a attr=\"unterminated></a>",    // unterminated value
        "<a>&unknown;</a>",               // unknown entity
        "<a>&#xZZ;</a>",                  // bad char reference
        "<a>&#1114112;</a>",              // out-of-range reference
        "<p:a/>",                         // undeclared prefix
        "<a><p:b xmlns:q=\"u\"/></a>",    // prefix declared as other name
        "<a v=\"x<y\"/>",                 // '<' in attribute value
        "<1tag/>",                        // bad name start
        "<a><![CDATA[unterminated</a>",   // unterminated CDATA
        "<a><!-- unterminated</a>"));     // unterminated comment

TEST(Sax, EndTagToleratesTrailingSpaceButNotJunkAfterRoot) {
  EXPECT_TRUE(parse_status(R"(<a xmlns="urn:1"></a >)").is_ok());
  EXPECT_FALSE(parse_status(R"(<a xmlns="urn:1"></a >junk)").is_ok());
}

TEST(Sax, DeeplyNestedDocument) {
  std::string xml;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < kDepth; ++i) xml += "</d>";
  Recorder recorder;
  SaxParser parser;
  ASSERT_TRUE(parser.parse(xml, &recorder).is_ok());
  EXPECT_EQ(recorder.events.size(), 2 * kDepth + 1u);
}

}  // namespace
}  // namespace davpse::xml
