// The Section 4 integration scenario: a third-party agent that knows
// NOTHING about the Ecce schema discovers molecule documents through
// the one metadata property it understands (ecce:formula), computes
// derived thermodynamic features, and attaches them as new metadata —
// which Ecce-side queries then see immediately. "These lightweight
// integration scenarios can provide real benefits to users without
// system-wide agreement on a common schema."
//
//   $ ./examples/feature_agent
#include <cstdio>

#include "dav/server.h"
#include "core/agents.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/schema_names.h"
#include "core/workload.h"
#include "http/server.h"
#include "util/fs.h"

using namespace davpse;
using namespace davpse::ecce;

int main() {
  // An Ecce store with a few calculations in it.
  TempDir repo_dir("agentdemo");
  dav::DavConfig dav_config;
  dav_config.root = repo_dir.path();
  dav::DavServer dav_server(dav_config);
  http::ServerConfig http_config;
  http_config.endpoint = "agent-server";
  http::HttpServer http_server(http_config, &dav_server);
  if (!http_server.start().is_ok()) return 1;

  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;
  {
    davclient::DavClient ecce_client(client_config);
    DavStorage storage(&ecce_client);
    DavCalculationFactory factory(&storage);
    if (!factory.initialize().is_ok()) return 1;
    if (!factory.create_project("published").is_ok()) return 1;
    if (!factory.save_calculation("published", make_uo2_calculation())
             .is_ok()) {
      return 1;
    }
    for (int i = 0; i < 3; ++i) {
      if (!factory
               .save_calculation("published",
                                 make_small_calculation(
                                     "water" + std::to_string(i), i + 40))
               .is_ok()) {
        return 1;
      }
    }
    std::printf("Ecce populated the store: 4 calculations under /Ecce\n\n");
  }

  // --- the agent: an independent program with its own DAV client ---------
  davclient::DavClient agent_client(client_config);

  // Phase 1: discovery by the single property it understands.
  FormulaSearchAgent search(&agent_client);
  auto hits = search.search("/Ecce");
  if (!hits.ok()) return 1;
  std::printf("agent discovered %zu molecule documents by ecce:formula:\n",
              hits.value().size());
  for (const auto& hit : hits.value()) {
    std::printf("  %-44s formula=%-10s format=%s\n", hit.path.c_str(),
                hit.formula.c_str(), hit.format.c_str());
  }

  // Phase 2: feature analysis + annotation via plain PROPPATCH.
  ThermoAgent thermo(&agent_client);
  auto annotated = thermo.annotate("/Ecce");
  if (!annotated.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 annotated.status().to_string().c_str());
    return 1;
  }
  std::printf("\nagent annotated %zu molecules with ecce:thermo-* "
              "metadata\n\n",
              annotated.value());

  // Phase 3: any other client (here: an "Ecce query interface") sees
  // the new metadata next to Ecce's own, with no schema change.
  davclient::DavClient reader(client_config);
  auto result = reader.propfind(
      "/Ecce", davclient::Depth::kInfinity,
      {kFormulaProp, kThermoEnthalpyProp, kThermoEntropyProp,
       kThermoSourceProp});
  if (!result.ok()) return 1;
  std::printf("query over /Ecce (formula + agent-contributed thermo):\n");
  for (const auto& response : result.value().responses) {
    auto formula = response.prop(kFormulaProp);
    auto enthalpy = response.prop(kThermoEnthalpyProp);
    if (!formula || !enthalpy) continue;
    auto entropy = response.prop(kThermoEntropyProp);
    std::printf("  %-10s dH=%8s kJ/mol  S=%8s J/mol/K   (%s)\n",
                std::string(*formula).c_str(),
                std::string(*enthalpy).substr(0, 8).c_str(),
                entropy ? std::string(*entropy).substr(0, 8).c_str() : "?",
                response.href.c_str());
  }

  std::printf("\nfeature-agent scenario complete\n");
  return 0;
}
