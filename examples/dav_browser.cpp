// "Web and DAV browsers become debugging tools": walk an Ecce store
// like a DAV explorer, printing the hierarchy with every resource's
// metadata — the paper's point that the open architecture makes all
// data inspectable with generic clients, subject to the same access
// controls ("surf the Ecce database").
//
// Also demonstrates the HTTP face of the store: a plain GET on a
// collection returns a browsable HTML index.
//
//   $ ./examples/dav_browser
#include <cstdio>

#include "dav/server.h"
#include "davclient/client.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/workload.h"
#include "http/server.h"
#include "util/fs.h"

using namespace davpse;
using namespace davpse::ecce;

namespace {

void browse(davclient::DavClient& client, const std::string& path,
            int depth) {
  auto listing = client.propfind_all(path, davclient::Depth::kZero);
  if (!listing.ok() || listing.value().responses.empty()) return;
  const auto& self = listing.value().responses.front();

  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  std::printf("%s%s%s\n", indent.c_str(),
              path == "/" ? "/" : self.href.c_str(),
              self.is_collection() ? "/" : "");
  for (const auto& entry : self.found) {
    // Skip the noisy live properties; show sizes and all dead props.
    if (entry.name.ns == "DAV:" && entry.name.local != "getcontentlength") {
      continue;
    }
    std::string value = entry.inner_xml.substr(0, 48);
    if (entry.inner_xml.size() > 48) value += "...";
    std::printf("%s  @%s = %s\n", indent.c_str(),
                entry.name.to_string().c_str(), value.c_str());
  }
  if (!self.is_collection()) return;

  auto children = client.propfind(
      path, davclient::Depth::kOne, {xml::dav_name("resourcetype")});
  if (!children.ok()) return;
  for (const auto& response : children.value().responses) {
    if (response.href == path) continue;
    browse(client, response.href, depth + 1);
  }
}

}  // namespace

int main() {
  TempDir repo_dir("browser");
  dav::DavConfig dav_config;
  dav_config.root = repo_dir.path();
  dav::DavServer dav_server(dav_config);
  http::ServerConfig http_config;
  http_config.endpoint = "browser-server";
  http::HttpServer http_server(http_config, &dav_server);
  if (!http_server.start().is_ok()) return 1;

  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;
  davclient::DavClient client(client_config);

  // Populate with an Ecce project.
  {
    DavStorage storage(&client);
    DavCalculationFactory factory(&storage);
    if (!factory.initialize().is_ok()) return 1;
    if (!factory.create_project("demo").is_ok()) return 1;
    if (!factory.save_calculation("demo", make_small_calculation("c1", 7))
             .is_ok()) {
      return 1;
    }
  }

  std::printf("=== walking the store (PROPFIND-based DAV explorer) ===\n\n");
  browse(client, "/", 0);

  std::printf("\n=== the same store through a plain web browser (GET) "
              "===\n\n");
  auto html = client.get("/Ecce/demo/c1");
  if (!html.ok()) return 1;
  std::printf("%s\n", html.value().c_str());

  std::printf("browser example complete\n");
  return 0;
}
