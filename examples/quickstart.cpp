// Quickstart: boot an in-process DAV data server, store a document
// with self-describing metadata, and query it back — the minimal tour
// of the open data architecture.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "dav/server.h"
#include "davclient/client.h"
#include "http/server.h"
#include "util/fs.h"

using namespace davpse;

int main() {
  // 1. A DAV server over a temporary repository. Any DAV-compliant
  //    store would do ("its only requirement is DAV compliance").
  TempDir repository_dir("quickstart");
  dav::DavConfig dav_config;
  dav_config.root = repository_dir.path();
  dav::DavServer dav_server(dav_config);

  http::ServerConfig http_config;
  http_config.endpoint = "quickstart-server";
  http::HttpServer http_server(http_config, &dav_server);
  if (!http_server.start().is_ok()) {
    std::fprintf(stderr, "failed to start server\n");
    return 1;
  }
  std::printf("DAV server up at endpoint '%s' (root: %s)\n",
              http_config.endpoint.c_str(),
              repository_dir.path().c_str());

  // 2. A client connection.
  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;
  davclient::DavClient client(client_config);

  // 3. Collections organize data; documents hold raw bytes.
  if (!client.mkcol("/experiments").is_ok()) return 1;
  std::string xyz =
      "3\nwater\nO 0.000 0.000 0.000\nH 0.757 0.586 0.000\n"
      "H -0.757 0.586 0.000\n";
  if (!client.put("/experiments/water.xyz", xyz, "chemical/x-xyz")
           .is_ok()) {
    return 1;
  }
  std::printf("stored /experiments/water.xyz (%zu bytes)\n", xyz.size());

  // 4. Arbitrary metadata, attached at any time, in your namespace.
  xml::QName formula("urn:demo", "formula");
  xml::QName method("urn:demo", "method");
  if (!client
           .proppatch("/experiments/water.xyz",
                      {davclient::PropWrite::of_text(formula, "H2O"),
                       davclient::PropWrite::of_text(method, "B3LYP/6-31G*")})
           .is_ok()) {
    return 1;
  }
  std::printf("attached metadata: formula, method\n");

  // 5. Query selected metadata (PROPFIND depth=0)...
  auto found = client.propfind("/experiments/water.xyz",
                               davclient::Depth::kZero, {formula, method});
  if (!found.ok()) return 1;
  for (const auto& entry : found.value().responses.front().found) {
    std::printf("  %s = %s\n", entry.name.to_string().c_str(),
                entry.inner_xml.c_str());
  }

  // 6. ...traverse a collection (PROPFIND depth=1) with live properties
  //    the server computes for free...
  auto listing = client.propfind_all("/experiments", davclient::Depth::kOne);
  if (!listing.ok()) return 1;
  std::printf("collection /experiments:\n");
  for (const auto& response : listing.value().responses) {
    std::printf("  %-28s %s\n", response.href.c_str(),
                response.is_collection() ? "(collection)" : "(document)");
  }

  // 7. ...and fetch the raw document — no schema knowledge needed.
  auto body = client.get("/experiments/water.xyz");
  if (!body.ok()) return 1;
  std::printf("document round-trip ok: %s\n",
              body.value() == xyz ? "yes" : "NO");

  std::printf("\nquickstart complete\n");
  return 0;
}
