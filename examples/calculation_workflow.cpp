// A full Ecce-style research session over the DAV data architecture:
// create a project, build the UO2·15H2O molecule, pick basis sets, set
// up a calculation, "run" its compute job with live status monitoring,
// attach the outputs, and do post-run analysis — the workflow the six
// Ecce tools divide between themselves.
//
//   $ ./examples/calculation_workflow
#include <cstdio>

#include "dav/server.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/tools.h"
#include "core/workload.h"
#include "http/server.h"
#include "util/fs.h"

using namespace davpse;
using namespace davpse::ecce;

namespace {

bool check(const Status& status, const char* step) {
  if (!status.is_ok()) {
    std::fprintf(stderr, "%s failed: %s\n", step,
                 status.to_string().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  // Data server (Figure 2: tools -> factory -> storage iface -> DAV).
  TempDir repo_dir("workflow");
  dav::DavConfig dav_config;
  dav_config.root = repo_dir.path();
  dav::DavServer dav_server(dav_config);
  http::ServerConfig http_config;
  http_config.endpoint = "workflow-server";
  http::HttpServer http_server(http_config, &dav_server);
  if (!check(http_server.start(), "server start")) return 1;

  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;
  davclient::DavClient client(client_config);
  DavStorage storage(&client);
  DavCalculationFactory factory(&storage);
  if (!check(factory.initialize(), "factory init")) return 1;

  // --- project setup (Calc Manager's job) -------------------------------
  if (!check(factory.create_project("actinide-hydration"), "project")) {
    return 1;
  }
  std::printf("project 'actinide-hydration' created\n");

  // --- build the study subject (Builder's job) --------------------------
  Calculation calc;
  calc.name = "uo2-solvation";
  calc.description = "uranyl dication in a 15-water shell";
  calc.theory = TheoryLevel::kDFT;
  calc.molecule = make_uo2_15h2o();
  std::printf("built molecule %s: %zu atoms, formula %s, charge %+d\n",
              calc.molecule.name.c_str(), calc.molecule.atoms.size(),
              calc.molecule.empirical_formula().c_str(),
              calc.molecule.charge);

  // --- choose basis sets (Basis Tool's job) -------------------------------
  for (const BasisSet& basis : make_basis_library(6)) {
    if (!check(factory.save_library_basis(basis), "library save")) return 1;
  }
  auto available = factory.list_library_bases();
  if (!available.ok()) return 1;
  std::printf("basis library: %zu sets available\n",
              available.value().size());
  auto chosen = factory.load_library_basis(available.value().front());
  if (!chosen.ok()) return 1;
  calc.basis = chosen.value();
  std::printf("selected basis set '%s' (%zu shells)\n",
              calc.basis.name.c_str(), calc.basis.shells.size());

  // --- set up tasks and input decks (Calc Editor's job) ------------------
  CalcTask optimize;
  optimize.name = "task-1";
  optimize.kind = TaskKind::kGeometryOptimization;
  CalcTask frequency;
  frequency.name = "task-2";
  frequency.kind = TaskKind::kFrequency;
  calc.tasks = {optimize, frequency};
  for (CalcTask& task : calc.tasks) {
    task.input_deck = generate_input_deck(calc, task);
  }
  if (!check(factory.save_calculation("actinide-hydration", calc),
             "save calculation")) {
    return 1;
  }
  std::printf("calculation saved with %zu tasks (input decks generated)\n",
              calc.tasks.size());

  // --- launch and monitor jobs (Job Launcher's job) -----------------------
  for (const CalcTask& task : calc.tasks) {
    for (RunState state : {RunState::kSubmitted, RunState::kRunning,
                           RunState::kComplete}) {
      if (!check(factory.update_task_state("actinide-hydration", calc.name,
                                           task.name, state),
                 "state update")) {
        return 1;
      }
      std::printf("  %s -> %s\n", task.name.c_str(),
                  std::string(to_string(state)).c_str());
    }
    // The "job" produces output properties as it completes.
    if (task.kind == TaskKind::kGeometryOptimization) {
      if (!check(factory.attach_output(
                     "actinide-hydration", calc.name, task.name,
                     make_property("gradient", "Hartree/Bohr", 36 * 1024, 1)),
                 "attach gradient")) {
        return 1;
      }
    } else {
      if (!check(factory.attach_output(
                     "actinide-hydration", calc.name, task.name,
                     make_property("normal-modes", "Angstrom",
                                   1800 * 1024, 2)),
                 "attach modes")) {
        return 1;
      }
    }
  }
  std::printf("jobs complete, outputs attached\n");

  // --- post-run analysis (Calc Viewer's job) ------------------------------
  CalcViewerTool viewer(&factory);
  if (!check(viewer.start(), "viewer start")) return 1;
  if (!check(viewer.load("actinide-hydration", calc.name), "viewer load")) {
    return 1;
  }
  const Calculation& loaded = viewer.calculation();
  std::printf("\nviewer loaded '%s': %zu tasks, %zu output properties, "
              "%.1f KB of result data\n",
              loaded.name.c_str(), loaded.tasks.size(),
              loaded.tasks.size() < 2
                  ? size_t{0}
                  : loaded.tasks[0].outputs.size() +
                        loaded.tasks[1].outputs.size(),
              loaded.output_bytes() / 1024.0);

  // --- project overview (Calc Manager again) ------------------------------
  CalcManagerTool manager(&factory);
  if (!check(manager.start(), "manager start")) return 1;
  if (!check(manager.load_project("actinide-hydration"), "summary")) return 1;
  std::printf("\nproject summary:\n");
  for (const CalcSummary& row : manager.summaries()) {
    std::printf("  %-16s %-5s %-9s %s\n", row.name.c_str(),
                std::string(to_string(row.theory)).c_str(),
                std::string(to_string(row.state)).c_str(),
                row.formula.c_str());
  }

  std::printf("\nworkflow complete\n");
  return 0;
}
