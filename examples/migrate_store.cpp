// §3.2.4 end to end: stand up a legacy OODB-backed Ecce store, then run
// the two-stage migration into the DAV architecture and report object
// counts and disk usage for each backend flavor.
//
//   $ ./examples/migrate_store [calc_count]
#include <cstdio>
#include <cstdlib>

#include "dav/server.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/migrate.h"
#include "core/oodb_factory.h"
#include "core/workload.h"
#include "http/server.h"
#include "oodb/server.h"
#include "util/fs.h"
#include "util/strings.h"

using namespace davpse;
using namespace davpse::ecce;

int main(int argc, char** argv) {
  size_t calc_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;

  // --- the legacy store ---------------------------------------------------
  oodb::Schema schema = ecce_oodb_schema();
  TempDir oodb_dir("legacy");
  oodb::OodbServerConfig oodb_config;
  oodb_config.endpoint = "legacy-oodb";
  oodb_config.store_file = oodb_dir.path() / "ecce15.oodb";
  oodb::OodbServer oodb_server(
      oodb_config, std::make_unique<oodb::SegmentStore>(ecce_oodb_schema()));
  if (!oodb_server.start().is_ok()) return 1;

  oodb::OodbClientConfig oodb_client_config;
  oodb_client_config.endpoint = oodb_config.endpoint;
  oodb::OodbClient oodb_client(oodb_client_config, schema);
  OodbCalculationFactory legacy(&oodb_client);
  if (!legacy.initialize().is_ok()) return 1;
  if (!legacy.create_project("thermochem").is_ok()) return 1;
  for (size_t c = 0; c < calc_count; ++c) {
    if (!legacy
             .save_calculation("thermochem",
                               make_small_calculation(
                                   "calc" + std::to_string(c), c + 1))
             .is_ok()) {
      return 1;
    }
  }
  for (const BasisSet& basis : make_basis_library(3)) {
    if (!legacy.save_library_basis(basis).is_ok()) return 1;
  }
  auto stats = oodb_client.stats();
  if (!stats.ok()) return 1;
  std::printf("legacy OODB store: %llu objects, %s image "
              "(paper: 420k objects / 35 MB for 259 calcs)\n\n",
              static_cast<unsigned long long>(stats.value().first),
              format_bytes(stats.value().second).c_str());

  // Raw input/output files referenced (not stored) by the OODB.
  TempDir raw_dir("rawdata");
  std::filesystem::create_directories(raw_dir.path() / "thermochem" /
                                      "calc0");
  if (!write_file_atomic(
           raw_dir.path() / "thermochem" / "calc0" / "nwchem.out",
           std::string(20000, 'o'))
           .is_ok()) {
    return 1;
  }

  // --- migrate into each DBM flavor ----------------------------------------
  for (auto flavor : {dbm::Flavor::kSdbm, dbm::Flavor::kGdbm}) {
    const char* label =
        flavor == dbm::Flavor::kSdbm ? "SDBM" : "GDBM";
    TempDir dav_dir(std::string("ecce20-") + label);
    dav::DavConfig dav_config;
    dav_config.root = dav_dir.path();
    dav_config.flavor = flavor;
    dav::DavServer dav_server(dav_config);
    http::ServerConfig http_config;
    http_config.endpoint = std::string("migrate-dav-") + label;
    http::HttpServer http_server(http_config, &dav_server);
    if (!http_server.start().is_ok()) return 1;

    http::ClientConfig client_config;
    client_config.endpoint = http_config.endpoint;
    davclient::DavClient client(client_config);
    DavStorage storage(&client);
    DavCalculationFactory dest(&storage);

    Migrator migrator(&legacy, &dest, &storage);
    std::printf("migrating to DAV/%s...\n", label);
    auto report = migrator.migrate_all();
    if (!report.ok()) {
      std::fprintf(stderr, "  stage 1 failed: %s\n",
                   report.status().to_string().c_str());
      return 1;
    }
    MigrationReport final_report = report.value();
    if (!migrator.move_raw_files(raw_dir.path(), &final_report).is_ok()) {
      return 1;
    }
    uint64_t disk = dav_server.repository().disk_usage("/");
    std::printf("  stage 1+2: %s\n", final_report.to_string().c_str());
    std::printf("  disk usage: %s (%+.0f%% vs the OODB image; driven by "
                "the %s per-resource DBM initial size)\n\n",
                format_bytes(disk).c_str(),
                100.0 * (static_cast<double>(disk) /
                             static_cast<double>(stats.value().second) -
                         1.0),
                flavor == dbm::Flavor::kSdbm ? "8 KB" : "25 KB");
  }

  std::printf("migration example complete\n");
  return 0;
}
