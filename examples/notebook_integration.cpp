// The Electronic Laboratory Notebook integration scenario — the
// paper's named near-term target: "the notebooks will have the
// capability to add additional metadata, such as digital signatures
// and annotation relationships, to the data without affecting the
// operation of Ecce."
//
// The notebook here is an independent application sharing Ecce's DAV
// store: it keeps versioned pages, signs them with content digests,
// links them to Ecce calculations through relationship metadata, and
// finds its own records with server-side search — all without Ecce
// knowing it exists.
//
//   $ ./examples/notebook_integration
#include <cstdio>

#include "dav/dynamic_props.h"
#include "dav/server.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/relationships.h"
#include "core/schema_names.h"
#include "core/workload.h"
#include "http/server.h"
#include "util/fs.h"

using namespace davpse;
using namespace davpse::ecce;

namespace {
const xml::QName kSignature("urn:eln", "signature");
const xml::QName kAuthor("urn:eln", "author");
const xml::QName kPageTitle("urn:eln", "title");
const xml::QName kDigest("urn:eln", "content-digest");
}  // namespace

int main() {
  TempDir repo_dir("notebook");
  dav::DavConfig dav_config;
  dav_config.root = repo_dir.path();
  dav::DavServer dav_server(dav_config);
  // The digest "signature" is computed server-side on demand.
  dav_server.dynamic_properties().register_provider(
      kDigest, dav::content_digest_provider());
  http::ServerConfig http_config;
  http_config.endpoint = "notebook-server";
  http::HttpServer http_server(http_config, &dav_server);
  if (!http_server.start().is_ok()) return 1;
  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;

  // --- Ecce populates its side of the store -------------------------------
  {
    davclient::DavClient ecce_client(client_config);
    DavStorage storage(&ecce_client);
    DavCalculationFactory factory(&storage);
    if (!factory.initialize().is_ok()) return 1;
    if (!factory.create_project("hydration").is_ok()) return 1;
    if (!factory.save_calculation("hydration", make_uo2_calculation())
             .is_ok()) {
      return 1;
    }
  }
  std::printf("Ecce stored a calculation under /Ecce/hydration\n");

  // --- the notebook application --------------------------------------------
  davclient::DavClient notebook(client_config);
  if (!notebook.mkcol("/Notebook").is_ok()) return 1;

  // Page 1: a versioned record. Every save checks in a new version —
  // the append-only audit trail a lab notebook needs.
  std::string page = "/Notebook/page-001";
  if (!notebook.put(page,
                    "2001-07-12: set up uranyl + 15 waters, DFT.\n")
           .is_ok()) {
    return 1;
  }
  if (!notebook.version_control(page).is_ok()) return 1;
  if (!notebook
           .put(page,
                "2001-07-12: set up uranyl + 15 waters, DFT.\n"
                "2001-07-14: frequencies done; modes look clean.\n")
           .is_ok()) {
    return 1;
  }
  auto versions = notebook.list_versions(page);
  if (!versions.ok()) return 1;
  std::printf("notebook page has %zu checked-in versions "
              "(v1 retrievable forever)\n",
              versions.value().size());

  // Sign the page: author + the server-computed content digest.
  auto digest = notebook.get_property(page, kDigest);
  if (!digest.ok()) return 1;
  if (!notebook
           .proppatch(page,
                      {davclient::PropWrite::of_text(kAuthor, "k.schuchardt"),
                       davclient::PropWrite::of_text(kPageTitle,
                                                     "uranyl hydration"),
                       davclient::PropWrite::of_text(
                           kSignature, "sig:" + digest.value())})
           .is_ok()) {
    return 1;
  }
  std::printf("page signed: author + content digest %s\n",
              digest.value().c_str());

  // Link the page to the Ecce data it documents — annotation
  // relationships, invisible to Ecce.
  std::string calc = "/Ecce/hydration/uo2-15h2o-dft";
  if (!add_relationship(notebook, page, kRelAnnotates, calc).is_ok()) {
    return 1;
  }
  if (!add_relationship(notebook, page, kRelDerivedFrom,
                        calc + "/task-2/prop-normal-modes")
           .is_ok()) {
    return 1;
  }
  std::printf("page linked to the calculation and its normal modes\n");

  // Reverse question months later: "which notebook pages reference
  // this calculation?" — one server-side search.
  auto pages = find_related(notebook, "/Notebook", kRelAnnotates, calc);
  if (!pages.ok()) return 1;
  std::printf("\npages annotating %s:\n", calc.c_str());
  for (const auto& href : pages.value()) {
    auto title = notebook.get_property(href, kPageTitle);
    auto author = notebook.get_property(href, kAuthor);
    std::printf("  %s  (\"%s\" by %s)\n", href.c_str(),
                title.ok() ? title.value().c_str() : "?",
                author.ok() ? author.value().c_str() : "?");
  }

  // And Ecce's own data is untouched: its metadata still reads back.
  davclient::DavClient ecce_reader(client_config);
  auto formula = ecce_reader.get_property(calc + "/molecule", kFormulaProp);
  if (!formula.ok()) return 1;
  std::printf("\nEcce still sees its molecule (formula %s) — the notebook "
              "never touched it\n",
              formula.value().c_str());

  // Audit: the original page text is still in version 1.
  auto original = notebook.get_version(page, 1);
  if (!original.ok()) return 1;
  std::printf("audit trail intact: v1 = %zu bytes, current = %zu bytes\n",
              original.value().size(),
              notebook.get(page).value().size());

  std::printf("\nnotebook integration complete\n");
  return 0;
}
