// Shared infrastructure for the table-reproduction benches: in-process
// DAV/OODB stacks, elapsed+CPU timing (Table 1 reports both), modeled
// network time (DESIGN.md), and aligned table printing.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dav/server.h"
#include "davclient/client.h"
#include "http/server.h"
#include "net/fault.h"
#include "net/network_model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "oodb/client.h"
#include "oodb/server.h"
#include "util/clock.h"
#include "util/fs.h"

namespace davpse::bench {

inline std::string unique_endpoint(const std::string& prefix) {
  static int counter = 0;
  return prefix + "-" + std::to_string(counter++);
}

/// Environment-variable knob with a default (e.g. DAVPSE_CALCS=259).
inline uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 10);
}

/// Fractional knob (e.g. DAVPSE_FAULT_RATE=0.01).
inline double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtod(raw, nullptr);
}

/// Artificial per-operation slowdown for exercising the perf gate:
/// DAVPSE_PERF_HANDICAP_US sleeps that many microseconds inside every
/// measured operation, so `DAVPSE_PERF_HANDICAP_US=5000 ctest -L perf`
/// demonstrably trips the regression comparison against the checked-in
/// baseline. Zero (the default) is a no-op on the measured path.
inline void perf_handicap() {
  static const uint64_t micros = env_u64("DAVPSE_PERF_HANDICAP_US", 0);
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

struct DavStack {
  explicit DavStack(dbm::Flavor flavor = dbm::Flavor::kGdbm,
                    size_t daemons = 5)
      : temp("davbench") {
    dav::DavConfig dav_config;
    dav_config.root = temp.path();
    dav_config.flavor = flavor;
    dav_config.metrics = &metrics;
    // Engine knob: DAVPSE_PROPERTY_ENGINE=consolidated runs any bench
    // against the WAL-backed store ("dbm" is the default baseline).
    if (const char* engine = std::getenv("DAVPSE_PROPERTY_ENGINE")) {
      if (auto parsed = dav::parse_property_engine(engine)) {
        dav_config.property_engine = *parsed;
      } else if (*engine != '\0') {
        std::fprintf(stderr, "unknown DAVPSE_PROPERTY_ENGINE '%s'\n", engine);
        std::abort();
      }
    }
    // Ablation knob: force PROPFIND streaming on (0) / off (large)
    // regardless of response size.
    dav_config.propfind_stream_threshold = static_cast<size_t>(env_u64(
        "DAVPSE_PROPFIND_STREAM_THRESHOLD",
        static_cast<uint64_t>(dav_config.propfind_stream_threshold)));
    // The perf gates measure with the flight recorder sampling, as
    // production would run — a recorder cheap enough to ship must be
    // cheap enough to bench under.
    obs::RecorderConfig recorder_config;
    recorder_config.metrics = &metrics;
    recorder = std::make_unique<obs::FlightRecorder>(recorder_config);
    dav_config.recorder = recorder.get();
    dav = std::make_unique<dav::DavServer>(dav_config);
    http::ServerConfig http_config;
    http_config.endpoint = unique_endpoint("bench-dav");
    http_config.daemons = daemons;
    http_config.metrics = &metrics;
    server = std::make_unique<http::HttpServer>(http_config, dav.get());
    Status status = server->start();
    if (!status.is_ok()) {
      std::fprintf(stderr, "DavStack start failed: %s\n",
                   status.to_string().c_str());
      std::abort();
    }
    (void)recorder->start();
    // DAVPSE_FAULT_RATE=0.01 runs the whole bench through a seeded
    // fault schedule (DAVPSE_FAULT_SEED, default 1): refused connects,
    // pre-send resets, and read delays at that per-operation rate.
    // Only faults the retry loop can always recover from are injected —
    // a mid-response reset on a PUT is a legitimate typed error, which
    // would abort a bench rather than exercise it. Injected fault
    // counts land in this stack's registry ("resilience.injected.*").
    double fault_rate = env_double("DAVPSE_FAULT_RATE", 0);
    if (fault_rate > 0) {
      net::FaultConfig fault_config;
      fault_config.seed = env_u64("DAVPSE_FAULT_SEED", 1);
      fault_config.connect_failure = fault_rate;
      fault_config.write_reset = fault_rate;
      fault_config.read_delay = fault_rate;
      fault_config.delay_seconds = 0.002;
      fault_config.metrics = &metrics;
      fault_net = std::make_unique<net::FaultInjectingNetwork>(fault_config);
    }
  }

  davclient::DavClient client(
      davclient::ParserKind parser = davclient::ParserKind::kDom,
      http::ConnectionPolicy policy = http::ConnectionPolicy::kPersistent) {
    http::ClientConfig config;
    config.endpoint = server->endpoint();
    config.policy = policy;
    config.connect_label = "bench.client";
    config.metrics = &metrics;
    if (fault_net != nullptr) {
      // Headroom to retry through the injected schedule without
      // stretching a clean run.
      config.retry.max_attempts = 6;
      config.retry.initial_backoff_seconds = 0.001;
    }
    return davclient::DavClient(config, parser, fault_net.get());
  }

  TempDir temp;
  /// Non-null when DAVPSE_FAULT_RATE is set; clients connect through it.
  std::unique_ptr<net::FaultInjectingNetwork> fault_net;
  /// Every layer of the stack (DAV handler, HTTP front end, clients
  /// made by client()) records into this bench-private registry, so
  /// the tables below report from the same counters production scrapes
  /// via /.well-known/stats.
  obs::Registry metrics;
  /// Declared before the servers so /.well-known/history stays valid
  /// until they stop.
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<dav::DavServer> dav;
  std::unique_ptr<http::HttpServer> server;
};

struct OodbStack {
  explicit OodbStack(oodb::Schema schema)
      : temp("oodbbench"), endpoint(unique_endpoint("bench-oodb")) {
    oodb::OodbServerConfig config;
    config.endpoint = endpoint;
    config.store_file = temp.path() / "store.oodb";
    server = std::make_unique<oodb::OodbServer>(
        config, std::make_unique<oodb::SegmentStore>(std::move(schema)));
    Status status = server->start();
    if (!status.is_ok()) {
      std::fprintf(stderr, "OodbStack start failed: %s\n",
                   status.to_string().c_str());
      std::abort();
    }
  }

  std::unique_ptr<oodb::OodbClient> client(const oodb::Schema& schema,
                                           bool cache_forward = true) {
    oodb::OodbClientConfig config;
    config.endpoint = endpoint;
    config.cache_forward = cache_forward;
    return std::make_unique<oodb::OodbClient>(config, schema);
  }

  TempDir temp;
  std::string endpoint;
  std::unique_ptr<oodb::OodbServer> server;
};

/// One measured operation: wall time, calling-thread CPU time, and
/// (when a NetworkModel was attached) modeled link time.
struct Measurement {
  double wall_seconds = 0;
  double cpu_seconds = 0;
  double modeled_seconds = 0;
};

/// Times `operation` once, splitting elapsed vs CPU the way Table 1
/// does. If `model` is non-null it is reset first and its modeled time
/// captured after.
template <typename Fn>
Measurement measure(net::NetworkModel* model, Fn&& operation) {
  if (model != nullptr) model->reset();
  StopWatch watch;
  operation();
  Measurement m;
  m.wall_seconds = watch.elapsed_wall();
  m.cpu_seconds = watch.elapsed_cpu();
  if (model != nullptr) m.modeled_seconds = model->modeled_seconds();
  return m;
}

/// Fixed-width table printer for paper-style output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void row(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      int width = i < widths_.size() ? widths_[i] : 12;
      char buf[256];
      std::snprintf(buf, sizeof buf, "%-*s", width, cells[i].c_str());
      line += buf;
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }

  void rule() const {
    size_t total = 0;
    for (int width : widths_) total += static_cast<size_t>(width) + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
  }

 private:
  std::vector<int> widths_;
};

inline std::string seconds_cell(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  return buf;
}

/// Microsecond-resolution cell for latency percentiles, which sit far
/// below the %.3f grid of seconds_cell.
inline std::string latency_cell(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f s", seconds);
  return buf;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

/// One named row of numeric results in a bench artifact.
struct BenchRow {
  std::string label;
  std::vector<std::pair<std::string, double>> values;
};

/// Machine-readable bench artifact: when DAVPSE_BENCH_JSON names a
/// directory, writes BENCH_<name>.json there carrying the measured
/// rows plus the full registry snapshot — CI validates and archives a
/// bench run without scraping its stdout, and the numbers come from
/// the same snapshot path production scrapes via /.well-known/stats.
/// No-op (returns empty) when the variable is unset.
inline std::string emit_bench_artifact(const std::string& name,
                                       const std::vector<BenchRow>& rows,
                                       const obs::RegistrySnapshot& snap) {
  const char* dir = std::getenv("DAVPSE_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return {};
  std::string metrics_json = snap.to_json();
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  std::string body = "{\n  \"bench\": \"" + obs::json_escape(name) + "\",\n";
  body += "  \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    body += i == 0 ? "\n" : ",\n";
    body += "    {\"label\": \"" + obs::json_escape(rows[i].label) + "\"";
    for (const auto& [key, value] : rows[i].values) {
      body += ", \"" + obs::json_escape(key) + "\": " +
              obs::json_double(value);
    }
    body += "}";
  }
  body += rows.empty() ? "],\n" : "\n  ],\n";
  body += "  \"metrics\": " + metrics_json + "\n}\n";
  std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + name + ".json");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write bench artifact %s\n",
                 path.c_str());
    return {};
  }
  std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  // stderr: some benches (table1 --json) own stdout as machine output.
  std::fprintf(stderr, "bench artifact: %s\n", path.c_str());
  return path.string();
}

/// Per-method server-side report straight from a registry snapshot:
/// request counts and latency percentiles for every DAV method seen,
/// plus the wire byte counters. The same numbers a production scrape
/// of /.well-known/stats would show.
inline void print_registry_report(const obs::RegistrySnapshot& snap) {
  std::printf("\nServer-side registry snapshot (per DAV method):\n\n");
  TablePrinter table({12, 10, 12, 12, 12});
  table.row({"method", "requests", "p50", "p95", "p99"});
  table.rule();
  const std::string prefix = "dav.server.requests.";
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    std::string method = name.substr(prefix.size());
    auto latency = snap.histogram("dav.server.latency_seconds." + method);
    table.row({method, std::to_string(value), latency_cell(latency.p50),
               latency_cell(latency.p95), latency_cell(latency.p99)});
  }
  table.rule();
  std::printf(
      "bytes over the wire: in=%llu out=%llu  keep-alive reuses=%llu  "
      "client retries=%llu\n",
      static_cast<unsigned long long>(snap.counter("http.server.bytes_in")),
      static_cast<unsigned long long>(snap.counter("http.server.bytes_out")),
      static_cast<unsigned long long>(
          snap.counter("http.server.keepalive_reuse")),
      static_cast<unsigned long long>(snap.counter("bench.client.retries")));
}

}  // namespace davpse::bench
