// Streaming body pipeline: streamed vs eager 64 MiB GET and PUT, with
// peak per-request heap growth measured via whole-process operator
// new/delete instrumentation. The bounded-memory invariant under test:
// a streamed transfer's peak allocation stays under 1 MiB — block
// buffers plus pipe queues — while the eager path holds the full
// object (and its copies) in RAM.
//
// DAVPSE_STREAM_MB overrides the object size (default 64).
#include "tests/testing/heap_probe.h"

#include <memory>

#include "bench/common.h"
#include "http/body.h"

namespace {

namespace probe = davpse::testing::heap_probe;

/// Deterministic generated body — O(1) memory at any size.
class PatternSource final : public davpse::http::BodySource {
 public:
  explicit PatternSource(uint64_t total) : total_(total) {}

  davpse::Result<size_t> read(char* out, size_t max) override {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(max, total_ - offset_));
    for (size_t i = 0; i < n; ++i) {
      uint64_t pos = offset_ + i;
      out[i] = static_cast<char>((pos * 131 + (pos >> 9)) & 0xff);
    }
    offset_ += n;
    return n;
  }
  std::optional<uint64_t> length() const override { return total_; }
  bool rewind() override {
    offset_ = 0;
    return true;
  }

 private:
  uint64_t total_;
  uint64_t offset_ = 0;
};

std::string mib_cell(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f MiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

int main() {
  using namespace davpse;
  using namespace davpse::bench;

  const uint64_t size = env_u64("DAVPSE_STREAM_MB", 64) * 1024 * 1024;
  constexpr uint64_t kStreamedBudget = 1024 * 1024;  // 1 MiB

  heading("Streaming body pipeline: bounded-memory transfers");
  std::printf("Object size: %llu MiB (DAVPSE_STREAM_MB to override). "
              "Peak = heap growth over the transfer.\n\n",
              static_cast<unsigned long long>(size / (1024 * 1024)));

  DavStack stack;
  auto client = stack.client();
  // Warm the connection so steady-state allocations predate the
  // measurement windows.
  if (!client.put("/warm.bin", std::string(1024, 'w')).is_ok()) return 1;

  struct Row {
    const char* name;
    Measurement timing;
    uint64_t peak = 0;
  };
  std::vector<Row> rows;

  auto run = [&](const char* name, auto&& operation) {
    uint64_t before = probe::live_bytes();
    probe::reset_peak();
    Measurement timing = measure(nullptr, operation);
    rows.push_back(Row{name, timing, probe::peak_bytes() - before});
  };

  run("PUT streamed", [&] {
    auto body = std::make_shared<PatternSource>(size);
    if (!client.put_from("/stream.bin", body).is_ok()) std::abort();
  });
  run("GET streamed", [&] {
    http::DigestBodySink sink;
    if (!client.get_to("/stream.bin", &sink).is_ok()) std::abort();
    if (sink.bytes_seen() != size) std::abort();
  });
  run("PUT eager", [&] {
    PatternSource reference(size);
    std::string body;
    http::StringBodySink buffer(&body);
    (void)http::drain_body(reference, buffer);
    if (!client.put("/eager.bin", std::move(body)).is_ok()) std::abort();
  });
  run("GET eager", [&] {
    auto fetched = client.get("/eager.bin");
    if (!fetched.ok() || fetched.value().size() != size) std::abort();
  });

  std::vector<BenchRow> artifact_rows;
  for (const Row& row : rows) {
    artifact_rows.push_back(
        {row.name,
         {{"elapsed_seconds", row.timing.wall_seconds},
          {"cpu_seconds", row.timing.cpu_seconds},
          {"peak_heap_bytes", static_cast<double>(row.peak)}}});
  }
  emit_bench_artifact("streaming_bodies", artifact_rows,
                      stack.metrics.snapshot());

  TablePrinter table({14, 12, 12, 14});
  table.row({"operation", "elapsed", "cpu", "peak heap"});
  table.rule();
  for (const Row& row : rows) {
    table.row({row.name, seconds_cell(row.timing.wall_seconds),
               seconds_cell(row.timing.cpu_seconds), mib_cell(row.peak)});
  }

  bool ok = true;
  for (const Row& row : rows) {
    bool streamed = std::string(row.name).find("streamed") !=
                    std::string::npos;
    if (streamed && row.peak > kStreamedBudget) {
      std::printf("\nFAIL: %s peaked at %s, budget is %s\n", row.name,
                  mib_cell(row.peak).c_str(),
                  mib_cell(kStreamedBudget).c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf("\nStreamed transfers stayed within the %s budget; the "
                "eager path held the full object.\n",
                mib_cell(kStreamedBudget).c_str());
  }
  return ok ? 0 : 1;
}
