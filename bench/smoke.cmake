# Bench smoke driver (ctest -L bench): runs one table bench at tiny
# sizes with DAVPSE_BENCH_JSON pointed at a scratch directory, then
# validates the emitted BENCH_<name>.json artifact — it must parse, be
# self-labeled, carry at least one row, and embed a registry snapshot.
#
# With -D BASELINE=<json> -D METRIC_KEY=<key> the same driver becomes
# the perf regression gate (ctest -L perf): after validating the fresh
# artifact it hands off to compare.cmake, which fails the test when
# throughput drops below DAVPSE_PERF_TOLERANCE (default 0.6) of the
# checked-in baseline.
#
# Invoked as:
#   cmake -D BENCH_EXE=<binary> -D BENCH_NAME=<name> -D OUT_DIR=<dir>
#         [-D ENV_SETTINGS=K1=V1,K2=V2]
#         [-D REQUIRE_ROW_KEYS=key1,key2,...]
#         [-D BASELINE=<json> -D METRIC_KEY=<key> [-D TOLERANCE=<x>]]
#         -P smoke.cmake
#
# REQUIRE_ROW_KEYS asserts every row carries each named numeric field —
# how the connections smoke pins the scheduler-telemetry contract
# (queue-wait p99, worker utilization) into the artifact shape.
cmake_minimum_required(VERSION 3.19)  # string(JSON)

foreach(required BENCH_EXE BENCH_NAME OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "smoke.cmake: missing -D ${required}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(ENV{DAVPSE_BENCH_JSON} "${OUT_DIR}")
if(DEFINED ENV_SETTINGS)
  string(REPLACE "," ";" settings "${ENV_SETTINGS}")
  foreach(pair IN LISTS settings)
    string(FIND "${pair}" "=" eq)
    string(SUBSTRING "${pair}" 0 ${eq} key)
    math(EXPR after "${eq} + 1")
    string(SUBSTRING "${pair}" ${after} -1 value)
    set(ENV{${key}} "${value}")
  endforeach()
endif()

execute_process(COMMAND "${BENCH_EXE}"
                RESULT_VARIABLE bench_rc
                OUTPUT_VARIABLE bench_out
                ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH_NAME} exited ${bench_rc}\nstdout:\n${bench_out}\n"
          "stderr:\n${bench_err}")
endif()

set(artifact "${OUT_DIR}/BENCH_${BENCH_NAME}.json")
if(NOT EXISTS "${artifact}")
  message(FATAL_ERROR "${BENCH_NAME} did not emit ${artifact}")
endif()
file(READ "${artifact}" json)

# string(JSON) fails the script (FATAL_ERROR) on malformed JSON or a
# missing key, so each access below is itself a validation.
string(JSON self_name GET "${json}" bench)
if(NOT self_name STREQUAL BENCH_NAME)
  message(FATAL_ERROR "artifact labeled '${self_name}', "
                      "expected '${BENCH_NAME}'")
endif()

string(JSON row_count LENGTH "${json}" rows)
if(row_count LESS 1)
  message(FATAL_ERROR "artifact has no rows")
endif()
foreach(i RANGE 0 ${row_count})
  if(i EQUAL row_count)
    break()
  endif()
  string(JSON row_label GET "${json}" rows ${i} label)
  if(row_label STREQUAL "")
    message(FATAL_ERROR "row ${i} has an empty label")
  endif()
  if(DEFINED REQUIRE_ROW_KEYS)
    string(REPLACE "," ";" required_keys "${REQUIRE_ROW_KEYS}")
    foreach(key IN LISTS required_keys)
      string(JSON value ERROR_VARIABLE key_error
             GET "${json}" rows ${i} ${key})
      if(NOT key_error STREQUAL "NOTFOUND")
        message(FATAL_ERROR
                "row ${i} ('${row_label}') is missing '${key}'")
      endif()
      string(JSON value_type TYPE "${json}" rows ${i} ${key})
      if(NOT value_type STREQUAL "NUMBER")
        message(FATAL_ERROR
                "row ${i} '${key}' is ${value_type}, expected NUMBER")
      endif()
    endforeach()
  endif()
endforeach()

string(JSON metrics_type TYPE "${json}" metrics)
if(NOT metrics_type STREQUAL "OBJECT")
  message(FATAL_ERROR "metrics is ${metrics_type}, expected OBJECT")
endif()
string(JSON counters_type TYPE "${json}" metrics counters)
if(NOT counters_type STREQUAL "OBJECT")
  message(FATAL_ERROR "metrics.counters is ${counters_type}")
endif()

message(STATUS
        "${BENCH_NAME}: artifact ok (${row_count} rows) at ${artifact}")

if(DEFINED BASELINE)
  if(NOT DEFINED METRIC_KEY)
    message(FATAL_ERROR "smoke.cmake: BASELINE requires -D METRIC_KEY=...")
  endif()
  set(FRESH "${artifact}")
  include("${CMAKE_CURRENT_LIST_DIR}/compare.cmake")
endif()
