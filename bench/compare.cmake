# Perf regression gate: compares a freshly emitted bench artifact
# against the checked-in baseline under bench/baseline/ and fails when
# the geometric mean of the per-row throughput ratios (fresh/baseline)
# drops below TOLERANCE. The geomean keeps one noisy row from tripping
# the gate while still catching a broad slowdown; TOLERANCE defaults
# to 0.6 — loose enough for shared-runner jitter, tight enough that an
# accidental O(n) -> O(n^2) or a reintroduced per-chunk allocation
# storm fails the build.
#
# EXCLUDE is an optional regex of row labels to leave out of the
# geomean: rows whose throughput is dominated by disk state rather
# than code (filesystem copy/unlink storms swing 5x with writeback
# pressure) would turn the gate into a disk-noise detector. Excluded
# rows are still printed for the record.
#
# Standalone:
#   cmake -D FRESH=<json> -D BASELINE=<json> -D METRIC_KEY=<key>
#         [-D TOLERANCE=0.6] [-D EXCLUDE=<label-regex>] -P compare.cmake
# or include()d from smoke.cmake with the same variables set.
cmake_minimum_required(VERSION 3.19)  # string(JSON)

foreach(required FRESH BASELINE METRIC_KEY)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "compare.cmake: missing -D ${required}=...")
  endif()
endforeach()
if(NOT DEFINED TOLERANCE)
  if(DEFINED ENV{DAVPSE_PERF_TOLERANCE})
    set(TOLERANCE "$ENV{DAVPSE_PERF_TOLERANCE}")
  else()
    set(TOLERANCE 0.6)
  endif()
endif()

foreach(artifact FRESH BASELINE)
  if(NOT EXISTS "${${artifact}}")
    message(FATAL_ERROR "compare.cmake: ${artifact} not found: ${${artifact}}")
  endif()
endforeach()
file(READ "${FRESH}" fresh_json)
file(READ "${BASELINE}" baseline_json)

# Pair rows by label: every baseline row must still exist in the fresh
# artifact (a silently dropped row would otherwise shrink the gate).
string(JSON baseline_rows LENGTH "${baseline_json}" rows)
string(JSON fresh_rows LENGTH "${fresh_json}" rows)
set(paired "")
math(EXPR last_baseline "${baseline_rows} - 1")
math(EXPR last_fresh "${fresh_rows} - 1")
foreach(i RANGE 0 ${last_baseline})
  string(JSON label GET "${baseline_json}" rows ${i} label)
  string(JSON base_value GET "${baseline_json}" rows ${i} ${METRIC_KEY})
  set(fresh_value "")
  foreach(j RANGE 0 ${last_fresh})
    string(JSON fresh_label GET "${fresh_json}" rows ${j} label)
    if(fresh_label STREQUAL label)
      string(JSON fresh_value GET "${fresh_json}" rows ${j} ${METRIC_KEY})
      break()
    endif()
  endforeach()
  if(fresh_value STREQUAL "")
    message(FATAL_ERROR "baseline row '${label}' missing from ${FRESH}")
  endif()
  set(gated 1)
  if(DEFINED EXCLUDE AND label MATCHES "${EXCLUDE}")
    set(gated 0)
  endif()
  string(APPEND paired "${fresh_value}\t${base_value}\t${gated}\t${label}\n")
endforeach()

# CMake script arithmetic is integer-only; awk does the float work.
# One line per row: fresh <TAB> baseline <TAB> gated(0|1) <TAB> label
# (labels may contain spaces). Exit 0 iff the geomean of gated-row
# ratios (fresh/baseline) >= tolerance.
find_program(AWK awk REQUIRED)
get_filename_component(fresh_dir "${FRESH}" DIRECTORY)
set(rows_file "${fresh_dir}/compare_rows.tsv")
file(WRITE "${rows_file}" "${paired}")
execute_process(
  COMMAND "${AWK}" -F "\t" -v tol=${TOLERANCE} -v key=${METRIC_KEY} "
    {
      ratio = \$1 / \$2
      tag = \"\"
      if (\$3 == 1) { sum_log += log(ratio); rows += 1 }
      else { tag = \"  (not gated)\" }
      printf \"  %-42s %14.5g %14.5g  x%.3f%s\\n\", \$4, \$1, \$2, ratio, tag
    }
    END {
      if (rows == 0) { print \"no rows to compare\"; exit 2 }
      geomean = exp(sum_log / rows)
      printf \"%s geomean x%.3f over %d rows (tolerance x%.2f)\\n\",
             key, geomean, rows, tol
      exit (geomean >= tol) ? 0 : 1
    }"
  INPUT_FILE "${rows_file}"
  RESULT_VARIABLE gate_rc
  OUTPUT_VARIABLE gate_out
  ERROR_VARIABLE gate_err)
message(STATUS "perf gate (${METRIC_KEY}, fresh vs baseline):\n${gate_out}")
if(gate_rc EQUAL 1)
  message(FATAL_ERROR
          "perf regression: ${METRIC_KEY} geomean fell below x${TOLERANCE} "
          "of ${BASELINE}. If the slowdown is intended, refresh the "
          "baseline (see DESIGN.md, 'Hot paths & perf gate').")
elseif(NOT gate_rc EQUAL 0)
  message(FATAL_ERROR "compare.cmake: awk failed (${gate_rc}): ${gate_err}")
endif()
