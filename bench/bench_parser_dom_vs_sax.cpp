// Ablation A: DOM vs SAX multistatus parsing.
//
// The paper traces Table 1's client-side seconds to DOM parsing and
// predicts: "Significant improvements can be expected by converting to
// a Simple API for XML (SAX)-style parser. (SAX parsers do not build
// an in-memory representation of the entire XML document as DOM
// parsers do, eliminating significant overhead.)" This bench
// quantifies that prediction on the exact Table 1 depth=1 response
// shape (50 objects x 5 x 1 KB properties) and on larger sweeps.
#include <benchmark/benchmark.h>

#include "davclient/multistatus.h"
#include "util/random.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace davpse {
namespace {

using davclient::Multistatus;
using davclient::ParserKind;

std::string make_body(size_t responses, size_t props, size_t value_bytes) {
  Rng rng(responses * 31 + props * 7 + value_bytes);
  xml::XmlWriter writer;
  writer.prefer_prefix("DAV:", "D");
  writer.declaration();
  writer.start_element(xml::dav_name("multistatus"));
  for (size_t r = 0; r < responses; ++r) {
    writer.start_element(xml::dav_name("response"));
    writer.text_element(xml::dav_name("href"),
                        "/corpus/doc" + std::to_string(r));
    writer.start_element(xml::dav_name("propstat"));
    writer.start_element(xml::dav_name("prop"));
    for (size_t p = 0; p < props; ++p) {
      writer.text_element(xml::QName("http://purl.pnl.gov/ecce",
                                     "meta" + std::to_string(p)),
                          rng.ascii_blob(value_bytes));
    }
    writer.end_element();
    writer.text_element(xml::dav_name("status"), "HTTP/1.1 200 OK");
    writer.end_element();
    writer.end_element();
  }
  writer.end_element();
  return writer.take();
}

void run_parse(benchmark::State& state, ParserKind parser) {
  const size_t responses = static_cast<size_t>(state.range(0));
  const size_t props = static_cast<size_t>(state.range(1));
  const size_t value_bytes = static_cast<size_t>(state.range(2));
  std::string body = make_body(responses, props, value_bytes);
  size_t parsed_props = 0;
  for (auto _ : state) {
    auto result = davclient::parse_multistatus(body, parser);
    if (!result.ok()) state.SkipWithError("parse failed");
    for (const auto& response : result.value().responses) {
      parsed_props += response.found.size();
    }
    benchmark::DoNotOptimize(parsed_props);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
  state.counters["body_kb"] = static_cast<double>(body.size()) / 1024.0;
}

void BM_Dom(benchmark::State& state) { run_parse(state, ParserKind::kDom); }
void BM_Sax(benchmark::State& state) { run_parse(state, ParserKind::kSax); }

// {responses, properties per response, bytes per value}
// First shape = the Table 1 depth=1 workload.
BENCHMARK(BM_Dom)
    ->Args({50, 5, 1024})
    ->Args({50, 50, 1024})
    ->Args({500, 5, 1024})
    ->Args({50, 5, 16384})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Sax)
    ->Args({50, 5, 1024})
    ->Args({50, 50, 1024})
    ->Args({500, 5, 1024})
    ->Args({50, 5, 16384})
    ->Unit(benchmark::kMicrosecond);

// --- isolated tree-construction cost -----------------------------------
// Both strategies share one tokenizer, so the end-to-end gap above is
// smaller than with Xerces (whose DOM carried far heavier nodes). The
// architectural claim — "SAX parsers do not build an in-memory
// representation of the entire XML document" — is isolated here:
// identical scan, with and without materializing the element tree.

class NullHandler final : public xml::SaxHandler {
 public:
  void on_start_element(const xml::QName&,
                        const std::vector<xml::SaxAttribute>&) override {
    ++elements;
  }
  size_t elements = 0;
};

void BM_ScanOnly(benchmark::State& state) {
  std::string body =
      make_body(static_cast<size_t>(state.range(0)), 50, 1024);
  for (auto _ : state) {
    NullHandler handler;
    xml::SaxParser parser;
    if (!parser.parse(body, &handler).is_ok()) {
      state.SkipWithError("parse failed");
    }
    benchmark::DoNotOptimize(handler.elements);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
}

void BM_ScanAndBuildTree(benchmark::State& state) {
  std::string body =
      make_body(static_cast<size_t>(state.range(0)), 50, 1024);
  size_t tree_elements = 0;
  for (auto _ : state) {
    auto tree = xml::parse_document(body);
    if (!tree.ok()) state.SkipWithError("parse failed");
    tree_elements = tree.value()->subtree_size();
    benchmark::DoNotOptimize(tree_elements);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
  state.counters["tree_elements"] = static_cast<double>(tree_elements);
}

BENCHMARK(BM_ScanOnly)->Arg(50)->Arg(500)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ScanAndBuildTree)
    ->Arg(50)
    ->Arg(500)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace davpse

BENCHMARK_MAIN();
