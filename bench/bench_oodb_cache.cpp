// Ablation D: does the cache-forward architecture help?
//
// The paper: "The typical workflow processes that a user performs
// within Ecce did not derive significant benefit from the cache-forward
// architecture of our OODB." Two access patterns make the point:
//   - workflow-style: load each calculation once, move on (cold data,
//     no reuse) — cache-forwarding just ships extra objects;
//   - repeated-access: re-read the same working set — cache-forwarding
//     pays off because neighbors arrive for free.
#include "bench/common.h"
#include "core/caching_storage.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/oodb_factory.h"
#include "core/workload.h"
#include "util/strings.h"

int main() {
  using namespace davpse;
  using namespace davpse::bench;
  using namespace davpse::ecce;

  heading("Ablation D: OODB cache-forward on vs off");
  const size_t calc_count = env_u64("DAVPSE_D_CALCS", 24);

  oodb::Schema schema = ecce_oodb_schema();
  OodbStack stack(ecce_oodb_schema());
  {
    auto seeder_client = stack.client(schema);
    OodbCalculationFactory seeder(seeder_client.get());
    if (!seeder.initialize().is_ok()) std::abort();
    if (!seeder.create_project("p").is_ok()) std::abort();
    for (size_t c = 0; c < calc_count; ++c) {
      if (!seeder
               .save_calculation("p", make_small_calculation(
                                          "calc" + std::to_string(c), c + 1))
               .is_ok()) {
        std::abort();
      }
    }
  }
  std::printf("Corpus: %zu small calculations in one OODB store.\n\n",
              calc_count);

  TablePrinter table({34, 14, 12, 14, 12, 12, 12});
  table.row({"pattern", "cache-forward", "wall", "modeled(150M)", "wire",
             "seg-fetch", "obj-fetch"});
  table.rule();

  for (bool cache_forward : {true, false}) {
    // Workflow-style: each calculation visited once.
    {
      auto client = stack.client(schema, cache_forward);
      net::NetworkModel model(net::LinkProfile::paper_lan());
      client->set_network_model(&model);
      OodbCalculationFactory factory(client.get());
      if (!factory.initialize().is_ok()) std::abort();
      auto m = measure(&model, [&] {
        for (size_t c = 0; c < calc_count; ++c) {
          auto loaded = factory.load_calculation(
              "p", "calc" + std::to_string(c), LoadParts::all());
          if (!loaded.ok()) std::abort();
        }
      });
      table.row({"workflow (each calc once)",
                 cache_forward ? "on" : "off", seconds_cell(m.wall_seconds),
                 seconds_cell(m.wall_seconds + m.modeled_seconds),
                 format_bytes(model.bytes()),
                 std::to_string(client->segment_fetches()),
                 std::to_string(client->object_fetches())});
    }
    // Repeated-access: one calculation re-read many times with cache
    // invalidation only at the start.
    {
      auto client = stack.client(schema, cache_forward);
      net::NetworkModel model(net::LinkProfile::paper_lan());
      client->set_network_model(&model);
      OodbCalculationFactory factory(client.get());
      if (!factory.initialize().is_ok()) std::abort();
      auto m = measure(&model, [&] {
        for (int round = 0; round < 20; ++round) {
          auto loaded =
              factory.load_calculation("p", "calc0", LoadParts::all());
          if (!loaded.ok()) std::abort();
        }
      });
      table.row({"repeated (one calc x20, warm)",
                 cache_forward ? "on" : "off", seconds_cell(m.wall_seconds),
                 seconds_cell(m.wall_seconds + m.modeled_seconds),
                 format_bytes(model.bytes()),
                 std::to_string(client->segment_fetches()),
                 std::to_string(client->object_fetches())});
    }
  }
  table.rule();
  std::printf(
      "\nReading: in the workflow pattern the cache sees no reuse — the "
      "paper's observation that Ecce's typical usage gained little from "
      "cache-forwarding.\nSegment fetches move whole cohorts "
      "(%llu objects each), object fetches move one object per round "
      "trip; with everything cached after the first read, both modes "
      "flatten in the repeated pattern.\n",
      static_cast<unsigned long long>(oodb::kSegmentCapacity));

  // --- the DAV-side counterpart: the Figure 2 client cache ----------------
  // "it would be relatively straight forward to add a cache to the
  // layered client architecture" — measured: repeated Calc Viewer
  // loads with and without the ETag-validated document cache.
  std::printf("\nDAV layered-client cache (CachingDavStorage), repeated "
              "Calc Viewer loads of the UO2-15H2O calculation:\n\n");
  DavStack dav_stack;
  {
    auto seed_client = dav_stack.client();
    DavStorage storage(&seed_client);
    DavCalculationFactory factory(&storage);
    if (!factory.initialize().is_ok()) std::abort();
    if (!factory.create_project("p").is_ok()) std::abort();
    if (!factory.save_calculation("p", make_uo2_calculation()).is_ok()) {
      std::abort();
    }
  }
  TablePrinter dav_table({26, 12, 14, 12});
  dav_table.row({"storage", "wall(x10)", "modeled(150M)", "wire"});
  dav_table.rule();
  for (bool cached : {false, true}) {
    auto client = dav_stack.client();
    net::NetworkModel model(net::LinkProfile::paper_lan());
    client.set_network_model(&model);
    std::unique_ptr<DataStorageInterface> storage;
    if (cached) {
      storage = std::make_unique<CachingDavStorage>(&client);
    } else {
      storage = std::make_unique<DavStorage>(&client);
    }
    DavCalculationFactory factory(storage.get());
    if (!factory.initialize().is_ok()) std::abort();
    auto m = measure(&model, [&] {
      for (int round = 0; round < 10; ++round) {
        auto loaded = factory.load_calculation("p", "uo2-15h2o-dft",
                                               LoadParts::all());
        if (!loaded.ok()) std::abort();
      }
    });
    dav_table.row({cached ? "ETag-validated cache" : "plain (no cache)",
                   seconds_cell(m.wall_seconds),
                   seconds_cell(m.wall_seconds + m.modeled_seconds),
                   format_bytes(model.bytes())});
  }
  dav_table.rule();
  std::printf("\nThe cache turns 9 of 10 document transfers into 304 "
              "revalidations — bytes collapse while correctness is kept "
              "by the validator.\n");
  return 0;
}
