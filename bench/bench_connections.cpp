// Ablation C: connection policy and daemon-pool scaling.
//
// Two of the paper's observations:
//  1. "In the current environment, reconnecting each time was
//     significantly faster than making use of persistent connections,
//     an anomaly still under investigation." — we run the Table 1
//     metadata workload under both policies. (In this in-memory stack
//     persistent connections win, as one would expect; the paper's
//     anomaly was environmental. The modeled column shows why:
//     reconnects cost extra round trips on a real link.)
//  2. Server scalability is inherited from Apache's daemon model — we
//     sweep the daemon count under concurrent clients.
#include <algorithm>
#include <thread>

#include "bench/common.h"
#include "util/random.h"
#include "util/strings.h"

namespace davpse::bench {
namespace {

using davclient::DavClient;
using davclient::Depth;
using davclient::PropWrite;

constexpr int kDocuments = 50;
constexpr int kRequests = 200;

xml::QName prop_name(int index) {
  return xml::QName("http://purl.pnl.gov/ecce",
                    "meta" + std::to_string(index));
}

void build_corpus(DavClient& client) {
  Rng rng(99);
  if (!client.mkcol("/corpus").is_ok()) std::abort();
  for (int d = 0; d < kDocuments; ++d) {
    std::string path = "/corpus/doc" + std::to_string(d);
    if (!client.put(path, "body").is_ok()) std::abort();
    std::vector<PropWrite> writes;
    for (int p = 0; p < 5; ++p) {
      writes.push_back(PropWrite::of_text(prop_name(p),
                                          rng.ascii_blob(1024)));
    }
    if (!client.proppatch(path, writes).is_ok()) std::abort();
  }
}

}  // namespace
}  // namespace davpse::bench

int main() {
  using namespace davpse;
  using namespace davpse::bench;

  heading("Ablation C: connection policy and daemon scaling");

  // --- policy comparison ---------------------------------------------------
  {
    DavStack stack;
    auto seeder = stack.client();
    build_corpus(seeder);

    TablePrinter table({26, 12, 12, 14, 12});
    table.row({"policy", "wall", "cpu", "modeled(150M)", "connects"});
    table.rule();
    for (auto policy : {http::ConnectionPolicy::kPersistent,
                        http::ConnectionPolicy::kPerRequest}) {
      auto client = stack.client(davclient::ParserKind::kDom, policy);
      net::NetworkModel model(net::LinkProfile::paper_lan());
      client.set_network_model(&model);
      std::vector<xml::QName> names;
      for (int p = 0; p < 5; ++p) names.push_back(prop_name(p));
      auto m = measure(&model, [&] {
        for (int i = 0; i < kRequests; ++i) {
          auto r = client.propfind(
              "/corpus/doc" + std::to_string(i % kDocuments), Depth::kZero,
              names);
          if (!r.ok()) std::abort();
        }
      });
      table.row({policy == http::ConnectionPolicy::kPersistent
                     ? "persistent (keep-alive)"
                     : "reconnect per request",
                 seconds_cell(m.wall_seconds), seconds_cell(m.cpu_seconds),
                 seconds_cell(m.wall_seconds + m.modeled_seconds),
                 std::to_string(client.http().connections_opened())});
    }
    // Pipelined: the optimization the paper lists but did not pursue —
    // all requests written before any response is read.
    {
      auto client = stack.client();
      net::NetworkModel model(net::LinkProfile::paper_lan());
      client.set_network_model(&model);
      std::vector<xml::QName> names;
      for (int p = 0; p < 5; ++p) names.push_back(prop_name(p));
      std::vector<std::string> paths;
      for (int i = 0; i < kRequests; ++i) {
        paths.push_back("/corpus/doc" + std::to_string(i % kDocuments));
      }
      auto m = measure(&model, [&] {
        auto results = client.propfind_many(paths, names);
        if (!results.ok() || results.value().size() != paths.size()) {
          std::abort();
        }
      });
      table.row({"pipelined (one batch)", seconds_cell(m.wall_seconds),
                 seconds_cell(m.cpu_seconds),
                 seconds_cell(m.wall_seconds + m.modeled_seconds),
                 std::to_string(client.http().connections_opened())});
    }
    table.rule();
    std::printf(
        "\n%d PROPFIND depth=0 requests over the Table 1 corpus. The "
        "paper observed reconnect-per-request running FASTER in its\n"
        "environment and flagged it as an unexplained anomaly. Here the "
        "two policies land within scheduling noise of each other in\n"
        "wall time (reconnects occasionally win a run — the anomaly's "
        "character), while the modeled column shows the real-link\n"
        "verdict: 200 extra connection round trips make reconnecting "
        "strictly slower at LAN latency.\n",
        kRequests);
  }

  // --- daemon scaling --------------------------------------------------------
  {
    std::printf("\nDaemon-pool scaling (16 concurrent clients, %d requests "
                "each, 4 KB GETs):\n\n",
                50);
    TablePrinter table({10, 12, 16});
    table.row({"daemons", "wall", "requests/s"});
    table.rule();
    for (size_t daemons : {1, 2, 5, 8, 16}) {
      DavStack stack(dbm::Flavor::kGdbm, daemons);
      auto seeder = stack.client();
      Rng rng(5);
      if (!seeder.put("/doc", rng.ascii_blob(4096)).is_ok()) std::abort();
      // Release the seeder's keep-alive connection: an idle connection
      // pins a daemon until the 15 s keep-alive timeout (thread-per-
      // connection head-of-line blocking, exactly as in Apache 1.3).
      seeder.http().reset_connection();

      constexpr int kClients = 16;
      constexpr int kPerClient = 50;
      auto m = measure(nullptr, [&] {
        std::vector<std::thread> threads;
        for (int t = 0; t < kClients; ++t) {
          threads.emplace_back([&stack] {
            auto client = stack.client();
            for (int i = 0; i < kPerClient; ++i) {
              auto body = client.get("/doc");
              if (!body.ok()) std::abort();
            }
          });
        }
        for (auto& thread : threads) thread.join();
      });
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.0f",
                    kClients * kPerClient / std::max(m.wall_seconds, 1e-9));
      table.row({std::to_string(daemons), seconds_cell(m.wall_seconds),
                 rate});
    }
    table.rule();
    std::printf("\nThroughput should rise with the daemon count until "
                "core saturation (the paper ran \"a minimum of 5 "
                "daemons\").\n");
  }
  return 0;
}
