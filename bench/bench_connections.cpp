// Ablation C: connection policy and daemon-pool scaling.
//
// Two of the paper's observations:
//  1. "In the current environment, reconnecting each time was
//     significantly faster than making use of persistent connections,
//     an anomaly still under investigation." — we run the Table 1
//     metadata workload under both policies. (In this in-memory stack
//     persistent connections win, as one would expect; the paper's
//     anomaly was environmental. The modeled column shows why:
//     reconnects cost extra round trips on a real link.)
//  2. Server scalability was inherited from Apache's daemon model — we
//     sweep the worker count under concurrent clients, and then sweep
//     *idle keep-alive connections* from 1k to 10k against the reactor
//     core. Under the paper's thread-per-connection servers the second
//     sweep is impossible: every idle connection pinned a daemon, so a
//     5-daemon server could hold at most 5 idle keep-alive peers. The
//     reactor parks them in a poller at a map-entry's cost; this bench
//     records what that costs (bytes per idle connection) and what it
//     protects (shed rate and served-request p99 while thousands idle).
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "bench/common.h"
#include "http/client.h"
#include "net/network.h"
#include "util/random.h"
#include "util/strings.h"

namespace davpse::bench {
namespace {

using davclient::DavClient;
using davclient::Depth;
using davclient::PropWrite;

constexpr int kDocuments = 50;
constexpr int kRequests = 200;

xml::QName prop_name(int index) {
  return xml::QName("http://purl.pnl.gov/ecce",
                    "meta" + std::to_string(index));
}

/// Current resident set in bytes (Linux /proc; 0 when unavailable).
size_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long resident = 0;
  int fields = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (fields != 2) return 0;
  return static_cast<size_t>(resident) *
         static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

class TinyHandler final : public http::Handler {
 public:
  http::HttpResponse handle(const http::HttpRequest&) override {
    perf_handicap();
    return http::HttpResponse::make(http::kOk, "ok\n");
  }
};

/// Opens one keep-alive connection, serves one GET on it, and leaves it
/// idle (the server parks it). Returns nullptr on failure.
std::unique_ptr<net::Stream> open_idle_connection(
    net::Network& network, const std::string& endpoint) {
  auto conn = network.connect(endpoint);
  if (!conn.ok()) return nullptr;
  if (!conn.value()->write("GET / HTTP/1.1\r\nHost: h\r\n\r\n").is_ok()) {
    return nullptr;
  }
  std::string reply;
  char buf[512];
  while (reply.find("ok\n") == std::string::npos) {
    auto n = conn.value()->read(buf, sizeof buf);
    if (!n.ok() || n.value() == 0) return nullptr;
    reply.append(buf, n.value());
  }
  return std::move(conn).value();
}

void build_corpus(DavClient& client) {
  Rng rng(99);
  if (!client.mkcol("/corpus").is_ok()) std::abort();
  for (int d = 0; d < kDocuments; ++d) {
    std::string path = "/corpus/doc" + std::to_string(d);
    if (!client.put(path, "body").is_ok()) std::abort();
    std::vector<PropWrite> writes;
    for (int p = 0; p < 5; ++p) {
      writes.push_back(PropWrite::of_text(prop_name(p),
                                          rng.ascii_blob(1024)));
    }
    if (!client.proppatch(path, writes).is_ok()) std::abort();
  }
}

}  // namespace
}  // namespace davpse::bench

int main() {
  using namespace davpse;
  using namespace davpse::bench;

  heading("Ablation C: connection policy and daemon scaling");

  // --- policy comparison ---------------------------------------------------
  {
    DavStack stack;
    auto seeder = stack.client();
    build_corpus(seeder);

    TablePrinter table({26, 12, 12, 14, 12});
    table.row({"policy", "wall", "cpu", "modeled(150M)", "connects"});
    table.rule();
    for (auto policy : {http::ConnectionPolicy::kPersistent,
                        http::ConnectionPolicy::kPerRequest}) {
      auto client = stack.client(davclient::ParserKind::kDom, policy);
      net::NetworkModel model(net::LinkProfile::paper_lan());
      client.set_network_model(&model);
      std::vector<xml::QName> names;
      for (int p = 0; p < 5; ++p) names.push_back(prop_name(p));
      auto m = measure(&model, [&] {
        for (int i = 0; i < kRequests; ++i) {
          auto r = client.propfind(
              "/corpus/doc" + std::to_string(i % kDocuments), Depth::kZero,
              names);
          if (!r.ok()) std::abort();
        }
      });
      table.row({policy == http::ConnectionPolicy::kPersistent
                     ? "persistent (keep-alive)"
                     : "reconnect per request",
                 seconds_cell(m.wall_seconds), seconds_cell(m.cpu_seconds),
                 seconds_cell(m.wall_seconds + m.modeled_seconds),
                 std::to_string(client.http().connections_opened())});
    }
    // Pipelined: the optimization the paper lists but did not pursue —
    // all requests written before any response is read.
    {
      auto client = stack.client();
      net::NetworkModel model(net::LinkProfile::paper_lan());
      client.set_network_model(&model);
      std::vector<xml::QName> names;
      for (int p = 0; p < 5; ++p) names.push_back(prop_name(p));
      std::vector<std::string> paths;
      for (int i = 0; i < kRequests; ++i) {
        paths.push_back("/corpus/doc" + std::to_string(i % kDocuments));
      }
      auto m = measure(&model, [&] {
        auto results = client.propfind_many(paths, names);
        if (!results.ok() || results.value().size() != paths.size()) {
          std::abort();
        }
      });
      table.row({"pipelined (one batch)", seconds_cell(m.wall_seconds),
                 seconds_cell(m.cpu_seconds),
                 seconds_cell(m.wall_seconds + m.modeled_seconds),
                 std::to_string(client.http().connections_opened())});
    }
    table.rule();
    std::printf(
        "\n%d PROPFIND depth=0 requests over the Table 1 corpus. The "
        "paper observed reconnect-per-request running FASTER in its\n"
        "environment and flagged it as an unexplained anomaly. Here the "
        "two policies land within scheduling noise of each other in\n"
        "wall time (reconnects occasionally win a run — the anomaly's "
        "character), while the modeled column shows the real-link\n"
        "verdict: 200 extra connection round trips make reconnecting "
        "strictly slower at LAN latency.\n",
        kRequests);
  }

  // --- daemon scaling --------------------------------------------------------
  {
    std::printf("\nDaemon-pool scaling (16 concurrent clients, %d requests "
                "each, 4 KB GETs):\n\n",
                50);
    TablePrinter table({10, 12, 16});
    table.row({"daemons", "wall", "requests/s"});
    table.rule();
    for (size_t daemons : {1, 2, 5, 8, 16}) {
      DavStack stack(dbm::Flavor::kGdbm, daemons);
      auto seeder = stack.client();
      Rng rng(5);
      if (!seeder.put("/doc", rng.ascii_blob(4096)).is_ok()) std::abort();
      // Release the seeder's keep-alive connection for workload purity.
      // (Under the old thread-per-connection core this was load-bearing:
      // an idle connection pinned a daemon until the 15 s keep-alive
      // timeout, Apache 1.3 head-of-line blocking. The reactor core
      // parks idle connections without holding a worker, so `daemons`
      // below sizes the request-serving pool only.)
      seeder.http().reset_connection();

      constexpr int kClients = 16;
      constexpr int kPerClient = 50;
      auto m = measure(nullptr, [&] {
        std::vector<std::thread> threads;
        for (int t = 0; t < kClients; ++t) {
          threads.emplace_back([&stack] {
            auto client = stack.client();
            for (int i = 0; i < kPerClient; ++i) {
              auto body = client.get("/doc");
              if (!body.ok()) std::abort();
            }
          });
        }
        for (auto& thread : threads) thread.join();
      });
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.0f",
                    kClients * kPerClient / std::max(m.wall_seconds, 1e-9));
      table.row({std::to_string(daemons), seconds_cell(m.wall_seconds),
                 rate});
    }
    table.rule();
    std::printf("\nThroughput should rise with the worker count until "
                "core saturation (the paper ran \"a minimum of 5 "
                "daemons\"; here that knob sizes the reactor's worker "
                "pool).\n");
  }

  // --- idle keep-alive connection scaling (reactor core) -------------------
  // The sweep the daemon model forbids: park 1k..10k idle keep-alive
  // connections, then measure what serving requests through the same
  // server costs while they sit there. DAVPSE_CONN_IDLE_MAX caps the
  // sweep (smoke runs use a few hundred).
  std::vector<BenchRow> rows;
  obs::RegistrySnapshot last_snapshot;
  {
    const size_t idle_max = env_u64("DAVPSE_CONN_IDLE_MAX", 10000);
    std::vector<size_t> sweep;
    for (size_t n : {size_t{1000}, size_t{2000}, size_t{5000},
                     size_t{10000}}) {
      if (n <= idle_max) sweep.push_back(n);
    }
    if (sweep.empty()) sweep.push_back(idle_max);

    std::printf("\nIdle keep-alive connection scaling (reactor core, 8 "
                "workers):\n\n");
    TablePrinter table({12, 12, 12, 12, 14, 12});
    table.row({"idle conns", "setup", "req/s", "p99", "B/idle-conn",
               "shed rate"});
    table.rule();
    for (size_t idle : sweep) {
      obs::Registry registry;
      TinyHandler handler;
      http::ServerConfig config;
      config.endpoint = unique_endpoint("bench-idle");
      config.workers = 8;  // well under the 16-thread ceiling
      // The sweep itself must not race the idle reaper.
      config.keep_alive_timeout_seconds = 300;
      config.metrics = &registry;
      http::HttpServer server(config, &handler);
      if (!server.start().is_ok()) std::abort();
      net::Network& network = net::Network::instance();

      size_t rss_before = rss_bytes();
      std::vector<std::unique_ptr<net::Stream>> idle_conns;
      idle_conns.reserve(idle);
      auto setup = measure(nullptr, [&] {
        for (size_t i = 0; i < idle; ++i) {
          auto conn = open_idle_connection(network, server.endpoint());
          if (conn == nullptr) std::abort();
          idle_conns.push_back(std::move(conn));
        }
      });
      // All of them must actually be parked — each freed its worker.
      while (registry.snapshot().gauge("http.server.parked") <
             static_cast<int64_t>(idle)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      double per_conn_bytes =
          idle > 0 && rss_bytes() > rss_before
              ? static_cast<double>(rss_bytes() - rss_before) /
                    static_cast<double>(idle)
              : 0;

      // Requests served THROUGH the parked crowd: the reactor must
      // route fresh work to workers without scanning the idle set.
      const size_t requests = env_u64("DAVPSE_CONN_IDLE_REQS", 1000);
      http::ClientConfig client_config;
      client_config.endpoint = server.endpoint();
      client_config.metrics = &registry;
      http::HttpClient client(client_config);
      // Worker-busy baseline so utilization covers the serve window
      // only, not the connection-parking setup above.
      auto busy_micros = [&registry] {
        uint64_t total = 0;
        auto s = registry.snapshot();
        for (const auto& [name, value] : s.counters) {
          if (name.starts_with("http.server.worker_busy_micros.")) {
            total += value;
          }
        }
        return total;
      };
      uint64_t busy_before = busy_micros();
      auto serve = measure(nullptr, [&] {
        for (size_t i = 0; i < requests; ++i) {
          auto response = client.get("/");
          if (!response.ok() || response.value().status != http::kOk) {
            std::abort();
          }
        }
      });

      auto snap = registry.snapshot();
      auto latency = snap.histogram("http.server.latency_seconds.GET");
      // Scheduler telemetry for the serve window: where request time
      // went before a worker picked it up, how stale readiness events
      // were when drained, and how busy the pool actually was.
      auto queue_wait = snap.histogram("http.server.queue_wait_seconds");
      auto poller_wake = snap.histogram("net.poller.wake_seconds");
      double worker_utilization =
          serve.wall_seconds > 0
              ? std::min(1.0, static_cast<double>(busy_micros() -
                                                  busy_before) /
                                  (serve.wall_seconds * 1e6 * 8))
              : 0;
      double attempts =
          static_cast<double>(snap.counter("http.server.connections") +
                              snap.counter("http.server.shed"));
      double shed_rate =
          attempts > 0 ? static_cast<double>(
                             snap.counter("http.server.shed")) /
                             attempts
                       : 0;
      double rps =
          static_cast<double>(requests) / std::max(serve.wall_seconds, 1e-9);
      char rps_cell[32];
      std::snprintf(rps_cell, sizeof rps_cell, "%.0f", rps);
      char mem_cell[32];
      std::snprintf(mem_cell, sizeof mem_cell, "%.0f", per_conn_bytes);
      char shed_cell[32];
      std::snprintf(shed_cell, sizeof shed_cell, "%.4f", shed_rate);
      table.row({std::to_string(idle), seconds_cell(setup.wall_seconds),
                 rps_cell, latency_cell(latency.p99), mem_cell, shed_cell});
      rows.push_back(
          {"idle-" + std::to_string(idle),
           {{"idle_connections", static_cast<double>(idle)},
            {"setup_seconds", setup.wall_seconds},
            {"requests_per_second", rps},
            {"p99_seconds", latency.p99},
            {"bytes_per_idle_connection", per_conn_bytes},
            {"shed_rate", shed_rate},
            {"queue_wait_p99_seconds", queue_wait.p99},
            {"queue_wait_p50_seconds", queue_wait.p50},
            {"poller_wake_p99_seconds", poller_wake.p99},
            {"worker_utilization", worker_utilization},
            {"poller_wakes",
             static_cast<double>(
                 snap.counter("http.server.poller_wakes"))}}});
      last_snapshot = snap;
      for (auto& conn : idle_conns) conn->close();
    }
    table.rule();
    std::printf(
        "\nEvery idle connection above the worker count would deadlock "
        "the old thread-per-connection server. The reactor parks them: "
        "B/idle-conn is the resident-set cost per parked connection "
        "(RSS delta / connections, approximate), p99 the server-side "
        "GET latency while they idle, shed rate the fraction of "
        "arrivals refused (0 = the sweep was sustained).\n");
  }
  emit_bench_artifact("connections", rows, last_snapshot);
  return 0;
}
