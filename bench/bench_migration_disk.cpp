// §3.2.4 reproduction: disk-space cost of migrating an OODB store into
// per-resource DBM-backed DAV storage.
//
// The paper converted "two large databases, which contain a total of
// 259 calculations represented by about 420,000 OODB objects with a
// combined size (excluding raw data files) of 35 MB" and found disk
// requirements grew "by about 10% when using mod_dav with SDBM and 25%
// when using GDBM", attributing the bulk to the per-resource DBM files
// with their 8 KB / 25 KB default initial sizes.
//
// Default corpus here is smaller (DAVPSE_CALCS=259 reproduces the full
// count); the quantity that transfers across scales is the *ratio* of
// GDBM overhead to SDBM overhead, which the initial-size ratio pins
// near 25/8.
#include "bench/common.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/migrate.h"
#include "core/oodb_factory.h"
#include "core/workload.h"
#include "util/strings.h"

namespace davpse::bench {
namespace {

using namespace davpse::ecce;

struct FlavorResult {
  const char* label;
  uint64_t disk_bytes = 0;
  double seconds = 0;
};

}  // namespace
}  // namespace davpse::bench

int main() {
  using namespace davpse;
  using namespace davpse::bench;
  using namespace davpse::ecce;

  heading("Section 3.2.4: OODB -> DAV migration disk usage");
  const size_t calc_count = env_u64("DAVPSE_CALCS", 64);
  const size_t projects = 2;  // "two large databases"
  std::printf("Corpus: %zu small calculations across %zu projects "
              "(DAVPSE_CALCS overrides; paper used 259).\n\n",
              calc_count, projects);

  // Build the legacy store.
  oodb::Schema schema = ecce_oodb_schema();
  OodbStack oodb_stack(ecce_oodb_schema());
  auto oodb_client = oodb_stack.client(schema);
  OodbCalculationFactory source(oodb_client.get());
  if (!source.initialize().is_ok()) std::abort();
  {
    StopWatch watch;
    for (size_t p = 0; p < projects; ++p) {
      std::string project = "db" + std::to_string(p + 1);
      if (!source.create_project(project).is_ok()) std::abort();
      for (size_t c = p; c < calc_count; c += projects) {
        if (!source
                 .save_calculation(project,
                                   make_small_calculation(
                                       "calc" + std::to_string(c), c + 1))
                 .is_ok()) {
          std::abort();
        }
      }
    }
    for (const BasisSet& basis : make_basis_library(4)) {
      if (!source.save_library_basis(basis).is_ok()) std::abort();
    }
    std::printf("Built legacy store in %.2f s\n", watch.elapsed_wall());
  }
  auto stats = oodb_client->stats();
  if (!stats.ok()) std::abort();
  uint64_t oodb_objects = stats.value().first;
  uint64_t oodb_bytes = stats.value().second;
  std::printf("OODB store: %llu objects, %s on disk "
              "(paper: ~420,000 objects, 35 MB for 259 calcs)\n\n",
              static_cast<unsigned long long>(oodb_objects),
              format_bytes(oodb_bytes).c_str());

  // Migrate into a DAV store per DBM flavor.
  FlavorResult results[2] = {{"SDBM (8 KB initial, 1 KB cap)"},
                             {"GDBM (25 KB initial, uncapped)"}};
  dbm::Flavor flavors[2] = {dbm::Flavor::kSdbm, dbm::Flavor::kGdbm};
  for (int i = 0; i < 2; ++i) {
    DavStack stack(flavors[i]);
    auto client = stack.client();
    DavStorage storage(&client);
    DavCalculationFactory dest(&storage);
    Migrator migrator(&source, &dest, &storage);
    StopWatch watch;
    auto report = migrator.migrate_all();
    if (!report.ok()) {
      std::fprintf(stderr, "migration failed: %s\n",
                   report.status().to_string().c_str());
      std::abort();
    }
    results[i].seconds = watch.elapsed_wall();
    results[i].disk_bytes = stack.dav->repository().disk_usage("/");
  }

  TablePrinter table({32, 14, 14, 12});
  table.row({"store", "disk", "vs OODB", "migrate"});
  table.rule();
  table.row({"OODB (binary, hidden segments)", format_bytes(oodb_bytes),
             "100%", "-"});
  for (const FlavorResult& result : results) {
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%+.0f%%",
                  100.0 * (static_cast<double>(result.disk_bytes) /
                               static_cast<double>(oodb_bytes) -
                           1.0));
    table.row({result.label, format_bytes(result.disk_bytes), ratio,
               seconds_cell(result.seconds)});
  }
  table.rule();

  double sdbm_overhead =
      static_cast<double>(results[0].disk_bytes) - oodb_bytes;
  double gdbm_overhead =
      static_cast<double>(results[1].disk_bytes) - oodb_bytes;
  std::printf(
      "\nPaper: +10%% (SDBM) and +25%% (GDBM) over the 35 MB OODB store.\n"
      "Shape checks:\n"
      "  - GDBM costs more disk than SDBM (initial sizes 25 KB vs 8 KB): "
      "%s\n"
      "  - overhead ratio GDBM/SDBM = %.2f (initial-size ratio predicts "
      "~%.2f; paper's 25%%/10%% = 2.50)\n"
      "  - absolute %% is corpus-dependent (the paper itself: \"For "
      "studies on larger systems, the metadata databases will be a much "
      "smaller percentage of the total space used\") — demonstrated "
      "below.\n",
      results[1].disk_bytes > results[0].disk_bytes ? "yes" : "NO",
      gdbm_overhead / std::max(sdbm_overhead, 1.0), 25.0 / 8.0);

  // --- system-size sweep: DBM overhead % vs output payload ---------------
  std::printf("\nDBM overhead %% as system size grows (8 calculations, "
              "one property of N KB per task):\n\n");
  TablePrinter sweep({18, 14, 14, 14});
  sweep.row({"property size", "data bytes", "SDBM overhead",
             "GDBM overhead"});
  sweep.rule();
  for (size_t property_kb : {4, 64, 512, 2048}) {
    // Fresh corpus with the requested payload per task.
    std::vector<Calculation> corpus;
    for (int c = 0; c < 8; ++c) {
      Calculation calc = make_small_calculation(
          "sweep" + std::to_string(c), 1000 + c);
      for (CalcTask& task : calc.tasks) {
        task.outputs.clear();
        task.outputs.push_back(make_property(
            "payload", "a.u.", property_kb * 1024, 2000 + c));
      }
      corpus.push_back(std::move(calc));
    }
    uint64_t disk[2] = {0, 0};
    uint64_t data_bytes = 0;
    for (int i = 0; i < 2; ++i) {
      DavStack stack(flavors[i]);
      auto client = stack.client();
      DavStorage storage(&client);
      DavCalculationFactory dest(&storage);
      if (!dest.initialize().is_ok()) std::abort();
      if (!dest.create_project("sweep").is_ok()) std::abort();
      for (const Calculation& calc : corpus) {
        if (!dest.save_calculation("sweep", calc).is_ok()) std::abort();
      }
      disk[i] = stack.dav->repository().disk_usage("/");
      if (i == 0) {
        // Data payload = documents only; measure via a flavor whose
        // initial size is subtracted out by counting property DBMs.
        data_bytes = 0;
        for (const Calculation& calc : corpus) {
          data_bytes += calc.output_bytes() + calc.molecule.atoms.size() * 48;
          for (const CalcTask& task : calc.tasks) {
            data_bytes += task.input_deck.size();
          }
        }
      }
    }
    char sdbm_cell[32], gdbm_cell[32];
    std::snprintf(sdbm_cell, sizeof sdbm_cell, "+%.0f%%",
                  100.0 * (static_cast<double>(disk[0]) / data_bytes - 1.0));
    std::snprintf(gdbm_cell, sizeof gdbm_cell, "+%.0f%%",
                  100.0 * (static_cast<double>(disk[1]) / data_bytes - 1.0));
    sweep.row({std::to_string(property_kb) + " KB",
               format_bytes(data_bytes), sdbm_cell, gdbm_cell});
  }
  sweep.rule();
  std::printf("\nAs payloads grow the fixed per-resource DBM allocation "
              "amortizes away and the percentages fall toward (and past) "
              "the paper's +10%%/+25%% operating point.\n");
  return 0;
}
