// §3.2.1 robustness reproduction: "metadata values as large as 100 MB
// and documents as large as 200 MB were created repeatedly without
// problems... as an initial (post-testing) value, we set a limit of
// 10 MB per property."
//
// Defaults keep the run under a minute; DAVPSE_FULL=1 uses the paper's
// full 100 MB / 200 MB sizes.
#include <algorithm>

#include "bench/common.h"
#include "util/random.h"
#include "util/strings.h"

int main() {
  using namespace davpse;
  using namespace davpse::bench;
  using davclient::PropWrite;

  heading("Section 3.2.1: large-object robustness and the property cap");
  const bool full = env_u64("DAVPSE_FULL", 0) != 0;
  const size_t doc_mb = full ? 200 : 64;
  const size_t prop_mb = full ? 100 : 24;
  const int rounds = 3;
  std::printf("Sizes: %zu MB documents, %zu MB property values, %d rounds "
              "each (DAVPSE_FULL=1 for the paper's 200/100 MB).\n\n",
              doc_mb, prop_mb, rounds);

  // A stack whose property cap admits the large values; the default
  // 10 MB cap is tested separately below.
  TempDir temp("limitbench");
  dav::DavConfig dav_config;
  dav_config.root = temp.path();
  dav_config.max_property_bytes = (prop_mb + 1) * 1024 * 1024;
  dav::DavServer dav_server(dav_config);
  http::ServerConfig http_config;
  http_config.endpoint = unique_endpoint("bench-limits");
  http_config.max_body_bytes = 0;
  http::HttpServer server(http_config, &dav_server);
  if (!server.start().is_ok()) std::abort();
  http::ClientConfig client_config;
  client_config.endpoint = http_config.endpoint;
  davclient::DavClient client(client_config);

  Rng rng(2718);
  TablePrinter table({36, 12, 12, 10});
  table.row({"operation", "wall", "cpu", "verify"});
  table.rule();

  // Repeated large documents.
  std::string doc = rng.ascii_blob(doc_mb * 1024 * 1024);
  for (int round = 1; round <= rounds; ++round) {
    auto put = measure(nullptr, [&] {
      if (!client.put("/big-doc", doc).is_ok()) std::abort();
    });
    auto body = client.get("/big-doc");
    bool ok = body.ok() && body.value() == doc;
    table.row({"PUT " + std::to_string(doc_mb) + " MB document, round " +
                   std::to_string(round),
               seconds_cell(put.wall_seconds), seconds_cell(put.cpu_seconds),
               ok ? "ok" : "CORRUPT"});
    if (!ok) std::abort();
  }

  // Repeated large property values (note the server-side double-copy
  // the paper warns about: request body + extracted key/value pair).
  const xml::QName big_prop("urn:bench", "huge");
  std::string value = rng.ascii_blob(prop_mb * 1024 * 1024);
  for (int round = 1; round <= rounds; ++round) {
    auto patch = measure(nullptr, [&] {
      if (!client.proppatch("/big-doc", {PropWrite::of_text(big_prop, value)})
               .is_ok()) {
        std::abort();
      }
    });
    auto read_back = client.get_property("/big-doc", big_prop);
    bool ok = read_back.ok() && read_back.value() == value;
    table.row({"PROPPATCH " + std::to_string(prop_mb) +
                   " MB property, round " + std::to_string(round),
               seconds_cell(patch.wall_seconds),
               seconds_cell(patch.cpu_seconds), ok ? "ok" : "CORRUPT"});
    if (!ok) std::abort();
  }
  table.rule();

  // The configured 10 MB default cap.
  {
    DavStack capped;  // default config: the paper's 10 MB limit
    auto capped_client = capped.client();
    if (!capped_client.put("/doc", "x").is_ok()) std::abort();
    Status over = capped_client.proppatch(
        "/doc",
        {PropWrite::of_text(big_prop, std::string(11 * 1024 * 1024, 'v'))});
    Status under = capped_client.proppatch(
        "/doc",
        {PropWrite::of_text(big_prop, std::string(9 * 1024 * 1024, 'v'))});
    std::printf(
        "\nDefault 10 MB property cap: 11 MB rejected (%s), 9 MB accepted "
        "(%s)\n",
        over.code() == ErrorCode::kTooLarge ? "yes" : "NO",
        under.is_ok() ? "yes" : "NO");
  }

  std::printf(
      "\nPaper: repeated 100 MB properties / 200 MB documents succeeded; "
      "document size bounded only by the filesystem; cap configurable.\n");
  return 0;
}
