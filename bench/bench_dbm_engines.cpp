// Property-engine shootout: the paper's DBM-per-resource layout
// (SDBM and GDBM flavors, §3.2.1) against the consolidated WAL-backed
// store, through the same PropertyStore interface the server uses.
//
// Reproduced alongside the measurements are the paper's §3.2.4 disk
// numbers: "disk space increased 10% (SDBM) / 25% (GDBM)" when
// metadata was added to the ECCE archive. Overhead here is property
// bytes on disk relative to a modeled document corpus
// (DAVPSE_PROPS_DOC_BYTES per resource, default 100 KB — the ratio at
// which GDBM's 25 KB initial allocation lands on the paper's 25%).
//
// Knobs:
//   DAVPSE_PROPS_DOCS           consolidated resource count (10^6)
//   DAVPSE_PROPS_BASELINE_DOCS  DBM resource count (100k — a million
//                               25 KB GDBM files would be 25 GB; the
//                               per-file layout is already directory-
//                               bound at this size)
//   DAVPSE_PROPS_PER_DOC        properties per resource (4)
//   DAVPSE_PROPS_VALUE_BYTES    property value size (256)
//   DAVPSE_PROPS_GETS           point reads sampled per engine (200k)
//   DAVPSE_PROPS_DOC_BYTES      modeled document size for overhead
//
// Emits BENCH_props.json (rows per engine plus the two paper
// reference rows) when DAVPSE_BENCH_JSON is set.
#include <algorithm>
#include <cinttypes>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "dav/consolidated_props.h"
#include "dav/props.h"
#include "dav/property_store.h"
#include "util/clock.h"
#include "util/fs.h"
#include "util/random.h"

namespace davpse::bench {
namespace {

struct EngineResult {
  std::string label;
  uint64_t docs = 0;
  double set_ops_per_second = 0;
  double get_ops_per_second = 0;
  double get_many_targets_per_second = 0;
  uint64_t disk_bytes = 0;
  double disk_overhead_pct = 0;
};

std::string doc_path(uint64_t i) { return "/d" + std::to_string(i); }

EngineResult run_engine(const std::string& label, dav::PropertyStore& store,
                        const std::filesystem::path& root, uint64_t docs,
                        uint64_t props_per_doc, uint64_t value_bytes,
                        uint64_t doc_bytes, uint64_t max_gets) {
  EngineResult result;
  result.label = label;
  result.docs = docs;

  std::vector<xml::QName> names;
  for (uint64_t p = 0; p < props_per_doc; ++p) {
    names.emplace_back("urn:chem", "prop" + std::to_string(p));
  }
  Rng rng(42);
  std::string value = rng.ascii_blob(value_bytes);

  // Populate: one batched set per resource (a PROPPATCH per doc).
  StopWatch set_watch;
  for (uint64_t i = 0; i < docs; ++i) {
    dav::PropertyList batch;
    batch.reserve(props_per_doc);
    for (const auto& name : names) batch.emplace_back(name, value);
    Status status = store.set(doc_path(i), batch);
    if (!status.is_ok()) {
      std::fprintf(stderr, "%s: set failed at %" PRIu64 ": %s\n",
                   label.c_str(), i, status.to_string().c_str());
      std::abort();
    }
  }
  double set_seconds = set_watch.elapsed_wall();
  result.set_ops_per_second =
      static_cast<double>(docs * props_per_doc) / set_seconds;

  // Point reads, pseudo-random resource order (Knuth stride): the
  // paper's access pattern — open, fetch one value, close.
  uint64_t gets = std::min(max_gets, docs * props_per_doc);
  StopWatch get_watch;
  for (uint64_t i = 0; i < gets; ++i) {
    uint64_t doc = (i * 2654435761ull) % docs;
    auto got = store.get(doc_path(doc), names[i % props_per_doc]);
    if (!got.ok()) {
      std::fprintf(stderr, "%s: get failed\n", label.c_str());
      std::abort();
    }
  }
  result.get_ops_per_second =
      static_cast<double>(gets) / get_watch.elapsed_wall();

  // Batched reads — the PROPFIND depth-1 / SEARCH shape: one
  // get_many() pass per 100 resources, two named properties each.
  uint64_t batch_targets = std::min<uint64_t>(docs, max_gets);
  std::vector<xml::QName> two(names.begin(),
                              names.begin() + std::min<size_t>(2, names.size()));
  StopWatch many_watch;
  for (uint64_t start = 0; start < batch_targets; start += 100) {
    std::vector<std::string> paths;
    for (uint64_t i = start; i < std::min(start + 100, batch_targets); ++i) {
      paths.push_back(doc_path(i));
    }
    auto lists = store.get_many(paths, two);
    if (!lists.ok() || lists.value().size() != paths.size()) {
      std::fprintf(stderr, "%s: get_many failed\n", label.c_str());
      std::abort();
    }
  }
  result.get_many_targets_per_second =
      static_cast<double>(batch_targets) / many_watch.elapsed_wall();

  // Settle the store (the paper's "manual garbage collection"; for the
  // consolidated engine this checkpoints the WAL into the shards), then
  // weigh it against the modeled document corpus.
  (void)store.compact_subtree("/");
  result.disk_bytes = davpse::disk_usage(root);
  result.disk_overhead_pct = 100.0 * static_cast<double>(result.disk_bytes) /
                             static_cast<double>(docs * doc_bytes);
  return result;
}

}  // namespace
}  // namespace davpse::bench

int main() {
  using namespace davpse;
  using namespace davpse::bench;

  uint64_t docs = env_u64("DAVPSE_PROPS_DOCS", 1000000);
  uint64_t baseline_docs = env_u64("DAVPSE_PROPS_BASELINE_DOCS", 100000);
  uint64_t props_per_doc = env_u64("DAVPSE_PROPS_PER_DOC", 4);
  uint64_t value_bytes = env_u64("DAVPSE_PROPS_VALUE_BYTES", 256);
  uint64_t doc_bytes = env_u64("DAVPSE_PROPS_DOC_BYTES", 100 * 1024);
  uint64_t max_gets = env_u64("DAVPSE_PROPS_GETS", 200000);

  obs::Registry metrics;
  std::vector<EngineResult> results;

  for (dbm::Flavor flavor : {dbm::Flavor::kSdbm, dbm::Flavor::kGdbm}) {
    std::string label = flavor == dbm::Flavor::kSdbm ? "dbm-sdbm"
                                                     : "dbm-gdbm";
    TempDir temp("propbench");
    dav::DbmPropertyStore store(temp.path(), flavor,
                                &metrics.counter("dav.props.db_reads"),
                                &metrics.counter("dav.props.db_writes"));
    results.push_back(run_engine(label, store, temp.path(), baseline_docs,
                                 props_per_doc, value_bytes, doc_bytes,
                                 max_gets));
  }
  {
    TempDir temp("propbench");
    dbm::ConsolidatedOptions options;
    options.metrics = &metrics;
    dav::ConsolidatedPropertyStore store(
        temp.path(), &metrics.counter("dav.props.db_reads"),
        &metrics.counter("dav.props.db_writes"), options);
    results.push_back(run_engine("consolidated", store, temp.path(), docs,
                                 props_per_doc, value_bytes, doc_bytes,
                                 max_gets));
  }

  const EngineResult& gdbm = results[1];
  const EngineResult& consolidated = results[2];
  double set_speedup =
      consolidated.set_ops_per_second / gdbm.set_ops_per_second;
  double get_speedup =
      consolidated.get_ops_per_second / gdbm.get_ops_per_second;
  double get_many_speedup = consolidated.get_many_targets_per_second /
                            gdbm.get_many_targets_per_second;

  heading("Property engines: DBM-per-resource vs consolidated WAL store");
  std::printf("modeled %" PRIu64 " KB/document corpus; paper §3.2.4: "
              "+10%% (SDBM) / +25%% (GDBM)\n\n", doc_bytes / 1024);
  TablePrinter table({14, 10, 14, 14, 16, 12});
  table.row({"engine", "docs", "set ops/s", "get ops/s", "get_many tgt/s",
             "overhead"});
  table.rule();
  for (const EngineResult& r : results) {
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%.1f%%", r.disk_overhead_pct);
    table.row({r.label, std::to_string(r.docs),
               std::to_string(static_cast<uint64_t>(r.set_ops_per_second)),
               std::to_string(static_cast<uint64_t>(r.get_ops_per_second)),
               std::to_string(
                   static_cast<uint64_t>(r.get_many_targets_per_second)),
               overhead});
  }
  table.row({"paper-sdbm", "-", "-", "-", "-", "10.0%"});
  table.row({"paper-gdbm", "-", "-", "-", "-", "25.0%"});
  table.rule();
  std::printf(
      "consolidated vs dbm-gdbm: set %.1fx, get %.1fx, get_many %.1fx\n",
      set_speedup, get_speedup, get_many_speedup);

  std::vector<BenchRow> rows;
  for (const EngineResult& r : results) {
    BenchRow row{r.label,
                 {{"docs", static_cast<double>(r.docs)},
                  {"set_ops_per_second", r.set_ops_per_second},
                  {"get_ops_per_second", r.get_ops_per_second},
                  {"get_many_targets_per_second",
                   r.get_many_targets_per_second},
                  {"disk_bytes", static_cast<double>(r.disk_bytes)},
                  {"disk_overhead_pct", r.disk_overhead_pct}}};
    if (r.label == "consolidated") {
      row.values.emplace_back("set_speedup_vs_gdbm", set_speedup);
      row.values.emplace_back("get_speedup_vs_gdbm", get_speedup);
      row.values.emplace_back("get_many_speedup_vs_gdbm", get_many_speedup);
    }
    rows.push_back(std::move(row));
  }
  rows.push_back({"paper-sdbm", {{"disk_overhead_pct", 10.0}}});
  rows.push_back({"paper-gdbm", {{"disk_overhead_pct", 25.0}}});
  emit_bench_artifact("props", rows, metrics.snapshot());
  return 0;
}
