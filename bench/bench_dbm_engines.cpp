// Ablation B: SDBM vs GDBM engine behavior (§3.2.1).
//
// The paper: "SDBM imposes a 1-kilobyte size limit on individual
// metadata values, has a default initial size of 8 KB and requires
// fewer steps during the server build process. GDBM imposes no size
// restrictions, has higher performance, requires a few more steps...
// and has a default initial database size of 25 KB. With both
// implementations, manual garbage collection utilities must be used to
// reclaim space."
#include <benchmark/benchmark.h>

#include "dbm/dbm.h"
#include "util/fs.h"
#include "util/random.h"

namespace davpse::dbm {
namespace {

void run_store(benchmark::State& state, Flavor flavor) {
  const size_t value_bytes = static_cast<size_t>(state.range(0));
  TempDir temp("dbmbench");
  Rng rng(77);
  std::string value = rng.ascii_blob(value_bytes);
  int file_index = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = create_dbm(
        temp.path() / ("db" + std::to_string(file_index++)), flavor);
    if (!db.ok()) state.SkipWithError("create failed");
    state.ResumeTiming();
    for (int key = 0; key < 50; ++key) {
      if (!db.value()->store("key" + std::to_string(key), value).is_ok()) {
        state.SkipWithError("store failed");
      }
    }
    if (!db.value()->sync().is_ok()) state.SkipWithError("sync failed");
  }
  state.counters["ops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 50,
      benchmark::Counter::kIsRate);
}

void BM_SdbmStore50(benchmark::State& state) {
  run_store(state, Flavor::kSdbm);
}
void BM_GdbmStore50(benchmark::State& state) {
  run_store(state, Flavor::kGdbm);
}
// 1 KB: the Table 1 metadata size (SDBM's maximum).
BENCHMARK(BM_SdbmStore50)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GdbmStore50)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

void run_fetch(benchmark::State& state, Flavor flavor) {
  TempDir temp("dbmbench");
  auto db = create_dbm(temp.path() / "db", flavor);
  if (!db.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  Rng rng(78);
  for (int key = 0; key < 50; ++key) {
    if (!db.value()->store("key" + std::to_string(key),
                           rng.ascii_blob(1024)).is_ok()) {
      state.SkipWithError("store failed");
      return;
    }
  }
  int key = 0;
  for (auto _ : state) {
    auto value = db.value()->fetch("key" + std::to_string(key % 50));
    if (!value.ok()) state.SkipWithError("fetch failed");
    benchmark::DoNotOptimize(value);
    ++key;
  }
}

void BM_SdbmFetch(benchmark::State& state) { run_fetch(state, Flavor::kSdbm); }
void BM_GdbmFetch(benchmark::State& state) { run_fetch(state, Flavor::kGdbm); }
BENCHMARK(BM_SdbmFetch)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GdbmFetch)->Unit(benchmark::kMicrosecond);

/// The mod_dav access pattern Table 1 is built from: open the
/// per-resource database, read a handful of values, close.
void run_open_query_close(benchmark::State& state, Flavor flavor) {
  TempDir temp("dbmbench");
  {
    auto db = create_dbm(temp.path() / "db", flavor);
    if (!db.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    Rng rng(79);
    for (int key = 0; key < 50; ++key) {
      if (!db.value()->store("key" + std::to_string(key),
                             rng.ascii_blob(1024)).is_ok()) {
        state.SkipWithError("store failed");
        return;
      }
    }
    if (!db.value()->sync().is_ok()) return;
  }
  for (auto _ : state) {
    auto db = open_dbm(temp.path() / "db");
    if (!db.ok()) state.SkipWithError("open failed");
    for (int key = 0; key < 5; ++key) {
      auto value = db.value()->fetch("key" + std::to_string(key));
      benchmark::DoNotOptimize(value);
    }
  }
}

void BM_SdbmOpenQueryClose(benchmark::State& state) {
  run_open_query_close(state, Flavor::kSdbm);
}
void BM_GdbmOpenQueryClose(benchmark::State& state) {
  run_open_query_close(state, Flavor::kGdbm);
}
BENCHMARK(BM_SdbmOpenQueryClose)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GdbmOpenQueryClose)->Unit(benchmark::kMicrosecond);

/// Manual garbage collection cost and benefit.
void BM_GdbmCompact(benchmark::State& state) {
  const int churn = static_cast<int>(state.range(0));
  TempDir temp("dbmbench");
  Rng rng(80);
  int file_index = 0;
  uint64_t reclaimed_total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = create_dbm(
        temp.path() / ("db" + std::to_string(file_index++)),
        Flavor::kGdbm);
    if (!db.ok()) state.SkipWithError("create failed");
    for (int i = 0; i < churn; ++i) {
      (void)db.value()->store("hot", rng.ascii_blob(1024));
    }
    uint64_t before = db.value()->file_size();
    state.ResumeTiming();
    if (!db.value()->compact().is_ok()) state.SkipWithError("compact failed");
    state.PauseTiming();
    reclaimed_total += before - db.value()->file_size();
    state.ResumeTiming();
  }
  state.counters["reclaimed_kb_per_iter"] =
      static_cast<double>(reclaimed_total) / 1024.0 /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_GdbmCompact)->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace davpse::dbm

BENCHMARK_MAIN();
