// Table 2 reproduction: "Performance of binary FTP vs HTTP/put".
//
// The paper moved 20 MB and 200 MB local files over a 150 Mbit/s LAN
// and found HTTP PUT "performed comparably with a standard binary-mode
// FTP client" — i.e. both are bandwidth-bound and neither client nor
// server adds a bottleneck (20 MB ≈ 3 s, 200 MB ≈ 30 s on their link).
//
// Here both protocols ride the same in-memory transport; the wall
// column shows raw stack overhead and the modeled column adds the
// 150 Mbit/s link cost from measured bytes/round-trips — that column
// is the apples-to-apples comparison with the paper's numbers.
#include <algorithm>

#include "bench/common.h"
#include "ftp/ftp.h"
#include "util/random.h"

namespace davpse::bench {
namespace {

struct Row {
  std::string label;
  Measurement measurement;
  double paper_seconds;
  double payload_bytes;
};

int kReps = 1;

/// Best-of-N measurement: repeats the transfer and keeps the fastest
/// run. Throughput is a property of the stack, not of whatever the
/// scheduler did during one run — best-of discards transient stalls,
/// which is what makes the perf gate (DAVPSE_T2_REPS=3) stable on a
/// shared runner. The default single rep preserves the paper's
/// single-shot methodology.
template <typename Fn>
Measurement measure_best(net::NetworkModel* model, Fn&& operation) {
  Measurement best{};
  for (int rep = 0; rep < kReps; ++rep) {
    Measurement m = measure(model, operation);
    if (rep == 0 || m.wall_seconds < best.wall_seconds) best = m;
  }
  return best;
}

}  // namespace
}  // namespace davpse::bench

int main() {
  using namespace davpse;
  using namespace davpse::bench;

  heading("Table 2: binary FTP vs HTTP PUT (20 MB and 200 MB transfers)");

  const size_t small_mb = env_u64("DAVPSE_T2_SMALL_MB", 20);
  const size_t large_mb = env_u64("DAVPSE_T2_LARGE_MB", 200);
  kReps = std::max(static_cast<int>(env_u64("DAVPSE_T2_REPS", 1)), 1);
  std::printf("Transfer sizes: %zu MB and %zu MB "
              "(override: DAVPSE_T2_SMALL_MB / DAVPSE_T2_LARGE_MB)\n\n",
              small_mb, large_mb);

  Rng rng(314);
  std::string small_payload = rng.ascii_blob(small_mb * 1024 * 1024);
  std::string large_payload = rng.ascii_blob(large_mb * 1024 * 1024);

  std::vector<Row> rows;

  // --- FTP ---------------------------------------------------------------
  {
    TempDir ftp_root("ftpbench");
    ftp::FtpServerConfig config;
    config.endpoint = unique_endpoint("bench-ftp");
    config.root = ftp_root.path();
    config.user = "bench";
    ftp::FtpServer server(config);
    if (!server.start().is_ok()) std::abort();

    ftp::FtpClient client(config.endpoint);
    net::NetworkModel model(net::LinkProfile::paper_lan());
    client.set_network_model(&model);
    if (!client.login("bench", "").is_ok()) std::abort();

    rows.push_back({"FTP STOR " + std::to_string(small_mb) + " MB",
                    measure_best(&model,
                            [&] {
                              perf_handicap();
                              if (!client.store("small.bin", small_payload)
                                       .is_ok()) {
                                std::abort();
                              }
                            }),
                    small_mb == 20 ? 3.3 : 0,
                    static_cast<double>(small_payload.size())});
    rows.push_back({"FTP STOR " + std::to_string(large_mb) + " MB",
                    measure_best(&model,
                            [&] {
                              perf_handicap();
                              if (!client.store("large.bin", large_payload)
                                       .is_ok()) {
                                std::abort();
                              }
                            }),
                    large_mb == 200 ? 30.0 : 0,
                    static_cast<double>(large_payload.size())});
  }

  // --- HTTP PUT -----------------------------------------------------------
  obs::RegistrySnapshot http_snap;
  {
    DavStack stack;
    auto client = stack.client();
    net::NetworkModel model(net::LinkProfile::paper_lan());
    client.set_network_model(&model);

    rows.push_back({"DAV PUT  " + std::to_string(small_mb) + " MB",
                    measure_best(&model,
                            [&] {
                              perf_handicap();
                              if (!client.put("/small.bin", small_payload)
                                       .is_ok()) {
                                std::abort();
                              }
                            }),
                    small_mb == 20 ? 3.0 : 0,
                    static_cast<double>(small_payload.size())});
    rows.push_back({"DAV PUT  " + std::to_string(large_mb) + " MB",
                    measure_best(&model,
                            [&] {
                              perf_handicap();
                              if (!client.put("/large.bin", large_payload)
                                       .is_ok()) {
                                std::abort();
                              }
                            }),
                    large_mb == 200 ? 30.0 : 0,
                    static_cast<double>(large_payload.size())});
    // GET back for the read direction (paper's RETR analog is implicit).
    rows.push_back({"DAV GET  " + std::to_string(small_mb) + " MB",
                    measure_best(&model,
                            [&] {
                              perf_handicap();
                              auto body = client.get("/small.bin");
                              if (!body.ok() ||
                                  body.value().size() !=
                                      small_payload.size()) {
                                std::abort();
                              }
                            }),
                    0,
                    static_cast<double>(small_payload.size())});
    http_snap = stack.metrics.snapshot();
  }

  std::vector<BenchRow> artifact_rows;
  for (const Row& row : rows) {
    // bytes/sec of raw stack throughput (no modeled link) is what the
    // perf gate compares against bench/baseline/BENCH_table2.json.
    double bytes_per_second =
        row.payload_bytes / std::max(row.measurement.wall_seconds, 1e-9);
    artifact_rows.push_back(
        {row.label,
         {{"wall_seconds", row.measurement.wall_seconds},
          {"cpu_seconds", row.measurement.cpu_seconds},
          {"modeled_seconds", row.measurement.wall_seconds +
                                  row.measurement.modeled_seconds},
          {"bytes_per_second", bytes_per_second},
          {"paper_seconds", row.paper_seconds}}});
  }
  emit_bench_artifact("table2", artifact_rows, http_snap);

  TablePrinter table({22, 12, 12, 14, 12});
  table.row({"transfer", "wall", "cpu", "modeled(150M)", "paper"});
  table.rule();
  for (const Row& row : rows) {
    table.row({row.label, seconds_cell(row.measurement.wall_seconds),
               seconds_cell(row.measurement.cpu_seconds),
               seconds_cell(row.measurement.wall_seconds +
                            row.measurement.modeled_seconds),
               row.paper_seconds > 0 ? seconds_cell(row.paper_seconds)
                                     : std::string("-")});
  }
  table.rule();

  double ftp_large = rows[1].measurement.wall_seconds +
                     rows[1].measurement.modeled_seconds;
  double put_large = rows[3].measurement.wall_seconds +
                     rows[3].measurement.modeled_seconds;
  double ratio = put_large / std::max(ftp_large, 1e-9);
  std::printf(
      "\nShape checks (paper claims):\n"
      "  - HTTP PUT is comparable to binary FTP (within ~15%%): "
      "PUT/FTP = %.2f -> %s\n"
      "  - transfers are bandwidth-bound: modeled time ~= bytes/bandwidth "
      "(raw stack wall time is a small fraction of modeled)\n",
      ratio, (ratio > 0.85 && ratio < 1.15) ? "yes" : "NO");

  // Wire bytes from the server's registry — the PUTs must account for
  // every payload byte streamed in, the GET for every byte served out.
  const unsigned long long put_bytes =
      http_snap.counter("http.server.bytes_in");
  const unsigned long long get_bytes =
      http_snap.counter("http.server.bytes_out");
  const unsigned long long expected_in =
      static_cast<unsigned long long>(small_payload.size() +
                                      large_payload.size());
  std::printf(
      "\nRegistry byte counters (HTTP side):\n"
      "  PUT payload bytes in:  %llu (payloads total %llu) -> %s\n"
      "  GET payload bytes out: %llu (small transfer %zu)\n"
      "  DAV PUT requests seen: %llu, p99 latency %.6f s\n",
      put_bytes, expected_in, put_bytes == expected_in ? "exact" : "MISMATCH",
      get_bytes, small_payload.size(),
      static_cast<unsigned long long>(
          http_snap.counter("dav.server.requests.PUT")),
      http_snap.histogram("dav.server.latency_seconds.PUT").p99);
  return 0;
}
