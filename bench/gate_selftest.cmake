# Self-test for the perf regression gate (ctest -L perf): feeds
# compare.cmake synthetic fresh/baseline artifact pairs and asserts
# that it PASSES when throughput holds and FAILS when it collapses —
# deterministic proof the gate trips, independent of machine speed.
#
# Invoked as:
#   cmake -D COMPARE_SCRIPT=<compare.cmake> -D OUT_DIR=<dir>
#         -P gate_selftest.cmake
cmake_minimum_required(VERSION 3.19)

foreach(required COMPARE_SCRIPT OUT_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "gate_selftest.cmake: missing -D ${required}=...")
  endif()
endforeach()
file(MAKE_DIRECTORY "${OUT_DIR}")

# Baseline: two rows at 1000 and 2000 ops/s.
file(WRITE "${OUT_DIR}/baseline.json" [=[
{"bench": "selftest", "rows": [
  {"label": "op one", "ops_per_second": 1000.0},
  {"label": "op two", "ops_per_second": 2000.0}
]}
]=])
# Healthy run: one row a bit slower, one a bit faster — geomean ~0.97,
# comfortably above the 0.6 tolerance.
file(WRITE "${OUT_DIR}/fresh_ok.json" [=[
{"bench": "selftest", "rows": [
  {"label": "op one", "ops_per_second": 900.0},
  {"label": "op two", "ops_per_second": 2100.0}
]}
]=])
# Regressed run: both rows at half speed — geomean 0.5, below 0.6.
file(WRITE "${OUT_DIR}/fresh_slow.json" [=[
{"bench": "selftest", "rows": [
  {"label": "op one", "ops_per_second": 500.0},
  {"label": "op two", "ops_per_second": 1000.0}
]}
]=])

# run_gate(<fresh> <expected> [exclude-regex]): expected is PASS or
# FAIL. TOLERANCE is pinned so an ambient DAVPSE_PERF_TOLERANCE cannot
# skew the fixture.
function(run_gate fresh expected)
  set(exclude_args "")
  if(ARGC GREATER 2)
    set(exclude_args "-D EXCLUDE=${ARGV2}")
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}"
                          -D FRESH=${OUT_DIR}/${fresh}
                          -D BASELINE=${OUT_DIR}/baseline.json
                          -D METRIC_KEY=ops_per_second
                          -D TOLERANCE=0.6
                          ${exclude_args}
                          -P "${COMPARE_SCRIPT}"
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(expected STREQUAL "PASS" AND NOT rc EQUAL 0)
    message(FATAL_ERROR
            "gate rejected healthy run ${fresh} (rc ${rc}):\n${out}\n${err}")
  endif()
  if(expected STREQUAL "FAIL" AND rc EQUAL 0)
    message(FATAL_ERROR
            "gate accepted regressed run ${fresh} — the perf gate "
            "cannot trip:\n${out}")
  endif()
  message(STATUS "gate ${expected} on ${fresh}: ok")
endfunction()

run_gate(fresh_ok.json PASS)
run_gate(fresh_slow.json FAIL)

# One collapsed row that is EXCLUDEd (e.g. a disk-bound row) must not
# drag down the gate; the same run without the exclusion must fail.
file(WRITE "${OUT_DIR}/fresh_mixed.json" [=[
{"bench": "selftest", "rows": [
  {"label": "op one", "ops_per_second": 200.0},
  {"label": "op two", "ops_per_second": 2000.0}
]}
]=])
run_gate(fresh_mixed.json FAIL)
run_gate(fresh_mixed.json PASS "op one")

# A fresh artifact that silently dropped a baseline row must also fail.
file(WRITE "${OUT_DIR}/fresh_missing.json" [=[
{"bench": "selftest", "rows": [
  {"label": "op one", "ops_per_second": 1000.0}
]}
]=])
run_gate(fresh_missing.json FAIL)

message(STATUS "perf gate self-test passed")
