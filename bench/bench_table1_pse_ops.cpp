// Table 1 reproduction: "Performance results of typical PSE operations
// — elapsed and CPU time".
//
// Workload (verbatim from §3.2.1): "we created 50 documents, each with
// 50 metadata of 1 KB in size and performed operations to query for
// selected data, traverse the data, copy it, and remove it."
//
// Six columns, as in the paper:
//   (a) Get all metadata on a single document, depth=0
//   (b) Get 5 selected metadata on a single document, depth=0
//   (c) Get 5 of 50 metadata on 50 objects with one depth=1 PROPFIND
//   (d) Get 5 of 50 metadata on 50 objects — one PROPFIND at a time
//   (e) COPY the 50-document hierarchy (~4.5 MB with metadata)
//   (f) DELETE the copied hierarchy
//
// The client parses responses with the DOM strategy, matching the
// paper's Xerces-DOM client whose cost dominated columns (c) and (d).
#include <algorithm>
#include <cstring>

#include "bench/common.h"
#include "util/random.h"
#include "util/strings.h"

namespace davpse::bench {
namespace {

using davclient::DavClient;
using davclient::Depth;
using davclient::PropWrite;

// Paper sizes; DAVPSE_T1_DOCS / DAVPSE_T1_PROPS shrink the corpus for
// smoke runs (kSelected is the floor for props — columns (b)–(d)
// always select 5). DAVPSE_T1_REPS repeats each measured column so the
// perf gate gets a wall-clock signal well above timer noise; reported
// elapsed/cpu stay per-repetition averages, comparable to the paper.
int kDocuments = 50;
int kPropsPerDoc = 50;
int kReps = 1;
constexpr int kPropBytes = 1024;
constexpr int kSelected = 5;

xml::QName prop_name(int index) {
  return xml::QName("http://purl.pnl.gov/ecce",
                    "meta" + std::to_string(index));
}

std::vector<xml::QName> selected_names() {
  std::vector<xml::QName> names;
  for (int i = 0; i < kSelected; ++i) names.push_back(prop_name(i));
  return names;
}

void build_corpus(DavClient& client) {
  Rng rng(2001);
  Status status = client.mkcol("/corpus");
  if (!status.is_ok()) std::abort();
  for (int d = 0; d < kDocuments; ++d) {
    std::string path = "/corpus/doc" + std::to_string(d);
    if (!client.put(path, "document body " + std::to_string(d)).is_ok()) {
      std::abort();
    }
    std::vector<PropWrite> writes;
    writes.reserve(kPropsPerDoc);
    for (int p = 0; p < kPropsPerDoc; ++p) {
      writes.push_back(
          PropWrite::of_text(prop_name(p), rng.ascii_blob(kPropBytes)));
    }
    if (!client.proppatch(path, writes).is_ok()) std::abort();
  }
}

struct PaperRow {
  const char* label;
  double paper_elapsed;
  double paper_cpu;
};

}  // namespace
}  // namespace davpse::bench

int main(int argc, char** argv) {
  using namespace davpse;
  using namespace davpse::bench;

  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  kDocuments = static_cast<int>(env_u64("DAVPSE_T1_DOCS", 50));
  kPropsPerDoc = std::max(
      static_cast<int>(env_u64("DAVPSE_T1_PROPS", 50)), kSelected);
  kReps = std::max(static_cast<int>(env_u64("DAVPSE_T1_REPS", 1)), 1);

  if (!json) {
    heading(
        "Table 1: typical PSE metadata operations (" +
        std::to_string(kDocuments) + " docs x " +
        std::to_string(kPropsPerDoc) + " x 1 KB metadata)");
    std::printf(
        "Paper testbed: Sun Enterprise 450, 150 Mbit/s LAN, Apache 1.3.11 + "
        "mod_dav 1.1 + GDBM, Xerces DOM client.\n"
        "This run: in-memory transport; 'modeled' adds the 150 Mbit/s link "
        "cost computed from measured bytes and round trips.\n\n");
  }

  DavStack stack(dbm::Flavor::kGdbm);
  auto client = stack.client(davclient::ParserKind::kDom);
  net::NetworkModel model(net::LinkProfile::paper_lan());

  build_corpus(client);
  client.set_network_model(&model);

  const auto names = selected_names();
  Measurement results[6];
  // DAV requests one repetition of each column issues — the numerator
  // of the ops/sec figures the perf gate tracks across PRs.
  const double ops_per_rep[6] = {
      1, 1, 1, static_cast<double>(kDocuments), 1, 1};

  // (a) all metadata on one document, depth 0.
  results[0] = measure(&model, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      perf_handicap();
      auto r = client.propfind_all("/corpus/doc0", Depth::kZero);
      if (!r.ok() || r.value().responses.size() != 1) std::abort();
    }
  });

  // (b) 5 selected metadata on one document, depth 0.
  results[1] = measure(&model, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      perf_handicap();
      auto r = client.propfind("/corpus/doc0", Depth::kZero, names);
      if (!r.ok() || r.value().responses.front().found.size() != 5) {
        std::abort();
      }
    }
  });

  // (c) 5 of 50 metadata on 50 objects via one depth=1 PROPFIND.
  results[2] = measure(&model, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      perf_handicap();
      auto r = client.propfind("/corpus", Depth::kOne, names);
      if (!r.ok() ||
          r.value().responses.size() != static_cast<size_t>(kDocuments) + 1) {
        std::abort();
      }
    }
  });

  // (d) 5 of 50 metadata on 50 objects, one document at a time.
  results[3] = measure(&model, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      perf_handicap();
      for (int d = 0; d < kDocuments; ++d) {
        auto r = client.propfind("/corpus/doc" + std::to_string(d),
                                 Depth::kZero, names);
        if (!r.ok()) std::abort();
      }
    }
  });

  // (e) COPY the hierarchy (server-side); distinct destinations so
  // every repetition does the same full-tree work.
  results[4] = measure(&model, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      perf_handicap();
      if (!client.copy("/corpus", "/corpus-copy" + std::to_string(rep))
               .is_ok()) {
        std::abort();
      }
    }
  });

  // (f) DELETE the copies.
  results[5] = measure(&model, [&] {
    for (int rep = 0; rep < kReps; ++rep) {
      perf_handicap();
      if (!client.remove("/corpus-copy" + std::to_string(rep)).is_ok()) {
        std::abort();
      }
    }
  });

  // Report per-repetition averages so the columns stay comparable to
  // the paper's single-shot numbers whatever DAVPSE_T1_REPS is.
  for (Measurement& m : results) {
    m.wall_seconds /= kReps;
    m.cpu_seconds /= kReps;
    m.modeled_seconds /= kReps;
  }

  static const PaperRow kPaper[6] = {
      {"(a) get all metadata, 1 doc, depth=0", 0.068, 0.04},
      {"(b) get 5 metadata, 1 doc, depth=0", 0.055, 0.03},
      {"(c) get 5 metadata, 50 docs, depth=1", 2.732, 2.04},
      {"(d) get 5 metadata, 50 docs, one-by-one", 3.032, 1.93},
      {"(e) copy hierarchy (50 docs, ~4.5 MB)", 3.482, 0.14},
      {"(f) remove hierarchy", 1.782, 0.01},
  };

  // Server-side truth for the whole run — request counts, latency
  // percentiles, and wire bytes come from the stack's registry, not
  // from bench-local bookkeeping.
  auto snap = stack.metrics.snapshot();

  std::vector<BenchRow> artifact_rows;
  for (int i = 0; i < 6; ++i) {
    // ops/sec is what the perf gate (ctest -L perf) compares against
    // bench/baseline/BENCH_table1.json across PRs.
    double ops_per_second =
        ops_per_rep[i] / std::max(results[i].wall_seconds, 1e-9);
    artifact_rows.push_back(
        {kPaper[i].label,
         {{"elapsed_seconds", results[i].wall_seconds},
          {"cpu_seconds", results[i].cpu_seconds},
          {"modeled_seconds",
           results[i].wall_seconds + results[i].modeled_seconds},
          {"ops_per_second", ops_per_second},
          {"paper_elapsed_seconds", kPaper[i].paper_elapsed},
          {"paper_cpu_seconds", kPaper[i].paper_cpu}}});
  }
  emit_bench_artifact("table1", artifact_rows, snap);

  if (json) {
    std::string metrics_json = snap.to_json();
    while (!metrics_json.empty() && metrics_json.back() == '\n') {
      metrics_json.pop_back();
    }
    std::printf("{\n  \"table1\": [\n");
    for (int i = 0; i < 6; ++i) {
      std::printf(
          "    {\"label\": \"%s\", \"elapsed_seconds\": %.9g, "
          "\"cpu_seconds\": %.9g, \"modeled_seconds\": %.9g}%s\n",
          kPaper[i].label, results[i].wall_seconds, results[i].cpu_seconds,
          results[i].wall_seconds + results[i].modeled_seconds,
          i + 1 < 6 ? "," : "");
    }
    std::printf("  ],\n  \"metrics\": %s\n}\n", metrics_json.c_str());
    return 0;
  }

  TablePrinter table({42, 12, 12, 12, 12, 12});
  table.row({"operation", "elapsed", "cpu", "modeled", "paper-elap",
             "paper-cpu"});
  table.rule();
  for (int i = 0; i < 6; ++i) {
    table.row({kPaper[i].label, seconds_cell(results[i].wall_seconds),
               seconds_cell(results[i].cpu_seconds),
               seconds_cell(results[i].wall_seconds +
                            results[i].modeled_seconds),
               seconds_cell(kPaper[i].paper_elapsed),
               seconds_cell(kPaper[i].paper_cpu)});
  }
  table.rule();
  std::printf(
      "\nShape checks (paper claims):\n"
      "  - single-object metadata ops (a,b) are far cheaper than bulk ops "
      "(c,d): %s\n"
      "  - one depth=1 PROPFIND (c) beats 50 individual requests (d): %s\n"
      "  - bulk metadata cost is dominated by client-side DOM processing "
      "(cpu/elapsed for c): %.0f%% (paper: ~75%%)\n"
      "  - server-side copy (e) spends almost no client CPU: %.0f%% "
      "(paper: ~4%%)\n",
      (results[0].wall_seconds < results[2].wall_seconds &&
       results[1].wall_seconds < results[3].wall_seconds)
          ? "yes"
          : "NO",
      results[2].wall_seconds + results[2].modeled_seconds <
              results[3].wall_seconds + results[3].modeled_seconds
          ? "yes"
          : "NO",
      100.0 * results[2].cpu_seconds /
          std::max(results[2].wall_seconds, 1e-9),
      100.0 * results[4].cpu_seconds /
          std::max(results[4].wall_seconds, 1e-9));
  print_registry_report(snap);
  return 0;
}
