// Ablation E: server-side SEARCH (DASL basicsearch) vs the client-side
// PROPFIND sweep the 2001 system had to use for discovery.
//
// The paper's agents "independently discover objects in the data
// store" by sweeping it with depth-infinity PROPFINDs and filtering
// client-side; §5 names DASL as the anticipated fix. This bench puts a
// needle (K matching molecules) in a haystack (N documents) and
// measures both strategies end to end through FormulaSearchAgent.
#include "bench/common.h"
#include "core/agents.h"
#include "core/schema_names.h"
#include "util/random.h"
#include "util/strings.h"

int main() {
  using namespace davpse;
  using namespace davpse::bench;
  using namespace davpse::ecce;
  using davclient::PropWrite;

  heading("Ablation E: DASL SEARCH vs client-side PROPFIND sweep");
  const size_t haystack = env_u64("DAVPSE_E_DOCS", 400);
  const size_t needles = env_u64("DAVPSE_E_MATCHES", 8);
  std::printf("Corpus: %zu documents with metadata, %zu matching the "
              "query (DAVPSE_E_DOCS / DAVPSE_E_MATCHES).\n\n",
              haystack, needles);

  DavStack stack;
  std::printf("Property engine: %s (DAVPSE_PROPERTY_ENGINE)\n\n",
              std::string(dav::property_engine_name(
                              stack.dav->config().property_engine))
                  .c_str());
  {
    auto seeder = stack.client();
    Rng rng(555);
    if (!seeder.mkcol("/corpus").is_ok()) std::abort();
    for (size_t i = 0; i < haystack; ++i) {
      std::string path = "/corpus/doc" + std::to_string(i);
      if (!seeder.put(path, rng.ascii_blob(512)).is_ok()) std::abort();
      bool is_needle = i < needles;
      std::vector<PropWrite> writes = {
          PropWrite::of_text(kFormulaProp,
                             is_needle ? "UO2" : "X" + std::to_string(i)),
          PropWrite::of_text(kFormatProp, "xyz"),
          PropWrite::of_text(kDescriptionProp, rng.ascii_blob(200)),
      };
      if (!seeder.proppatch(path, writes).is_ok()) std::abort();
    }
    seeder.http().reset_connection();
  }

  TablePrinter table({30, 12, 14, 12, 10});
  table.row({"strategy", "wall", "modeled(150M)", "wire", "hits"});
  table.rule();
  for (auto strategy : {FormulaSearchAgent::Strategy::kPropfindSweep,
                        FormulaSearchAgent::Strategy::kServerSearch}) {
    auto client = stack.client();
    net::NetworkModel model(net::LinkProfile::paper_lan());
    client.set_network_model(&model);
    FormulaSearchAgent agent(&client, strategy);
    size_t hits = 0;
    auto m = measure(&model, [&] {
      auto found = agent.search("/corpus", "UO2");
      if (!found.ok()) std::abort();
      hits = found.value().size();
    });
    table.row(
        {strategy == FormulaSearchAgent::Strategy::kPropfindSweep
             ? "PROPFIND sweep (client filter)"
             : "DASL SEARCH (server filter)",
         seconds_cell(m.wall_seconds),
         seconds_cell(m.wall_seconds + m.modeled_seconds),
         format_bytes(model.bytes()), std::to_string(hits)});
    if (hits != needles) std::abort();
  }
  table.rule();
  auto snap = stack.metrics.snapshot();
  std::printf(
      "\nserver-side SEARCH planning: index_queries=%llu "
      "index_candidates=%llu scanned_targets=%llu\n",
      static_cast<unsigned long long>(
          snap.counter("dav.search.index_queries")),
      static_cast<unsigned long long>(
          snap.counter("dav.search.index_candidates")),
      static_cast<unsigned long long>(
          snap.counter("dav.search.scanned_targets")));
  std::printf(
      "\nThe sweep ships metadata for every resource in scope and "
      "filters on the client; SEARCH evaluates the predicate where the "
      "data lives and returns only matches — the wire column is the "
      "whole story, and it grows with the haystack for the sweep but "
      "with the match count for SEARCH.\n");
  return 0;
}
