// Table 3 reproduction: "Ecce 1.5 vs Ecce 2.0 beta Performance Summary
// for Ecce Tools".
//
// Six tool kernels (Builder, Basis Tool, Calc Editor, Calc Viewer,
// Calc Manager, Job Launcher) run the same workload against both data
// architectures:
//   Ecce 1.5 — the OODB baseline (cache-forward client, schema
//              handshake, object faulting),
//   Ecce 2.0 — the DAV architecture of this paper.
// The workload is the paper's: a UO2·15H2O calculation (50 atoms,
// output properties up to 1.8 MB) plus a shared basis-set library.
//
// "Size (res)" proxy: bytes of model data the tool holds after
// start+load, plus (for the OODB) the cache-forward client cache —
// the architectural component of resident size. Binary/library size
// is identical across both architectures here and excluded.
#include "bench/common.h"
#include "core/dav_factory.h"
#include "core/dav_storage.h"
#include "core/oodb_factory.h"
#include "core/tools.h"
#include "core/workload.h"
#include "util/strings.h"

namespace davpse::bench {
namespace {

using namespace davpse::ecce;

constexpr const char* kProject = "benchmarks";

struct ToolResult {
  std::string name;
  double cold_start = 0;   // wall + modeled link time
  double warm_start = 0;
  double load = 0;
  uint64_t start_bytes = 0;  // wire bytes moved during cold start
  uint64_t load_bytes = 0;   // wire bytes moved during load
  size_t resident = 0;
};

struct PaperNumbers {
  const char* tool;
  double v15_cold, v15_warm, v15_load;  // Ecce 1.5
  double v20_start, v20_load;           // Ecce 2.0
};

// Values transcribed from Table 3 (NA -> 0).
constexpr PaperNumbers kPaper[6] = {
    {"Builder", 1.6, 1.2, 0.5, 1.1, 0.1},
    {"BasisTool", 5.0, 4.6, 2.14, 1.0, 0.2},
    {"Calc Editor", 2.4, 2.2, 7.6, 1.0, 0.9},
    {"Calc Viewer", 1.5, 1.1, 4.4, 0.9, 2.2},
    {"Calc Manager", 2.8, 2.7, 0.0, 2.0, 0.0},
    {"Job Launcher", 0.9, 0.8, 0.95, 0.42, 0.48},
};

void populate(CalculationFactory& factory, const Calculation& calc,
              size_t library_size) {
  if (!factory.initialize().is_ok()) std::abort();
  if (!factory.create_project(kProject).is_ok()) std::abort();
  if (!factory.save_calculation(kProject, calc).is_ok()) std::abort();
  for (const BasisSet& basis : make_basis_library(library_size)) {
    if (!factory.save_library_basis(basis).is_ok()) std::abort();
  }
}

/// Runs the six kernels against `make_factory()`; each tool gets a
/// fresh factory+session for its cold start, then a second start on
/// the same session for the warm number.
/// Times include the modeled 150 Mbit/s link cost computed from the
/// bytes and round trips each architecture actually moved — on a real
/// LAN that traffic is where the architectures differ (cache-forward
/// over-fetch and per-object chattiness vs DAV's selective fetches).
template <typename MakeFactory, typename ResidentExtra>
std::vector<ToolResult> run_tools(MakeFactory&& make_factory,
                                  ResidentExtra&& resident_extra,
                                  const std::string& calc_name) {
  std::vector<ToolResult> results;
  for (int tool_index = 0; tool_index < 6; ++tool_index) {
    auto session = make_factory();  // owns factory + connections
    net::NetworkModel model(net::LinkProfile::paper_lan());
    session->attach_model(&model);
    auto tools = make_all_tools(session->factory());
    ToolKernel& tool = *tools[tool_index];

    ToolResult result;
    result.name = tool.name();
    {
      Measurement m = measure(&model, [&] {
        if (!tool.start().is_ok()) std::abort();
      });
      result.cold_start = m.wall_seconds + m.modeled_seconds;
      result.start_bytes = model.bytes();
    }

    // Warm start: a second kernel instance over the already-warm
    // session (caches populated, connections up).
    auto warm_tools = make_all_tools(session->factory());
    {
      Measurement m = measure(&model, [&] {
        if (!warm_tools[tool_index]->start().is_ok()) std::abort();
      });
      result.warm_start = m.wall_seconds + m.modeled_seconds;
    }

    {
      Measurement m = measure(&model, [&] {
        if (!tool.load(kProject, calc_name).is_ok()) std::abort();
      });
      result.load = m.wall_seconds + m.modeled_seconds;
      result.load_bytes = model.bytes();
    }
    result.resident = tool.resident_bytes() + resident_extra(*session);
    results.push_back(result);
  }
  return results;
}

struct DavSession {
  explicit DavSession(const std::string& endpoint) {
    http::ClientConfig config;
    config.endpoint = endpoint;
    client = std::make_unique<davclient::DavClient>(config);
    storage = std::make_unique<DavStorage>(client.get());
    factory_impl = std::make_unique<DavCalculationFactory>(storage.get());
  }
  CalculationFactory* factory() { return factory_impl.get(); }
  void attach_model(net::NetworkModel* model) {
    client->set_network_model(model);
  }
  std::unique_ptr<davclient::DavClient> client;
  std::unique_ptr<DavStorage> storage;
  std::unique_ptr<DavCalculationFactory> factory_impl;
};

struct OodbSession {
  OodbSession(const std::string& endpoint, const oodb::Schema& schema) {
    oodb::OodbClientConfig config;
    config.endpoint = endpoint;
    config.cache_forward = true;
    client = std::make_unique<oodb::OodbClient>(config, schema);
    factory_impl = std::make_unique<OodbCalculationFactory>(client.get());
  }
  CalculationFactory* factory() { return factory_impl.get(); }
  void attach_model(net::NetworkModel* model) {
    client->set_network_model(model);
  }
  std::unique_ptr<oodb::OodbClient> client;
  std::unique_ptr<OodbCalculationFactory> factory_impl;
};

void print_results(const char* title,
                   const std::vector<ToolResult>& results,
                   bool is_v15) {
  std::printf("\n%s\n(times = wall + modeled 150 Mbit/s link cost)\n",
              title);
  TablePrinter table({14, 12, 12, 12, 11, 11, 10, 12, 12});
  table.row({"tool", "cold-start", "warm-start", "load(UO2)", "start-wire",
             "load-wire", "resident",
             is_v15 ? "paper-cold" : "paper-start", "paper-load"});
  table.rule();
  for (size_t i = 0; i < results.size(); ++i) {
    const ToolResult& r = results[i];
    double paper_start = is_v15 ? kPaper[i].v15_cold : kPaper[i].v20_start;
    double paper_load = is_v15 ? kPaper[i].v15_load : kPaper[i].v20_load;
    table.row({r.name, seconds_cell(r.cold_start),
               seconds_cell(r.warm_start), seconds_cell(r.load),
               format_bytes(r.start_bytes), format_bytes(r.load_bytes),
               format_bytes(r.resident), seconds_cell(paper_start),
               paper_load > 0 ? seconds_cell(paper_load)
                              : std::string("NA")});
  }
  table.rule();
}

}  // namespace
}  // namespace davpse::bench

int main() {
  using namespace davpse;
  using namespace davpse::bench;
  using namespace davpse::ecce;

  heading("Table 3: Ecce 1.5 (OODB) vs Ecce 2.0 (DAV) tool performance");
  const size_t library_size = env_u64("DAVPSE_T3_LIBRARY", 12);
  Calculation calc = make_uo2_calculation();
  std::printf(
      "Workload: UO2-15H2O (%zu atoms), %zu tasks, largest property "
      "%.1f KB; basis library of %zu sets.\n",
      calc.molecule.atoms.size(), calc.tasks.size(), 1800.0, library_size);

  // --- Ecce 1.5: OODB ------------------------------------------------------
  oodb::Schema schema = ecce_oodb_schema();
  OodbStack oodb_stack(ecce_oodb_schema());
  {
    OodbSession seeder(oodb_stack.endpoint, schema);
    populate(*seeder.factory(), calc, library_size);
  }
  auto v15 = run_tools(
      [&] { return std::make_unique<OodbSession>(oodb_stack.endpoint, schema); },
      [](OodbSession& session) { return session.client->cached_bytes(); },
      calc.name);
  print_results("Ecce 1.5 (OODB baseline, cache-forward client):", v15,
                /*is_v15=*/true);

  // --- Ecce 2.0: DAV -------------------------------------------------------
  DavStack dav_stack;
  {
    DavSession seeder(dav_stack.server->endpoint());
    populate(*seeder.factory(), calc, library_size);
  }
  auto v20 = run_tools(
      [&] {
        return std::make_unique<DavSession>(dav_stack.server->endpoint());
      },
      [](DavSession&) { return size_t{0}; }, calc.name);
  print_results("Ecce 2.0 (DAV architecture):", v20, /*is_v15=*/false);

  std::vector<BenchRow> artifact_rows;
  auto artifact_tool_rows = [&](const char* arch,
                                const std::vector<ToolResult>& results) {
    for (const ToolResult& r : results) {
      artifact_rows.push_back(
          {std::string(arch) + " " + r.name,
           {{"cold_start_seconds", r.cold_start},
            {"warm_start_seconds", r.warm_start},
            {"load_seconds", r.load},
            {"start_wire_bytes", static_cast<double>(r.start_bytes)},
            {"load_wire_bytes", static_cast<double>(r.load_bytes)},
            {"resident_bytes", static_cast<double>(r.resident)}}});
    }
  };
  artifact_tool_rows("ecce1.5", v15);
  artifact_tool_rows("ecce2.0", v20);
  emit_bench_artifact("table3", artifact_rows, dav_stack.metrics.snapshot());

  // --- shape checks ---------------------------------------------------------
  // Session cost = cold start + load. The cache-forward client front-
  // loads data movement into its start, so comparing loads alone would
  // credit the OODB for bytes it already shipped.
  int dav_session_wins = 0;
  int dav_start_wins = 0;
  for (size_t i = 0; i < 6; ++i) {
    if (v20[i].cold_start + v20[i].load <=
        (v15[i].cold_start + v15[i].load) * 1.10) {
      ++dav_session_wins;
    }
    if (v20[i].cold_start <= v15[i].cold_start * 1.10) ++dav_start_wins;
  }
  double v15_resident = 0, v20_resident = 0;
  uint64_t v15_wire = 0, v20_wire = 0;
  for (size_t i = 0; i < 6; ++i) {
    v15_resident += static_cast<double>(v15[i].resident);
    v20_resident += static_cast<double>(v20[i].resident);
    v15_wire += v15[i].start_bytes + v15[i].load_bytes;
    v20_wire += v20[i].start_bytes + v20[i].load_bytes;
  }
  std::printf(
      "\nShape checks (paper claims):\n"
      "  - \"overall performance actually improved\": DAV start+load <= "
      "OODB start+load (within 10%%) for %d/6 tools; starts alone %d/6\n"
      "  - BasisTool session much faster under DAV (paper 5.0 s -> "
      "1.0 s): OODB %.3f s vs DAV %.3f s -> %s\n"
      "  - resident data footprint is smaller under DAV (paper: every "
      "tool shrank): %.1f KB (OODB, incl. cache-forward cache) vs %.1f KB "
      "(DAV) -> %s\n"
      "  - selective access moves fewer wire bytes overall: OODB %s vs "
      "DAV %s -> %s (cache-forward over-fetch)\n",
      dav_session_wins, dav_start_wins,
      v15[1].cold_start + v15[1].load, v20[1].cold_start + v20[1].load,
      v15[1].cold_start + v15[1].load > v20[1].cold_start + v20[1].load
          ? "yes"
          : "NO",
      v15_resident / 1024.0, v20_resident / 1024.0,
      v15_resident > v20_resident ? "yes" : "NO",
      format_bytes(v15_wire).c_str(), format_bytes(v20_wire).c_str(),
      v15_wire > v20_wire ? "yes" : "NO");
  return 0;
}
