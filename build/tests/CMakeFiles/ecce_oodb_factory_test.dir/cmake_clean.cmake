file(REMOVE_RECURSE
  "CMakeFiles/ecce_oodb_factory_test.dir/ecce/oodb_factory_test.cpp.o"
  "CMakeFiles/ecce_oodb_factory_test.dir/ecce/oodb_factory_test.cpp.o.d"
  "ecce_oodb_factory_test"
  "ecce_oodb_factory_test.pdb"
  "ecce_oodb_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_oodb_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
