# Empty compiler generated dependencies file for ecce_oodb_factory_test.
# This may be replaced when dependencies are built.
