file(REMOVE_RECURSE
  "CMakeFiles/ecce_model_test.dir/ecce/model_test.cpp.o"
  "CMakeFiles/ecce_model_test.dir/ecce/model_test.cpp.o.d"
  "ecce_model_test"
  "ecce_model_test.pdb"
  "ecce_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
