# Empty compiler generated dependencies file for ecce_model_test.
# This may be replaced when dependencies are built.
