# Empty dependencies file for dav_repository_test.
# This may be replaced when dependencies are built.
