file(REMOVE_RECURSE
  "CMakeFiles/dav_repository_test.dir/dav/repository_test.cpp.o"
  "CMakeFiles/dav_repository_test.dir/dav/repository_test.cpp.o.d"
  "dav_repository_test"
  "dav_repository_test.pdb"
  "dav_repository_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
