# Empty dependencies file for dbm_test.
# This may be replaced when dependencies are built.
