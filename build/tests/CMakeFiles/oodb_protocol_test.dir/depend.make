# Empty dependencies file for oodb_protocol_test.
# This may be replaced when dependencies are built.
