file(REMOVE_RECURSE
  "CMakeFiles/oodb_protocol_test.dir/oodb/protocol_test.cpp.o"
  "CMakeFiles/oodb_protocol_test.dir/oodb/protocol_test.cpp.o.d"
  "oodb_protocol_test"
  "oodb_protocol_test.pdb"
  "oodb_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
