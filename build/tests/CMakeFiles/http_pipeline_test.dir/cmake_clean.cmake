file(REMOVE_RECURSE
  "CMakeFiles/http_pipeline_test.dir/http/pipeline_test.cpp.o"
  "CMakeFiles/http_pipeline_test.dir/http/pipeline_test.cpp.o.d"
  "http_pipeline_test"
  "http_pipeline_test.pdb"
  "http_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
