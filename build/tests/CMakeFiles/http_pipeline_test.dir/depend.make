# Empty dependencies file for http_pipeline_test.
# This may be replaced when dependencies are built.
