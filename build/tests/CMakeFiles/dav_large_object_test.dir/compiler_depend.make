# Empty compiler generated dependencies file for dav_large_object_test.
# This may be replaced when dependencies are built.
