file(REMOVE_RECURSE
  "CMakeFiles/dav_large_object_test.dir/dav/large_object_test.cpp.o"
  "CMakeFiles/dav_large_object_test.dir/dav/large_object_test.cpp.o.d"
  "dav_large_object_test"
  "dav_large_object_test.pdb"
  "dav_large_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_large_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
