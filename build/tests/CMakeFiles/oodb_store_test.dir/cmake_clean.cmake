file(REMOVE_RECURSE
  "CMakeFiles/oodb_store_test.dir/oodb/store_test.cpp.o"
  "CMakeFiles/oodb_store_test.dir/oodb/store_test.cpp.o.d"
  "oodb_store_test"
  "oodb_store_test.pdb"
  "oodb_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
