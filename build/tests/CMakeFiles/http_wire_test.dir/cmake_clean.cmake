file(REMOVE_RECURSE
  "CMakeFiles/http_wire_test.dir/http/wire_test.cpp.o"
  "CMakeFiles/http_wire_test.dir/http/wire_test.cpp.o.d"
  "http_wire_test"
  "http_wire_test.pdb"
  "http_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
