# Empty compiler generated dependencies file for http_wire_test.
# This may be replaced when dependencies are built.
