file(REMOVE_RECURSE
  "CMakeFiles/util_base64_test.dir/util/base64_test.cpp.o"
  "CMakeFiles/util_base64_test.dir/util/base64_test.cpp.o.d"
  "util_base64_test"
  "util_base64_test.pdb"
  "util_base64_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_base64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
