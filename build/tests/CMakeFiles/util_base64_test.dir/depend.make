# Empty dependencies file for util_base64_test.
# This may be replaced when dependencies are built.
