file(REMOVE_RECURSE
  "CMakeFiles/oodb_schema_test.dir/oodb/schema_test.cpp.o"
  "CMakeFiles/oodb_schema_test.dir/oodb/schema_test.cpp.o.d"
  "oodb_schema_test"
  "oodb_schema_test.pdb"
  "oodb_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
