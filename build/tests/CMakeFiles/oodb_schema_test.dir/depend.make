# Empty dependencies file for oodb_schema_test.
# This may be replaced when dependencies are built.
