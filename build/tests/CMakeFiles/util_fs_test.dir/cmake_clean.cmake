file(REMOVE_RECURSE
  "CMakeFiles/util_fs_test.dir/util/fs_test.cpp.o"
  "CMakeFiles/util_fs_test.dir/util/fs_test.cpp.o.d"
  "util_fs_test"
  "util_fs_test.pdb"
  "util_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
