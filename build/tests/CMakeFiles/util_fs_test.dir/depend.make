# Empty dependencies file for util_fs_test.
# This may be replaced when dependencies are built.
