# Empty dependencies file for ecce_caching_storage_test.
# This may be replaced when dependencies are built.
