file(REMOVE_RECURSE
  "CMakeFiles/ecce_caching_storage_test.dir/ecce/caching_storage_test.cpp.o"
  "CMakeFiles/ecce_caching_storage_test.dir/ecce/caching_storage_test.cpp.o.d"
  "ecce_caching_storage_test"
  "ecce_caching_storage_test.pdb"
  "ecce_caching_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_caching_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
