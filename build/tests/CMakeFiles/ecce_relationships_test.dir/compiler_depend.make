# Empty compiler generated dependencies file for ecce_relationships_test.
# This may be replaced when dependencies are built.
