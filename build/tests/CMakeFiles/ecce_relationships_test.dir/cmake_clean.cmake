file(REMOVE_RECURSE
  "CMakeFiles/ecce_relationships_test.dir/ecce/relationships_test.cpp.o"
  "CMakeFiles/ecce_relationships_test.dir/ecce/relationships_test.cpp.o.d"
  "ecce_relationships_test"
  "ecce_relationships_test.pdb"
  "ecce_relationships_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_relationships_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
