file(REMOVE_RECURSE
  "CMakeFiles/http_auth_test.dir/http/auth_test.cpp.o"
  "CMakeFiles/http_auth_test.dir/http/auth_test.cpp.o.d"
  "http_auth_test"
  "http_auth_test.pdb"
  "http_auth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
