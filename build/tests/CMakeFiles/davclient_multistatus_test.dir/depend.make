# Empty dependencies file for davclient_multistatus_test.
# This may be replaced when dependencies are built.
