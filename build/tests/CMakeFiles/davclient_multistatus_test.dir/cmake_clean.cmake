file(REMOVE_RECURSE
  "CMakeFiles/davclient_multistatus_test.dir/davclient/multistatus_test.cpp.o"
  "CMakeFiles/davclient_multistatus_test.dir/davclient/multistatus_test.cpp.o.d"
  "davclient_multistatus_test"
  "davclient_multistatus_test.pdb"
  "davclient_multistatus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davclient_multistatus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
