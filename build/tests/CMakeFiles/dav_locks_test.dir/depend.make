# Empty dependencies file for dav_locks_test.
# This may be replaced when dependencies are built.
