file(REMOVE_RECURSE
  "CMakeFiles/dav_locks_test.dir/dav/locks_test.cpp.o"
  "CMakeFiles/dav_locks_test.dir/dav/locks_test.cpp.o.d"
  "dav_locks_test"
  "dav_locks_test.pdb"
  "dav_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
