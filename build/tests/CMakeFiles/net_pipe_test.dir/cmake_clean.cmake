file(REMOVE_RECURSE
  "CMakeFiles/net_pipe_test.dir/net/pipe_test.cpp.o"
  "CMakeFiles/net_pipe_test.dir/net/pipe_test.cpp.o.d"
  "net_pipe_test"
  "net_pipe_test.pdb"
  "net_pipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_pipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
