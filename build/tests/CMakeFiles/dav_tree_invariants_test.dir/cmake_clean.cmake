file(REMOVE_RECURSE
  "CMakeFiles/dav_tree_invariants_test.dir/dav/tree_invariants_test.cpp.o"
  "CMakeFiles/dav_tree_invariants_test.dir/dav/tree_invariants_test.cpp.o.d"
  "dav_tree_invariants_test"
  "dav_tree_invariants_test.pdb"
  "dav_tree_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_tree_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
