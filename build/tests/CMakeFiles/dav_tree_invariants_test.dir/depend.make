# Empty dependencies file for dav_tree_invariants_test.
# This may be replaced when dependencies are built.
