# Empty compiler generated dependencies file for dav_server_test.
# This may be replaced when dependencies are built.
