file(REMOVE_RECURSE
  "CMakeFiles/dav_server_test.dir/dav/server_test.cpp.o"
  "CMakeFiles/dav_server_test.dir/dav/server_test.cpp.o.d"
  "dav_server_test"
  "dav_server_test.pdb"
  "dav_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
