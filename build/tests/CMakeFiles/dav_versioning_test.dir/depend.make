# Empty dependencies file for dav_versioning_test.
# This may be replaced when dependencies are built.
