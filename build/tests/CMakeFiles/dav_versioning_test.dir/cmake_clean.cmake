file(REMOVE_RECURSE
  "CMakeFiles/dav_versioning_test.dir/dav/versioning_test.cpp.o"
  "CMakeFiles/dav_versioning_test.dir/dav/versioning_test.cpp.o.d"
  "dav_versioning_test"
  "dav_versioning_test.pdb"
  "dav_versioning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_versioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
