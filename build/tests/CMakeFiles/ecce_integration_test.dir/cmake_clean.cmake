file(REMOVE_RECURSE
  "CMakeFiles/ecce_integration_test.dir/ecce/integration_test.cpp.o"
  "CMakeFiles/ecce_integration_test.dir/ecce/integration_test.cpp.o.d"
  "ecce_integration_test"
  "ecce_integration_test.pdb"
  "ecce_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
