
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ecce/integration_test.cpp" "tests/CMakeFiles/ecce_integration_test.dir/ecce/integration_test.cpp.o" "gcc" "tests/CMakeFiles/ecce_integration_test.dir/ecce/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/davpse_ecce.dir/DependInfo.cmake"
  "/root/repo/build/src/dav/CMakeFiles/davpse_dav.dir/DependInfo.cmake"
  "/root/repo/build/src/davclient/CMakeFiles/davpse_davclient.dir/DependInfo.cmake"
  "/root/repo/build/src/oodb/CMakeFiles/davpse_oodb.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/davpse_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dbm/CMakeFiles/davpse_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/davpse_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/davpse_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/davpse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
