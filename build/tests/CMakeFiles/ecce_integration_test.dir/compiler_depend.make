# Empty compiler generated dependencies file for ecce_integration_test.
# This may be replaced when dependencies are built.
