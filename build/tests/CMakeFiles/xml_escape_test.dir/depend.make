# Empty dependencies file for xml_escape_test.
# This may be replaced when dependencies are built.
