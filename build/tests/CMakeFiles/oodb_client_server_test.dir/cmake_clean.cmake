file(REMOVE_RECURSE
  "CMakeFiles/oodb_client_server_test.dir/oodb/client_server_test.cpp.o"
  "CMakeFiles/oodb_client_server_test.dir/oodb/client_server_test.cpp.o.d"
  "oodb_client_server_test"
  "oodb_client_server_test.pdb"
  "oodb_client_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_client_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
