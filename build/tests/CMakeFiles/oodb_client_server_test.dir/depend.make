# Empty dependencies file for oodb_client_server_test.
# This may be replaced when dependencies are built.
