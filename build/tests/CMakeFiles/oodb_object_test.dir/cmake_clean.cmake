file(REMOVE_RECURSE
  "CMakeFiles/oodb_object_test.dir/oodb/object_test.cpp.o"
  "CMakeFiles/oodb_object_test.dir/oodb/object_test.cpp.o.d"
  "oodb_object_test"
  "oodb_object_test.pdb"
  "oodb_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
