# Empty dependencies file for oodb_object_test.
# This may be replaced when dependencies are built.
