file(REMOVE_RECURSE
  "CMakeFiles/http_server_test.dir/http/server_test.cpp.o"
  "CMakeFiles/http_server_test.dir/http/server_test.cpp.o.d"
  "http_server_test"
  "http_server_test.pdb"
  "http_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
