# Empty compiler generated dependencies file for dav_search_test.
# This may be replaced when dependencies are built.
