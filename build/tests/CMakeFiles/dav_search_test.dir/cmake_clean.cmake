file(REMOVE_RECURSE
  "CMakeFiles/dav_search_test.dir/dav/search_test.cpp.o"
  "CMakeFiles/dav_search_test.dir/dav/search_test.cpp.o.d"
  "dav_search_test"
  "dav_search_test.pdb"
  "dav_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
