file(REMOVE_RECURSE
  "CMakeFiles/dav_dynamic_props_test.dir/dav/dynamic_props_test.cpp.o"
  "CMakeFiles/dav_dynamic_props_test.dir/dav/dynamic_props_test.cpp.o.d"
  "dav_dynamic_props_test"
  "dav_dynamic_props_test.pdb"
  "dav_dynamic_props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_dynamic_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
