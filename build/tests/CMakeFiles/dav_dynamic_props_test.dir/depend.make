# Empty dependencies file for dav_dynamic_props_test.
# This may be replaced when dependencies are built.
