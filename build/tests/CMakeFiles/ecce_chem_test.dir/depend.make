# Empty dependencies file for ecce_chem_test.
# This may be replaced when dependencies are built.
