file(REMOVE_RECURSE
  "CMakeFiles/ecce_chem_test.dir/ecce/chem_test.cpp.o"
  "CMakeFiles/ecce_chem_test.dir/ecce/chem_test.cpp.o.d"
  "ecce_chem_test"
  "ecce_chem_test.pdb"
  "ecce_chem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_chem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
