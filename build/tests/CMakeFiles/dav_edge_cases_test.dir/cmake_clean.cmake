file(REMOVE_RECURSE
  "CMakeFiles/dav_edge_cases_test.dir/dav/edge_cases_test.cpp.o"
  "CMakeFiles/dav_edge_cases_test.dir/dav/edge_cases_test.cpp.o.d"
  "dav_edge_cases_test"
  "dav_edge_cases_test.pdb"
  "dav_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
