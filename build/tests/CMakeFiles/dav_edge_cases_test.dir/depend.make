# Empty dependencies file for dav_edge_cases_test.
# This may be replaced when dependencies are built.
