# Empty compiler generated dependencies file for ecce_dav_factory_test.
# This may be replaced when dependencies are built.
