file(REMOVE_RECURSE
  "CMakeFiles/ecce_dav_factory_test.dir/ecce/dav_factory_test.cpp.o"
  "CMakeFiles/ecce_dav_factory_test.dir/ecce/dav_factory_test.cpp.o.d"
  "ecce_dav_factory_test"
  "ecce_dav_factory_test.pdb"
  "ecce_dav_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecce_dav_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
