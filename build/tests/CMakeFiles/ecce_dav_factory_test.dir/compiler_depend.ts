# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ecce_dav_factory_test.
