# Empty dependencies file for bench_table1_pse_ops.
# This may be replaced when dependencies are built.
