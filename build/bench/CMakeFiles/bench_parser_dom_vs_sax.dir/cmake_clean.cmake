file(REMOVE_RECURSE
  "CMakeFiles/bench_parser_dom_vs_sax.dir/bench_parser_dom_vs_sax.cpp.o"
  "CMakeFiles/bench_parser_dom_vs_sax.dir/bench_parser_dom_vs_sax.cpp.o.d"
  "bench_parser_dom_vs_sax"
  "bench_parser_dom_vs_sax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parser_dom_vs_sax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
