# Empty compiler generated dependencies file for bench_parser_dom_vs_sax.
# This may be replaced when dependencies are built.
