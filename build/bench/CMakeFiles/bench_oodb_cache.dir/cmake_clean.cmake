file(REMOVE_RECURSE
  "CMakeFiles/bench_oodb_cache.dir/bench_oodb_cache.cpp.o"
  "CMakeFiles/bench_oodb_cache.dir/bench_oodb_cache.cpp.o.d"
  "bench_oodb_cache"
  "bench_oodb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oodb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
