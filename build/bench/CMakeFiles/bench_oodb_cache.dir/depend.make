# Empty dependencies file for bench_oodb_cache.
# This may be replaced when dependencies are built.
