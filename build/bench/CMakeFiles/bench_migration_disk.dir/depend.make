# Empty dependencies file for bench_migration_disk.
# This may be replaced when dependencies are built.
