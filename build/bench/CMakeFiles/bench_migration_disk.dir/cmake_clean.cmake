file(REMOVE_RECURSE
  "CMakeFiles/bench_migration_disk.dir/bench_migration_disk.cpp.o"
  "CMakeFiles/bench_migration_disk.dir/bench_migration_disk.cpp.o.d"
  "bench_migration_disk"
  "bench_migration_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_migration_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
