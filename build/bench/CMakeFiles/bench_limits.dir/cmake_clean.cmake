file(REMOVE_RECURSE
  "CMakeFiles/bench_limits.dir/bench_limits.cpp.o"
  "CMakeFiles/bench_limits.dir/bench_limits.cpp.o.d"
  "bench_limits"
  "bench_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
