# Empty dependencies file for bench_table3_ecce_tools.
# This may be replaced when dependencies are built.
