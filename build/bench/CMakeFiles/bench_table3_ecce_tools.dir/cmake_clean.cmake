file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ecce_tools.dir/bench_table3_ecce_tools.cpp.o"
  "CMakeFiles/bench_table3_ecce_tools.dir/bench_table3_ecce_tools.cpp.o.d"
  "bench_table3_ecce_tools"
  "bench_table3_ecce_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ecce_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
