file(REMOVE_RECURSE
  "CMakeFiles/bench_dbm_engines.dir/bench_dbm_engines.cpp.o"
  "CMakeFiles/bench_dbm_engines.dir/bench_dbm_engines.cpp.o.d"
  "bench_dbm_engines"
  "bench_dbm_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbm_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
