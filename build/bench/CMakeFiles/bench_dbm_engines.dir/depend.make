# Empty dependencies file for bench_dbm_engines.
# This may be replaced when dependencies are built.
