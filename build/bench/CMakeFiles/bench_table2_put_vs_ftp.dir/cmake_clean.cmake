file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_put_vs_ftp.dir/bench_table2_put_vs_ftp.cpp.o"
  "CMakeFiles/bench_table2_put_vs_ftp.dir/bench_table2_put_vs_ftp.cpp.o.d"
  "bench_table2_put_vs_ftp"
  "bench_table2_put_vs_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_put_vs_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
