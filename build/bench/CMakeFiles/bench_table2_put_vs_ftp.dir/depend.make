# Empty dependencies file for bench_table2_put_vs_ftp.
# This may be replaced when dependencies are built.
