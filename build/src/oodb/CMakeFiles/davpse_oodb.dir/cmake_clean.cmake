file(REMOVE_RECURSE
  "CMakeFiles/davpse_oodb.dir/client.cpp.o"
  "CMakeFiles/davpse_oodb.dir/client.cpp.o.d"
  "CMakeFiles/davpse_oodb.dir/object.cpp.o"
  "CMakeFiles/davpse_oodb.dir/object.cpp.o.d"
  "CMakeFiles/davpse_oodb.dir/protocol.cpp.o"
  "CMakeFiles/davpse_oodb.dir/protocol.cpp.o.d"
  "CMakeFiles/davpse_oodb.dir/schema.cpp.o"
  "CMakeFiles/davpse_oodb.dir/schema.cpp.o.d"
  "CMakeFiles/davpse_oodb.dir/server.cpp.o"
  "CMakeFiles/davpse_oodb.dir/server.cpp.o.d"
  "CMakeFiles/davpse_oodb.dir/store.cpp.o"
  "CMakeFiles/davpse_oodb.dir/store.cpp.o.d"
  "libdavpse_oodb.a"
  "libdavpse_oodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_oodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
