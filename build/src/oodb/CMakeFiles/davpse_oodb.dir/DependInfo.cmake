
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oodb/client.cpp" "src/oodb/CMakeFiles/davpse_oodb.dir/client.cpp.o" "gcc" "src/oodb/CMakeFiles/davpse_oodb.dir/client.cpp.o.d"
  "/root/repo/src/oodb/object.cpp" "src/oodb/CMakeFiles/davpse_oodb.dir/object.cpp.o" "gcc" "src/oodb/CMakeFiles/davpse_oodb.dir/object.cpp.o.d"
  "/root/repo/src/oodb/protocol.cpp" "src/oodb/CMakeFiles/davpse_oodb.dir/protocol.cpp.o" "gcc" "src/oodb/CMakeFiles/davpse_oodb.dir/protocol.cpp.o.d"
  "/root/repo/src/oodb/schema.cpp" "src/oodb/CMakeFiles/davpse_oodb.dir/schema.cpp.o" "gcc" "src/oodb/CMakeFiles/davpse_oodb.dir/schema.cpp.o.d"
  "/root/repo/src/oodb/server.cpp" "src/oodb/CMakeFiles/davpse_oodb.dir/server.cpp.o" "gcc" "src/oodb/CMakeFiles/davpse_oodb.dir/server.cpp.o.d"
  "/root/repo/src/oodb/store.cpp" "src/oodb/CMakeFiles/davpse_oodb.dir/store.cpp.o" "gcc" "src/oodb/CMakeFiles/davpse_oodb.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/davpse_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/davpse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
