file(REMOVE_RECURSE
  "libdavpse_oodb.a"
)
