# Empty dependencies file for davpse_oodb.
# This may be replaced when dependencies are built.
