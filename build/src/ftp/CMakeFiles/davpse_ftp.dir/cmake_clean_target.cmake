file(REMOVE_RECURSE
  "libdavpse_ftp.a"
)
