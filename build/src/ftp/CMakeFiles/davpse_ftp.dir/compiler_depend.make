# Empty compiler generated dependencies file for davpse_ftp.
# This may be replaced when dependencies are built.
