file(REMOVE_RECURSE
  "CMakeFiles/davpse_ftp.dir/ftp.cpp.o"
  "CMakeFiles/davpse_ftp.dir/ftp.cpp.o.d"
  "libdavpse_ftp.a"
  "libdavpse_ftp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_ftp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
