# Empty compiler generated dependencies file for davpse_net.
# This may be replaced when dependencies are built.
