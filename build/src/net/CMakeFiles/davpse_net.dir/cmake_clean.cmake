file(REMOVE_RECURSE
  "CMakeFiles/davpse_net.dir/network.cpp.o"
  "CMakeFiles/davpse_net.dir/network.cpp.o.d"
  "CMakeFiles/davpse_net.dir/pipe.cpp.o"
  "CMakeFiles/davpse_net.dir/pipe.cpp.o.d"
  "CMakeFiles/davpse_net.dir/stream.cpp.o"
  "CMakeFiles/davpse_net.dir/stream.cpp.o.d"
  "libdavpse_net.a"
  "libdavpse_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
