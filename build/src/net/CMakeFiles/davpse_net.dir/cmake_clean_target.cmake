file(REMOVE_RECURSE
  "libdavpse_net.a"
)
