file(REMOVE_RECURSE
  "CMakeFiles/davpse_util.dir/base64.cpp.o"
  "CMakeFiles/davpse_util.dir/base64.cpp.o.d"
  "CMakeFiles/davpse_util.dir/clock.cpp.o"
  "CMakeFiles/davpse_util.dir/clock.cpp.o.d"
  "CMakeFiles/davpse_util.dir/fs.cpp.o"
  "CMakeFiles/davpse_util.dir/fs.cpp.o.d"
  "CMakeFiles/davpse_util.dir/log.cpp.o"
  "CMakeFiles/davpse_util.dir/log.cpp.o.d"
  "CMakeFiles/davpse_util.dir/status.cpp.o"
  "CMakeFiles/davpse_util.dir/status.cpp.o.d"
  "CMakeFiles/davpse_util.dir/strings.cpp.o"
  "CMakeFiles/davpse_util.dir/strings.cpp.o.d"
  "CMakeFiles/davpse_util.dir/uri.cpp.o"
  "CMakeFiles/davpse_util.dir/uri.cpp.o.d"
  "libdavpse_util.a"
  "libdavpse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
