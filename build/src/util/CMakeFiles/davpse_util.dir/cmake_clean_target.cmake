file(REMOVE_RECURSE
  "libdavpse_util.a"
)
