# Empty dependencies file for davpse_util.
# This may be replaced when dependencies are built.
