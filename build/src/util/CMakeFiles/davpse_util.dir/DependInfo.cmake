
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/base64.cpp" "src/util/CMakeFiles/davpse_util.dir/base64.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/base64.cpp.o.d"
  "/root/repo/src/util/clock.cpp" "src/util/CMakeFiles/davpse_util.dir/clock.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/clock.cpp.o.d"
  "/root/repo/src/util/fs.cpp" "src/util/CMakeFiles/davpse_util.dir/fs.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/fs.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/davpse_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/log.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/davpse_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/status.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/davpse_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/uri.cpp" "src/util/CMakeFiles/davpse_util.dir/uri.cpp.o" "gcc" "src/util/CMakeFiles/davpse_util.dir/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
