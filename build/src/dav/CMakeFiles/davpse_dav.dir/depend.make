# Empty dependencies file for davpse_dav.
# This may be replaced when dependencies are built.
