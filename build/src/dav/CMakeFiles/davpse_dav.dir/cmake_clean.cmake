file(REMOVE_RECURSE
  "CMakeFiles/davpse_dav.dir/dynamic_props.cpp.o"
  "CMakeFiles/davpse_dav.dir/dynamic_props.cpp.o.d"
  "CMakeFiles/davpse_dav.dir/locks.cpp.o"
  "CMakeFiles/davpse_dav.dir/locks.cpp.o.d"
  "CMakeFiles/davpse_dav.dir/props.cpp.o"
  "CMakeFiles/davpse_dav.dir/props.cpp.o.d"
  "CMakeFiles/davpse_dav.dir/repository.cpp.o"
  "CMakeFiles/davpse_dav.dir/repository.cpp.o.d"
  "CMakeFiles/davpse_dav.dir/search.cpp.o"
  "CMakeFiles/davpse_dav.dir/search.cpp.o.d"
  "CMakeFiles/davpse_dav.dir/server.cpp.o"
  "CMakeFiles/davpse_dav.dir/server.cpp.o.d"
  "libdavpse_dav.a"
  "libdavpse_dav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_dav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
