
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dav/dynamic_props.cpp" "src/dav/CMakeFiles/davpse_dav.dir/dynamic_props.cpp.o" "gcc" "src/dav/CMakeFiles/davpse_dav.dir/dynamic_props.cpp.o.d"
  "/root/repo/src/dav/locks.cpp" "src/dav/CMakeFiles/davpse_dav.dir/locks.cpp.o" "gcc" "src/dav/CMakeFiles/davpse_dav.dir/locks.cpp.o.d"
  "/root/repo/src/dav/props.cpp" "src/dav/CMakeFiles/davpse_dav.dir/props.cpp.o" "gcc" "src/dav/CMakeFiles/davpse_dav.dir/props.cpp.o.d"
  "/root/repo/src/dav/repository.cpp" "src/dav/CMakeFiles/davpse_dav.dir/repository.cpp.o" "gcc" "src/dav/CMakeFiles/davpse_dav.dir/repository.cpp.o.d"
  "/root/repo/src/dav/search.cpp" "src/dav/CMakeFiles/davpse_dav.dir/search.cpp.o" "gcc" "src/dav/CMakeFiles/davpse_dav.dir/search.cpp.o.d"
  "/root/repo/src/dav/server.cpp" "src/dav/CMakeFiles/davpse_dav.dir/server.cpp.o" "gcc" "src/dav/CMakeFiles/davpse_dav.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbm/CMakeFiles/davpse_dbm.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/davpse_http.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/davpse_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/davpse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/davpse_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
