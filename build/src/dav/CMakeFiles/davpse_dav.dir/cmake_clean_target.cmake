file(REMOVE_RECURSE
  "libdavpse_dav.a"
)
