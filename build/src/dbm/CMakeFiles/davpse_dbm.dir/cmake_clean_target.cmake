file(REMOVE_RECURSE
  "libdavpse_dbm.a"
)
