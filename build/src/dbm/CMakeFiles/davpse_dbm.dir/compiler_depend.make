# Empty compiler generated dependencies file for davpse_dbm.
# This may be replaced when dependencies are built.
