file(REMOVE_RECURSE
  "CMakeFiles/davpse_dbm.dir/dbm.cpp.o"
  "CMakeFiles/davpse_dbm.dir/dbm.cpp.o.d"
  "libdavpse_dbm.a"
  "libdavpse_dbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_dbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
