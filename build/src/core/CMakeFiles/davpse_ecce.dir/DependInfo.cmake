
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agents.cpp" "src/core/CMakeFiles/davpse_ecce.dir/agents.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/agents.cpp.o.d"
  "/root/repo/src/core/caching_storage.cpp" "src/core/CMakeFiles/davpse_ecce.dir/caching_storage.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/caching_storage.cpp.o.d"
  "/root/repo/src/core/chem.cpp" "src/core/CMakeFiles/davpse_ecce.dir/chem.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/chem.cpp.o.d"
  "/root/repo/src/core/dav_factory.cpp" "src/core/CMakeFiles/davpse_ecce.dir/dav_factory.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/dav_factory.cpp.o.d"
  "/root/repo/src/core/dav_storage.cpp" "src/core/CMakeFiles/davpse_ecce.dir/dav_storage.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/dav_storage.cpp.o.d"
  "/root/repo/src/core/migrate.cpp" "src/core/CMakeFiles/davpse_ecce.dir/migrate.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/migrate.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/davpse_ecce.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/model.cpp.o.d"
  "/root/repo/src/core/oodb_factory.cpp" "src/core/CMakeFiles/davpse_ecce.dir/oodb_factory.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/oodb_factory.cpp.o.d"
  "/root/repo/src/core/relationships.cpp" "src/core/CMakeFiles/davpse_ecce.dir/relationships.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/relationships.cpp.o.d"
  "/root/repo/src/core/tools.cpp" "src/core/CMakeFiles/davpse_ecce.dir/tools.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/tools.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/davpse_ecce.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/davpse_ecce.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/davclient/CMakeFiles/davpse_davclient.dir/DependInfo.cmake"
  "/root/repo/build/src/oodb/CMakeFiles/davpse_oodb.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/davpse_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/davpse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/davpse_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/davpse_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
