# Empty compiler generated dependencies file for davpse_ecce.
# This may be replaced when dependencies are built.
