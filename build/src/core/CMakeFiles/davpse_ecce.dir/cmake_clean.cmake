file(REMOVE_RECURSE
  "CMakeFiles/davpse_ecce.dir/agents.cpp.o"
  "CMakeFiles/davpse_ecce.dir/agents.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/caching_storage.cpp.o"
  "CMakeFiles/davpse_ecce.dir/caching_storage.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/chem.cpp.o"
  "CMakeFiles/davpse_ecce.dir/chem.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/dav_factory.cpp.o"
  "CMakeFiles/davpse_ecce.dir/dav_factory.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/dav_storage.cpp.o"
  "CMakeFiles/davpse_ecce.dir/dav_storage.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/migrate.cpp.o"
  "CMakeFiles/davpse_ecce.dir/migrate.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/model.cpp.o"
  "CMakeFiles/davpse_ecce.dir/model.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/oodb_factory.cpp.o"
  "CMakeFiles/davpse_ecce.dir/oodb_factory.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/relationships.cpp.o"
  "CMakeFiles/davpse_ecce.dir/relationships.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/tools.cpp.o"
  "CMakeFiles/davpse_ecce.dir/tools.cpp.o.d"
  "CMakeFiles/davpse_ecce.dir/workload.cpp.o"
  "CMakeFiles/davpse_ecce.dir/workload.cpp.o.d"
  "libdavpse_ecce.a"
  "libdavpse_ecce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_ecce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
