file(REMOVE_RECURSE
  "libdavpse_ecce.a"
)
