file(REMOVE_RECURSE
  "libdavpse_davclient.a"
)
