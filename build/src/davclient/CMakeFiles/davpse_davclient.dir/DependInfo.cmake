
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/davclient/client.cpp" "src/davclient/CMakeFiles/davpse_davclient.dir/client.cpp.o" "gcc" "src/davclient/CMakeFiles/davpse_davclient.dir/client.cpp.o.d"
  "/root/repo/src/davclient/multistatus.cpp" "src/davclient/CMakeFiles/davpse_davclient.dir/multistatus.cpp.o" "gcc" "src/davclient/CMakeFiles/davpse_davclient.dir/multistatus.cpp.o.d"
  "/root/repo/src/davclient/search.cpp" "src/davclient/CMakeFiles/davpse_davclient.dir/search.cpp.o" "gcc" "src/davclient/CMakeFiles/davpse_davclient.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/davpse_http.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/davpse_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/davpse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/davpse_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
