file(REMOVE_RECURSE
  "CMakeFiles/davpse_davclient.dir/client.cpp.o"
  "CMakeFiles/davpse_davclient.dir/client.cpp.o.d"
  "CMakeFiles/davpse_davclient.dir/multistatus.cpp.o"
  "CMakeFiles/davpse_davclient.dir/multistatus.cpp.o.d"
  "CMakeFiles/davpse_davclient.dir/search.cpp.o"
  "CMakeFiles/davpse_davclient.dir/search.cpp.o.d"
  "libdavpse_davclient.a"
  "libdavpse_davclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_davclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
