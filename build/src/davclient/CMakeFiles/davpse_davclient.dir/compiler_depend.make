# Empty compiler generated dependencies file for davpse_davclient.
# This may be replaced when dependencies are built.
