# Empty dependencies file for davpse_xml.
# This may be replaced when dependencies are built.
