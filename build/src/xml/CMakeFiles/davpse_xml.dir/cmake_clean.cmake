file(REMOVE_RECURSE
  "CMakeFiles/davpse_xml.dir/dom.cpp.o"
  "CMakeFiles/davpse_xml.dir/dom.cpp.o.d"
  "CMakeFiles/davpse_xml.dir/escape.cpp.o"
  "CMakeFiles/davpse_xml.dir/escape.cpp.o.d"
  "CMakeFiles/davpse_xml.dir/sax.cpp.o"
  "CMakeFiles/davpse_xml.dir/sax.cpp.o.d"
  "CMakeFiles/davpse_xml.dir/writer.cpp.o"
  "CMakeFiles/davpse_xml.dir/writer.cpp.o.d"
  "libdavpse_xml.a"
  "libdavpse_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
