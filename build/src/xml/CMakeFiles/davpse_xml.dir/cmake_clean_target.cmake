file(REMOVE_RECURSE
  "libdavpse_xml.a"
)
