file(REMOVE_RECURSE
  "CMakeFiles/davpse_http.dir/auth.cpp.o"
  "CMakeFiles/davpse_http.dir/auth.cpp.o.d"
  "CMakeFiles/davpse_http.dir/client.cpp.o"
  "CMakeFiles/davpse_http.dir/client.cpp.o.d"
  "CMakeFiles/davpse_http.dir/message.cpp.o"
  "CMakeFiles/davpse_http.dir/message.cpp.o.d"
  "CMakeFiles/davpse_http.dir/server.cpp.o"
  "CMakeFiles/davpse_http.dir/server.cpp.o.d"
  "CMakeFiles/davpse_http.dir/wire.cpp.o"
  "CMakeFiles/davpse_http.dir/wire.cpp.o.d"
  "libdavpse_http.a"
  "libdavpse_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/davpse_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
