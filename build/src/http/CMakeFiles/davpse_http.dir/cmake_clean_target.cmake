file(REMOVE_RECURSE
  "libdavpse_http.a"
)
