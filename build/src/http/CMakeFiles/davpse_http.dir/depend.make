# Empty dependencies file for davpse_http.
# This may be replaced when dependencies are built.
