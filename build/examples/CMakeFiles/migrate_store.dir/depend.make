# Empty dependencies file for migrate_store.
# This may be replaced when dependencies are built.
