file(REMOVE_RECURSE
  "CMakeFiles/migrate_store.dir/migrate_store.cpp.o"
  "CMakeFiles/migrate_store.dir/migrate_store.cpp.o.d"
  "migrate_store"
  "migrate_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
