# Empty dependencies file for calculation_workflow.
# This may be replaced when dependencies are built.
