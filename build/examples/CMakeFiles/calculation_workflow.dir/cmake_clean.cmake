file(REMOVE_RECURSE
  "CMakeFiles/calculation_workflow.dir/calculation_workflow.cpp.o"
  "CMakeFiles/calculation_workflow.dir/calculation_workflow.cpp.o.d"
  "calculation_workflow"
  "calculation_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculation_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
