# Empty dependencies file for dav_browser.
# This may be replaced when dependencies are built.
