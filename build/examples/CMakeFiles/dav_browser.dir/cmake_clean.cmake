file(REMOVE_RECURSE
  "CMakeFiles/dav_browser.dir/dav_browser.cpp.o"
  "CMakeFiles/dav_browser.dir/dav_browser.cpp.o.d"
  "dav_browser"
  "dav_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dav_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
