# Empty dependencies file for notebook_integration.
# This may be replaced when dependencies are built.
