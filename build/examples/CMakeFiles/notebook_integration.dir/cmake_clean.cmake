file(REMOVE_RECURSE
  "CMakeFiles/notebook_integration.dir/notebook_integration.cpp.o"
  "CMakeFiles/notebook_integration.dir/notebook_integration.cpp.o.d"
  "notebook_integration"
  "notebook_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notebook_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
