# Empty compiler generated dependencies file for feature_agent.
# This may be replaced when dependencies are built.
