file(REMOVE_RECURSE
  "CMakeFiles/feature_agent.dir/feature_agent.cpp.o"
  "CMakeFiles/feature_agent.dir/feature_agent.cpp.o.d"
  "feature_agent"
  "feature_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
