// PropertyStore adapter over dbm::ConsolidatedStore: all resources'
// dead properties live in one WAL-backed sharded store under
// <root>/.DAV/propstore instead of one DBM file per resource. Property
// keys reuse PropertyDb's "<ns>\n<local>" encoding, so the two engines
// disagree only about placement, never about content.
//
// This engine maintains the property→resource secondary index, which
// is what lets DASL SEARCH stop scanning (supports_index() == true).
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "dav/property_store.h"
#include "dbm/consolidated.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace davpse::dav {

class ConsolidatedPropertyStore final : public PropertyStore {
 public:
  /// Opens (or recovers) the store under <root>/.DAV/propstore.
  /// `reads`/`writes` mirror the dav.props.db_reads/db_writes counters
  /// the DBM engine reports, keeping engine comparisons one metric.
  ConsolidatedPropertyStore(const std::filesystem::path& root,
                            obs::Counter* reads = nullptr,
                            obs::Counter* writes = nullptr,
                            dbm::ConsolidatedOptions options = {});

  Result<PropertyValue> get(const std::string& path,
                            const xml::QName& name) const override;
  Result<PropertyList> get_all(const std::string& path) const override;
  Result<std::vector<xml::QName>> names(
      const std::string& path) const override;
  Status set(const std::string& path, const PropertyList& batch) override;
  Status remove(const std::string& path,
                const std::vector<xml::QName>& names) override;
  Status compact(const std::string& path) override;

  Result<std::vector<PropertyList>> get_many(
      const std::vector<std::string>& paths,
      const std::vector<xml::QName>& names) const override;

  Status on_removed(const std::string& path, bool recursive) override;
  Status on_copied(const std::string& from, const std::string& to,
                   bool recursive) override;
  Status on_moved(const std::string& from, const std::string& to,
                  bool recursive) override;
  Status remove_under(const std::string& path,
                      const xml::QName& name) override;
  Status compact_subtree(const std::string& path) override;
  uint64_t resource_disk_usage(const std::string&) const override {
    return 0;  // store bytes live under <root>/.DAV, inside the walk
  }

  bool supports_index() const override { return true; }
  Result<std::vector<std::string>> resources_with_property(
      const xml::QName& name, const std::string& scope) const override;

  std::string_view engine_name() const override { return "consolidated"; }

  /// The underlying engine (benches read its WAL/checkpoint stats);
  /// nullptr when open failed.
  dbm::ConsolidatedStore* engine() const { return store_.get(); }

 private:
  Status ready() const;

  std::unique_ptr<dbm::ConsolidatedStore> store_;
  Status open_status_;
  obs::Counter* reads_metric_;
  obs::Counter* writes_metric_;
};

}  // namespace davpse::dav
