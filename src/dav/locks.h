// DAV locking (RFC 2518 class 2): exclusive and shared write locks
// with depth-0 / depth-infinity scope and timeouts. Locks are held in
// memory — mod_dav kept its lock database beside the property DBMs,
// but lock state is advisory/session-scoped, so an in-memory table
// preserves the observable protocol behavior.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace davpse::dav {

enum class LockScope { kExclusive, kShared };

struct Lock {
  std::string token;       // "opaquelocktoken:<n>"
  std::string path;        // normalized resource path
  LockScope scope = LockScope::kExclusive;
  bool depth_infinity = true;
  std::string owner;       // verbatim owner XML/text from the request
  double expires_at = 0;   // wall_time_seconds(); 0 = never
};

class LockManager {
 public:
  /// Acquires a lock. kLocked if a conflicting lock exists (exclusive
  /// vs anything, or anything vs exclusive) on the resource, an
  /// ancestor with depth-infinity, or — for depth-infinity requests —
  /// any descendant.
  Result<Lock> acquire(const std::string& path, LockScope scope,
                       bool depth_infinity, const std::string& owner,
                       double timeout_seconds);

  /// Refreshes an existing lock's timeout. kNotFound for unknown
  /// tokens or token/path mismatch.
  Result<Lock> refresh(const std::string& path, const std::string& token,
                       double timeout_seconds);

  /// kNotFound if the token does not lock this path.
  Status release(const std::string& path, const std::string& token);

  /// All locks covering `path` (direct or via depth-infinity ancestor).
  std::vector<Lock> locks_covering(const std::string& path) const;

  /// Write-permission check used by mutating methods: OK if unlocked,
  /// or if `presented_token` matches a covering lock. kLocked
  /// otherwise.
  Status check_write(const std::string& path,
                     const std::optional<std::string>& presented_token) const;

  /// Drops every lock under `path` (DELETE/MOVE of a subtree).
  void forget_subtree(const std::string& path);

  size_t active_count() const;

  /// Wires lock metrics into `registry`: "dav.locks.acquired" and
  /// "dav.locks.contention" counters (conflicting acquires and refused
  /// writes), "dav.locks.active" gauge. nullptr detaches.
  void set_metrics(obs::Registry* registry);

 private:
  bool covers(const Lock& lock, const std::string& path) const;
  void expire_locked() const;  // drops stale locks; caller holds mutex_
  void publish_active_locked() const;  // pushes locks_.size() to gauge

  mutable std::mutex mutex_;
  mutable std::vector<Lock> locks_;
  uint64_t next_token_ = 1;
  obs::Counter* acquired_metric_ = nullptr;
  obs::Counter* contention_metric_ = nullptr;
  obs::Gauge* active_metric_ = nullptr;
};

}  // namespace davpse::dav
