#include "dav/dynamic_props.h"

#include <cstdio>

namespace davpse::dav {

void DynamicPropertyRegistry::register_provider(
    const xml::QName& name, DynamicPropertyProvider provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_[name] = std::move(provider);
}

void DynamicPropertyRegistry::unregister(const xml::QName& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_.erase(name);
}

bool DynamicPropertyRegistry::has(const xml::QName& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return providers_.contains(name);
}

std::vector<xml::QName> DynamicPropertyRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<xml::QName> out;
  out.reserve(providers_.size());
  for (const auto& [name, provider] : providers_) out.push_back(name);
  return out;
}

std::optional<std::string> DynamicPropertyRegistry::compute(
    const xml::QName& name, const DynamicContext& context) const {
  DynamicPropertyProvider provider;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = providers_.find(name);
    if (it == providers_.end()) return std::nullopt;
    provider = it->second;  // copy out: providers may be slow
  }
  return provider(context);
}

size_t DynamicPropertyRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return providers_.size();
}

DynamicPropertyProvider alias_property(xml::QName source) {
  return [source = std::move(source)](
             const DynamicContext& context) -> std::optional<std::string> {
    return context.dead_property(source);
  };
}

DynamicPropertyProvider size_category_provider() {
  return [](const DynamicContext& context) -> std::optional<std::string> {
    if (context.info.kind != ResourceKind::kDocument) return std::nullopt;
    if (context.info.content_length < 64 * 1024) return "small";
    if (context.info.content_length < 1024 * 1024) return "medium";
    return "large";
  };
}

DynamicPropertyProvider content_digest_provider() {
  return [](const DynamicContext& context) -> std::optional<std::string> {
    if (context.info.kind != ResourceKind::kDocument) return std::nullopt;
    auto body = context.read_body();
    if (!body.ok()) return std::nullopt;
    uint64_t hash = 14695981039346656037ULL;
    for (char c : body.value()) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(hash));
    return std::string(buf);
  };
}

}  // namespace davpse::dav
