// Dynamically computed metadata (§4: "Since DAV supports metadata that
// are calculated dynamically, it is possible to imagine generating
// metadata on-the-fly to support new applications... a DAV server
// could be extended to translate metadata for applications built using
// different schema").
//
// A DynamicPropertyProvider computes a property value on demand from
// the resource's state — including *other* properties, which is how
// the paper's schema-translation scenario works: install a mapping
// that renders `ecce:formula` as `otherapp:chemical-formula`, and
// applications written against the other schema see their vocabulary
// with no change to Ecce or to the stored data.
//
// Dynamic properties participate in named PROPFIND and SEARCH exactly
// like live properties; they never shadow a stored (dead) property of
// the same name.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dav/props.h"
#include "dav/repository.h"
#include "xml/qname.h"

namespace davpse::dav {

/// Context handed to a provider for one resource.
struct DynamicContext {
  const std::string& path;
  const ResourceInfo& info;
  /// Raw-text accessor for the resource's stored (dead) properties.
  std::function<std::optional<std::string>(const xml::QName&)> dead_property;
  /// Reads the resource body (documents only).
  std::function<Result<std::string>()> read_body;
};

/// Returns the computed raw-text value, or nullopt when the property
/// is undefined for this resource.
using DynamicPropertyProvider =
    std::function<std::optional<std::string>(const DynamicContext&)>;

/// Thread-safe provider registry.
class DynamicPropertyRegistry {
 public:
  /// Registers (or replaces) the provider for `name`.
  void register_provider(const xml::QName& name,
                         DynamicPropertyProvider provider);
  void unregister(const xml::QName& name);

  bool has(const xml::QName& name) const;
  std::vector<xml::QName> names() const;

  /// Computes `name` for the given context; nullopt if no provider is
  /// registered or the provider declines.
  std::optional<std::string> compute(const xml::QName& name,
                                     const DynamicContext& context) const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<xml::QName, DynamicPropertyProvider> providers_;
};

/// Provider factory: renders another property's value under a new
/// name — the paper's cross-schema translation in its simplest form.
DynamicPropertyProvider alias_property(xml::QName source);

/// Provider factory: document size bucket ("small" < 64 KB <= "medium"
/// < 1 MB <= "large"), an example of derived discovery metadata.
DynamicPropertyProvider size_category_provider();

/// Provider factory: FNV-1a content digest of the document body,
/// rendered as 16 hex digits (an electronic-notebook-style integrity
/// annotation computed on demand).
DynamicPropertyProvider content_digest_provider();

}  // namespace davpse::dav
