#include "dav/search.h"

#include <cstdlib>

#include "util/strings.h"
#include "util/uri.h"

namespace davpse::dav {
namespace {

const xml::QName kBasicSearch = xml::dav_name("basicsearch");
const xml::QName kSelect = xml::dav_name("select");
const xml::QName kProp = xml::dav_name("prop");
const xml::QName kFrom = xml::dav_name("from");
const xml::QName kScope = xml::dav_name("scope");
const xml::QName kHref = xml::dav_name("href");
const xml::QName kDepth = xml::dav_name("depth");
const xml::QName kWhere = xml::dav_name("where");
const xml::QName kLiteral = xml::dav_name("literal");

Result<SearchOp> op_from_name(const xml::QName& name) {
  if (name.ns != xml::kDavNamespace) {
    return Status(ErrorCode::kUnsupported,
                  "unknown search operator namespace: " + name.to_string());
  }
  if (name.local == "and") return SearchOp::kAnd;
  if (name.local == "or") return SearchOp::kOr;
  if (name.local == "not") return SearchOp::kNot;
  if (name.local == "eq") return SearchOp::kEq;
  if (name.local == "lt") return SearchOp::kLt;
  if (name.local == "lte") return SearchOp::kLte;
  if (name.local == "gt") return SearchOp::kGt;
  if (name.local == "gte") return SearchOp::kGte;
  if (name.local == "contains") return SearchOp::kContains;
  if (name.local == "is-defined") return SearchOp::kIsDefined;
  if (name.local == "is-collection") return SearchOp::kIsCollection;
  return Status(ErrorCode::kUnsupported,
                "unsupported search operator: " + name.to_string());
}

Result<SearchExpr> parse_expr(const xml::Element& element) {
  auto op = op_from_name(element.name());
  if (!op.ok()) return op.status();
  SearchExpr expr;
  expr.op = op.value();

  switch (expr.op) {
    case SearchOp::kAnd:
    case SearchOp::kOr: {
      if (element.children().empty()) {
        return Status(ErrorCode::kMalformed,
                      element.name().local + " requires operands");
      }
      for (const auto& child : element.children()) {
        auto parsed = parse_expr(*child);
        if (!parsed.ok()) return parsed.status();
        expr.children.push_back(std::move(parsed).value());
      }
      return expr;
    }
    case SearchOp::kNot: {
      if (element.children().size() != 1) {
        return Status(ErrorCode::kMalformed,
                      "not requires exactly one operand");
      }
      auto parsed = parse_expr(*element.children().front());
      if (!parsed.ok()) return parsed.status();
      expr.children.push_back(std::move(parsed).value());
      return expr;
    }
    case SearchOp::kIsCollection:
      return expr;
    case SearchOp::kIsDefined: {
      const xml::Element* prop = element.first_child(kProp);
      if (prop == nullptr || prop->children().size() != 1) {
        return Status(ErrorCode::kMalformed,
                      "is-defined requires <prop> with one property");
      }
      expr.prop = prop->children().front()->name();
      return expr;
    }
    default: {
      // Binary comparison: <prop> + <literal>.
      const xml::Element* prop = element.first_child(kProp);
      const xml::Element* literal = element.first_child(kLiteral);
      if (prop == nullptr || prop->children().size() != 1 ||
          literal == nullptr) {
        return Status(ErrorCode::kMalformed,
                      element.name().local +
                          " requires <prop> with one property and "
                          "<literal>");
      }
      expr.prop = prop->children().front()->name();
      expr.literal = literal->text();
      return expr;
    }
  }
}

}  // namespace

Result<SearchRequest> parse_search_request(const xml::Element& root) {
  if (!(root.name() == xml::dav_name("searchrequest"))) {
    return Status(ErrorCode::kMalformed,
                  "expected DAV:searchrequest, got " +
                      root.name().to_string());
  }
  const xml::Element* basic = root.first_child(kBasicSearch);
  if (basic == nullptr) {
    return Status(ErrorCode::kUnsupported,
                  "only DAV:basicsearch is supported");
  }
  SearchRequest request;

  if (const xml::Element* select = basic->first_child(kSelect)) {
    if (const xml::Element* prop = select->first_child(kProp)) {
      for (const auto& child : prop->children()) {
        request.select.push_back(child->name());
      }
    }
  }

  if (const xml::Element* from = basic->first_child(kFrom)) {
    if (const xml::Element* scope = from->first_child(kScope)) {
      std::string_view href = scope->child_text(kHref);
      if (!href.empty()) {
        std::string decoded;
        if (!percent_decode(trim(href), &decoded)) {
          return Status(ErrorCode::kMalformed, "bad scope href");
        }
        auto normalized = normalize_path(decoded);
        if (!normalized.ok()) return normalized.status();
        request.scope = std::move(normalized).value();
      }
      auto depth = trim(scope->child_text(kDepth));
      if (depth == "1" || depth == "0") request.depth_infinity = false;
    }
  }

  if (const xml::Element* where = basic->first_child(kWhere)) {
    if (where->children().size() != 1) {
      return Status(ErrorCode::kMalformed,
                    "where requires exactly one expression");
    }
    auto expr = parse_expr(*where->children().front());
    if (!expr.ok()) return expr.status();
    request.where = std::move(expr).value();
  }
  return request;
}

bool compare_values(SearchOp op, const std::string& a, const std::string& b) {
  // Numeric comparison when both sides are fully numeric.
  char* end_a = nullptr;
  char* end_b = nullptr;
  double num_a = std::strtod(a.c_str(), &end_a);
  double num_b = std::strtod(b.c_str(), &end_b);
  bool numeric = !a.empty() && !b.empty() && end_a == a.c_str() + a.size() &&
                 end_b == b.c_str() + b.size();
  int cmp;
  if (numeric) {
    cmp = num_a < num_b ? -1 : (num_a > num_b ? 1 : 0);
  } else {
    cmp = a.compare(b);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case SearchOp::kEq: return cmp == 0;
    case SearchOp::kLt: return cmp < 0;
    case SearchOp::kLte: return cmp <= 0;
    case SearchOp::kGt: return cmp > 0;
    case SearchOp::kGte: return cmp >= 0;
    default: return false;
  }
}

void collect_search_properties(const SearchExpr& expr,
                               std::vector<xml::QName>* out) {
  switch (expr.op) {
    case SearchOp::kAnd:
    case SearchOp::kOr:
    case SearchOp::kNot:
      for (const SearchExpr& child : expr.children) {
        collect_search_properties(child, out);
      }
      return;
    case SearchOp::kIsCollection:
      return;
    default:
      out->push_back(expr.prop);
      return;
  }
}

std::optional<std::vector<xml::QName>> index_cover(const SearchExpr& expr) {
  switch (expr.op) {
    case SearchOp::kAnd:
      // Any single covered conjunct bounds the whole conjunction (the
      // and-matches are a subset of that conjunct's matches).
      for (const SearchExpr& child : expr.children) {
        if (auto cover = index_cover(child)) return cover;
      }
      return std::nullopt;
    case SearchOp::kOr: {
      // A disjunction is covered only if every branch is: the union of
      // the branch covers bounds the union of the branch matches.
      std::vector<xml::QName> all;
      for (const SearchExpr& child : expr.children) {
        auto cover = index_cover(child);
        if (!cover) return std::nullopt;
        all.insert(all.end(), cover->begin(), cover->end());
      }
      return all;
    }
    case SearchOp::kNot:
    case SearchOp::kIsCollection:
      // Can match resources that define nothing — no posting list is
      // a superset of the matches.
      return std::nullopt;
    default:
      // eq/lt/lte/gt/gte/contains/is-defined: false when the property
      // is undefined, so the property's posting list covers the leaf.
      return std::vector<xml::QName>{expr.prop};
  }
}

bool evaluate_search(const SearchExpr& expr, const PropertyLookup& lookup,
                     bool is_collection) {
  switch (expr.op) {
    case SearchOp::kAnd:
      for (const SearchExpr& child : expr.children) {
        if (!evaluate_search(child, lookup, is_collection)) return false;
      }
      return true;
    case SearchOp::kOr:
      for (const SearchExpr& child : expr.children) {
        if (evaluate_search(child, lookup, is_collection)) return true;
      }
      return false;
    case SearchOp::kNot:
      return !evaluate_search(expr.children.front(), lookup, is_collection);
    case SearchOp::kIsCollection:
      return is_collection;
    case SearchOp::kIsDefined:
      return lookup(expr.prop).has_value();
    case SearchOp::kContains: {
      auto value = lookup(expr.prop);
      return value && value->find(expr.literal) != std::string::npos;
    }
    default: {
      auto value = lookup(expr.prop);
      return value && compare_values(expr.op, *value, expr.literal);
    }
  }
}

}  // namespace davpse::dav
