// DASL-style searching (the paper's §5: "many of the advanced features
// of DAV, including DAV Searching and Locating (DASL)... are still
// being standardized"). This implements the core of the
// draft-dasl-protocol `DAV:basicsearch` grammar the paper anticipated:
//
//   <D:searchrequest>
//     <D:basicsearch>
//       <D:select><D:prop>...</D:prop></D:select>
//       <D:from><D:scope><D:href>/x</D:href><D:depth>infinity</D:depth>
//       </D:scope></D:from>
//       <D:where> boolean expression </D:where>
//     </D:basicsearch>
//   </D:searchrequest>
//
// Operators: and, or, not, eq, lt, lte, gt, gte, contains,
// is-defined, is-collection. Comparisons are numeric when both sides
// parse as numbers, byte-wise otherwise. The response is an ordinary
// 207 multistatus carrying the selected properties of each match — so
// existing multistatus clients (and agents) consume results unchanged.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/dom.h"
#include "xml/qname.h"

namespace davpse::dav {

enum class SearchOp {
  kAnd,
  kOr,
  kNot,
  kEq,
  kLt,
  kLte,
  kGt,
  kGte,
  kContains,
  kIsDefined,
  kIsCollection,
};

/// One node of the parsed where-expression.
struct SearchExpr {
  SearchOp op;
  xml::QName prop;                 // comparison/defined operators
  std::string literal;             // comparison operators
  std::vector<SearchExpr> children;  // and/or/not
};

struct SearchRequest {
  std::string scope = "/";          // normalized href
  bool depth_infinity = true;       // false = depth 1
  std::vector<xml::QName> select;   // properties to return per match
  std::optional<SearchExpr> where;  // absent = match everything
};

/// Parses a DAV:searchrequest body. kMalformed/kUnsupported on
/// grammars outside the subset above.
Result<SearchRequest> parse_search_request(const xml::Element& root);

/// Property accessor used during evaluation: returns the *raw text*
/// value of a property on the candidate resource, or nullopt when the
/// property is undefined there.
using PropertyLookup =
    std::function<std::optional<std::string>(const xml::QName&)>;

/// Evaluates a where-expression against one resource.
bool evaluate_search(const SearchExpr& expr, const PropertyLookup& lookup,
                     bool is_collection);

/// True when `a` op `b` holds; numeric when both parse as doubles.
bool compare_values(SearchOp op, const std::string& a, const std::string& b);

/// Appends every property name the expression references — lets the
/// evaluator prefetch exactly the referenced properties instead of
/// loading each candidate's full property set.
void collect_search_properties(const SearchExpr& expr,
                               std::vector<xml::QName>* out);

/// Index planning: a set of property names whose combined
/// property→resource posting lists are guaranteed to contain every
/// resource the expression can match — a resource defining none of
/// them cannot satisfy `expr` (comparison leaves are false on
/// undefined properties). nullopt when no such set exists (e.g. the
/// expression contains not/is-collection, which can match resources
/// with no properties at all). Candidates still need full evaluation,
/// and the plan is only valid if every returned name resolves as a
/// *stored* property — live and dynamic properties match without a
/// stored value, which the caller must check.
std::optional<std::vector<xml::QName>> index_cover(const SearchExpr& expr);

}  // namespace davpse::dav
