// The WebDAV server: an http::Handler implementing RFC 2518 class 1+2
// semantics over FsRepository — the role mod_dav 1.1 played in the
// paper's architecture (Figure 2: "any service that implements the DAV
// protocol").
//
// Methods: OPTIONS, HEAD, GET, PUT, DELETE, MKCOL, COPY, MOVE,
// PROPFIND (depth 0/1/infinity; prop/allprop/propname), PROPPATCH,
// LOCK, UNLOCK.
//
// Configurable maximum property size, defaulting to the 10 MB the
// paper chose after its robustness testing ("as an initial
// (post-testing) value, we set a limit of 10 MB per property").
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <shared_mutex>
#include <string>

#include "dav/dynamic_props.h"
#include "dav/locks.h"
#include "dav/repository.h"
#include "dbm/dbm.h"
#include "http/message.h"
#include "http/server.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "util/status.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace davpse::dav {

struct DavConfig {
  std::filesystem::path root;
  dbm::Flavor flavor = dbm::Flavor::kGdbm;
  /// Which engine backs dead properties: the paper's DBM-per-resource
  /// layout (default, byte-for-byte faithful), or the consolidated
  /// WAL-backed store whose property→resource index lets SEARCH skip
  /// the full scan. `flavor` only matters for the DBM engine.
  PropertyEngine property_engine = PropertyEngine::kDbmPerResource;
  uint64_t max_property_bytes = 10ull * 1024 * 1024;
  double default_lock_timeout_seconds = 600;
  /// Registry receiving "dav.server.*" / "dav.locks.*" / "dav.props.*"
  /// metrics, and served read-only at GET /.well-known/stats (JSON
  /// summary) and GET /.well-known/metrics (Prometheus text); nullptr
  /// records into obs::Registry::global().
  obs::Registry* metrics = nullptr;
  /// Tail sampler whose retained slow-trace timelines are served at
  /// GET /.well-known/traces; nullptr serves obs::TailSampler::global().
  obs::TailSampler* tail_sampler = nullptr;
  /// Flight recorder backing GET /.well-known/history (windowed rates)
  /// and GET /.well-known/health (readiness verdict; overloaded maps
  /// to 503). Optional — nullptr serves 404 on both paths. The caller
  /// owns the recorder and its lifetime must cover the server's.
  obs::FlightRecorder* recorder = nullptr;
  /// PROPFIND responses covering more targets than this stream through
  /// the incremental XML writer as a chunked BodySource instead of
  /// being built eagerly in memory — depth-1 listings of huge
  /// collections marshal one <D:response> at a time. Small responses
  /// stay eager (one Content-Length write, no chunk framing). Set to 0
  /// to stream everything, SIZE_MAX to always build eagerly; both
  /// emitters produce byte-identical XML.
  size_t propfind_stream_threshold = 32;
};

class MultistatusStreamSource;

class DavServer : public http::Handler {
 public:
  explicit DavServer(DavConfig config);

  http::HttpResponse handle(const http::HttpRequest& request) override;

  /// PUT bodies stream straight from the wire into a repository spool
  /// file (drained before the store lock is taken, then renamed into
  /// place) instead of being buffered; everything else (PROPPATCH/
  /// LOCK/SEARCH XML bodies) stays eager — those are small and get
  /// parsed as a whole anyway.
  bool wants_body_stream(const http::HttpRequest& head) override {
    return head.method == "PUT";
  }

  FsRepository& repository() { return repository_; }
  LockManager& locks() { return locks_; }
  const DavConfig& config() const { return config_; }

  /// Dynamically computed metadata (§4 scenarios). Registered
  /// properties resolve in named PROPFIND and SEARCH like live
  /// properties; stored properties of the same name take precedence.
  DynamicPropertyRegistry& dynamic_properties() { return dynamic_props_; }

 private:
  /// Method dispatch after path normalization; wrapped by handle()'s
  /// instrumentation.
  http::HttpResponse dispatch(const http::HttpRequest& request,
                              const std::string& path);
  /// GET /.well-known/stats — a JSON dump of the registry snapshot.
  http::HttpResponse do_stats(bool head_only);
  /// GET /.well-known/metrics — Prometheus text exposition of the same
  /// registry snapshot (full cumulative bucket fidelity).
  http::HttpResponse do_metrics(bool head_only);
  /// GET /.well-known/traces — JSON timelines of the tail-sampled slow
  /// requests (nested span trees).
  http::HttpResponse do_traces(bool head_only);
  /// GET /.well-known/history — flight-recorder windowed rates (404
  /// when no recorder is configured).
  http::HttpResponse do_history(bool head_only);
  /// GET /.well-known/health — readiness verdict derived from the
  /// flight-recorder ring; 200 for ok/degraded, 503 for overloaded,
  /// 404 when no recorder is configured.
  http::HttpResponse do_health(bool head_only);
  http::HttpResponse do_options(const http::HttpRequest& request);
  http::HttpResponse do_get(const http::HttpRequest& request,
                            const std::string& path, bool head_only);
  http::HttpResponse do_put(const http::HttpRequest& request,
                            const std::string& path);
  http::HttpResponse do_delete(const http::HttpRequest& request,
                               const std::string& path);
  http::HttpResponse do_mkcol(const http::HttpRequest& request,
                              const std::string& path);
  http::HttpResponse do_copy_move(const http::HttpRequest& request,
                                  const std::string& path, bool move);
  http::HttpResponse do_propfind(const http::HttpRequest& request,
                                 const std::string& path);
  http::HttpResponse do_proppatch(const http::HttpRequest& request,
                                  const std::string& path);
  http::HttpResponse do_lock(const http::HttpRequest& request,
                             const std::string& path);
  http::HttpResponse do_unlock(const http::HttpRequest& request,
                               const std::string& path);
  http::HttpResponse do_search(const http::HttpRequest& request);
  http::HttpResponse do_version_control(const http::HttpRequest& request,
                                        const std::string& path);
  http::HttpResponse do_report(const http::HttpRequest& request,
                               const std::string& path);

  /// What a PROPFIND body asked for (empty body = allprop).
  enum class PropfindMode { kAllProp, kPropName, kPropList };

  /// Emits one <D:response> for `target` into `writer`, resolving
  /// live/dead/dynamic properties per `mode` against the (usually
  /// prefetched) property view `db`. Shared by the eager and streaming
  /// multistatus paths so they serialize identically.
  void emit_propfind_target(xml::XmlWriter* writer, const std::string& target,
                            PropfindMode mode,
                            const std::vector<xml::QName>& wanted,
                            const ResourceProps& db);

  /// One engine pass (PropertyStore::get_many) building a snapshot-
  /// backed ResourceProps per target: a complete snapshot for
  /// allprop/propname, a partial snapshot of the wanted names (plus
  /// the stored dependencies of wanted live properties) for prop
  /// lists. Falls back to plain fall-through handles if the batched
  /// read fails.
  std::vector<ResourceProps> prefetch_properties(
      const std::vector<std::string>& targets, PropfindMode mode,
      const std::vector<xml::QName>& wanted);

  /// True for the live (server-computed) property names.
  static bool is_live_property(const xml::QName& name);
  /// Computes a live property's serialized value; false when the
  /// property does not apply to this resource (e.g. getcontentlength
  /// on a collection).
  bool live_property_value(const std::string& path,
                           const ResourceInfo& info, const ResourceProps& db,
                           const xml::QName& name, std::string* inner);
  /// Resources at/under `path` honoring the depth rules (self always
  /// included; one level for depth-1; full walk for infinity).
  std::vector<std::string> collect_targets(const std::string& path,
                                           bool include_children,
                                           bool infinite_depth);
  /// Computes a registered dynamic property (raw text) for a resource;
  /// nullopt when no provider applies.
  std::optional<std::string> dynamic_value(const std::string& path,
                                           const ResourceInfo& info,
                                           const ResourceProps& db,
                                           const xml::QName& name);

  friend class MultistatusStreamSource;

  DavConfig config_;
  obs::Registry& metrics_;
  obs::TailSampler& tail_sampler_;
  /// Per-method counter/histogram cache — the request hot path does no
  /// metric-name concatenation or registry lookups after first sight
  /// of a method.
  obs::PerLabelMetrics request_metrics_;
  FsRepository repository_;
  LockManager locks_;
  DynamicPropertyRegistry dynamic_props_;
  // Whole-store reader/writer lock: PROPFIND/GET run concurrently,
  // mutating methods are exclusive. Coarse, but faithful to the
  // single-writer behavior of mod_dav's per-file DBMs.
  mutable std::shared_mutex store_mutex_;
};

}  // namespace davpse::dav
