#include "dav/property_store.h"

#include <algorithm>

namespace davpse::dav {

std::string_view property_engine_name(PropertyEngine engine) {
  switch (engine) {
    case PropertyEngine::kDbmPerResource: return "dbm";
    case PropertyEngine::kConsolidated: return "consolidated";
  }
  return "dbm";
}

std::optional<PropertyEngine> parse_property_engine(std::string_view name) {
  if (name == "dbm") return PropertyEngine::kDbmPerResource;
  if (name == "consolidated") return PropertyEngine::kConsolidated;
  return std::nullopt;
}

Result<std::vector<std::string>> PropertyStore::resources_with_property(
    const xml::QName& name, const std::string&) const {
  return Status(ErrorCode::kUnsupported,
                "engine has no property index: " + name.to_string());
}

ResourceProps ResourceProps::with_snapshot(PropertyStore* store,
                                           std::string path,
                                           PropertyList props) {
  ResourceProps view(store, std::move(path));
  view.complete_ = true;
  view.snapshot_ = std::move(props);
  return view;
}

ResourceProps ResourceProps::with_partial_snapshot(
    PropertyStore* store, std::string path, std::vector<xml::QName> requested,
    PropertyList props) {
  ResourceProps view(store, std::move(path));
  view.requested_ = std::move(requested);
  view.snapshot_ = std::move(props);
  return view;
}

bool ResourceProps::snapshot_covers(const xml::QName& name) const {
  if (!snapshot_.has_value()) return false;
  if (complete_) return true;
  return std::find(requested_.begin(), requested_.end(), name) !=
         requested_.end();
}

Result<PropertyValue> ResourceProps::get(const xml::QName& name) const {
  if (snapshot_covers(name)) {
    for (const auto& [stored, value] : *snapshot_) {
      if (stored == name) return value;
    }
    return Status(ErrorCode::kNotFound,
                  "no such property: " + name.to_string());
  }
  return store_->get(path_, name);
}

std::optional<PropertyValue> ResourceProps::find(
    const xml::QName& name) const {
  auto value = get(name);
  if (!value.ok()) return std::nullopt;
  return std::move(value).value();
}

Result<PropertyList> ResourceProps::get_all() const {
  if (snapshot_.has_value() && complete_) return *snapshot_;
  return store_->get_all(path_);
}

Result<std::vector<xml::QName>> ResourceProps::names() const {
  if (snapshot_.has_value() && complete_) {
    std::vector<xml::QName> out;
    out.reserve(snapshot_->size());
    for (const auto& [name, value] : *snapshot_) out.push_back(name);
    return out;
  }
  return store_->names(path_);
}

Status ResourceProps::set(const PropertyList& batch) {
  snapshot_.reset();
  complete_ = false;
  return store_->set(path_, batch);
}

Status ResourceProps::remove(const std::vector<xml::QName>& names) {
  snapshot_.reset();
  complete_ = false;
  return store_->remove(path_, names);
}

Status ResourceProps::compact() { return store_->compact(path_); }

}  // namespace davpse::dav
