// The property-layer seam: an abstract PropertyStore behind which two
// engines coexist —
//
//   kDbmPerResource  the paper's mod_dav layout, one DBM file per
//                    resource in a hidden .DAV directory (props.h);
//                    byte-for-byte the store whose §3.2.4 disk numbers
//                    the benches reproduce.
//   kConsolidated    a sharded single-file store with a write-ahead
//                    log, group commit, and a property→resource index
//                    (dbm/consolidated.h) that survives millions of
//                    resources.
//
// The interface is path-keyed (the per-resource handle the old code
// passed around becomes ResourceProps, a thin view) and grows the
// batched get_many() so PROPFIND depth-1 and SEARCH make one engine
// pass instead of one open/close cycle per resource.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "xml/qname.h"

namespace davpse::dav {

/// A dead property value: the serialized inner XML of the property
/// element (escaped character data and/or nested elements carrying
/// their own namespace declarations).
struct PropertyValue {
  std::string inner_xml;
};

/// Server bookkeeping stored as dead properties under a reserved
/// namespace; hidden from allprop responses.
namespace internal_props {
inline const xml::QName kContentType("urn:davpse:internal", "content-type");
inline const xml::QName kVersionCount("urn:davpse:internal",
                                      "version-count");
}  // namespace internal_props

/// (name, value) pairs of one resource.
using PropertyList = std::vector<std::pair<xml::QName, PropertyValue>>;

/// Name of the hidden bookkeeping directory (property DBMs, version
/// snapshots, spool files, the consolidated store).
inline constexpr std::string_view kDavDirName = ".DAV";

/// Which engine backs the property layer (DavConfig::property_engine).
enum class PropertyEngine {
  kDbmPerResource,  // paper-faithful baseline
  kConsolidated,    // WAL-backed sharded store with secondary index
};

/// "dbm" / "consolidated" — stable names for knobs and artifacts.
std::string_view property_engine_name(PropertyEngine engine);
/// Inverse of property_engine_name; nullopt on anything else.
std::optional<PropertyEngine> parse_property_engine(std::string_view name);

/// Dead-property storage for a whole repository, keyed by normalized
/// DAV path. Mutations are serialized by the caller per resource (the
/// server's store lock); reads may run concurrently with each other.
class PropertyStore {
 public:
  virtual ~PropertyStore() = default;

  // -- per-resource access ----------------------------------------------

  /// kNotFound if the property (or the resource's whole set) is absent.
  virtual Result<PropertyValue> get(const std::string& path,
                                    const xml::QName& name) const = 0;
  /// All dead properties of the resource (empty if none).
  virtual Result<PropertyList> get_all(const std::string& path) const = 0;
  /// Names only (PROPFIND propname support).
  virtual Result<std::vector<xml::QName>> names(
      const std::string& path) const = 0;
  /// Sets a batch; values were validated by the caller.
  virtual Status set(const std::string& path, const PropertyList& batch) = 0;
  /// Removes properties; missing names are not an error (RFC 2518:
  /// removing a non-existent property is a no-op success).
  virtual Status remove(const std::string& path,
                        const std::vector<xml::QName>& names) = 0;
  /// Engine-level garbage collection for one resource.
  virtual Status compact(const std::string& path) = 0;

  // -- batched access ---------------------------------------------------

  /// One engine pass over `paths`: returns a list per path (aligned by
  /// index). Empty `names` means all dead properties of each path
  /// (allprop); otherwise only the named properties, with absent names
  /// simply missing from the list. A path with no properties (or whose
  /// lookup fails) yields an empty list — the same absent-equals-empty
  /// view single get() callers observe.
  virtual Result<std::vector<PropertyList>> get_many(
      const std::vector<std::string>& paths,
      const std::vector<xml::QName>& names) const = 0;

  // -- namespace lifecycle (driven by FsRepository) ---------------------

  /// The resource (subtree when `recursive`) was deleted.
  virtual Status on_removed(const std::string& path, bool recursive) = 0;
  /// The resource (subtree when `recursive`) was copied `from` → `to`.
  /// For the DBM engine the filesystem tree copy already carried nested
  /// .DAV directories; this hook covers whatever the engine keeps
  /// outside the resource tree.
  virtual Status on_copied(const std::string& from, const std::string& to,
                           bool recursive) = 0;
  /// The resource (subtree when `recursive`) was renamed `from` → `to`.
  virtual Status on_moved(const std::string& from, const std::string& to,
                          bool recursive) = 0;
  /// Removes one property from `path` and every resource below it
  /// (COPY's strip-version-history pass).
  virtual Status remove_under(const std::string& path,
                              const xml::QName& name) = 0;
  /// Garbage-collects every resource at/under `path` (the paper's
  /// "manual garbage collection utilities").
  virtual Status compact_subtree(const std::string& path) = 0;
  /// Bytes of property storage attributable to exactly this resource,
  /// for the §3.2.4 disk accounting. Zero for engines whose storage is
  /// consolidated (their bytes already live under the repository root).
  virtual uint64_t resource_disk_usage(const std::string& path) const = 0;

  // -- secondary index --------------------------------------------------

  /// True when resources_with_property() answers from an index instead
  /// of kUnsupported — lets SEARCH skip the full scan.
  virtual bool supports_index() const { return false; }
  /// Sorted paths at/under `scope` that define property `name`.
  virtual Result<std::vector<std::string>> resources_with_property(
      const xml::QName& name, const std::string& scope) const;

  virtual std::string_view engine_name() const = 0;
};

/// Per-resource view over a PropertyStore — the handle the server and
/// repository layers pass around (what a PropertyDb instance used to
/// be). Optionally backed by a prefetched snapshot from get_many():
///
///   * a complete snapshot answers get/get_all/names locally (allprop
///     prefetch);
///   * a partial snapshot is authoritative only for the names it was
///     requested with — including their *absence* — and falls through
///     to the store for everything else.
///
/// Mutations write through to the store and drop the snapshot.
class ResourceProps {
 public:
  ResourceProps(PropertyStore* store, std::string path)
      : store_(store), path_(std::move(path)) {}

  static ResourceProps with_snapshot(PropertyStore* store, std::string path,
                                     PropertyList props);
  static ResourceProps with_partial_snapshot(PropertyStore* store,
                                             std::string path,
                                             std::vector<xml::QName> requested,
                                             PropertyList props);

  /// kNotFound when the property is absent.
  Result<PropertyValue> get(const xml::QName& name) const;
  /// Optional-returning accessor: nullopt when the property is absent
  /// or unreadable — the one-line form of the get().ok() ladders.
  std::optional<PropertyValue> find(const xml::QName& name) const;
  Result<PropertyList> get_all() const;
  Result<std::vector<xml::QName>> names() const;
  Status set(const PropertyList& batch);
  Status remove(const std::vector<xml::QName>& names);
  Status compact();

  const std::string& path() const { return path_; }

 private:
  bool snapshot_covers(const xml::QName& name) const;

  PropertyStore* store_;
  std::string path_;
  bool complete_ = false;                // snapshot covers every name
  std::vector<xml::QName> requested_;    // partial-snapshot coverage
  std::optional<PropertyList> snapshot_;
};

}  // namespace davpse::dav
