#include "dav/repository.h"

#include <algorithm>
#include <chrono>

#include "dav/consolidated_props.h"
#include "util/fs.h"
#include "util/uri.h"

namespace davpse::dav {

namespace fs = std::filesystem;

FsRepository::FsRepository(fs::path root, dbm::Flavor flavor,
                           obs::Registry* metrics, PropertyEngine engine)
    : root_(std::move(root)), flavor_(flavor), engine_(engine) {
  obs::Counter* reads = nullptr;
  obs::Counter* writes = nullptr;
  if (metrics != nullptr) {
    reads = &metrics->counter("dav.props.db_reads");
    writes = &metrics->counter("dav.props.db_writes");
  }
  if (engine_ == PropertyEngine::kConsolidated) {
    dbm::ConsolidatedOptions options;
    options.metrics = metrics;  // dbm.consolidated.* next to dav.props.*
    props_ = std::make_unique<ConsolidatedPropertyStore>(root_, reads, writes,
                                                         options);
  } else {
    props_ = std::make_unique<DbmPropertyStore>(root_, flavor_, reads, writes);
  }
}

fs::path FsRepository::fs_path(const std::string& path) const {
  if (path == "/") return root_;
  // `path` is normalized by the server layer: absolute, no "..".
  return root_ / path.substr(1);
}

ResourceInfo FsRepository::stat(const std::string& path) const {
  ResourceInfo info;
  fs::path target = fs_path(path);
  std::error_code ec;
  auto status = fs::status(target, ec);
  if (ec || status.type() == fs::file_type::not_found) return info;
  if (status.type() == fs::file_type::directory) {
    info.kind = ResourceKind::kCollection;
  } else {
    info.kind = ResourceKind::kDocument;
    info.content_length = static_cast<uint64_t>(fs::file_size(target, ec));
  }
  auto mtime = fs::last_write_time(target, ec);
  if (!ec) {
    // Portable file_clock -> system_clock conversion (clock_cast is
    // spotty across standard libraries).
    auto sys_now = std::chrono::system_clock::now();
    auto file_now = fs::file_time_type::clock::now();
    auto as_sys = sys_now + std::chrono::duration_cast<
                                std::chrono::system_clock::duration>(
                                mtime - file_now);
    info.mtime_seconds = std::chrono::duration_cast<std::chrono::seconds>(
                             as_sys.time_since_epoch())
                             .count();
  }
  return info;
}

Result<std::vector<std::string>> FsRepository::list_children(
    const std::string& path) const {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (!fs::is_directory(target, ec)) {
    return Status(ErrorCode::kNotFound, "not a collection: " + path);
  }
  std::vector<std::string> out;
  for (auto it = fs::directory_iterator(target, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    std::string name = it->path().filename().string();
    if (name == kDavDirName) continue;
    out.push_back(std::move(name));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> FsRepository::read_document(
    const std::string& path) const {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    return Status(ErrorCode::kInvalidArgument,
                  "resource is a collection: " + path);
  }
  std::string body;
  DAVPSE_RETURN_IF_ERROR(read_file(target, &body));
  return body;
}

Result<std::unique_ptr<http::BodySource>> FsRepository::open_document_source(
    const std::string& path) const {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    return Status(ErrorCode::kInvalidArgument,
                  "resource is a collection: " + path);
  }
  auto source = http::FileBodySource::open(target);
  if (!source.ok()) {
    return Status(ErrorCode::kNotFound, "no such resource: " + path);
  }
  return std::unique_ptr<http::BodySource>(std::move(source).value());
}

Status FsRepository::write_document(const std::string& path,
                                    std::string_view body) {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    return error(ErrorCode::kConflict,
                 "cannot PUT over a collection: " + path);
  }
  if (!fs::is_directory(target.parent_path(), ec)) {
    return error(ErrorCode::kConflict,
                 "parent collection does not exist: " + parent_path(path));
  }
  return write_file_atomic(target, body);
}

Status FsRepository::write_document_from(const std::string& path,
                                         http::BodySource* body) {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    return error(ErrorCode::kConflict,
                 "cannot PUT over a collection: " + path);
  }
  if (!fs::is_directory(target.parent_path(), ec)) {
    return error(ErrorCode::kConflict,
                 "parent collection does not exist: " + parent_path(path));
  }
  // Same atomicity as write_document: the body streams into a temp
  // file and only replaces the document once complete, so a truncated
  // upload never clobbers the previous contents.
  http::FileBodySink sink(target);
  auto drained = http::drain_body(*body, sink);
  return drained.status();
}

Result<fs::path> FsRepository::spool_body(http::BodySource* body) {
  fs::path dir = root_ / kDavDirName / "spool";
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status(ErrorCode::kInternal,
                  "cannot create spool directory: " + ec.message());
  }
  fs::path spool =
      dir / ("s" + std::to_string(spool_counter_.fetch_add(1)));
  http::FileBodySink sink(spool);
  auto drained = http::drain_body(*body, sink);
  if (!drained.ok()) return drained.status();
  return spool;
}

Status FsRepository::write_document_spooled(const std::string& path,
                                            const fs::path& spool) {
  auto discard = [&spool](Status status) {
    std::error_code rm;
    fs::remove(spool, rm);
    return status;
  };
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    return discard(error(ErrorCode::kConflict,
                         "cannot PUT over a collection: " + path));
  }
  if (!fs::is_directory(target.parent_path(), ec)) {
    return discard(error(ErrorCode::kConflict,
                         "parent collection does not exist: " +
                             parent_path(path)));
  }
  fs::rename(spool, target, ec);
  if (ec) {
    return discard(error(ErrorCode::kInternal,
                         "rename failed for " + path + ": " + ec.message()));
  }
  return Status::ok();
}

Status FsRepository::make_collection(const std::string& path) {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::exists(target, ec)) {
    return error(ErrorCode::kAlreadyExists, "resource exists: " + path);
  }
  if (!fs::is_directory(target.parent_path(), ec)) {
    return error(ErrorCode::kConflict,
                 "parent collection does not exist: " + parent_path(path));
  }
  if (!fs::create_directory(target, ec) || ec) {
    return error(ErrorCode::kInternal,
                 "mkdir failed for " + path + ": " + ec.message());
  }
  return Status::ok();
}

Status FsRepository::remove(const std::string& path) {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (!fs::exists(target, ec)) {
    return error(ErrorCode::kNotFound, "no such resource: " + path);
  }
  bool is_dir = fs::is_directory(target, ec);
  // Document version history lives in the parent's .DAV directory;
  // collection bookkeeping lives inside the tree being removed.
  fs::path versions = versions_dir(path);
  fs::remove_all(target, ec);
  if (ec) {
    return error(ErrorCode::kInternal,
                 "remove failed for " + path + ": " + ec.message());
  }
  if (!is_dir) {
    fs::remove_all(versions, ec);
  }
  return props_->on_removed(path, is_dir);
}

Status FsRepository::copy(const std::string& from, const std::string& to) {
  fs::path source = fs_path(from);
  fs::path dest = fs_path(to);
  std::error_code ec;
  if (!fs::exists(source, ec)) {
    return error(ErrorCode::kNotFound, "no such resource: " + from);
  }
  if (fs::exists(dest, ec)) {
    return error(ErrorCode::kAlreadyExists, "destination exists: " + to);
  }
  if (!fs::is_directory(dest.parent_path(), ec)) {
    return error(ErrorCode::kConflict,
                 "destination parent does not exist: " + parent_path(to));
  }
  if (fs::is_directory(source, ec)) {
    // Recursive copy carries nested .DAV directories along with the
    // data; the engine hook covers whatever the filesystem walk did
    // not (per-resource DBM files ride the tree copy, the
    // consolidated store re-keys the subtree in one batch).
    DAVPSE_RETURN_IF_ERROR(copy_tree(source, dest));
    return props_->on_copied(from, to, /*recursive=*/true);
  }
  fs::copy_file(source, dest, ec);
  if (ec) {
    return error(ErrorCode::kInternal, "copy failed: " + ec.message());
  }
  return props_->on_copied(from, to, /*recursive=*/false);
}

Status FsRepository::move(const std::string& from, const std::string& to) {
  fs::path source = fs_path(from);
  fs::path dest = fs_path(to);
  std::error_code ec;
  if (!fs::exists(source, ec)) {
    return error(ErrorCode::kNotFound, "no such resource: " + from);
  }
  if (fs::exists(dest, ec)) {
    return error(ErrorCode::kAlreadyExists, "destination exists: " + to);
  }
  if (!fs::is_directory(dest.parent_path(), ec)) {
    return error(ErrorCode::kConflict,
                 "destination parent does not exist: " + parent_path(to));
  }
  bool is_dir = fs::is_directory(source, ec);
  fs::rename(source, dest, ec);
  if (ec) {
    // Cross-filesystem fallback: copy + remove, whose engine hooks
    // carry the properties along.
    DAVPSE_RETURN_IF_ERROR(copy(from, to));
    return remove(from);
  }
  DAVPSE_RETURN_IF_ERROR(props_->on_moved(from, to, is_dir));
  if (!is_dir) {
    // Version history follows the document (MOVE preserves identity;
    // COPY deliberately does not duplicate history).
    fs::path source_versions = versions_dir(from);
    if (fs::exists(source_versions, ec)) {
      fs::path dest_versions = versions_dir(to);
      fs::create_directories(dest_versions.parent_path(), ec);
      fs::rename(source_versions, dest_versions, ec);
      if (ec) {
        return error(ErrorCode::kInternal,
                     "version-history move failed: " + ec.message());
      }
    }
  }
  return Status::ok();
}

fs::path FsRepository::versions_dir(const std::string& path) const {
  fs::path target = fs_path(path);
  return target.parent_path() / kDavDirName / "versions" /
         target.filename();
}

Status FsRepository::snapshot_version(const std::string& path, uint32_t n,
                                      std::string_view body) {
  fs::path dir = versions_dir(path);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return error(ErrorCode::kInternal,
                 "cannot create version store for " + path);
  }
  return write_file_atomic(dir / ("v" + std::to_string(n)), body);
}

Status FsRepository::snapshot_version_from_document(const std::string& path,
                                                    uint32_t n) {
  fs::path dir = versions_dir(path);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return error(ErrorCode::kInternal,
                 "cannot create version store for " + path);
  }
  // OS-level copy of the just-written document — streams inside the
  // kernel, never materializing the body in this process.
  fs::copy_file(fs_path(path), dir / ("v" + std::to_string(n)),
                fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return error(ErrorCode::kInternal,
                 "version snapshot failed for " + path + ": " + ec.message());
  }
  return Status::ok();
}

Result<std::string> FsRepository::read_version(const std::string& path,
                                               uint32_t n) const {
  std::string body;
  Status status =
      read_file(versions_dir(path) / ("v" + std::to_string(n)), &body);
  if (!status.is_ok()) {
    return Status(ErrorCode::kNotFound,
                  "no version " + std::to_string(n) + " of " + path);
  }
  return body;
}

Result<std::unique_ptr<http::BodySource>> FsRepository::open_version_source(
    const std::string& path, uint32_t n) const {
  auto source = http::FileBodySource::open(versions_dir(path) /
                                           ("v" + std::to_string(n)));
  if (!source.ok()) {
    return Status(ErrorCode::kNotFound,
                  "no version " + std::to_string(n) + " of " + path);
  }
  return std::unique_ptr<http::BodySource>(std::move(source).value());
}

Status FsRepository::strip_version_history(const std::string& path) {
  std::error_code ec;
  fs::path target = fs_path(path);
  if (fs::is_directory(target, ec)) {
    // Drop every versions store the recursive copy brought along...
    for (auto it = fs::recursive_directory_iterator(target, ec);
         !ec && it != fs::recursive_directory_iterator();
         it.increment(ec)) {
      if (it->is_directory(ec) &&
          it->path().filename() == "versions" &&
          it->path().parent_path().filename() == kDavDirName) {
        fs::remove_all(it->path(), ec);
        it.disable_recursion_pending();
      }
    }
  } else {
    fs::remove_all(versions_dir(path), ec);
  }
  // ...and the version counters from every member's properties (the
  // consolidated engine resolves the subtree via its secondary index
  // instead of walking the filesystem).
  return props_->remove_under(path, internal_props::kVersionCount);
}

std::vector<uint32_t> FsRepository::list_versions(
    const std::string& path) const {
  std::vector<uint32_t> out;
  std::error_code ec;
  for (auto it = fs::directory_iterator(versions_dir(path), ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    std::string name = it->path().filename().string();
    if (name.size() < 2 || name[0] != 'v') continue;
    uint32_t n = 0;
    bool numeric = true;
    for (size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      n = n * 10 + static_cast<uint32_t>(name[i] - '0');
    }
    if (numeric) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t FsRepository::disk_usage(const std::string& path) const {
  // Collections already contain their .DAV bookkeeping (including the
  // consolidated store at the root); document property bytes that
  // live *outside* the resource's own subtree are added by the
  // engine.
  return davpse::disk_usage(fs_path(path)) +
         props_->resource_disk_usage(path);
}

Status FsRepository::compact_all(const std::string& path) {
  return props_->compact_subtree(path);
}

}  // namespace davpse::dav
