// Filesystem-backed resource store, mirroring mod_dav's persistence:
// documents are plain files, collections are directories, and dead
// properties live behind a pluggable PropertyStore under a hidden
// ".DAV" subdirectory — either one DBM file per resource (the paper's
// layout) or a single consolidated WAL-backed store. Users can
// therefore see and manipulate raw data files directly — the
// deployment property the paper calls out ("users still have direct
// access to the raw data files when needed").
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dav/property_store.h"
#include "dav/props.h"
#include "dbm/dbm.h"
#include "http/body.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace davpse::dav {

enum class ResourceKind { kMissing, kDocument, kCollection };

struct ResourceInfo {
  ResourceKind kind = ResourceKind::kMissing;
  uint64_t content_length = 0;   // documents only
  int64_t mtime_seconds = 0;     // unix time
};

class FsRepository {
 public:
  /// `root` must exist and be a directory; it becomes the DAV "/".
  /// `metrics` (optional) receives "dav.props.db_reads" /
  /// "dav.props.db_writes" counts from every property access. `engine`
  /// selects the dead-property backend: the paper-faithful
  /// DBM-per-resource layout, or the consolidated WAL-backed store.
  FsRepository(std::filesystem::path root, dbm::Flavor flavor,
               obs::Registry* metrics = nullptr,
               PropertyEngine engine = PropertyEngine::kDbmPerResource);

  // -- inspection -------------------------------------------------------

  ResourceInfo stat(const std::string& path) const;
  bool exists(const std::string& path) const {
    return stat(path).kind != ResourceKind::kMissing;
  }

  /// Child *names* of a collection (".DAV" bookkeeping is hidden).
  Result<std::vector<std::string>> list_children(
      const std::string& path) const;

  // -- documents --------------------------------------------------------

  Result<std::string> read_document(const std::string& path) const;

  /// Streaming read: the returned source reads the document file in
  /// blocks, so a GET never needs the whole object in memory. The file
  /// stays readable through the source even if the document is
  /// replaced or removed meanwhile (POSIX: writes are tmp+rename,
  /// deletes are unlink — the open descriptor pins the old inode).
  Result<std::unique_ptr<http::BodySource>> open_document_source(
      const std::string& path) const;

  /// Creates or replaces. kConflict if the parent collection is
  /// missing (RFC 2518 PUT semantics); kMethodNotAllowed surfaces as
  /// kConflict too if the target is a collection.
  Status write_document(const std::string& path, std::string_view body);

  /// Streaming write: drains `body` to a temp file in blocks and
  /// renames it into place, with the same conflict checks as
  /// write_document. Peak memory is O(block) regardless of size.
  Status write_document_from(const std::string& path,
                             http::BodySource* body);

  /// Drains `body` into a uniquely named file under the hidden spool
  /// area (<root>/.DAV/spool) and returns its path. Lets the server
  /// take a slow network body off the wire *before* acquiring its
  /// store lock; the spooled file is later promoted (or discarded) in
  /// a cheap local operation. Thread-safe without external locking.
  Result<std::filesystem::path> spool_body(http::BodySource* body);

  /// Promotes a spooled body into place as document `path` with the
  /// same conflict checks as write_document (rename within the root
  /// filesystem, so it is atomic and O(1)). The spool file is removed
  /// on failure, so callers never leak it.
  Status write_document_spooled(const std::string& path,
                                const std::filesystem::path& spool);

  // -- collections ------------------------------------------------------

  /// kAlreadyExists if anything is there; kConflict without a parent.
  Status make_collection(const std::string& path);

  // -- shared operations -------------------------------------------------

  /// Removes a document or a whole collection subtree (with all
  /// property databases).
  Status remove(const std::string& path);

  /// Deep copy `from` → `to`, including dead properties. `to` must not
  /// exist (the server layer handles Overwrite by deleting first).
  Status copy(const std::string& from, const std::string& to);

  /// Rename; falls back to copy+delete across filesystems.
  Status move(const std::string& from, const std::string& to);

  /// Dead-property handle for a resource, backed by whichever engine
  /// the repository was constructed with.
  ResourceProps properties(const std::string& path) const {
    return ResourceProps(props_.get(), path);
  }

  /// The engine behind properties() — for batched access (get_many),
  /// index queries, and engine-specific bench instrumentation.
  PropertyStore& property_store() const { return *props_; }
  PropertyEngine property_engine() const { return engine_; }

  // -- linear version history (DeltaV-lite; see dav/server.h) ------------
  // Version snapshots live beside the property DBs in the hidden .DAV
  // directory: <parent>/.DAV/versions/<name>/v<N>.

  /// Stores the document's snapshot as version `n`.
  Status snapshot_version(const std::string& path, uint32_t n,
                          std::string_view body);
  /// Snapshots the document's *current on-disk contents* as version
  /// `n` via an OS-level file copy — the streamed-PUT path, where the
  /// body went straight to disk and cannot be replayed from memory.
  Status snapshot_version_from_document(const std::string& path, uint32_t n);
  /// kNotFound when the version does not exist.
  Result<std::string> read_version(const std::string& path, uint32_t n) const;
  /// Streaming counterpart of read_version.
  Result<std::unique_ptr<http::BodySource>> open_version_source(
      const std::string& path, uint32_t n) const;
  /// Ascending version numbers present for the resource.
  std::vector<uint32_t> list_versions(const std::string& path) const;

  /// Removes version history and version-control bookkeeping from a
  /// resource and (recursively) all of its members. COPY destinations
  /// must come out unversioned (DeltaV: a copy is a new resource).
  Status strip_version_history(const std::string& path);

  /// Total bytes on disk under a resource (documents + property DBMs),
  /// for the §3.2.4 experiments.
  uint64_t disk_usage(const std::string& path) const;

  /// Runs DBM garbage collection over every property database under
  /// `path` (the paper's "manual garbage collection utilities").
  Status compact_all(const std::string& path);

  const std::filesystem::path& root() const { return root_; }
  dbm::Flavor flavor() const { return flavor_; }

 private:
  std::filesystem::path fs_path(const std::string& path) const;
  std::filesystem::path versions_dir(const std::string& path) const;

  std::filesystem::path root_;
  dbm::Flavor flavor_;
  PropertyEngine engine_;
  std::unique_ptr<PropertyStore> props_;
  std::atomic<uint64_t> spool_counter_{0};
};

}  // namespace davpse::dav
