#include "dav/consolidated_props.h"

#include "dav/props.h"
#include "util/uri.h"

namespace davpse::dav {

namespace {

using Op = dbm::ConsolidatedStore::Op;

std::string key_of(const xml::QName& name) {
  return PropertyDb::encode_key(name);
}

}  // namespace

ConsolidatedPropertyStore::ConsolidatedPropertyStore(
    const std::filesystem::path& root, obs::Counter* reads,
    obs::Counter* writes, dbm::ConsolidatedOptions options)
    : reads_metric_(reads), writes_metric_(writes) {
  auto store =
      dbm::ConsolidatedStore::open(root / kDavDirName / "propstore", options);
  if (store.ok()) {
    store_ = std::move(store).value();
  } else {
    open_status_ = store.status();
  }
}

Status ConsolidatedPropertyStore::ready() const {
  if (store_ != nullptr) return Status::ok();
  return open_status_;
}

Result<PropertyValue> ConsolidatedPropertyStore::get(
    const std::string& path, const xml::QName& name) const {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  auto raw = store_->fetch(path, key_of(name));
  if (!raw.ok()) return raw.status();
  return PropertyValue{std::move(raw).value()};
}

Result<PropertyList> ConsolidatedPropertyStore::get_all(
    const std::string& path) const {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  PropertyList out;
  for (auto& [key, value] : store_->fetch_all(path)) {
    out.emplace_back(PropertyDb::decode_key(key),
                     PropertyValue{std::move(value)});
  }
  return out;
}

Result<std::vector<xml::QName>> ConsolidatedPropertyStore::names(
    const std::string& path) const {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  std::vector<xml::QName> out;
  for (const auto& [key, value] : store_->fetch_all(path)) {
    out.push_back(PropertyDb::decode_key(key));
  }
  return out;
}

Status ConsolidatedPropertyStore::set(const std::string& path,
                                      const PropertyList& batch) {
  if (batch.empty()) return Status::ok();
  DAVPSE_RETURN_IF_ERROR(ready());
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  std::vector<Op> ops;
  ops.reserve(batch.size());
  for (const auto& [name, value] : batch) {
    ops.push_back(Op::set(path, key_of(name), value.inner_xml));
  }
  return store_->apply(ops);
}

Status ConsolidatedPropertyStore::remove(
    const std::string& path, const std::vector<xml::QName>& names) {
  if (names.empty()) return Status::ok();
  DAVPSE_RETURN_IF_ERROR(ready());
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  std::vector<Op> ops;
  ops.reserve(names.size());
  for (const auto& name : names) {
    // Removing an absent property is a no-op success (RFC 2518), which
    // is already the engine's semantics for kRemoveKey.
    ops.push_back(Op::remove_key(path, key_of(name)));
  }
  return store_->apply(ops);
}

Status ConsolidatedPropertyStore::compact(const std::string&) {
  // Nothing per-resource to collect: dead record space lives in the
  // WAL, reclaimed by checkpoints.
  return ready();
}

Result<std::vector<PropertyList>> ConsolidatedPropertyStore::get_many(
    const std::vector<std::string>& paths,
    const std::vector<xml::QName>& names) const {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  std::vector<std::string> keys;
  keys.reserve(names.size());
  for (const auto& name : names) keys.push_back(key_of(name));
  std::vector<PropertyList> out;
  out.reserve(paths.size());
  for (auto& list : store_->fetch_many(paths, keys)) {
    PropertyList props;
    props.reserve(list.size());
    for (auto& [key, value] : list) {
      props.emplace_back(PropertyDb::decode_key(key),
                         PropertyValue{std::move(value)});
    }
    out.push_back(std::move(props));
  }
  return out;
}

Status ConsolidatedPropertyStore::on_removed(const std::string& path, bool) {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  return store_->apply({Op::remove_tree(path)});
}

Status ConsolidatedPropertyStore::on_copied(const std::string& from,
                                            const std::string& to, bool) {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  return store_->apply({Op::copy_tree(from, to)});
}

Status ConsolidatedPropertyStore::on_moved(const std::string& from,
                                           const std::string& to, bool) {
  DAVPSE_RETURN_IF_ERROR(ready());
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  return store_->apply({Op::move_tree(from, to)});
}

Status ConsolidatedPropertyStore::remove_under(const std::string& path,
                                               const xml::QName& name) {
  DAVPSE_RETURN_IF_ERROR(ready());
  // The index hands us exactly the resources that define the property.
  std::vector<Op> ops;
  for (const std::string& resource :
       store_->resources_with_key(key_of(name))) {
    if (path_is_within(resource, path)) {
      ops.push_back(Op::remove_key(resource, key_of(name)));
    }
  }
  if (ops.empty()) return Status::ok();
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  return store_->apply(ops);
}

Status ConsolidatedPropertyStore::compact_subtree(const std::string&) {
  DAVPSE_RETURN_IF_ERROR(ready());
  // The whole-store equivalent of per-file DBM garbage collection:
  // fold the WAL into fresh shard images.
  return store_->checkpoint();
}

Result<std::vector<std::string>>
ConsolidatedPropertyStore::resources_with_property(
    const xml::QName& name, const std::string& scope) const {
  DAVPSE_RETURN_IF_ERROR(ready());
  std::vector<std::string> out;
  for (std::string& resource : store_->resources_with_key(key_of(name))) {
    if (path_is_within(resource, scope)) out.push_back(std::move(resource));
  }
  return out;
}

}  // namespace davpse::dav
