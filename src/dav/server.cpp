#include "dav/server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>
#include <set>

#include "dav/search.h"
#include "http/body.h"
#include "util/clock.h"
#include "util/strings.h"
#include "util/uri.h"
#include "xml/escape.h"
#include "xml/writer.h"

namespace davpse::dav {
namespace {

using http::HttpRequest;
using http::HttpResponse;

const xml::QName kMultistatus = xml::dav_name("multistatus");
const xml::QName kResponse = xml::dav_name("response");
const xml::QName kHref = xml::dav_name("href");
const xml::QName kPropstat = xml::dav_name("propstat");
const xml::QName kProp = xml::dav_name("prop");
const xml::QName kStatus = xml::dav_name("status");
const xml::QName kPropfind = xml::dav_name("propfind");
const xml::QName kAllprop = xml::dav_name("allprop");
const xml::QName kPropname = xml::dav_name("propname");
const xml::QName kPropertyUpdate = xml::dav_name("propertyupdate");
const xml::QName kSet = xml::dav_name("set");
const xml::QName kRemove = xml::dav_name("remove");
const xml::QName kResourceType = xml::dav_name("resourcetype");
const xml::QName kCollection = xml::dav_name("collection");
const xml::QName kGetContentLength = xml::dav_name("getcontentlength");
const xml::QName kGetLastModified = xml::dav_name("getlastmodified");
const xml::QName kCreationDate = xml::dav_name("creationdate");
const xml::QName kGetEtag = xml::dav_name("getetag");
const xml::QName kGetContentType = xml::dav_name("getcontenttype");
const xml::QName kDisplayName = xml::dav_name("displayname");
const xml::QName kSupportedLock = xml::dav_name("supportedlock");
const xml::QName kLockDiscovery = xml::dav_name("lockdiscovery");
const xml::QName kLockInfo = xml::dav_name("lockinfo");
const xml::QName kLockScopeEl = xml::dav_name("lockscope");
const xml::QName kExclusive = xml::dav_name("exclusive");
const xml::QName kShared = xml::dav_name("shared");
const xml::QName kLockType = xml::dav_name("locktype");
const xml::QName kWrite = xml::dav_name("write");
const xml::QName kOwner = xml::dav_name("owner");
const xml::QName kActiveLock = xml::dav_name("activelock");
const xml::QName kDepthEl = xml::dav_name("depth");
const xml::QName kTimeoutEl = xml::dav_name("timeout");
const xml::QName kLockToken = xml::dav_name("locktoken");

const xml::QName& kContentTypeProp = internal_props::kContentType;
const xml::QName& kVersionCountProp = internal_props::kVersionCount;
const xml::QName kVersionName = xml::dav_name("version-name");
const xml::QName kVersionTree = xml::dav_name("version-tree");

/// Parses the internal version counter; 0 when absent/invalid.
uint32_t version_count_of(const ResourceProps& db) {
  auto stored = db.find(kVersionCountProp);
  if (!stored) return 0;
  uint32_t n = 0;
  for (char c : stored->inner_xml) {
    if (c < '0' || c > '9') return 0;
    n = n * 10 + static_cast<uint32_t>(c - '0');
  }
  return n;
}

enum class Depth { kZero, kOne, kInfinity };

Depth parse_depth(const HttpRequest& request, Depth fallback) {
  auto header = request.headers.get("Depth");
  if (!header) return fallback;
  auto value = trim(*header);
  if (value == "0") return Depth::kZero;
  if (value == "1") return Depth::kOne;
  return Depth::kInfinity;
}

int status_from(const Status& status) {
  switch (status.code()) {
    case ErrorCode::kOk: return http::kOk;
    case ErrorCode::kNotFound: return http::kNotFound;
    case ErrorCode::kAlreadyExists: return http::kPreconditionFailed;
    case ErrorCode::kInvalidArgument: return http::kBadRequest;
    case ErrorCode::kMalformed: return http::kBadRequest;
    case ErrorCode::kConflict: return http::kConflict;
    case ErrorCode::kLocked: return http::kLocked;
    case ErrorCode::kTooLarge: return http::kInsufficientStorage;
    case ErrorCode::kPermissionDenied: return http::kForbidden;
    case ErrorCode::kUnsupported: return http::kNotImplemented;
    default: return http::kInternalError;
  }
}

HttpResponse error_response(const Status& status) {
  return HttpResponse::make(status_from(status), status.to_string() + "\n");
}

/// RFC 1123 date, cached per timestamp per thread: a depth-1 PROPFIND
/// renders getlastmodified for dozens of siblings that typically share
/// an mtime, and strftime+gmtime_r is the dominant cost of the row.
const std::string& http_date(int64_t unix_seconds) {
  thread_local int64_t formatted_for = INT64_MIN;
  thread_local std::string cached;
  if (unix_seconds != formatted_for) {
    char buf[64];
    std::time_t t = static_cast<std::time_t>(unix_seconds);
    std::tm tm_utc{};
    gmtime_r(&t, &tm_utc);
    std::strftime(buf, sizeof buf, "%a, %d %b %Y %H:%M:%S GMT", &tm_utc);
    cached = buf;
    formatted_for = unix_seconds;
  }
  return cached;
}

/// Strong validator from the stat the repository already did:
/// "mtime-length", formatted into a stack buffer. Single source of
/// truth for GET validators, DAV:getetag, and If-Match checks.
std::string etag_of(const ResourceInfo& info) {
  char buf[48];
  int len = std::snprintf(
      buf, sizeof buf, "\"%lld-%llu\"",
      static_cast<long long>(info.mtime_seconds),
      static_cast<unsigned long long>(info.content_length));
  return std::string(buf, static_cast<size_t>(len));
}

/// RFC 7232 If-Match: true when the header's ETag list covers the
/// resource's current state. "*" matches any existing resource; a
/// missing resource fails every form, including "*" — so a client that
/// read version X can never silently overwrite (or delete) version Y
/// written by someone else, the lost-update race the paper's
/// versioning story exists to prevent.
bool if_match_passes(std::string_view header, const ResourceInfo& info) {
  if (info.kind == ResourceKind::kMissing) return false;
  auto presented = trim(header);
  if (presented == "*") return true;
  std::string etag = etag_of(info);
  for (const auto& candidate : split(presented, ',')) {
    if (trim(candidate) == etag) return true;
  }
  return false;
}

std::string iso_date(int64_t unix_seconds) {
  char buf[64];
  std::time_t t = static_cast<std::time_t>(unix_seconds);
  std::tm tm_utc{};
  gmtime_r(&t, &tm_utc);
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return buf;
}

/// Serializes the content of a property element (text + child
/// elements) for storage; children keep their namespace declarations.
std::string inner_xml_of(const xml::Element& element) {
  std::string out = xml::escape_text(element.text());
  for (const auto& child : element.children()) {
    out += child->to_xml();
  }
  return out;
}

/// Extracts a lock token from an If or Lock-Token header value:
/// anything of the form <opaquelocktoken:...>.
std::optional<std::string> extract_token(std::string_view header_value) {
  auto begin = header_value.find("<opaquelocktoken:");
  if (begin == std::string_view::npos) return std::nullopt;
  auto end = header_value.find('>', begin);
  if (end == std::string_view::npos) return std::nullopt;
  return std::string(header_value.substr(begin + 1, end - begin - 1));
}

std::optional<std::string> presented_token(const HttpRequest& request) {
  if (auto value = request.headers.get("If")) {
    if (auto token = extract_token(*value)) return token;
  }
  if (auto value = request.headers.get("Lock-Token")) {
    if (auto token = extract_token(*value)) return token;
  }
  return std::nullopt;
}

/// Writes one <D:response> with found/missing propstat groups.
struct PropstatGroups {
  // (name, inner xml) pairs found on the resource
  std::vector<std::pair<xml::QName, std::string>> found;
  std::vector<xml::QName> missing;
  bool names_only = false;  // propname: emit found names w/o values
};

void write_response_element(xml::XmlWriter* writer, const std::string& href,
                            const PropstatGroups& groups) {
  writer->start_element(kResponse);
  writer->text_element(kHref, percent_encode_path(href));
  if (!groups.found.empty() || groups.missing.empty()) {
    writer->start_element(kPropstat);
    writer->start_element(kProp);
    for (const auto& [name, inner] : groups.found) {
      writer->start_element(name);
      if (!groups.names_only && !inner.empty()) writer->raw(inner);
      writer->end_element();
    }
    writer->end_element();
    writer->text_element(kStatus, "HTTP/1.1 200 OK");
    writer->end_element();
  }
  if (!groups.missing.empty()) {
    writer->start_element(kPropstat);
    writer->start_element(kProp);
    for (const auto& name : groups.missing) {
      writer->empty_element(name);
    }
    writer->end_element();
    writer->text_element(kStatus, "HTTP/1.1 404 Not Found");
    writer->end_element();
  }
  writer->end_element();
}

void write_lock_xml(xml::XmlWriter* writer, const Lock& lock) {
  writer->start_element(kActiveLock);
  writer->start_element(kLockType);
  writer->empty_element(kWrite);
  writer->end_element();
  writer->start_element(kLockScopeEl);
  writer->empty_element(lock.scope == LockScope::kExclusive ? kExclusive
                                                            : kShared);
  writer->end_element();
  writer->text_element(kDepthEl,
                       lock.depth_infinity ? "infinity" : "0");
  if (!lock.owner.empty()) {
    writer->start_element(kOwner);
    writer->raw(lock.owner);
    writer->end_element();
  }
  writer->text_element(kTimeoutEl, lock.expires_at == 0
                                       ? std::string("Infinite")
                                       : "Second-600");
  writer->start_element(kLockToken);
  writer->text_element(kHref, lock.token);
  writer->end_element();
  writer->end_element();
}

}  // namespace

/// Streams a PROPFIND multistatus document through the incremental XML
/// writer, one batch of <D:response> elements per refill — peak memory
/// is O(one batch) regardless of how many resources the listing
/// covers, where the eager path holds the entire serialized document.
///
/// Locking contract: the PROPFIND handler collects the target list
/// under the store's shared lock, returns, and the HTTP server pumps
/// this source to the socket afterwards (the streaming-GET precedent).
/// Each refill re-acquires the shared lock for its batch, so individual
/// responses are always internally consistent, but a writer may
/// interleave between batches — multistatus never promised a
/// whole-response snapshot, and a resource deleted mid-stream simply
/// reports its properties as missing.
class MultistatusStreamSource final : public http::BodySource {
 public:
  MultistatusStreamSource(DavServer* server, std::vector<std::string> targets,
                          DavServer::PropfindMode mode,
                          std::vector<xml::QName> wanted)
      : server_(server),
        targets_(std::move(targets)),
        mode_(mode),
        wanted_(std::move(wanted)) {
    writer_.prefer_prefix(xml::kDavNamespace, "D");
    writer_.declaration();
    writer_.start_element(kMultistatus);
  }

  Result<size_t> read(char* buf, size_t max) override {
    if (offset_ == pending_.size()) {
      pending_.clear();
      offset_ = 0;
      refill();
    }
    size_t n = std::min(max, pending_.size() - offset_);
    std::memcpy(buf, pending_.data() + offset_, n);
    offset_ += n;
    return n;
  }

 private:
  /// Targets marshaled per shared-lock acquisition: large enough to
  /// amortize the lock and fill wire-level chunk frames, small enough
  /// to bound both peak memory and writer starvation.
  static constexpr size_t kBatchTargets = 16;

  void refill() {
    while (pending_.size() < http::kBodyBlockSize && !closed_) {
      std::shared_lock<std::shared_mutex> lock(server_->store_mutex_);
      size_t batch_end =
          std::min(next_ + kBatchTargets, targets_.size());
      // One engine pass per batch: the prefetched snapshots turn the
      // per-target property reads below into local lookups.
      std::vector<std::string> batch(targets_.begin() + next_,
                                     targets_.begin() + batch_end);
      std::vector<ResourceProps> props =
          server_->prefetch_properties(batch, mode_, wanted_);
      for (size_t i = 0; next_ < batch_end; ++next_, ++i) {
        server_->emit_propfind_target(&writer_, targets_[next_], mode_,
                                      wanted_, props[i]);
      }
      if (next_ == targets_.size()) {
        writer_.end_element();  // </D:multistatus>
        closed_ = true;
      }
      writer_.drain_pending(&pending_);
    }
  }

  DavServer* server_;
  std::vector<std::string> targets_;
  DavServer::PropfindMode mode_;
  std::vector<xml::QName> wanted_;
  xml::XmlWriter writer_;
  std::string pending_;
  size_t offset_ = 0;
  size_t next_ = 0;
  bool closed_ = false;
};

// Mutating methods must honor DAV locks: proceed only when the
// resource is unlocked or the request presents the covering token.
#define DAVPSE_DAV_CHECK_LOCK(path, request)                      \
  do {                                                            \
    Status lock_status =                                          \
        locks_.check_write((path), presented_token(request));     \
    if (!lock_status.is_ok()) return error_response(lock_status); \
  } while (0)

DavServer::DavServer(DavConfig config)
    : config_(std::move(config)),
      metrics_(obs::registry_or_global(config_.metrics)),
      tail_sampler_(config_.tail_sampler != nullptr
                        ? *config_.tail_sampler
                        : obs::TailSampler::global()),
      request_metrics_(metrics_, "dav.server.requests.",
                       "dav.server.latency_seconds.",
                       /*exemplars=*/true),
      repository_(config_.root, config_.flavor, &metrics_,
                  config_.property_engine) {
  locks_.set_metrics(&metrics_);
}

HttpResponse DavServer::handle(const HttpRequest& request) {
  auto uri = parse_uri(request.target);
  if (!uri.ok()) return error_response(uri.status());
  auto normalized = normalize_path(uri.value().path);
  if (!normalized.ok()) return error_response(normalized.status());
  const std::string& path = normalized.value();

  // Observability endpoints: they read the registry / tail sampler but
  // never contribute to them — scraping must not perturb the DAV
  // method counters it reports. Known scrape paths answer only GET and
  // HEAD; other methods get an explicit 405 instead of falling through
  // to DAV dispatch (a PUT to /.well-known/stats must not create a
  // resource shadowing the endpoint).
  if (path == "/.well-known/stats" || path == "/.well-known/metrics" ||
      path == "/.well-known/traces" || path == "/.well-known/history" ||
      path == "/.well-known/health") {
    if (request.method != "GET" && request.method != "HEAD") {
      HttpResponse response = HttpResponse::make(
          http::kMethodNotAllowed,
          "observability endpoints are read-only\n");
      response.headers.set("Allow", "GET, HEAD");
      return response;
    }
    bool head_only = request.method == "HEAD";
    if (path == "/.well-known/stats") return do_stats(head_only);
    if (path == "/.well-known/metrics") return do_metrics(head_only);
    if (path == "/.well-known/history") return do_history(head_only);
    if (path == "/.well-known/health") return do_health(head_only);
    return do_traces(head_only);
  }

  obs::Span span("dav." + request.method);
  double started = wall_time_seconds();
  HttpResponse response = dispatch(request, path);
  request_metrics_.record(request.method, wall_time_seconds() - started);
  return response;
}

HttpResponse DavServer::do_stats(bool head_only) {
  HttpResponse response = HttpResponse::make(
      http::kOk, metrics_.snapshot().to_json(), "application/json");
  if (head_only) response.body.clear();
  return response;
}

HttpResponse DavServer::do_metrics(bool head_only) {
  // Same snapshot path as /.well-known/stats — the two expositions can
  // never disagree about what the registry held.
  HttpResponse response = HttpResponse::make(
      http::kOk, metrics_.snapshot().to_prometheus(),
      "text/plain; version=0.0.4; charset=utf-8");
  if (head_only) response.body.clear();
  return response;
}

HttpResponse DavServer::do_traces(bool head_only) {
  HttpResponse response = HttpResponse::make(
      http::kOk, tail_sampler_.to_json(), "application/json");
  if (head_only) response.body.clear();
  return response;
}

HttpResponse DavServer::do_history(bool head_only) {
  if (config_.recorder == nullptr) {
    return HttpResponse::make(http::kNotFound,
                              "no flight recorder configured\n");
  }
  HttpResponse response = HttpResponse::make(
      http::kOk, config_.recorder->history_json(), "application/json");
  if (head_only) response.body.clear();
  return response;
}

HttpResponse DavServer::do_health(bool head_only) {
  if (config_.recorder == nullptr) {
    return HttpResponse::make(http::kNotFound,
                              "no flight recorder configured\n");
  }
  // Readiness-probe semantics: an overloaded verdict answers 503 so a
  // dumb HTTP checker (or load balancer) can act on the status line
  // alone; ok and degraded both answer 200 — degraded is a warning,
  // not a reason to drain traffic.
  obs::FlightRecorder::Health health = config_.recorder->health();
  int status =
      health.verdict == obs::FlightRecorder::Verdict::kOverloaded
          ? http::kServiceUnavailable
          : http::kOk;
  HttpResponse response = HttpResponse::make(
      status, config_.recorder->health_json(), "application/json");
  if (head_only) response.body.clear();
  return response;
}

HttpResponse DavServer::dispatch(const HttpRequest& request,
                                 const std::string& path) {
  const std::string& method = request.method;
  if (method == "OPTIONS") return do_options(request);
  if (method == "GET") return do_get(request, path, /*head_only=*/false);
  if (method == "HEAD") return do_get(request, path, /*head_only=*/true);
  if (method == "PUT") return do_put(request, path);
  if (method == "DELETE") return do_delete(request, path);
  if (method == "MKCOL") return do_mkcol(request, path);
  if (method == "COPY") return do_copy_move(request, path, /*move=*/false);
  if (method == "MOVE") return do_copy_move(request, path, /*move=*/true);
  if (method == "PROPFIND") return do_propfind(request, path);
  if (method == "PROPPATCH") return do_proppatch(request, path);
  if (method == "LOCK") return do_lock(request, path);
  if (method == "UNLOCK") return do_unlock(request, path);
  if (method == "SEARCH") return do_search(request);
  if (method == "VERSION-CONTROL") return do_version_control(request, path);
  if (method == "REPORT") return do_report(request, path);
  HttpResponse response = HttpResponse::make(
      http::kMethodNotAllowed, "method not supported: " + method + "\n");
  response.headers.set(
      "Allow",
      "OPTIONS, GET, HEAD, PUT, DELETE, MKCOL, COPY, MOVE, PROPFIND, "
      "PROPPATCH, LOCK, UNLOCK, SEARCH");
  return response;
}

HttpResponse DavServer::do_options(const HttpRequest&) {
  HttpResponse response = HttpResponse::make(http::kOk);
  response.headers.set("DAV", "1,2,version-control");
  response.headers.set("DASL", "<DAV:basicsearch>");
  response.headers.set("MS-Author-Via", "DAV");
  response.headers.set(
      "Allow",
      "OPTIONS, GET, HEAD, PUT, DELETE, MKCOL, COPY, MOVE, PROPFIND, "
      "PROPPATCH, LOCK, UNLOCK, SEARCH, VERSION-CONTROL, REPORT");
  return response;
}

HttpResponse DavServer::do_get(const HttpRequest& request,
                               const std::string& path, bool head_only) {
  std::shared_lock<std::shared_mutex> lock(store_mutex_);
  ResourceInfo info = repository_.stat(path);
  if (info.kind == ResourceKind::kMissing) {
    return HttpResponse::make(http::kNotFound, "no such resource\n");
  }
  // Conditional GET: validators let the layered client cache
  // revalidate documents for the cost of one header exchange.
  std::string etag = etag_of(info);
  if (info.kind == ResourceKind::kDocument) {
    if (auto if_none_match = request.headers.get("If-None-Match")) {
      auto presented = trim(*if_none_match);
      if (presented == "*" || presented == etag) {
        HttpResponse response = HttpResponse::make(304);
        response.headers.set("ETag", etag);
        return response;
      }
    }
    // DeltaV-lite: retrieve a historical version of a version-
    // controlled document (X-Version: N; see do_version_control).
    if (auto requested = request.headers.get_uint("X-Version")) {
      auto source = repository_.open_version_source(
          path, static_cast<uint32_t>(*requested));
      if (!source.ok()) return error_response(source.status());
      HttpResponse response = HttpResponse::make(http::kOk);
      response.headers.set("Content-Type", "application/octet-stream");
      response.headers.set("X-Version", std::to_string(*requested));
      if (!head_only) response.body_source = std::move(source).value();
      return response;
    }
  }
  if (info.kind == ResourceKind::kCollection) {
    // Browsable listing — "users can run standard Web browsers to
    // 'surf' the Ecce database".
    auto children = repository_.list_children(path);
    if (!children.ok()) return error_response(children.status());
    std::string html = "<html><body><h1>Index of " +
                       xml::escape_text(path) + "</h1><ul>\n";
    for (const auto& name : children.value()) {
      std::string child_href = percent_encode_path(join_path(path, name));
      html += "<li><a href=\"" + child_href + "\">" +
              xml::escape_text(name) + "</a></li>\n";
    }
    html += "</ul></body></html>\n";
    HttpResponse response =
        HttpResponse::make(http::kOk, std::move(html), "text/html");
    if (head_only) response.body.clear();
    return response;
  }
  HttpResponse response = HttpResponse::make(http::kOk);
  auto content_type = repository_.properties(path).find(kContentTypeProp);
  response.headers.set("Content-Type",
                       content_type ? content_type->inner_xml
                                    : "application/octet-stream");
  response.headers.set("Last-Modified", http_date(info.mtime_seconds));
  response.headers.set("ETag", etag);
  if (!head_only) {
    // Streaming GET: the response carries an open file source; the
    // HTTP server pumps it to the socket in blocks *after* this
    // handler returns (and after store_mutex_ is released). Safe on
    // POSIX — writes are tmp+rename and deletes are unlink, so the
    // open descriptor keeps this version of the document readable.
    auto source = repository_.open_document_source(path);
    if (!source.ok()) return error_response(source.status());
    response.body_source = std::move(source).value();
  } else {
    response.headers.set("Content-Length",
                         std::to_string(info.content_length));
  }
  return response;
}

HttpResponse DavServer::do_put(const HttpRequest& request,
                               const std::string& path) {
  // Streaming PUT: the body flows wire → spool file in blocks (peak
  // memory O(block) no matter how large the upload is) *before* the
  // store lock is taken — draining the socket inside the exclusive
  // section would let one slow client stall every other request for
  // the whole network transfer. Promotion below is a local rename.
  std::optional<std::filesystem::path> spooled;
  if (request.body_source != nullptr) {
    auto spool = repository_.spool_body(request.body_source.get());
    if (!spool.ok()) {
      const Status& status = spool.status();
      if (status.code() == ErrorCode::kTooLarge) {
        // The *wire-level* body limit tripped mid-decode — that is
        // 413, not the 507 the repository-quota mapping would give.
        return HttpResponse::make(http::kRequestTooLarge,
                                  status.message() + "\n");
      }
      if (status.code() == ErrorCode::kUnavailable) {
        return HttpResponse::make(http::kBadRequest,
                                  "request body truncated\n");
      }
      if (status.code() == ErrorCode::kTimeout) {
        // The peer stalled mid-upload past the server's per-request
        // read deadline.
        return HttpResponse::make(http::kRequestTimeout,
                                  "request body timed out\n");
      }
      return error_response(status);
    }
    spooled = std::move(spool).value();
  }
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  Status lock_status = locks_.check_write(path, presented_token(request));
  if (!lock_status.is_ok()) {
    if (spooled) {
      std::error_code ec;
      std::filesystem::remove(*spooled, ec);
    }
    return error_response(lock_status);
  }
  // If-Match under the exclusive lock: the stat and the overwrite are
  // atomic, so a stale ETag can never slip through between check and
  // write.
  if (auto if_match = request.headers.get("If-Match")) {
    if (!if_match_passes(*if_match, repository_.stat(path))) {
      if (spooled) {
        std::error_code ec;
        std::filesystem::remove(*spooled, ec);
      }
      return HttpResponse::make(http::kPreconditionFailed,
                                "If-Match precondition failed\n");
    }
  }
  bool existed = repository_.exists(path);
  Status status;
  if (spooled) {
    // Conflict checks + rename under the lock; write_document_spooled
    // removes the spool file itself on failure.
    status = repository_.write_document_spooled(path, *spooled);
    if (!status.is_ok()) return error_response(status);
  } else {
    status = repository_.write_document(path, request.body);
    if (!status.is_ok()) return error_response(status);
  }
  ResourceProps db = repository_.properties(path);
  if (auto content_type = request.headers.get("Content-Type")) {
    Status prop_status = db.set(
        {{kContentTypeProp, PropertyValue{std::string(*content_type)}}});
    if (!prop_status.is_ok()) return error_response(prop_status);
  }
  // Auto-versioning: every PUT to a version-controlled resource
  // checks in a new version (DeltaV-lite; see do_version_control).
  uint32_t versions = version_count_of(db);
  if (versions > 0) {
    uint32_t next = versions + 1;
    // A streamed body cannot be replayed from memory; snapshot from
    // the document just written instead.
    Status snap =
        request.body_source != nullptr
            ? repository_.snapshot_version_from_document(path, next)
            : repository_.snapshot_version(path, next, request.body);
    if (!snap.is_ok()) return error_response(snap);
    Status count = db.set(
        {{kVersionCountProp, PropertyValue{std::to_string(next)}}});
    if (!count.is_ok()) return error_response(count);
  }
  return HttpResponse::make(existed ? http::kNoContent : http::kCreated);
}

HttpResponse DavServer::do_delete(const HttpRequest& request,
                                  const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  DAVPSE_DAV_CHECK_LOCK(path, request);
  if (path == "/") {
    return HttpResponse::make(http::kForbidden, "cannot DELETE root\n");
  }
  if (auto if_match = request.headers.get("If-Match")) {
    if (!if_match_passes(*if_match, repository_.stat(path))) {
      return HttpResponse::make(http::kPreconditionFailed,
                                "If-Match precondition failed\n");
    }
  }
  Status status = repository_.remove(path);
  if (!status.is_ok()) return error_response(status);
  locks_.forget_subtree(path);
  return HttpResponse::make(http::kNoContent);
}

HttpResponse DavServer::do_mkcol(const HttpRequest& request,
                                 const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  DAVPSE_DAV_CHECK_LOCK(path, request);
  if (!request.body.empty()) {
    return HttpResponse::make(http::kUnsupportedMediaType,
                              "MKCOL request bodies are not supported\n");
  }
  Status status = repository_.make_collection(path);
  if (!status.is_ok()) {
    if (status.code() == ErrorCode::kAlreadyExists) {
      return HttpResponse::make(http::kMethodNotAllowed,
                                "resource already exists\n");
    }
    return error_response(status);
  }
  return HttpResponse::make(http::kCreated);
}

HttpResponse DavServer::do_copy_move(const HttpRequest& request,
                                     const std::string& path, bool move) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  auto destination_header = request.headers.get("Destination");
  if (!destination_header) {
    return HttpResponse::make(http::kBadRequest,
                              "Destination header required\n");
  }
  auto dest_uri = parse_uri(*destination_header);
  if (!dest_uri.ok()) return error_response(dest_uri.status());
  auto dest_norm = normalize_path(dest_uri.value().path);
  if (!dest_norm.ok()) return error_response(dest_norm.status());
  const std::string& dest = dest_norm.value();
  if (dest == path || path_is_within(dest, path)) {
    return HttpResponse::make(
        http::kForbidden, "destination is the source or lies within it\n");
  }
  DAVPSE_DAV_CHECK_LOCK(dest, request);
  if (move) DAVPSE_DAV_CHECK_LOCK(path, request);

  bool overwrite = true;
  if (auto value = request.headers.get("Overwrite")) {
    overwrite = !iequals(trim(*value), "F");
  }
  bool dest_existed = repository_.exists(dest);
  if (dest_existed) {
    if (!overwrite) {
      return HttpResponse::make(http::kPreconditionFailed,
                                "destination exists and Overwrite is F\n");
    }
    Status status = repository_.remove(dest);
    if (!status.is_ok()) return error_response(status);
    locks_.forget_subtree(dest);
  }
  Status status =
      move ? repository_.move(path, dest) : repository_.copy(path, dest);
  if (!status.is_ok()) return error_response(status);
  if (move) {
    locks_.forget_subtree(path);
  } else {
    // A copy is a new, unversioned resource (DeltaV semantics).
    Status stripped = repository_.strip_version_history(dest);
    if (!stripped.is_ok()) return error_response(stripped);
  }
  return HttpResponse::make(dest_existed ? http::kNoContent : http::kCreated);
}

HttpResponse DavServer::do_propfind(const HttpRequest& request,
                                    const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(store_mutex_);
  ResourceInfo info = repository_.stat(path);
  if (info.kind == ResourceKind::kMissing) {
    return HttpResponse::make(http::kNotFound, "no such resource\n");
  }
  Depth depth = parse_depth(request, Depth::kInfinity);

  // Request body: empty = allprop.
  PropfindMode mode = PropfindMode::kAllProp;
  std::vector<xml::QName> wanted;
  if (!trim(request.body).empty()) {
    auto doc = xml::parse_document(request.body);
    if (!doc.ok()) return error_response(doc.status());
    const xml::Element& root = *doc.value();
    if (!(root.name() == kPropfind)) {
      return HttpResponse::make(http::kBadRequest,
                                "expected DAV:propfind body\n");
    }
    if (root.first_child(kPropname) != nullptr) {
      mode = PropfindMode::kPropName;
    } else if (const xml::Element* prop = root.first_child(kProp)) {
      mode = PropfindMode::kPropList;
      for (const auto& child : prop->children()) {
        wanted.push_back(child->name());
      }
    } else if (root.first_child(kAllprop) == nullptr) {
      return HttpResponse::make(http::kBadRequest,
                                "propfind body must contain prop, allprop, "
                                "or propname\n");
    }
  }

  // Collect the resources to report on.
  std::vector<std::string> targets =
      collect_targets(path, depth != Depth::kZero, depth == Depth::kInfinity);

  // Large listings stream: the response carries a body source that
  // marshals one batch of <D:response> elements at a time after this
  // handler returns (and after store_mutex_ is released); see
  // MultistatusStreamSource for the consistency contract.
  if (targets.size() > config_.propfind_stream_threshold) {
    HttpResponse response = HttpResponse::make(http::kMultiStatus);
    response.headers.set("Content-Type", "text/xml; charset=\"utf-8\"");
    response.body_source = std::make_unique<MultistatusStreamSource>(
        this, std::move(targets), mode, std::move(wanted));
    return response;
  }

  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kMultistatus);
  std::vector<ResourceProps> props = prefetch_properties(targets, mode, wanted);
  for (size_t i = 0; i < targets.size(); ++i) {
    emit_propfind_target(&writer, targets[i], mode, wanted, props[i]);
  }
  writer.end_element();
  return HttpResponse::multistatus(writer.take());
}

std::vector<ResourceProps> DavServer::prefetch_properties(
    const std::vector<std::string>& targets, PropfindMode mode,
    const std::vector<xml::QName>& wanted) {
  PropertyStore& store = repository_.property_store();
  std::vector<ResourceProps> out;
  out.reserve(targets.size());
  std::vector<xml::QName> needed;
  if (mode == PropfindMode::kPropList) {
    for (const auto& name : wanted) {
      if (name == kGetContentType) {
        needed.push_back(kContentTypeProp);  // stored dependency
      } else if (name == kVersionName) {
        needed.push_back(kVersionCountProp);
      } else if (!is_live_property(name)) {
        needed.push_back(name);
      }
    }
  }
  // Empty `needed` in allprop/propname mode means "everything" — a
  // complete snapshot per target.
  auto lists = store.get_many(targets, needed);
  if (!lists.ok() || lists.value().size() != targets.size()) {
    // Degrade to fall-through handles; every read goes to the store.
    for (const auto& target : targets) {
      out.emplace_back(&store, target);
    }
    return out;
  }
  auto& snapshots = lists.value();
  for (size_t i = 0; i < targets.size(); ++i) {
    if (mode == PropfindMode::kPropList) {
      out.push_back(ResourceProps::with_partial_snapshot(
          &store, targets[i], needed, std::move(snapshots[i])));
    } else {
      out.push_back(ResourceProps::with_snapshot(&store, targets[i],
                                                 std::move(snapshots[i])));
    }
  }
  return out;
}

void DavServer::emit_propfind_target(xml::XmlWriter* writer,
                                     const std::string& target,
                                     PropfindMode mode,
                                     const std::vector<xml::QName>& wanted,
                                     const ResourceProps& db) {
  ResourceInfo target_info = repository_.stat(target);
  PropstatGroups groups;

  if (mode == PropfindMode::kPropList) {
    for (const auto& name : wanted) {
      std::string inner;
      if (is_live_property(name)) {
        if (live_property_value(target, target_info, db, name, &inner)) {
          groups.found.emplace_back(name, std::move(inner));
        } else {
          groups.missing.push_back(name);
        }
        continue;
      }
      if (auto dead = db.find(name)) {
        groups.found.emplace_back(name, std::move(dead->inner_xml));
      } else if (auto computed =
                     dynamic_value(target, target_info, db, name)) {
        groups.found.emplace_back(name, xml::escape_text(*computed));
      } else {
        groups.missing.push_back(name);
      }
    }
  } else {
    // allprop / propname: all live + all dead.
    static const xml::QName kAllLive[] = {
        kResourceType, kGetContentLength, kGetLastModified, kCreationDate,
        kGetEtag,      kGetContentType,   kDisplayName,     kSupportedLock};
    for (const auto& name : kAllLive) {
      std::string inner;
      if (live_property_value(target, target_info, db, name, &inner)) {
        groups.found.emplace_back(name, std::move(inner));
      }
    }
    auto all_dead = db.get_all();
    if (all_dead.ok()) {
      for (auto& [name, value] : all_dead.value()) {
        if (name.ns == "urn:davpse:internal") continue;  // bookkeeping
        groups.found.emplace_back(name, std::move(value.inner_xml));
      }
    }
    groups.names_only = (mode == PropfindMode::kPropName);
  }
  write_response_element(writer, target, groups);
}

HttpResponse DavServer::do_proppatch(const HttpRequest& request,
                                     const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  if (!repository_.exists(path)) {
    return HttpResponse::make(http::kNotFound, "no such resource\n");
  }
  DAVPSE_DAV_CHECK_LOCK(path, request);
  auto doc = xml::parse_document(request.body);
  if (!doc.ok()) return error_response(doc.status());
  const xml::Element& root = *doc.value();
  if (!(root.name() == kPropertyUpdate)) {
    return HttpResponse::make(http::kBadRequest,
                              "expected DAV:propertyupdate body\n");
  }

  struct Directive {
    bool remove;
    xml::QName name;
    std::string inner;  // set only
  };
  std::vector<Directive> directives;
  for (const auto& child : root.children()) {
    bool is_set = child->name() == kSet;
    bool is_remove = child->name() == kRemove;
    if (!is_set && !is_remove) continue;
    const xml::Element* prop = child->first_child(kProp);
    if (prop == nullptr) continue;
    for (const auto& p : prop->children()) {
      Directive directive;
      directive.remove = is_remove;
      directive.name = p->name();
      if (is_set) directive.inner = inner_xml_of(*p);
      directives.push_back(std::move(directive));
    }
  }

  // Validate first so the batch applies all-or-nothing (RFC 2518
  // "instructions MUST either all be executed or none executed").
  Status failure = Status::ok();
  for (const auto& directive : directives) {
    if (!directive.remove &&
        directive.inner.size() > config_.max_property_bytes) {
      failure = error(ErrorCode::kTooLarge,
                      "property " + directive.name.to_string() +
                          " exceeds the configured limit of " +
                          std::to_string(config_.max_property_bytes) +
                          " bytes");
      break;
    }
  }

  ResourceProps db = repository_.properties(path);
  if (failure.is_ok()) {
    std::vector<std::pair<xml::QName, PropertyValue>> sets;
    std::vector<xml::QName> removes;
    for (auto& directive : directives) {
      if (directive.remove) {
        removes.push_back(directive.name);
      } else {
        sets.emplace_back(directive.name,
                          PropertyValue{std::move(directive.inner)});
      }
    }
    // Engine-level failures (e.g. SDBM's 1 KB value cap) abort the
    // batch; mod_dav reported these as per-property errors.
    Status status = db.set(sets);
    if (status.is_ok()) status = db.remove(removes);
    failure = status;
  }

  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kMultistatus);
  writer.start_element(kResponse);
  writer.text_element(kHref, percent_encode_path(path));
  for (const auto& directive : directives) {
    writer.start_element(kPropstat);
    writer.start_element(kProp);
    writer.empty_element(directive.name);
    writer.end_element();
    std::string status_line =
        failure.is_ok()
            ? "HTTP/1.1 200 OK"
            : "HTTP/1.1 " + std::to_string(status_from(failure)) + " " +
                  std::string(http::reason_phrase(status_from(failure)));
    writer.text_element(kStatus, status_line);
    writer.end_element();
  }
  writer.end_element();
  writer.end_element();
  return HttpResponse::multistatus(writer.take());
}

HttpResponse DavServer::do_lock(const HttpRequest& request,
                                const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  double timeout = config_.default_lock_timeout_seconds;
  if (auto header = request.headers.get("Timeout")) {
    auto value = trim(*header);
    if (iequals(value, "Infinite")) {
      timeout = 0;
    } else if (starts_with(value, "Second-")) {
      timeout = 0;
      for (char c : value.substr(7)) {
        if (c < '0' || c > '9') break;
        timeout = timeout * 10 + (c - '0');
      }
    }
  }

  Result<Lock> acquired = Status(ErrorCode::kInternal, "unset");
  if (trim(request.body).empty()) {
    // Refresh via If header.
    auto token = presented_token(request);
    if (!token) {
      return HttpResponse::make(http::kBadRequest,
                                "lock refresh requires an If header\n");
    }
    acquired = locks_.refresh(path, *token, timeout);
  } else {
    auto doc = xml::parse_document(request.body);
    if (!doc.ok()) return error_response(doc.status());
    const xml::Element& root = *doc.value();
    if (!(root.name() == kLockInfo)) {
      return HttpResponse::make(http::kBadRequest,
                                "expected DAV:lockinfo body\n");
    }
    LockScope scope = LockScope::kExclusive;
    if (const xml::Element* scope_el = root.first_child(kLockScopeEl)) {
      if (scope_el->first_child(kShared) != nullptr) {
        scope = LockScope::kShared;
      }
    }
    std::string owner;
    if (const xml::Element* owner_el = root.first_child(kOwner)) {
      owner = inner_xml_of(*owner_el);
    }
    Depth depth = parse_depth(request, Depth::kInfinity);
    if (!repository_.exists(path)) {
      // RFC 2518: LOCK on an unmapped URL creates an empty resource.
      Status status = repository_.write_document(path, "");
      if (!status.is_ok()) return error_response(status);
    }
    acquired = locks_.acquire(path, scope, depth == Depth::kInfinity, owner,
                              timeout);
  }
  if (!acquired.ok()) return error_response(acquired.status());

  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kProp);
  writer.start_element(kLockDiscovery);
  write_lock_xml(&writer, acquired.value());
  writer.end_element();
  writer.end_element();
  HttpResponse response = HttpResponse::make(
      http::kOk, writer.take(), "text/xml; charset=\"utf-8\"");
  response.headers.set("Lock-Token", "<" + acquired.value().token + ">");
  return response;
}

bool DavServer::is_live_property(const xml::QName& name) {
  return name == kResourceType || name == kGetContentLength ||
         name == kGetLastModified || name == kCreationDate ||
         name == kGetEtag || name == kGetContentType ||
         name == kDisplayName || name == kSupportedLock ||
         name == kLockDiscovery || name == kVersionName;
}

bool DavServer::live_property_value(const std::string& path,
                                    const ResourceInfo& info,
                                    const ResourceProps& db,
                                    const xml::QName& name,
                                    std::string* inner) {
  if (name == kResourceType) {
    if (info.kind == ResourceKind::kCollection) {
      xml::XmlWriter nested;
      nested.prefer_prefix(xml::kDavNamespace, "D");
      nested.empty_element(kCollection);
      *inner = nested.take();
    }
    return true;
  }
  if (name == kGetContentLength) {
    if (info.kind != ResourceKind::kDocument) return false;
    *inner = std::to_string(info.content_length);
    return true;
  }
  if (name == kGetLastModified) {
    *inner = http_date(info.mtime_seconds);
    return true;
  }
  if (name == kCreationDate) {
    *inner = iso_date(info.mtime_seconds);
    return true;
  }
  if (name == kGetEtag) {
    *inner = etag_of(info);
    return true;
  }
  if (name == kGetContentType) {
    if (info.kind != ResourceKind::kDocument) return false;
    auto stored = db.find(kContentTypeProp);
    *inner = xml::escape_text(stored ? stored->inner_xml
                                     : "application/octet-stream");
    return true;
  }
  if (name == kDisplayName) {
    *inner = xml::escape_text(basename_of(path));
    return true;
  }
  if (name == kSupportedLock) {
    *inner =
        "<D:lockentry xmlns:D=\"DAV:\"><D:lockscope><D:exclusive/>"
        "</D:lockscope><D:locktype><D:write/></D:locktype>"
        "</D:lockentry>";
    return true;
  }
  if (name == kLockDiscovery) {
    // lockdiscovery content is a sequence of activelock elements.
    std::string acc;
    for (const Lock& held : locks_.locks_covering(path)) {
      xml::XmlWriter nested;
      nested.prefer_prefix(xml::kDavNamespace, "D");
      write_lock_xml(&nested, held);
      acc += nested.take();
    }
    *inner = acc;
    return true;
  }
  if (name == kVersionName) {
    uint32_t versions = version_count_of(db);
    if (versions == 0) return false;  // not under version control
    *inner = std::to_string(versions);
    return true;
  }
  return false;
}

std::optional<std::string> DavServer::dynamic_value(const std::string& path,
                                                    const ResourceInfo& info,
                                                    const ResourceProps& db,
                                                    const xml::QName& name) {
  if (!dynamic_props_.has(name)) return std::nullopt;
  DynamicContext context{
      path, info,
      [&db](const xml::QName& dead_name) -> std::optional<std::string> {
        auto value = db.find(dead_name);
        if (!value) return std::nullopt;
        return xml::unescape_text(value->inner_xml);
      },
      [this, &path] { return repository_.read_document(path); }};
  return dynamic_props_.compute(name, context);
}

std::vector<std::string> DavServer::collect_targets(const std::string& path,
                                                    bool include_children,
                                                    bool infinite_depth) {
  std::vector<std::string> targets{path};
  if (!include_children ||
      repository_.stat(path).kind != ResourceKind::kCollection) {
    return targets;
  }
  std::vector<std::string> frontier{path};
  size_t level = 0;
  while (!frontier.empty() && (infinite_depth || level < 1)) {
    std::vector<std::string> next;
    for (const auto& parent : frontier) {
      auto children = repository_.list_children(parent);
      if (!children.ok()) continue;
      for (const auto& name : children.value()) {
        std::string child = join_path(parent, name);
        targets.push_back(child);
        if (repository_.stat(child).kind == ResourceKind::kCollection) {
          next.push_back(child);
        }
      }
    }
    frontier = std::move(next);
    ++level;
  }
  return targets;
}

HttpResponse DavServer::do_search(const HttpRequest& request) {
  std::shared_lock<std::shared_mutex> lock(store_mutex_);
  auto doc = xml::parse_document(request.body);
  if (!doc.ok()) return error_response(doc.status());
  auto parsed = parse_search_request(*doc.value());
  if (!parsed.ok()) return error_response(parsed.status());
  const SearchRequest& search = parsed.value();

  if (!repository_.exists(search.scope)) {
    return HttpResponse::make(http::kNotFound,
                              "search scope does not exist\n");
  }

  PropertyStore& store = repository_.property_store();

  // Index planning: when the engine maintains a property→resource
  // index and the where-clause is bounded by stored-property posting
  // lists, evaluate only those candidates instead of walking the
  // whole scope. Live and dynamic properties disqualify the plan —
  // they match resources with no stored value.
  std::vector<std::string> targets;
  bool planned = false;
  if (search.where && store.supports_index()) {
    if (auto cover = index_cover(*search.where)) {
      bool stored_only = true;
      for (const xml::QName& name : *cover) {
        if (is_live_property(name) || dynamic_props_.has(name)) {
          stored_only = false;
          break;
        }
      }
      if (stored_only) {
        std::set<std::string> candidates;
        Status index_status = Status::ok();
        for (const xml::QName& name : *cover) {
          auto resources = store.resources_with_property(name, search.scope);
          if (!resources.ok()) {
            index_status = resources.status();
            break;
          }
          for (auto& resource : resources.value()) {
            candidates.insert(std::move(resource));
          }
        }
        if (index_status.is_ok()) {
          for (const std::string& candidate : candidates) {
            if (!search.depth_infinity && candidate != search.scope &&
                parent_path(candidate) != search.scope) {
              continue;  // depth 1: scope and direct members only
            }
            targets.push_back(candidate);
          }
          planned = true;
          metrics_.counter("dav.search.index_queries").add(1);
          metrics_.counter("dav.search.index_candidates")
              .add(targets.size());
        }
      }
    }
  }
  if (!planned) {
    targets = collect_targets(search.scope, /*include_children=*/true,
                              search.depth_infinity);
    metrics_.counter("dav.search.scanned_targets").add(targets.size());
  }

  // One engine pass prefetching exactly the referenced properties
  // (where-clause + select, plus stored dependencies of live ones);
  // evaluation below then reads local snapshots. Nothing referenced
  // means nothing to prefetch — plain fall-through handles.
  std::vector<xml::QName> needed;
  {
    std::vector<xml::QName> referenced;
    if (search.where) collect_search_properties(*search.where, &referenced);
    referenced.insert(referenced.end(), search.select.begin(),
                      search.select.end());
    for (const xml::QName& name : referenced) {
      if (name == kGetContentType) {
        needed.push_back(kContentTypeProp);
      } else if (name == kVersionName) {
        needed.push_back(kVersionCountProp);
      } else if (!is_live_property(name)) {
        needed.push_back(name);
      }
    }
  }
  std::vector<ResourceProps> props;
  props.reserve(targets.size());
  if (!needed.empty()) {
    auto lists = store.get_many(targets, needed);
    if (lists.ok() && lists.value().size() == targets.size()) {
      for (size_t i = 0; i < targets.size(); ++i) {
        props.push_back(ResourceProps::with_partial_snapshot(
            &store, targets[i], needed, std::move(lists.value()[i])));
      }
    }
  }
  if (props.size() != targets.size()) {
    props.clear();
    for (const auto& target : targets) props.emplace_back(&store, target);
  }

  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kMultistatus);
  for (size_t i = 0; i < targets.size(); ++i) {
    const std::string& target = targets[i];
    const ResourceProps& db = props[i];
    ResourceInfo info = repository_.stat(target);

    // Raw-text property view for expression evaluation: live values
    // as rendered, dead values unescaped.
    PropertyLookup lookup =
        [&](const xml::QName& name) -> std::optional<std::string> {
      std::string inner;
      if (is_live_property(name)) {
        if (!live_property_value(target, info, db, name, &inner)) {
          return std::nullopt;
        }
        return xml::unescape_text(inner);
      }
      if (auto dead = db.find(name)) {
        return xml::unescape_text(dead->inner_xml);
      }
      return dynamic_value(target, info, db, name);
    };

    if (search.where &&
        !evaluate_search(*search.where, lookup,
                         info.kind == ResourceKind::kCollection)) {
      continue;
    }

    PropstatGroups groups;
    for (const xml::QName& name : search.select) {
      std::string inner;
      if (is_live_property(name)) {
        if (live_property_value(target, info, db, name, &inner)) {
          groups.found.emplace_back(name, std::move(inner));
        } else {
          groups.missing.push_back(name);
        }
        continue;
      }
      if (auto dead = db.find(name)) {
        groups.found.emplace_back(name, std::move(dead->inner_xml));
      } else if (auto computed = dynamic_value(target, info, db, name)) {
        groups.found.emplace_back(name, xml::escape_text(*computed));
      } else {
        groups.missing.push_back(name);
      }
    }
    write_response_element(&writer, target, groups);
  }
  writer.end_element();
  return HttpResponse::multistatus(writer.take());
}

HttpResponse DavServer::do_version_control(const HttpRequest& request,
                                           const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  DAVPSE_DAV_CHECK_LOCK(path, request);
  ResourceInfo info = repository_.stat(path);
  if (info.kind == ResourceKind::kMissing) {
    return HttpResponse::make(http::kNotFound, "no such resource\n");
  }
  if (info.kind == ResourceKind::kCollection) {
    return HttpResponse::make(http::kMethodNotAllowed,
                              "collections cannot be version-controlled\n");
  }
  ResourceProps db = repository_.properties(path);
  if (version_count_of(db) > 0) {
    return HttpResponse::make(http::kOk);  // idempotent
  }
  auto body = repository_.read_document(path);
  if (!body.ok()) return error_response(body.status());
  Status snap = repository_.snapshot_version(path, 1, body.value());
  if (!snap.is_ok()) return error_response(snap);
  Status count =
      db.set({{kVersionCountProp, PropertyValue{"1"}}});
  if (!count.is_ok()) return error_response(count);
  return HttpResponse::make(http::kOk);
}

HttpResponse DavServer::do_report(const HttpRequest& request,
                                  const std::string& path) {
  std::shared_lock<std::shared_mutex> lock(store_mutex_);
  auto doc = xml::parse_document(request.body);
  if (!doc.ok()) return error_response(doc.status());
  if (!(doc.value()->name() == kVersionTree)) {
    return HttpResponse::make(
        http::kNotImplemented,
        "only the DAV:version-tree report is supported\n");
  }
  ResourceInfo info = repository_.stat(path);
  if (info.kind == ResourceKind::kMissing) {
    return HttpResponse::make(http::kNotFound, "no such resource\n");
  }
  ResourceProps db = repository_.properties(path);
  if (version_count_of(db) == 0) {
    return HttpResponse::make(http::kConflict,
                              "resource is not under version control\n");
  }
  xml::XmlWriter writer;
  writer.prefer_prefix(xml::kDavNamespace, "D");
  writer.declaration();
  writer.start_element(kMultistatus);
  for (uint32_t n : repository_.list_versions(path)) {
    PropstatGroups groups;
    groups.found.emplace_back(kVersionName, std::to_string(n));
    auto body = repository_.read_version(path, n);
    if (body.ok()) {
      groups.found.emplace_back(kGetContentLength,
                                std::to_string(body.value().size()));
    }
    write_response_element(&writer, path, groups);
  }
  writer.end_element();
  return HttpResponse::multistatus(writer.take());
}

HttpResponse DavServer::do_unlock(const HttpRequest& request,
                                  const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(store_mutex_);
  auto token = presented_token(request);
  if (!token) {
    return HttpResponse::make(http::kBadRequest,
                              "UNLOCK requires a Lock-Token header\n");
  }
  Status status = locks_.release(path, *token);
  if (!status.is_ok()) return error_response(status);
  return HttpResponse::make(http::kNoContent);
}

}  // namespace davpse::dav
