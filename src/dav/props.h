// Dead-property storage: one DBM file per resource, exactly the
// mod_dav layout the paper measured ("Metadata is stored in a hash
// table within a database manager (DBM) formatted file, one file per
// document or collection"). Property databases live in a hidden .DAV
// subdirectory next to the resource and are created lazily — a
// resource with no metadata has no database file, which is what makes
// the §3.2.4 disk accounting come out the way the paper reports.
//
// PropertyDb is the raw per-resource handle; DbmPropertyStore wraps it
// into the PropertyStore interface as the paper-faithful baseline
// engine (PropertyEngine::kDbmPerResource).
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dav/property_store.h"
#include "dbm/dbm.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "xml/qname.h"

namespace davpse::dav {

/// Property database for one resource. Opens the per-resource DBM on
/// demand; all mutations go straight through to the file (one open
/// database per operation batch, mirroring mod_dav's open-query-close
/// pattern that dominates the paper's Table 1 server cost).
class PropertyDb {
 public:
  /// `reads`/`writes` (optional) count whole read/write operations
  /// against this resource's DBM — each get/get_all/names is one read,
  /// each set/remove batch one write — matching the open-query-close
  /// cost unit the paper's Table 1 attributes to the server.
  PropertyDb(std::filesystem::path db_path, dbm::Flavor flavor,
             obs::Counter* reads = nullptr, obs::Counter* writes = nullptr)
      : db_path_(std::move(db_path)),
        flavor_(flavor),
        reads_metric_(reads),
        writes_metric_(writes) {}

  /// Fetches one property. kNotFound if the property (or the whole
  /// database) does not exist.
  Result<PropertyValue> get(const xml::QName& name) const;

  /// All dead properties of the resource (empty if no database).
  Result<std::vector<std::pair<xml::QName, PropertyValue>>> get_all() const;

  /// Names only (PROPFIND propname support).
  Result<std::vector<xml::QName>> names() const;

  /// Sets a batch atomically-ish: values are validated first (size cap
  /// enforced by the DBM engine), then applied in order.
  Status set(const std::vector<std::pair<xml::QName, PropertyValue>>& batch);

  /// Removes properties; missing names are not an error (RFC 2518:
  /// removing a non-existent property is a no-op success).
  Status remove(const std::vector<xml::QName>& names);

  bool database_exists() const;

  /// Runs the engine's manual garbage collection if a database exists.
  Status compact();

  const std::filesystem::path& db_path() const { return db_path_; }

  /// DBM key encoding: "<ns URI>\n<local>". Newlines cannot appear in
  /// either part of a legal QName.
  static std::string encode_key(const xml::QName& name);
  static xml::QName decode_key(const std::string& key);

 private:
  Result<std::unique_ptr<dbm::Dbm>> open_existing() const;
  Result<std::unique_ptr<dbm::Dbm>> open_or_create() const;

  std::filesystem::path db_path_;
  dbm::Flavor flavor_;
  obs::Counter* reads_metric_;
  obs::Counter* writes_metric_;
};

/// The DBM-per-resource engine: PropertyStore over PropertyDb files in
/// hidden .DAV directories. Every path-level operation maps onto the
/// exact filesystem bookkeeping FsRepository used to do inline, so the
/// on-disk layout (and the paper's disk-overhead numbers) are
/// unchanged. No secondary index — SEARCH scans.
class DbmPropertyStore final : public PropertyStore {
 public:
  /// `root` is the repository root ("/" of the DAV namespace).
  DbmPropertyStore(std::filesystem::path root, dbm::Flavor flavor,
                   obs::Counter* reads = nullptr,
                   obs::Counter* writes = nullptr)
      : root_(std::move(root)),
        flavor_(flavor),
        reads_metric_(reads),
        writes_metric_(writes) {}

  Result<PropertyValue> get(const std::string& path,
                            const xml::QName& name) const override;
  Result<PropertyList> get_all(const std::string& path) const override;
  Result<std::vector<xml::QName>> names(
      const std::string& path) const override;
  Status set(const std::string& path, const PropertyList& batch) override;
  Status remove(const std::string& path,
                const std::vector<xml::QName>& names) override;
  Status compact(const std::string& path) override;

  Result<std::vector<PropertyList>> get_many(
      const std::vector<std::string>& paths,
      const std::vector<xml::QName>& names) const override;

  Status on_removed(const std::string& path, bool recursive) override;
  Status on_copied(const std::string& from, const std::string& to,
                   bool recursive) override;
  Status on_moved(const std::string& from, const std::string& to,
                  bool recursive) override;
  Status remove_under(const std::string& path,
                      const xml::QName& name) override;
  Status compact_subtree(const std::string& path) override;
  uint64_t resource_disk_usage(const std::string& path) const override;

  std::string_view engine_name() const override { return "dbm"; }

  /// The per-resource handle (the old Repository::properties()).
  PropertyDb db_for(const std::string& path) const;
  /// Where the resource's DBM file lives (directory resources keep
  /// theirs inside their own .DAV; documents in the parent's).
  std::filesystem::path db_path_for(const std::string& path) const;

 private:
  std::filesystem::path fs_path(const std::string& path) const;

  std::filesystem::path root_;
  dbm::Flavor flavor_;
  obs::Counter* reads_metric_;
  obs::Counter* writes_metric_;
};

}  // namespace davpse::dav
