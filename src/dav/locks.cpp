#include "dav/locks.h"

#include <algorithm>

#include "util/clock.h"
#include "util/uri.h"

namespace davpse::dav {

void LockManager::set_metrics(obs::Registry* registry) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (registry == nullptr) {
    acquired_metric_ = nullptr;
    contention_metric_ = nullptr;
    active_metric_ = nullptr;
    return;
  }
  acquired_metric_ = &registry->counter("dav.locks.acquired");
  contention_metric_ = &registry->counter("dav.locks.contention");
  active_metric_ = &registry->gauge("dav.locks.active");
}

void LockManager::publish_active_locked() const {
  if (active_metric_ != nullptr) {
    active_metric_->set(static_cast<int64_t>(locks_.size()));
  }
}

void LockManager::expire_locked() const {
  double now = wall_time_seconds();
  std::erase_if(locks_, [now](const Lock& lock) {
    return lock.expires_at != 0 && lock.expires_at < now;
  });
  publish_active_locked();
}

bool LockManager::covers(const Lock& lock, const std::string& path) const {
  if (lock.path == path) return true;
  return lock.depth_infinity && path_is_within(path, lock.path);
}

Result<Lock> LockManager::acquire(const std::string& path, LockScope scope,
                                  bool depth_infinity,
                                  const std::string& owner,
                                  double timeout_seconds) {
  std::lock_guard<std::mutex> guard(mutex_);
  expire_locked();
  for (const Lock& existing : locks_) {
    bool conflict_above = covers(existing, path);
    bool conflict_below =
        depth_infinity && path_is_within(existing.path, path);
    if (!conflict_above && !conflict_below) continue;
    if (existing.scope == LockScope::kExclusive ||
        scope == LockScope::kExclusive) {
      if (contention_metric_ != nullptr) contention_metric_->add(1);
      return Status(ErrorCode::kLocked,
                    "conflicting lock " + existing.token + " on " +
                        existing.path);
    }
  }
  Lock lock;
  lock.token = "opaquelocktoken:davpse-" + std::to_string(next_token_++);
  lock.path = path;
  lock.scope = scope;
  lock.depth_infinity = depth_infinity;
  lock.owner = owner;
  lock.expires_at =
      timeout_seconds > 0 ? wall_time_seconds() + timeout_seconds : 0;
  locks_.push_back(lock);
  if (acquired_metric_ != nullptr) acquired_metric_->add(1);
  publish_active_locked();
  return lock;
}

Result<Lock> LockManager::refresh(const std::string& path,
                                  const std::string& token,
                                  double timeout_seconds) {
  std::lock_guard<std::mutex> guard(mutex_);
  expire_locked();
  for (Lock& lock : locks_) {
    if (lock.token == token && covers(lock, path)) {
      lock.expires_at =
          timeout_seconds > 0 ? wall_time_seconds() + timeout_seconds : 0;
      return lock;
    }
  }
  return Status(ErrorCode::kNotFound, "no lock " + token + " on " + path);
}

Status LockManager::release(const std::string& path,
                            const std::string& token) {
  std::lock_guard<std::mutex> guard(mutex_);
  expire_locked();
  auto it = std::find_if(locks_.begin(), locks_.end(), [&](const Lock& lock) {
    return lock.token == token && covers(lock, path);
  });
  if (it == locks_.end()) {
    return error(ErrorCode::kNotFound, "no lock " + token + " on " + path);
  }
  locks_.erase(it);
  publish_active_locked();
  return Status::ok();
}

std::vector<Lock> LockManager::locks_covering(const std::string& path) const {
  std::lock_guard<std::mutex> guard(mutex_);
  expire_locked();
  std::vector<Lock> out;
  for (const Lock& lock : locks_) {
    if (covers(lock, path)) out.push_back(lock);
  }
  return out;
}

Status LockManager::check_write(
    const std::string& path,
    const std::optional<std::string>& presented_token) const {
  std::lock_guard<std::mutex> guard(mutex_);
  expire_locked();
  for (const Lock& lock : locks_) {
    if (!covers(lock, path)) continue;
    if (presented_token && *presented_token == lock.token) {
      return Status::ok();  // holder presented the right token
    }
    if (lock.scope == LockScope::kExclusive) {
      if (contention_metric_ != nullptr) contention_metric_->add(1);
      return error(ErrorCode::kLocked,
                   "resource locked by " + lock.token);
    }
    // Shared lock without a token: writes still require *a* token.
    if (!presented_token) {
      if (contention_metric_ != nullptr) contention_metric_->add(1);
      return error(ErrorCode::kLocked,
                   "resource share-locked; lock token required");
    }
  }
  return Status::ok();
}

void LockManager::forget_subtree(const std::string& path) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::erase_if(locks_, [&](const Lock& lock) {
    return path_is_within(lock.path, path);
  });
  publish_active_locked();
}

size_t LockManager::active_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  expire_locked();
  return locks_.size();
}

}  // namespace davpse::dav
