#include "dav/props.h"

#include <filesystem>

namespace davpse::dav {

namespace fs = std::filesystem;

std::string PropertyDb::encode_key(const xml::QName& name) {
  return name.ns + "\n" + name.local;
}

xml::QName PropertyDb::decode_key(const std::string& key) {
  auto newline = key.find('\n');
  if (newline == std::string::npos) return xml::QName("", key);
  return xml::QName(key.substr(0, newline), key.substr(newline + 1));
}

bool PropertyDb::database_exists() const {
  std::error_code ec;
  return fs::exists(db_path_, ec);
}

Result<std::unique_ptr<dbm::Dbm>> PropertyDb::open_existing() const {
  return dbm::open_dbm(db_path_);
}

Result<std::unique_ptr<dbm::Dbm>> PropertyDb::open_or_create() const {
  std::error_code ec;
  fs::create_directories(db_path_.parent_path(), ec);
  return dbm::open_or_create_dbm(db_path_, flavor_);
}

Result<PropertyValue> PropertyDb::get(const xml::QName& name) const {
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  if (!database_exists()) {
    return Status(ErrorCode::kNotFound,
                  "no properties on resource: " + name.to_string());
  }
  auto db = open_existing();
  if (!db.ok()) return db.status();
  auto raw = db.value()->fetch(encode_key(name));
  if (!raw.ok()) return raw.status();
  return PropertyValue{std::move(raw).value()};
}

Result<std::vector<std::pair<xml::QName, PropertyValue>>>
PropertyDb::get_all() const {
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  std::vector<std::pair<xml::QName, PropertyValue>> out;
  if (!database_exists()) return out;
  auto db = open_existing();
  if (!db.ok()) return db.status();
  for (const auto& key : db.value()->keys()) {
    auto raw = db.value()->fetch(key);
    if (!raw.ok()) return raw.status();
    out.emplace_back(decode_key(key), PropertyValue{std::move(raw).value()});
  }
  return out;
}

Result<std::vector<xml::QName>> PropertyDb::names() const {
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  std::vector<xml::QName> out;
  if (!database_exists()) return out;
  auto db = open_existing();
  if (!db.ok()) return db.status();
  for (const auto& key : db.value()->keys()) {
    out.push_back(decode_key(key));
  }
  return out;
}

Status PropertyDb::set(
    const std::vector<std::pair<xml::QName, PropertyValue>>& batch) {
  if (batch.empty()) return Status::ok();
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  auto db = open_or_create();
  if (!db.ok()) return db.status();
  for (const auto& [name, value] : batch) {
    DAVPSE_RETURN_IF_ERROR(db.value()->store(encode_key(name),
                                             value.inner_xml));
  }
  return db.value()->sync();
}

Status PropertyDb::remove(const std::vector<xml::QName>& names) {
  if (names.empty() || !database_exists()) return Status::ok();
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  auto db = open_existing();
  if (!db.ok()) return db.status();
  for (const auto& name : names) {
    Status status = db.value()->remove(encode_key(name));
    if (!status.is_ok() && status.code() != ErrorCode::kNotFound) {
      return status;
    }
  }
  return db.value()->sync();
}

Status PropertyDb::compact() {
  if (!database_exists()) return Status::ok();
  auto db = open_existing();
  if (!db.ok()) return db.status();
  return db.value()->compact();
}

}  // namespace davpse::dav
