#include "dav/props.h"

#include <filesystem>

#include "util/fs.h"

namespace davpse::dav {

namespace fs = std::filesystem;

std::string PropertyDb::encode_key(const xml::QName& name) {
  return name.ns + "\n" + name.local;
}

xml::QName PropertyDb::decode_key(const std::string& key) {
  auto newline = key.find('\n');
  if (newline == std::string::npos) return xml::QName("", key);
  return xml::QName(key.substr(0, newline), key.substr(newline + 1));
}

bool PropertyDb::database_exists() const {
  std::error_code ec;
  return fs::exists(db_path_, ec);
}

Result<std::unique_ptr<dbm::Dbm>> PropertyDb::open_existing() const {
  return dbm::open_dbm(db_path_);
}

Result<std::unique_ptr<dbm::Dbm>> PropertyDb::open_or_create() const {
  std::error_code ec;
  fs::create_directories(db_path_.parent_path(), ec);
  return dbm::open_or_create_dbm(db_path_, flavor_);
}

Result<PropertyValue> PropertyDb::get(const xml::QName& name) const {
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  if (!database_exists()) {
    return Status(ErrorCode::kNotFound,
                  "no properties on resource: " + name.to_string());
  }
  auto db = open_existing();
  if (!db.ok()) return db.status();
  auto raw = db.value()->fetch(encode_key(name));
  if (!raw.ok()) return raw.status();
  return PropertyValue{std::move(raw).value()};
}

Result<std::vector<std::pair<xml::QName, PropertyValue>>>
PropertyDb::get_all() const {
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  std::vector<std::pair<xml::QName, PropertyValue>> out;
  if (!database_exists()) return out;
  auto db = open_existing();
  if (!db.ok()) return db.status();
  for (const auto& key : db.value()->keys()) {
    auto raw = db.value()->fetch(key);
    if (!raw.ok()) return raw.status();
    out.emplace_back(decode_key(key), PropertyValue{std::move(raw).value()});
  }
  return out;
}

Result<std::vector<xml::QName>> PropertyDb::names() const {
  if (reads_metric_ != nullptr) reads_metric_->add(1);
  std::vector<xml::QName> out;
  if (!database_exists()) return out;
  auto db = open_existing();
  if (!db.ok()) return db.status();
  for (const auto& key : db.value()->keys()) {
    out.push_back(decode_key(key));
  }
  return out;
}

Status PropertyDb::set(
    const std::vector<std::pair<xml::QName, PropertyValue>>& batch) {
  if (batch.empty()) return Status::ok();
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  auto db = open_or_create();
  if (!db.ok()) return db.status();
  for (const auto& [name, value] : batch) {
    DAVPSE_RETURN_IF_ERROR(db.value()->store(encode_key(name),
                                             value.inner_xml));
  }
  return db.value()->sync();
}

Status PropertyDb::remove(const std::vector<xml::QName>& names) {
  if (names.empty() || !database_exists()) return Status::ok();
  if (writes_metric_ != nullptr) writes_metric_->add(1);
  auto db = open_existing();
  if (!db.ok()) return db.status();
  for (const auto& name : names) {
    Status status = db.value()->remove(encode_key(name));
    if (!status.is_ok() && status.code() != ErrorCode::kNotFound) {
      return status;
    }
  }
  return db.value()->sync();
}

Status PropertyDb::compact() {
  if (!database_exists()) return Status::ok();
  auto db = open_existing();
  if (!db.ok()) return db.status();
  return db.value()->compact();
}

// ---------------------------------------------------------------------------
// DbmPropertyStore

fs::path DbmPropertyStore::fs_path(const std::string& path) const {
  if (path == "/") return root_;
  // `path` is normalized by the server layer: absolute, no "..".
  return root_ / path.substr(1);
}

fs::path DbmPropertyStore::db_path_for(const std::string& path) const {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    return target / kDavDirName / ".dir.props";
  }
  return target.parent_path() / kDavDirName /
         (target.filename().string() + ".props");
}

PropertyDb DbmPropertyStore::db_for(const std::string& path) const {
  return PropertyDb(db_path_for(path), flavor_, reads_metric_,
                    writes_metric_);
}

Result<PropertyValue> DbmPropertyStore::get(const std::string& path,
                                            const xml::QName& name) const {
  return db_for(path).get(name);
}

Result<PropertyList> DbmPropertyStore::get_all(
    const std::string& path) const {
  return db_for(path).get_all();
}

Result<std::vector<xml::QName>> DbmPropertyStore::names(
    const std::string& path) const {
  return db_for(path).names();
}

Status DbmPropertyStore::set(const std::string& path,
                             const PropertyList& batch) {
  return db_for(path).set(batch);
}

Status DbmPropertyStore::remove(const std::string& path,
                                const std::vector<xml::QName>& names) {
  return db_for(path).remove(names);
}

Status DbmPropertyStore::compact(const std::string& path) {
  return db_for(path).compact();
}

Result<std::vector<PropertyList>> DbmPropertyStore::get_many(
    const std::vector<std::string>& paths,
    const std::vector<xml::QName>& names) const {
  std::vector<PropertyList> out;
  out.reserve(paths.size());
  for (const auto& path : paths) {
    // One open-query-close per resource (the baseline's batching unit;
    // previously PROPFIND paid one per *property*).
    fs::path file = db_path_for(path);
    std::error_code ec;
    PropertyList list;
    if (!fs::exists(file, ec)) {
      out.push_back(std::move(list));
      continue;
    }
    if (reads_metric_ != nullptr) reads_metric_->add(1);
    auto db = dbm::open_dbm(file);
    if (!db.ok()) {
      out.push_back(std::move(list));
      continue;
    }
    if (names.empty()) {
      for (const auto& key : db.value()->keys()) {
        auto raw = db.value()->fetch(key);
        if (!raw.ok()) continue;
        list.emplace_back(PropertyDb::decode_key(key),
                          PropertyValue{std::move(raw).value()});
      }
    } else {
      for (const auto& name : names) {
        auto raw = db.value()->fetch(PropertyDb::encode_key(name));
        if (!raw.ok()) continue;
        list.emplace_back(name, PropertyValue{std::move(raw).value()});
      }
    }
    out.push_back(std::move(list));
  }
  return out;
}

Status DbmPropertyStore::on_removed(const std::string& path, bool recursive) {
  // Collection bookkeeping lived inside the removed tree; a document's
  // DBM sits in the surviving parent's .DAV and must go explicitly.
  if (recursive) return Status::ok();
  std::error_code ec;
  fs::remove(db_path_for(path), ec);
  return Status::ok();
}

Status DbmPropertyStore::on_copied(const std::string& from,
                                   const std::string& to, bool recursive) {
  // The recursive filesystem copy already carried nested .DAV
  // directories (and thus all collection + member properties).
  if (recursive) return Status::ok();
  std::error_code ec;
  fs::path source_props = db_path_for(from);
  if (!fs::exists(source_props, ec)) return Status::ok();
  fs::path dest_props = db_path_for(to);
  fs::create_directories(dest_props.parent_path(), ec);
  fs::copy_file(source_props, dest_props,
                fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return error(ErrorCode::kInternal, "property copy failed: " + ec.message());
  }
  return Status::ok();
}

Status DbmPropertyStore::on_moved(const std::string& from,
                                  const std::string& to, bool recursive) {
  if (recursive) return Status::ok();
  std::error_code ec;
  // The source was already renamed, so the *source's* DBM location must
  // be derived from the destination's resource kind.
  fs::path target = fs_path(from);
  fs::path source_props = target.parent_path() / kDavDirName /
                          (target.filename().string() + ".props");
  if (!fs::exists(source_props, ec)) return Status::ok();
  fs::path dest_props = db_path_for(to);
  fs::create_directories(dest_props.parent_path(), ec);
  fs::rename(source_props, dest_props, ec);
  if (ec) {
    return error(ErrorCode::kInternal, "property move failed: " + ec.message());
  }
  return Status::ok();
}

Status DbmPropertyStore::remove_under(const std::string& path,
                                      const xml::QName& name) {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (!fs::is_directory(target, ec)) {
    return db_for(path).remove({name});
  }
  for (auto it = fs::recursive_directory_iterator(target, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& file = it->path();
    if (file.parent_path().filename() != kDavDirName) continue;
    if (file.extension() != ".props") continue;
    PropertyDb db(file, flavor_);
    DAVPSE_RETURN_IF_ERROR(db.remove({name}));
  }
  return Status::ok();
}

Status DbmPropertyStore::compact_subtree(const std::string& path) {
  fs::path target = fs_path(path);
  std::error_code ec;
  if (!fs::is_directory(target, ec)) {
    return db_for(path).compact();
  }
  for (auto it = fs::recursive_directory_iterator(target, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& file = it->path();
    if (file.parent_path().filename() != kDavDirName) continue;
    if (file.extension() != ".props") continue;
    auto db = dbm::open_dbm(file);
    if (!db.ok()) return db.status();
    DAVPSE_RETURN_IF_ERROR(db.value()->compact());
  }
  return Status::ok();
}

uint64_t DbmPropertyStore::resource_disk_usage(const std::string& path) const {
  std::error_code ec;
  fs::path target = fs_path(path);
  if (fs::is_directory(target, ec)) return 0;  // inside the tree walk
  fs::path props = db_path_for(path);
  if (!fs::exists(props, ec)) return 0;
  return davpse::disk_usage(props);
}

}  // namespace davpse::dav
