// The Data Storage Interface of Figure 2: the protocol-neutral layer
// that "maps requests for manipulating data and metadata into
// protocol-specific operations". Ecce's object/factory layer talks
// only to this interface, so the store can be swapped (DAV today; the
// paper anticipates e.g. a "GridDAV" later) without touching
// application code.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "http/body.h"
#include "util/status.h"
#include "xml/qname.h"

namespace davpse::ecce {

/// (name, character-data value) metadata pair. Values are plain text
/// at this layer; the protocol binding handles encoding.
using Metadatum = std::pair<xml::QName, std::string>;

/// How current the content a read served is. kFresh = validated
/// against the repository within this call. kStale = a last-validated
/// cached copy served because the repository was unreachable — the PSE
/// keeps working through an outage, but the caller is told the data
/// may lag the repository.
enum class Freshness { kFresh, kStale };

class DataStorageInterface {
 public:
  virtual ~DataStorageInterface() = default;

  // -- containers ---------------------------------------------------------
  virtual Status create_container(const std::string& path) = 0;
  /// Creates intermediate containers as needed.
  virtual Status create_container_path(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> list(const std::string& path) = 0;

  // -- objects (opaque typed data) ----------------------------------------
  virtual Status write_object(const std::string& path, std::string data,
                              const std::string& content_type) = 0;
  virtual Result<std::string> read_object(const std::string& path) = 0;

  /// Freshness-reporting read. The default adapter always reports
  /// kFresh — a binding without a cache can only serve what the
  /// repository returned just now. Degrading bindings
  /// (CachingDavStorage) override this to serve a stale cached copy on
  /// repository outage and say so. Pass nullptr when freshness is not
  /// interesting.
  virtual Result<std::string> read_object(const std::string& path,
                                          Freshness* freshness) {
    if (freshness != nullptr) *freshness = Freshness::kFresh;
    return read_object(path);
  }

  // Streaming object transfer: the default adapters below buffer via
  // the eager methods, so every binding works out of the box; bindings
  // with a streaming protocol path (DAV) override them to move bodies
  // in fixed-size blocks — a chemistry dataset of any size then flows
  // repository → PSE in O(block) client memory.

  /// Drains the object's content into `sink`.
  virtual Status read_object_to(const std::string& path,
                                http::BodySink* sink) {
    auto data = read_object(path);
    if (!data.ok()) return data.status();
    DAVPSE_RETURN_IF_ERROR(sink->write(data.value()));
    return sink->finish();
  }

  /// Freshness-reporting streaming read; same contract as the
  /// freshness-reporting read_object overload.
  virtual Status read_object_to(const std::string& path, http::BodySink* sink,
                                Freshness* freshness) {
    if (freshness != nullptr) *freshness = Freshness::kFresh;
    return read_object_to(path, sink);
  }

  /// Stores the object, reading its content from `data`.
  virtual Status write_object_from(const std::string& path,
                                   std::shared_ptr<http::BodySource> data,
                                   const std::string& content_type) {
    std::string buffer;
    http::StringBodySink sink(&buffer);
    auto drained = http::drain_body(*data, sink);
    if (!drained.ok()) return drained.status();
    return write_object(path, std::move(buffer), content_type);
  }

  // -- metadata -------------------------------------------------------------
  virtual Status set_metadata(const std::string& path,
                              const std::vector<Metadatum>& metadata) = 0;
  virtual Result<std::string> get_metadatum(const std::string& path,
                                            const xml::QName& name) = 0;
  /// Optional-returning metadatum lookup: nullopt when the property is
  /// simply absent, an error Status only for real failures (resource
  /// missing, protocol error). Use this instead of treating
  /// get_metadatum's kNotFound as "empty" — that idiom conflates
  /// "property not set" with "lookup failed". The default adapter maps
  /// get_metadatum's kNotFound to nullopt.
  virtual Result<std::optional<std::string>> find_metadatum(
      const std::string& path, const xml::QName& name) {
    auto value = get_metadatum(path, name);
    if (value.ok()) return std::optional<std::string>(std::move(value).value());
    if (value.status().code() == ErrorCode::kNotFound) {
      return std::optional<std::string>();
    }
    return value.status();
  }
  /// Selected metadata for one resource; missing names are skipped.
  virtual Result<std::vector<Metadatum>> get_metadata(
      const std::string& path, const std::vector<xml::QName>& names) = 0;
  /// Selected metadata for every child of a container, in one request
  /// where the protocol supports it (DAV: PROPFIND depth=1).
  virtual Result<std::vector<std::pair<std::string, std::vector<Metadatum>>>>
  get_children_metadata(const std::string& path,
                        const std::vector<xml::QName>& names) = 0;

  // -- namespace management ---------------------------------------------
  virtual Result<bool> exists(const std::string& path) = 0;
  virtual Status remove(const std::string& path) = 0;
  virtual Status copy(const std::string& from, const std::string& to) = 0;
  virtual Status move(const std::string& from, const std::string& to) = 0;
};

}  // namespace davpse::ecce
