// Third-party integration agents — the Section 4 scenarios. Neither
// agent knows the Ecce schema: FormulaSearchAgent discovers molecule
// documents purely through the ecce:formula metadata it understands,
// and ThermoAgent "can independently discover objects in the data
// store ... apply feature analysis algorithms, and attach their
// discoveries to the objects as new metadata" which Ecce (or any PSE)
// can then surface in queries.
#pragma once

#include <string>
#include <vector>

#include "davclient/client.h"
#include "core/chem.h"
#include "util/status.h"

namespace davpse::ecce {

struct MoleculeHit {
  std::string path;     // DAV path of the molecule document
  std::string formula;  // ecce:formula value
  std::string format;   // ecce:format value (xyz/pdb)
};

/// Finds every document carrying an ecce:formula property (optionally
/// filtered to an exact formula), using only generic DAV operations +
/// the one property it knows.
///
/// Two strategies, identical results:
///   kPropfindSweep — depth-infinity PROPFIND, filtering client-side
///                    (what the 2001 system could do);
///   kServerSearch  — one DASL SEARCH, filtering server-side (what the
///                    paper anticipated from DASL).
class FormulaSearchAgent {
 public:
  enum class Strategy { kPropfindSweep, kServerSearch };

  explicit FormulaSearchAgent(davclient::DavClient* client,
                              Strategy strategy = Strategy::kPropfindSweep)
      : client_(client), strategy_(strategy) {}

  Result<std::vector<MoleculeHit>> search(const std::string& root,
                                          const std::string& formula = "");

  Strategy strategy() const { return strategy_; }

 private:
  Result<std::vector<MoleculeHit>> sweep(const std::string& root,
                                         const std::string& formula);
  Result<std::vector<MoleculeHit>> server_search(const std::string& root,
                                                 const std::string& formula);

  davclient::DavClient* client_;
  Strategy strategy_;
};

/// Derived thermodynamic estimates computed from a molecule geometry.
struct ThermoEstimate {
  double enthalpy_kj_mol = 0;
  double entropy_j_mol_k = 0;
};

/// Crude but deterministic estimator (pair-potential enthalpy, atom-
/// count entropy) standing in for the paper's example of an agent that
/// derives "thermodynamic properties of the molecule which could then
/// be appended as new DAV metadata of the molecule object".
ThermoEstimate estimate_thermo(const Molecule& molecule);

/// For every molecule FormulaSearchAgent finds under `root`, computes
/// a ThermoEstimate and PROPPATCHes ecce:thermo-* metadata back onto
/// the molecule document. Returns the number of molecules annotated.
class ThermoAgent {
 public:
  explicit ThermoAgent(davclient::DavClient* client) : client_(client) {}

  Result<size_t> annotate(const std::string& root);

 private:
  davclient::DavClient* client_;
};

}  // namespace davpse::ecce
