// The object/factory layer of Figure 2: applications keep working in
// terms of rich C++ objects (Calculation, Molecule, BasisSet, ...)
// while factories "encapsulate access to persistent data using
// implementations of the Data Storage Interface".
//
// Two bindings exist:
//   DavCalculationFactory  — the paper's new architecture (Figure 4
//                            mapping onto DAV collections/documents/
//                            metadata),
//   OodbCalculationFactory — the Ecce 1.5 baseline (persistent object
//                            classes in the OODB).
// Table 3 drives identical tool workloads through both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/model.h"
#include "util/status.h"

namespace davpse::ecce {

/// Which parts of a calculation a tool needs. Per-tool selectivity is
/// the point of the DAV mapping: "the lowest granularity of access to
/// raw data, minimizing overhead for tools or agents that only care
/// about certain subsets of data".
struct LoadParts {
  bool molecule = true;
  bool basis = true;
  bool input_decks = true;
  bool outputs = true;
  bool jobs = true;

  static LoadParts all() { return LoadParts{}; }
  static LoadParts none() { return {false, false, false, false, false}; }
  static LoadParts molecule_only() {
    LoadParts parts = none();
    parts.molecule = true;
    return parts;
  }
};

/// Row of a project listing (Calc Manager view).
struct CalcSummary {
  std::string name;
  TheoryLevel theory = TheoryLevel::kSCF;
  RunState state = RunState::kCreated;
  std::string formula;
};

class CalculationFactory {
 public:
  virtual ~CalculationFactory() = default;

  /// Session startup: connect, handshake, load whatever the binding
  /// requires before the first object can be served. Tool start times
  /// in Table 3 are dominated by this call.
  virtual Status initialize() = 0;

  // -- projects -----------------------------------------------------------
  virtual Status create_project(const std::string& project) = 0;
  virtual Result<std::vector<std::string>> list_projects() = 0;
  virtual Result<std::vector<std::string>> list_calculations(
      const std::string& project) = 0;
  /// Metadata-level listing of a project (one round trip under DAV).
  virtual Result<std::vector<CalcSummary>> project_summary(
      const std::string& project) = 0;

  // -- calculations ---------------------------------------------------------
  virtual Status save_calculation(const std::string& project,
                                  const Calculation& calculation) = 0;
  virtual Result<Calculation> load_calculation(const std::string& project,
                                               const std::string& name,
                                               const LoadParts& parts) = 0;
  virtual Status remove_calculation(const std::string& project,
                                    const std::string& name) = 0;
  /// Deep copy (task sequences included) — the paper's Table 1 "copy
  /// entire task sequences" operation at the object level.
  virtual Status copy_calculation(const std::string& project,
                                  const std::string& from,
                                  const std::string& to) = 0;

  // -- incremental task updates (monitoring workflow) -----------------------
  virtual Status update_task_state(const std::string& project,
                                   const std::string& calculation,
                                   const std::string& task,
                                   RunState state) = 0;
  virtual Status attach_output(const std::string& project,
                               const std::string& calculation,
                               const std::string& task,
                               const OutputProperty& output) = 0;

  // -- basis set library (BasisTool's startup payload) ----------------------
  virtual Status save_library_basis(const BasisSet& basis) = 0;
  virtual Result<std::vector<std::string>> list_library_bases() = 0;
  virtual Result<BasisSet> load_library_basis(const std::string& name) = 0;
};

}  // namespace davpse::ecce
