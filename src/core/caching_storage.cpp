#include "core/caching_storage.h"

#include "util/uri.h"

namespace davpse::ecce {

Result<std::string> CachingDavStorage::read_object(const std::string& path) {
  std::string previous_etag;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(path);
    if (it != cache_.end()) previous_etag = it->second.etag;
  }
  auto fetched = client_->get_if_changed(path, previous_etag);
  if (!fetched.ok()) {
    if (fetched.status().code() == ErrorCode::kNotFound) {
      std::lock_guard<std::mutex> lock(mutex_);
      cache_.erase(path);
    }
    return fetched.status();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (fetched.value().not_modified) {
    ++hits_;
    return cache_[path].body;  // entry must exist: we sent its etag
  }
  ++misses_;
  Entry entry{std::move(fetched.value().etag),
              std::move(fetched.value().body)};
  std::string body = entry.body;
  cache_[path] = std::move(entry);
  return body;
}

Status CachingDavStorage::write_object(const std::string& path,
                                       std::string data,
                                       const std::string& content_type) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.erase(path);
  }
  return inner_.write_object(path, std::move(data), content_type);
}

Status CachingDavStorage::remove(const std::string& path) {
  invalidate_subtree(path);
  return inner_.remove(path);
}

Status CachingDavStorage::copy(const std::string& from,
                               const std::string& to) {
  invalidate_subtree(to);
  return inner_.copy(from, to);
}

Status CachingDavStorage::move(const std::string& from,
                               const std::string& to) {
  invalidate_subtree(from);
  invalidate_subtree(to);
  return inner_.move(from, to);
}

void CachingDavStorage::invalidate_subtree(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (path_is_within(it->first, path)) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t CachingDavStorage::cached_documents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

size_t CachingDavStorage::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [path, entry] : cache_) total += entry.body.size();
  return total;
}

void CachingDavStorage::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace davpse::ecce
