#include "core/caching_storage.h"

#include <chrono>
#include <thread>

#include "util/uri.h"

namespace davpse::ecce {

namespace fs = std::filesystem;

Result<std::unique_ptr<http::FileBodySource>> CachingDavStorage::refresh(
    const std::string& path) {
  std::string previous_etag;
  fs::path spill_file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(path);
    if (it != cache_.end()) previous_etag = it->second.etag;
    spill_file = spill_.path() / ("obj" + std::to_string(next_file_id_++));
  }
  // The fetch drains straight into a spill file; a 304 never touches
  // it (the unfinished sink cleans up its temp file on destruction).
  if (!previous_etag.empty()) revalidations_metric_->add(1);
  http::FileBodySink cache_sink(spill_file);
  auto fetched = client_->get_if_changed_to(path, previous_etag, &cache_sink);
  if (!fetched.ok()) {
    if (fetched.status().code() == ErrorCode::kNotFound) erase_entry(path);
    return fetched.status();
  }
  bool revalidate_lost = false;
  Result<std::unique_ptr<http::FileBodySource>> to_serve =
      Status(ErrorCode::kInternal, "unset");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Open the served file *while holding mutex_*: every invalidation
    // path (erase_entry/invalidate_subtree/clear/replacement) unlinks
    // under the same mutex, so once open succeeds here the descriptor
    // pins the content for the drain (POSIX inode semantics).
    if (fetched.value().not_modified) {
      auto it = cache_.find(path);
      if (it != cache_.end()) {
        ++hits_;
        hits_metric_->add(1);
        to_serve = http::FileBodySource::open(it->second.file);
      } else {
        // Invalidated between sending the ETag and the 304 landing —
        // the validated copy is gone; fetch unconditionally below.
        revalidate_lost = true;
      }
    } else {
      ++misses_;
      misses_metric_->add(1);
      spilled_bytes_metric_->add(cache_sink.bytes_written());
      auto it = cache_.find(path);
      if (it != cache_.end()) {
        std::error_code ec;
        fs::remove(it->second.file, ec);
      }
      cache_[path] = Entry{std::move(fetched.value().etag), spill_file,
                           cache_sink.bytes_written()};
      to_serve = http::FileBodySource::open(spill_file);
    }
  }
  if (revalidate_lost) return refresh(path);
  return to_serve;
}

Result<std::unique_ptr<http::FileBodySource>>
CachingDavStorage::refresh_with_retry(const std::string& path) {
  Deadline deadline = retry_.start_deadline();
  Result<std::unique_ptr<http::FileBodySource>> source =
      Status(ErrorCode::kInternal, "unset");
  for (int attempt = 1;; ++attempt) {
    source = refresh(path);
    if (source.ok() || !source.status().is_retryable()) return source;
    if (attempt >= retry_.max_attempts) return source;
    double unit;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      unit = backoff_rng_.uniform_real(0, 1);
    }
    double wait = retry_.backoff_before_attempt(attempt, unit);
    if (!deadline.allows(wait)) return source;
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
  }
}

Result<std::unique_ptr<http::FileBodySource>> CachingDavStorage::open_stale(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(path);
  if (it == cache_.end()) {
    return Status(ErrorCode::kUnavailable,
                  "repository unreachable and no cached copy of " + path);
  }
  ++stale_served_;
  stale_served_metric_->add(1);
  return http::FileBodySource::open(it->second.file);
}

Status CachingDavStorage::read_object_to(const std::string& path,
                                         http::BodySink* sink,
                                         Freshness* freshness) {
  if (freshness != nullptr) *freshness = Freshness::kFresh;
  auto source = refresh_with_retry(path);
  if (!source.ok()) {
    // Only a *retryable* failure (outage) may degrade to the cached
    // copy — kNotFound proved the object is gone and already erased
    // the entry above.
    if (!source.status().is_retryable()) return source.status();
    auto stale = open_stale(path);
    if (!stale.ok()) return source.status();  // surface the outage error
    if (freshness != nullptr) *freshness = Freshness::kStale;
    source = std::move(stale);
  }
  auto drained = http::drain_body(*source.value(), *sink);
  return drained.status();
}

Status CachingDavStorage::read_object_to(const std::string& path,
                                         http::BodySink* sink) {
  return read_object_to(path, sink, nullptr);
}

Result<std::string> CachingDavStorage::read_object(const std::string& path,
                                                   Freshness* freshness) {
  std::string body;
  http::StringBodySink sink(&body);
  DAVPSE_RETURN_IF_ERROR(read_object_to(path, &sink, freshness));
  return body;
}

Result<std::string> CachingDavStorage::read_object(const std::string& path) {
  return read_object(path, nullptr);
}

Status CachingDavStorage::write_object(const std::string& path,
                                       std::string data,
                                       const std::string& content_type) {
  erase_entry(path);
  return inner_.write_object(path, std::move(data), content_type);
}

Status CachingDavStorage::write_object_from(const std::string& path,
                                            std::shared_ptr<http::BodySource> data,
                                            const std::string& content_type) {
  erase_entry(path);
  return inner_.write_object_from(path, std::move(data), content_type);
}

Status CachingDavStorage::remove(const std::string& path) {
  invalidate_subtree(path);
  return inner_.remove(path);
}

Status CachingDavStorage::copy(const std::string& from,
                               const std::string& to) {
  invalidate_subtree(to);
  return inner_.copy(from, to);
}

Status CachingDavStorage::move(const std::string& from,
                               const std::string& to) {
  invalidate_subtree(from);
  invalidate_subtree(to);
  return inner_.move(from, to);
}

void CachingDavStorage::erase_entry(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(path);
  if (it == cache_.end()) return;
  std::error_code ec;
  fs::remove(it->second.file, ec);
  cache_.erase(it);
}

void CachingDavStorage::invalidate_subtree(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (path_is_within(it->first, path)) {
      std::error_code ec;
      fs::remove(it->second.file, ec);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t CachingDavStorage::cached_documents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

size_t CachingDavStorage::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [path, entry] : cache_) total += entry.size;
  return total;
}

void CachingDavStorage::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [path, entry] : cache_) {
    std::error_code ec;
    fs::remove(entry.file, ec);
  }
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace davpse::ecce
