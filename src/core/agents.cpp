#include "core/agents.h"

#include <cmath>

#include "core/schema_names.h"
#include "xml/escape.h"

namespace davpse::ecce {

Result<std::vector<MoleculeHit>> FormulaSearchAgent::search(
    const std::string& root, const std::string& formula) {
  return strategy_ == Strategy::kServerSearch
             ? server_search(root, formula)
             : sweep(root, formula);
}

Result<std::vector<MoleculeHit>> FormulaSearchAgent::sweep(
    const std::string& root, const std::string& formula) {
  // One PROPFIND depth=infinity sweep; resources without ecce:formula
  // simply report it 404 and are skipped. This is the "partial,
  // post-development mapping": the agent consumes one property and
  // ignores every other relationship in the store.
  auto result = client_->propfind(
      root, davclient::Depth::kInfinity,
      {kFormulaProp, kFormatProp, xml::dav_name("resourcetype")});
  if (!result.ok()) return result.status();
  std::vector<MoleculeHit> hits;
  for (const auto& response : result.value().responses) {
    if (response.is_collection()) continue;
    auto found = response.prop(kFormulaProp);
    if (!found) continue;
    std::string value = xml::unescape_text(*found);
    if (!formula.empty() && value != formula) continue;
    MoleculeHit hit;
    hit.path = response.href;
    hit.formula = std::move(value);
    if (auto format = response.prop(kFormatProp)) {
      hit.format = xml::unescape_text(*format);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

Result<std::vector<MoleculeHit>> FormulaSearchAgent::server_search(
    const std::string& root, const std::string& formula) {
  // DASL: the filter runs on the server; only matches cross the wire.
  using davclient::Where;
  Where where = formula.empty()
                    ? Where::is_defined(kFormulaProp) &&
                          !Where::is_collection()
                    : Where::eq(kFormulaProp, formula) &&
                          !Where::is_collection();
  auto result = client_->search(root, davclient::Depth::kInfinity,
                                {kFormulaProp, kFormatProp}, where);
  if (!result.ok()) return result.status();
  std::vector<MoleculeHit> hits;
  for (const auto& response : result.value().responses) {
    auto found = response.prop(kFormulaProp);
    if (!found) continue;
    MoleculeHit hit;
    hit.path = response.href;
    hit.formula = xml::unescape_text(*found);
    if (auto format = response.prop(kFormatProp)) {
      hit.format = xml::unescape_text(*format);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

ThermoEstimate estimate_thermo(const Molecule& molecule) {
  // Pairwise Lennard-Jones-flavored cohesion term for the enthalpy and
  // a Sackur-Tetrode-shaped size term for the entropy. Deterministic
  // and monotone in system size — exactly enough for a feature agent.
  ThermoEstimate estimate;
  const auto& atoms = molecule.atoms;
  double cohesion = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      double dx = atoms[i].x - atoms[j].x;
      double dy = atoms[i].y - atoms[j].y;
      double dz = atoms[i].z - atoms[j].z;
      double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < 1e-6) continue;
      double inv6 = 1.0 / (r2 * r2 * r2);
      cohesion += 4.0 * (inv6 * inv6 - inv6);
    }
  }
  estimate.enthalpy_kj_mol = 2.5 * cohesion - 40.0 * atoms.size();
  estimate.entropy_j_mol_k =
      130.0 + 28.0 * std::log(static_cast<double>(atoms.size() + 1));
  return estimate;
}

Result<size_t> ThermoAgent::annotate(const std::string& root) {
  FormulaSearchAgent search(client_);
  auto hits = search.search(root);
  if (!hits.ok()) return hits.status();
  size_t annotated = 0;
  for (const auto& hit : hits.value()) {
    if (hit.format != "xyz") continue;  // the only format this agent reads
    auto body = client_->get(hit.path);
    if (!body.ok()) return body.status();
    auto molecule = Molecule::from_xyz(body.value());
    if (!molecule.ok()) continue;  // not actually parseable; skip
    ThermoEstimate estimate = estimate_thermo(molecule.value());
    DAVPSE_RETURN_IF_ERROR(client_->proppatch(
        hit.path,
        {davclient::PropWrite::of_text(
             kThermoEnthalpyProp, std::to_string(estimate.enthalpy_kj_mol)),
         davclient::PropWrite::of_text(
             kThermoEntropyProp, std::to_string(estimate.entropy_j_mol_k)),
         davclient::PropWrite::of_text(kThermoSourceProp,
                                       "thermo-agent/1.0")}));
    ++annotated;
  }
  return annotated;
}

}  // namespace davpse::ecce
