#include "core/workload.h"

#include "util/random.h"

namespace davpse::ecce {

Calculation make_uo2_calculation() {
  Calculation calculation;
  calculation.name = "uo2-15h2o-dft";
  calculation.description =
      "DFT study of uranyl hydration: UO2(2+) with 15 waters";
  calculation.theory = TheoryLevel::kDFT;
  calculation.molecule = make_uo2_15h2o();
  calculation.basis = make_basis_set(
      "Stuttgart-RLC+6-31G*", {"U", "O", "H"}, /*seed=*/17);

  CalcTask optimize;
  optimize.name = "task-1";
  optimize.kind = TaskKind::kGeometryOptimization;
  optimize.state = RunState::kComplete;
  optimize.job = {"mpp2.emsl.pnl.gov", "large", 64, "job-83321",
                  RunState::kComplete};
  optimize.outputs.push_back(
      make_property("gradient", "Hartree/Bohr", 36 * 1024, 101));
  optimize.outputs.push_back(
      make_property("energy-trace", "Hartree", 4 * 1024, 102));

  CalcTask frequency;
  frequency.name = "task-2";
  frequency.kind = TaskKind::kFrequency;
  frequency.state = RunState::kComplete;
  frequency.job = {"mpp2.emsl.pnl.gov", "large", 128, "job-83355",
                   RunState::kComplete};
  frequency.outputs.push_back(
      make_property("vibrational-frequencies", "cm^-1", 2 * 1024, 103));
  // The paper's headline payload: "individual output properties up to
  // 1.8 MB in size" — the normal-mode displacement matrix.
  frequency.outputs.push_back(make_property(
      "normal-modes", "Angstrom", 1800 * 1024, 104));

  CalcTask energy;
  energy.name = "task-3";
  energy.kind = TaskKind::kEnergy;
  energy.state = RunState::kComplete;
  energy.job = {"colony.emsl.pnl.gov", "normal", 16, "job-83391",
                RunState::kComplete};
  energy.outputs.push_back(
      make_property("final-energy", "Hartree", 64, 105));
  energy.outputs.push_back(
      make_property("mulliken-charges", "e", 50 * 8, 106));

  calculation.tasks = {std::move(optimize), std::move(frequency),
                       std::move(energy)};
  for (CalcTask& task : calculation.tasks) {
    task.input_deck = generate_input_deck(calculation, task);
  }
  return calculation;
}

Calculation make_small_calculation(const std::string& name, uint64_t seed) {
  Rng rng(seed);
  Calculation calculation;
  calculation.name = name;
  calculation.description = "small test system " + name;
  calculation.theory =
      rng.coin() ? TheoryLevel::kSCF : TheoryLevel::kDFT;
  calculation.molecule = make_water_cluster(rng.uniform(1, 4), seed * 31 + 1);
  calculation.basis =
      make_basis_set("6-31G*", {"O", "H"}, seed * 31 + 2);

  size_t task_count = rng.uniform(1, 2);
  for (size_t i = 0; i < task_count; ++i) {
    CalcTask task;
    task.name = "task-" + std::to_string(i + 1);
    task.kind = i == 0 ? TaskKind::kGeometryOptimization : TaskKind::kEnergy;
    task.state = RunState::kComplete;
    task.job = {"colony.emsl.pnl.gov", "small",
                static_cast<int>(rng.uniform(1, 8)),
                "job-" + std::to_string(rng.uniform(10000, 99999)),
                RunState::kComplete};
    size_t property_count = rng.uniform(1, 3);
    for (size_t p = 0; p < property_count; ++p) {
      task.outputs.push_back(make_property(
          "prop-" + std::to_string(p + 1), "a.u.",
          rng.uniform(256, 4096), seed * 131 + i * 17 + p));
    }
    task.input_deck = generate_input_deck(calculation, task);
    calculation.tasks.push_back(std::move(task));
  }
  return calculation;
}

std::vector<BasisSet> make_basis_library(size_t count, uint64_t seed) {
  static const std::vector<std::string> kElements = {
      "H", "C", "N", "O", "F", "P", "S", "Cl", "Fe", "U"};
  static const std::vector<std::string> kNames = {
      "STO-3G",  "3-21G",    "6-31G",   "6-31G*",  "6-311G**",
      "cc-pVDZ", "cc-pVTZ",  "cc-pVQZ", "aug-cc-pVDZ", "LANL2DZ",
      "SDD",     "def2-SVP", "def2-TZVP", "Stuttgart-RLC", "DZVP"};
  std::vector<BasisSet> out;
  for (size_t i = 0; i < count; ++i) {
    std::string name = i < kNames.size()
                           ? kNames[i]
                           : "basis-" + std::to_string(i + 1);
    out.push_back(make_basis_set(name, kElements, seed + i * 7));
  }
  return out;
}

}  // namespace davpse::ecce
