// The Ecce 1.5 baseline: the calculation model as persistent object
// classes in the OODB. Everything is an object — molecules, individual
// atoms, basis shells, tasks, jobs, and output properties broken into
// value-chunk objects — which is how 259 calculations came to occupy
// "about 420,000 OODB objects" (§3.2.4). Reads go through the
// cache-forward client: touching one atom faults its whole segment.
#pragma once

#include <string>

#include "core/factory.h"
#include "oodb/client.h"

namespace davpse::ecce {

/// The compiled persistent-class schema (the "70 classes" analogue,
/// reduced to the calculation subset the paper details in Figure 3).
oodb::Schema ecce_oodb_schema();

/// Doubles per PropChunk object. Output properties are shredded into
/// chunk objects of this size, mirroring how OODB blobs were stored.
inline constexpr size_t kPropChunkDoubles = 2048;

class OodbCalculationFactory final : public CalculationFactory {
 public:
  /// Borrows the client; the schema the client was built with must be
  /// ecce_oodb_schema().
  explicit OodbCalculationFactory(oodb::OodbClient* client)
      : client_(client) {}

  Status initialize() override;

  Status create_project(const std::string& project) override;
  Result<std::vector<std::string>> list_projects() override;
  Result<std::vector<std::string>> list_calculations(
      const std::string& project) override;
  Result<std::vector<CalcSummary>> project_summary(
      const std::string& project) override;

  Status save_calculation(const std::string& project,
                          const Calculation& calculation) override;
  Result<Calculation> load_calculation(const std::string& project,
                                       const std::string& name,
                                       const LoadParts& parts) override;
  Status remove_calculation(const std::string& project,
                            const std::string& name) override;
  Status copy_calculation(const std::string& project, const std::string& from,
                          const std::string& to) override;

  Status update_task_state(const std::string& project,
                           const std::string& calculation,
                           const std::string& task, RunState state) override;
  Status attach_output(const std::string& project,
                       const std::string& calculation,
                       const std::string& task,
                       const OutputProperty& output) override;

  Status save_library_basis(const BasisSet& basis) override;
  Result<std::vector<std::string>> list_library_bases() override;
  Result<BasisSet> load_library_basis(const std::string& name) override;

  oodb::OodbClient* client() { return client_; }

 private:
  // Directory objects map names to refs (two parallel fields).
  Result<oodb::ObjectId> directory_lookup(oodb::ObjectId directory,
                                          const std::string& name);
  Status directory_insert(oodb::ObjectId directory, const std::string& name,
                          oodb::ObjectId target);
  Status directory_remove(oodb::ObjectId directory, const std::string& name);
  Result<std::vector<std::string>> directory_names(oodb::ObjectId directory);
  Result<oodb::ObjectId> ensure_root_directory(const std::string& root);
  Result<oodb::ObjectId> project_directory(const std::string& project,
                                           bool create);

  Result<oodb::ObjectId> store_molecule(const Molecule& molecule);
  Result<Molecule> fetch_molecule(oodb::ObjectId id);
  Result<oodb::ObjectId> store_basis(const BasisSet& basis);
  Result<BasisSet> fetch_basis(oodb::ObjectId id);
  Result<oodb::ObjectId> store_property(const OutputProperty& output);
  Result<OutputProperty> fetch_property(oodb::ObjectId id);
  Result<oodb::ObjectId> store_task(const Calculation& calculation,
                                    const CalcTask& task);

  oodb::OodbClient* client_;
};

}  // namespace davpse::ecce
