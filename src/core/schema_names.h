// The "ecce" metadata namespace (§3.2.3: "For metadata, a single
// 'ecce' namespace was defined"). Every piece of Ecce metadata stored
// as DAV dead properties uses these QNames, so third-party tools can
// discover and reuse exactly the subset they understand — e.g. an
// agent that only knows ecce:formula can still find every molecule.
#pragma once

#include "xml/qname.h"

namespace davpse::ecce {

inline constexpr std::string_view kEcceNamespace = "http://purl.pnl.gov/ecce";

inline xml::QName ecce_name(std::string_view local) {
  return xml::QName(std::string(kEcceNamespace), std::string(local));
}

// Object typing: every Ecce-managed resource carries ecce:type so the
// physical DAV layout can be reorganized without breaking discovery.
inline const xml::QName kTypeProp = ecce_name("type");
// ecce:type values.
inline constexpr std::string_view kTypeProject = "project";
inline constexpr std::string_view kTypeCalculation = "calculation";
inline constexpr std::string_view kTypeMolecule = "molecule";
inline constexpr std::string_view kTypeBasisSet = "basisset";
inline constexpr std::string_view kTypeTask = "task";
inline constexpr std::string_view kTypeInputDeck = "input-deck";
inline constexpr std::string_view kTypeProperty = "output-property";
inline constexpr std::string_view kTypeJob = "job";

// Molecule metadata (Figure 4: "metadata encoding the format of the
// raw data, empirical formula, symmetry group, and charge state").
inline const xml::QName kFormatProp = ecce_name("format");   // xyz | pdb
inline const xml::QName kFormulaProp = ecce_name("formula");
inline const xml::QName kSymmetryProp = ecce_name("symmetry");
inline const xml::QName kChargeProp = ecce_name("charge");
inline const xml::QName kMultiplicityProp = ecce_name("multiplicity");
inline const xml::QName kAtomCountProp = ecce_name("atom-count");

// Calculation / task metadata.
inline const xml::QName kTheoryProp = ecce_name("theory");
inline const xml::QName kDescriptionProp = ecce_name("description");
inline const xml::QName kTaskKindProp = ecce_name("task-kind");
inline const xml::QName kStateProp = ecce_name("state");
inline const xml::QName kBasisNameProp = ecce_name("basis-name");

// Output property metadata.
inline const xml::QName kPropertyNameProp = ecce_name("property-name");
inline const xml::QName kUnitsProp = ecce_name("units");
inline const xml::QName kDimensionsProp = ecce_name("dimensions");

// Virtual-document membership (§3.2.3): a task collection's output
// documents are located through this XML-valued property — a sequence
// of <e:member name="..." href="..."/> entries — rather than through
// the physical directory, so "the physical layout of objects in DAV
// [can] be adjusted dynamically and independent of the metadata".
inline const xml::QName kMembersProp = ecce_name("members");

// Job metadata.
inline const xml::QName kJobHostProp = ecce_name("job-host");
inline const xml::QName kJobQueueProp = ecce_name("job-queue");
inline const xml::QName kJobNodesProp = ecce_name("job-nodes");
inline const xml::QName kJobIdProp = ecce_name("job-id");

// Third-party annotations (Section 4 agent scenarios).
inline const xml::QName kAnnotationProp = ecce_name("annotation");
inline const xml::QName kThermoEnthalpyProp = ecce_name("thermo-enthalpy");
inline const xml::QName kThermoEntropyProp = ecce_name("thermo-entropy");
inline const xml::QName kThermoSourceProp = ecce_name("thermo-source");

}  // namespace davpse::ecce
