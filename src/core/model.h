// The calculation object model of Figure 3: a study subject (Molecule)
// on which the tasks of an Experiment (Calculation) are performed,
// producing n-dimensional output Properties; Jobs capture the
// execution context so results stay reproducible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/chem.h"
#include "util/status.h"

namespace davpse::ecce {

enum class TheoryLevel { kSCF, kDFT, kMP2, kCCSD };
enum class TaskKind { kGeometryOptimization, kEnergy, kFrequency, kESP };
enum class RunState { kCreated, kSubmitted, kRunning, kComplete, kFailed };

std::string_view to_string(TheoryLevel theory);
std::string_view to_string(TaskKind kind);
std::string_view to_string(RunState state);
Result<TheoryLevel> theory_from_string(std::string_view text);
Result<TaskKind> task_kind_from_string(std::string_view text);
Result<RunState> run_state_from_string(std::string_view text);

/// Compute-job record (distributed execution + monitoring context).
struct Job {
  std::string host;
  std::string queue;
  int node_count = 1;
  std::string scheduler_id;
  RunState state = RunState::kCreated;
};

/// One step of a calculation (Figure 3's Experiment task).
struct CalcTask {
  std::string name;  // "task-1", assigned by the factory
  TaskKind kind = TaskKind::kEnergy;
  RunState state = RunState::kCreated;
  std::string input_deck;
  Job job;
  std::vector<OutputProperty> outputs;
};

/// A simulated experiment: "All the information needed to reproduce
/// the calculation and provide historical context or post-analysis
/// capabilities is captured."
struct Calculation {
  std::string name;
  std::string description;
  TheoryLevel theory = TheoryLevel::kSCF;
  Molecule molecule;
  BasisSet basis;
  std::vector<CalcTask> tasks;

  /// Total bytes across all output property payloads.
  size_t output_bytes() const;
};

struct Project {
  std::string name;
  std::vector<std::string> calculation_names;
};

/// Renders an NWChem-flavored input deck for a task of a calculation.
std::string generate_input_deck(const Calculation& calculation,
                                const CalcTask& task);

}  // namespace davpse::ecce
