#include "core/migrate.h"

#include "util/fs.h"
#include "util/strings.h"
#include "util/uri.h"

namespace davpse::ecce {

namespace fs = std::filesystem;

std::string MigrationReport::to_string() const {
  return std::to_string(projects) + " projects, " +
         std::to_string(calculations) + " calculations, " +
         std::to_string(raw_files_moved) + " raw files (" +
         format_bytes(raw_bytes_moved) + ") moved";
}

Result<MigrationReport> Migrator::migrate_all() {
  MigrationReport report;
  DAVPSE_RETURN_IF_ERROR(source_->initialize());
  DAVPSE_RETURN_IF_ERROR(dest_->initialize());

  auto projects = source_->list_projects();
  if (!projects.ok()) return projects.status();
  for (const auto& project : projects.value()) {
    Status created = dest_->create_project(project);
    if (!created.is_ok() && created.code() != ErrorCode::kAlreadyExists) {
      return created;
    }
    ++report.projects;
    auto calculations = source_->list_calculations(project);
    if (!calculations.ok()) return calculations.status();
    for (const auto& name : calculations.value()) {
      auto loaded =
          source_->load_calculation(project, name, LoadParts::all());
      if (!loaded.ok()) return loaded.status();
      DAVPSE_RETURN_IF_ERROR(
          dest_->save_calculation(project, loaded.value()));
      ++report.calculations;
    }
  }

  // The shared basis library moves too.
  auto bases = source_->list_library_bases();
  if (bases.ok()) {
    for (const auto& name : bases.value()) {
      auto basis = source_->load_library_basis(name);
      if (!basis.ok()) return basis.status();
      DAVPSE_RETURN_IF_ERROR(dest_->save_library_basis(basis.value()));
    }
  }
  return report;
}

Status Migrator::move_raw_files(const fs::path& raw_dir,
                                MigrationReport* report) {
  std::error_code ec;
  if (!fs::is_directory(raw_dir, ec)) return Status::ok();
  for (auto project_it = fs::directory_iterator(raw_dir, ec);
       !ec && project_it != fs::directory_iterator();
       project_it.increment(ec)) {
    if (!project_it->is_directory(ec)) continue;
    std::string project = project_it->path().filename().string();
    for (auto calc_it = fs::directory_iterator(project_it->path(), ec);
         !ec && calc_it != fs::directory_iterator(); calc_it.increment(ec)) {
      if (!calc_it->is_directory(ec)) continue;
      std::string calculation = calc_it->path().filename().string();
      std::string calc_path =
          DavCalculationFactory::calculation_path(project, calculation);
      auto exists = dest_storage_->exists(calc_path);
      if (!exists.ok()) return exists.status();
      if (!exists.value()) continue;  // no migrated calc to attach to
      for (auto file_it = fs::recursive_directory_iterator(calc_it->path(), ec);
           !ec && file_it != fs::recursive_directory_iterator();
           file_it.increment(ec)) {
        if (!file_it->is_regular_file(ec)) continue;
        std::string contents;
        DAVPSE_RETURN_IF_ERROR(read_file(file_it->path(), &contents));
        std::string target = join_path(
            calc_path, "raw-" + file_it->path().filename().string());
        size_t size = contents.size();
        DAVPSE_RETURN_IF_ERROR(dest_storage_->write_object(
            target, std::move(contents), "application/octet-stream"));
        if (report != nullptr) {
          ++report->raw_files_moved;
          report->raw_bytes_moved += size;
        }
      }
    }
  }
  return Status::ok();
}

}  // namespace davpse::ecce
