// DAV binding of the Data Storage Interface — the protocol module of
// Figure 2's layered client ("While DAV is the only protocol currently
// implemented, a separate data storage interface will reduce the
// changes required to provide native-protocol access to data grids").
#pragma once

#include <memory>

#include "davclient/client.h"
#include "core/storage.h"

namespace davpse::ecce {

class DavStorage final : public DataStorageInterface {
 public:
  /// Borrows the client; the caller keeps it alive.
  explicit DavStorage(davclient::DavClient* client) : client_(client) {}

  Status create_container(const std::string& path) override;
  Status create_container_path(const std::string& path) override;
  Result<std::vector<std::string>> list(const std::string& path) override;

  Status write_object(const std::string& path, std::string data,
                      const std::string& content_type) override;
  Result<std::string> read_object(const std::string& path) override;

  // True streaming over DAV GET/PUT — O(block) memory per transfer.
  Status read_object_to(const std::string& path,
                        http::BodySink* sink) override;
  Status write_object_from(const std::string& path,
                           std::shared_ptr<http::BodySource> data,
                           const std::string& content_type) override;

  Status set_metadata(const std::string& path,
                      const std::vector<Metadatum>& metadata) override;
  Result<std::string> get_metadatum(const std::string& path,
                                    const xml::QName& name) override;
  Result<std::vector<Metadatum>> get_metadata(
      const std::string& path,
      const std::vector<xml::QName>& names) override;
  Result<std::vector<std::pair<std::string, std::vector<Metadatum>>>>
  get_children_metadata(const std::string& path,
                        const std::vector<xml::QName>& names) override;

  Result<bool> exists(const std::string& path) override;
  Status remove(const std::string& path) override;
  Status copy(const std::string& from, const std::string& to) override;
  Status move(const std::string& from, const std::string& to) override;

  davclient::DavClient* client() { return client_; }

 private:
  davclient::DavClient* client_;
};

}  // namespace davpse::ecce
