#include "core/oodb_factory.h"

#include <algorithm>

#include "util/strings.h"

namespace davpse::ecce {
namespace {

using oodb::FieldDef;
using oodb::FieldType;
using oodb::ObjectId;
using oodb::PersistentObject;

// Field indices per class (declaration order below).
namespace dir {
constexpr size_t kNames = 0;  // "\n"-joined member names
constexpr size_t kRefs = 1;   // parallel member refs
}  // namespace dir
namespace calc {
constexpr size_t kName = 0;
constexpr size_t kDescription = 1;
constexpr size_t kTheory = 2;
constexpr size_t kState = 3;
constexpr size_t kMolecule = 4;
constexpr size_t kBasis = 5;
constexpr size_t kTasks = 6;
}  // namespace calc
namespace mol {
constexpr size_t kName = 0;
constexpr size_t kCharge = 1;
constexpr size_t kMultiplicity = 2;
constexpr size_t kAtoms = 3;
}  // namespace mol
namespace atom {
constexpr size_t kSymbol = 0;
constexpr size_t kX = 1;
constexpr size_t kY = 2;
constexpr size_t kZ = 3;
}  // namespace atom
namespace basis {
constexpr size_t kName = 0;
constexpr size_t kShells = 1;
}  // namespace basis
namespace shell {
constexpr size_t kElement = 0;
constexpr size_t kType = 1;
constexpr size_t kExponents = 2;
constexpr size_t kCoefficients = 3;
}  // namespace shell
namespace task {
constexpr size_t kName = 0;
constexpr size_t kKind = 1;
constexpr size_t kState = 2;
constexpr size_t kInput = 3;
constexpr size_t kJob = 4;
constexpr size_t kOutputs = 5;
}  // namespace task
namespace job {
constexpr size_t kHost = 0;
constexpr size_t kQueue = 1;
constexpr size_t kNodes = 2;
constexpr size_t kSchedulerId = 3;
constexpr size_t kState = 4;
}  // namespace job
namespace prop {
constexpr size_t kName = 0;
constexpr size_t kUnits = 1;
constexpr size_t kDims = 2;
constexpr size_t kChunks = 3;
}  // namespace prop
namespace chunk {
constexpr size_t kValues = 0;
}  // namespace chunk

std::string dims_to_text(const std::vector<uint32_t>& dimensions) {
  std::string out;
  for (size_t i = 0; i < dimensions.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(dimensions[i]);
  }
  return out;
}

std::vector<uint32_t> dims_from_text(const std::string& text) {
  std::vector<uint32_t> out;
  for (const auto& piece : split_skip_empty(text, 'x')) {
    try {
      out.push_back(static_cast<uint32_t>(std::stoul(piece)));
    } catch (const std::exception&) {
      return {};
    }
  }
  return out;
}

}  // namespace

oodb::Schema ecce_oodb_schema() {
  oodb::Schema schema;
  auto add = [&schema](std::string name, std::vector<FieldDef> fields) {
    Status status = schema.add_class(std::move(name), std::move(fields));
    (void)status;  // construction-time schema: names are unique
  };
  add("Directory", {{"names", FieldType::kString},
                    {"refs", FieldType::kRefArray}});
  add("Calculation", {{"name", FieldType::kString},
                      {"description", FieldType::kString},
                      {"theory", FieldType::kString},
                      {"state", FieldType::kString},
                      {"molecule", FieldType::kObjectRef},
                      {"basis", FieldType::kObjectRef},
                      {"tasks", FieldType::kRefArray}});
  add("Molecule", {{"name", FieldType::kString},
                   {"charge", FieldType::kInt64},
                   {"multiplicity", FieldType::kInt64},
                   {"atoms", FieldType::kRefArray}});
  add("Atom", {{"symbol", FieldType::kString},
               {"x", FieldType::kDouble},
               {"y", FieldType::kDouble},
               {"z", FieldType::kDouble}});
  add("BasisSet", {{"name", FieldType::kString},
                   {"shells", FieldType::kRefArray}});
  add("BasisShell", {{"element", FieldType::kString},
                     {"type", FieldType::kString},
                     {"exponents", FieldType::kDoubleArray},
                     {"coefficients", FieldType::kDoubleArray}});
  add("Task", {{"name", FieldType::kString},
               {"kind", FieldType::kString},
               {"state", FieldType::kString},
               {"input", FieldType::kString},
               {"job", FieldType::kObjectRef},
               {"outputs", FieldType::kRefArray}});
  add("Job", {{"host", FieldType::kString},
              {"queue", FieldType::kString},
              {"nodes", FieldType::kInt64},
              {"scheduler_id", FieldType::kString},
              {"state", FieldType::kString}});
  add("Property", {{"name", FieldType::kString},
                   {"units", FieldType::kString},
                   {"dims", FieldType::kString},
                   {"chunks", FieldType::kRefArray}});
  add("PropChunk", {{"values", FieldType::kDoubleArray}});
  Status status = schema.compile();
  (void)status;
  return schema;
}

// ---------------------------------------------------------------------
// Directory helpers

Result<ObjectId> OodbCalculationFactory::ensure_root_directory(
    const std::string& root) {
  auto existing = client_->get_root(root);
  if (!existing.ok()) return existing.status();
  if (existing.value() != oodb::kNullObject) return existing.value();
  auto directory = client_->create("Directory");
  if (!directory.ok()) return directory.status();
  DAVPSE_RETURN_IF_ERROR(client_->commit());
  DAVPSE_RETURN_IF_ERROR(client_->set_root(root, directory.value()->id()));
  return directory.value()->id();
}

Result<ObjectId> OodbCalculationFactory::directory_lookup(
    ObjectId directory, const std::string& name) {
  auto object = client_->read(directory);
  if (!object.ok()) return object.status();
  auto names = split(object.value()->get_string(dir::kNames), '\n');
  const auto& refs = object.value()->get_ref_array(dir::kRefs);
  for (size_t i = 0; i < names.size() && i < refs.size(); ++i) {
    if (names[i] == name) return refs[i];
  }
  return Status(ErrorCode::kNotFound, "no directory entry: " + name);
}

Status OodbCalculationFactory::directory_insert(ObjectId directory,
                                                const std::string& name,
                                                ObjectId target) {
  auto object = client_->read(directory);
  if (!object.ok()) return object.status();
  std::string names = object.value()->get_string(dir::kNames);
  auto refs = object.value()->get_ref_array(dir::kRefs);
  if (!names.empty()) names += "\n";
  names += name;
  refs.push_back(target);
  object.value()->set(dir::kNames, std::move(names));
  object.value()->set(dir::kRefs, std::move(refs));
  client_->mark_dirty(directory);
  return client_->commit();
}

Status OodbCalculationFactory::directory_remove(ObjectId directory,
                                                const std::string& name) {
  auto object = client_->read(directory);
  if (!object.ok()) return object.status();
  auto names = split(object.value()->get_string(dir::kNames), '\n');
  auto refs = object.value()->get_ref_array(dir::kRefs);
  std::string new_names;
  std::vector<ObjectId> new_refs;
  bool removed = false;
  for (size_t i = 0; i < names.size() && i < refs.size(); ++i) {
    if (names[i] == name) {
      removed = true;
      continue;
    }
    if (!new_names.empty()) new_names += "\n";
    new_names += names[i];
    new_refs.push_back(refs[i]);
  }
  if (!removed) {
    return error(ErrorCode::kNotFound, "no directory entry: " + name);
  }
  object.value()->set(dir::kNames, std::move(new_names));
  object.value()->set(dir::kRefs, std::move(new_refs));
  client_->mark_dirty(directory);
  return client_->commit();
}

Result<std::vector<std::string>> OodbCalculationFactory::directory_names(
    ObjectId directory) {
  auto object = client_->read(directory);
  if (!object.ok()) return object.status();
  std::string joined = object.value()->get_string(dir::kNames);
  if (joined.empty()) return std::vector<std::string>{};
  return split(joined, '\n');
}

Result<ObjectId> OodbCalculationFactory::project_directory(
    const std::string& project, bool create) {
  auto root = ensure_root_directory("projects");
  if (!root.ok()) return root.status();
  auto found = directory_lookup(root.value(), project);
  if (found.ok() || !create) return found;
  auto directory = client_->create("Directory");
  if (!directory.ok()) return directory.status();
  ObjectId id = directory.value()->id();
  DAVPSE_RETURN_IF_ERROR(client_->commit());
  DAVPSE_RETURN_IF_ERROR(directory_insert(root.value(), project, id));
  return id;
}

// ---------------------------------------------------------------------
// Factory interface

Status OodbCalculationFactory::initialize() {
  DAVPSE_RETURN_IF_ERROR(client_->open());
  // Cache-forward warm-up: resolving the root directories faults their
  // segments into the client cache (part of every tool's cold start in
  // the 1.5 architecture).
  auto projects = ensure_root_directory("projects");
  if (!projects.ok()) return projects.status();
  auto library = ensure_root_directory("basis-library");
  if (!library.ok()) return library.status();
  auto names = directory_names(projects.value());
  if (!names.ok()) return names.status();
  return Status::ok();
}

Status OodbCalculationFactory::create_project(const std::string& project) {
  auto directory = project_directory(project, /*create=*/true);
  return directory.ok() ? Status::ok() : directory.status();
}

Result<std::vector<std::string>> OodbCalculationFactory::list_projects() {
  auto root = ensure_root_directory("projects");
  if (!root.ok()) return root.status();
  return directory_names(root.value());
}

Result<std::vector<std::string>> OodbCalculationFactory::list_calculations(
    const std::string& project) {
  auto directory = project_directory(project, /*create=*/false);
  if (!directory.ok()) return directory.status();
  return directory_names(directory.value());
}

Result<std::vector<CalcSummary>> OodbCalculationFactory::project_summary(
    const std::string& project) {
  auto directory = project_directory(project, /*create=*/false);
  if (!directory.ok()) return directory.status();
  auto object = client_->read(directory.value());
  if (!object.ok()) return object.status();
  auto names = split(object.value()->get_string(dir::kNames), '\n');
  auto refs = object.value()->get_ref_array(dir::kRefs);
  std::vector<CalcSummary> out;
  for (size_t i = 0; i < names.size() && i < refs.size(); ++i) {
    if (names[i].empty()) continue;
    auto calc_object = client_->read(refs[i]);
    if (!calc_object.ok()) return calc_object.status();
    CalcSummary summary;
    summary.name = names[i];
    auto theory =
        theory_from_string(calc_object.value()->get_string(calc::kTheory));
    if (theory.ok()) summary.theory = theory.value();
    auto state =
        run_state_from_string(calc_object.value()->get_string(calc::kState));
    if (state.ok()) summary.state = state.value();
    // Formula requires faulting the molecule and all its atom objects.
    auto molecule = fetch_molecule(calc_object.value()->get_ref(calc::kMolecule));
    if (molecule.ok()) {
      summary.formula = molecule.value().empirical_formula();
    }
    out.push_back(std::move(summary));
  }
  return out;
}

Result<ObjectId> OodbCalculationFactory::store_molecule(
    const Molecule& molecule) {
  std::vector<ObjectId> atom_refs;
  atom_refs.reserve(molecule.atoms.size());
  for (const Atom& a : molecule.atoms) {
    auto atom_object = client_->create("Atom");
    if (!atom_object.ok()) return atom_object.status();
    atom_object.value()->set(atom::kSymbol, a.symbol);
    atom_object.value()->set(atom::kX, a.x);
    atom_object.value()->set(atom::kY, a.y);
    atom_object.value()->set(atom::kZ, a.z);
    atom_refs.push_back(atom_object.value()->id());
  }
  auto object = client_->create("Molecule");
  if (!object.ok()) return object.status();
  object.value()->set(mol::kName, molecule.name);
  object.value()->set(mol::kCharge, static_cast<int64_t>(molecule.charge));
  object.value()->set(mol::kMultiplicity,
                      static_cast<int64_t>(molecule.multiplicity));
  object.value()->set(mol::kAtoms, std::move(atom_refs));
  return object.value()->id();
}

Result<Molecule> OodbCalculationFactory::fetch_molecule(ObjectId id) {
  auto object = client_->read(id);
  if (!object.ok()) return object.status();
  Molecule molecule;
  molecule.name = object.value()->get_string(mol::kName);
  molecule.charge = static_cast<int>(object.value()->get_int(mol::kCharge));
  molecule.multiplicity =
      static_cast<int>(object.value()->get_int(mol::kMultiplicity));
  for (ObjectId atom_id : object.value()->get_ref_array(mol::kAtoms)) {
    auto atom_object = client_->read(atom_id);
    if (!atom_object.ok()) return atom_object.status();
    Atom a;
    a.symbol = atom_object.value()->get_string(atom::kSymbol);
    a.x = atom_object.value()->get_double(atom::kX);
    a.y = atom_object.value()->get_double(atom::kY);
    a.z = atom_object.value()->get_double(atom::kZ);
    molecule.atoms.push_back(std::move(a));
  }
  return molecule;
}

Result<ObjectId> OodbCalculationFactory::store_basis(const BasisSet& basis) {
  std::vector<ObjectId> shell_refs;
  shell_refs.reserve(basis.shells.size());
  for (const BasisShell& s : basis.shells) {
    auto shell_object = client_->create("BasisShell");
    if (!shell_object.ok()) return shell_object.status();
    shell_object.value()->set(shell::kElement, s.element);
    shell_object.value()->set(shell::kType, std::string(1, s.shell_type));
    shell_object.value()->set(shell::kExponents, s.exponents);
    shell_object.value()->set(shell::kCoefficients, s.coefficients);
    shell_refs.push_back(shell_object.value()->id());
  }
  auto object = client_->create("BasisSet");
  if (!object.ok()) return object.status();
  object.value()->set(basis::kName, basis.name);
  object.value()->set(basis::kShells, std::move(shell_refs));
  return object.value()->id();
}

Result<BasisSet> OodbCalculationFactory::fetch_basis(ObjectId id) {
  auto object = client_->read(id);
  if (!object.ok()) return object.status();
  BasisSet basis;
  basis.name = object.value()->get_string(basis::kName);
  for (ObjectId shell_id : object.value()->get_ref_array(basis::kShells)) {
    auto shell_object = client_->read(shell_id);
    if (!shell_object.ok()) return shell_object.status();
    BasisShell s;
    s.element = shell_object.value()->get_string(shell::kElement);
    std::string type = shell_object.value()->get_string(shell::kType);
    s.shell_type = type.empty() ? 'S' : type[0];
    s.exponents = shell_object.value()->get_double_array(shell::kExponents);
    s.coefficients =
        shell_object.value()->get_double_array(shell::kCoefficients);
    basis.shells.push_back(std::move(s));
  }
  return basis;
}

Result<ObjectId> OodbCalculationFactory::store_property(
    const OutputProperty& output) {
  std::vector<ObjectId> chunk_refs;
  for (size_t offset = 0; offset < output.values.size();
       offset += kPropChunkDoubles) {
    auto chunk_object = client_->create("PropChunk");
    if (!chunk_object.ok()) return chunk_object.status();
    size_t end = std::min(offset + kPropChunkDoubles, output.values.size());
    chunk_object.value()->set(
        chunk::kValues,
        std::vector<double>(output.values.begin() + offset,
                            output.values.begin() + end));
    chunk_refs.push_back(chunk_object.value()->id());
  }
  auto object = client_->create("Property");
  if (!object.ok()) return object.status();
  object.value()->set(prop::kName, output.name);
  object.value()->set(prop::kUnits, output.units);
  object.value()->set(prop::kDims, dims_to_text(output.dimensions));
  object.value()->set(prop::kChunks, std::move(chunk_refs));
  return object.value()->id();
}

Result<OutputProperty> OodbCalculationFactory::fetch_property(ObjectId id) {
  auto object = client_->read(id);
  if (!object.ok()) return object.status();
  OutputProperty output;
  output.name = object.value()->get_string(prop::kName);
  output.units = object.value()->get_string(prop::kUnits);
  output.dimensions =
      dims_from_text(object.value()->get_string(prop::kDims));
  for (ObjectId chunk_id : object.value()->get_ref_array(prop::kChunks)) {
    auto chunk_object = client_->read(chunk_id);
    if (!chunk_object.ok()) return chunk_object.status();
    const auto& values = chunk_object.value()->get_double_array(chunk::kValues);
    output.values.insert(output.values.end(), values.begin(), values.end());
  }
  return output;
}

Result<ObjectId> OodbCalculationFactory::store_task(
    const Calculation& calculation, const CalcTask& calc_task) {
  (void)calculation;
  auto job_object = client_->create("Job");
  if (!job_object.ok()) return job_object.status();
  job_object.value()->set(job::kHost, calc_task.job.host);
  job_object.value()->set(job::kQueue, calc_task.job.queue);
  job_object.value()->set(job::kNodes,
                          static_cast<int64_t>(calc_task.job.node_count));
  job_object.value()->set(job::kSchedulerId, calc_task.job.scheduler_id);
  job_object.value()->set(job::kState,
                          std::string(to_string(calc_task.job.state)));

  std::vector<ObjectId> output_refs;
  for (const OutputProperty& output : calc_task.outputs) {
    auto property = store_property(output);
    if (!property.ok()) return property.status();
    output_refs.push_back(property.value());
  }

  auto object = client_->create("Task");
  if (!object.ok()) return object.status();
  object.value()->set(task::kName, calc_task.name);
  object.value()->set(task::kKind, std::string(to_string(calc_task.kind)));
  object.value()->set(task::kState, std::string(to_string(calc_task.state)));
  object.value()->set(task::kInput, calc_task.input_deck);
  object.value()->set(task::kJob, job_object.value()->id());
  object.value()->set(task::kOutputs, std::move(output_refs));
  return object.value()->id();
}

Status OodbCalculationFactory::save_calculation(
    const std::string& project, const Calculation& calculation) {
  auto directory = project_directory(project, /*create=*/true);
  if (!directory.ok()) return directory.status();

  auto molecule = store_molecule(calculation.molecule);
  if (!molecule.ok()) return molecule.status();
  auto basis = store_basis(calculation.basis);
  if (!basis.ok()) return basis.status();

  std::vector<ObjectId> task_refs;
  for (const CalcTask& task : calculation.tasks) {
    auto stored = store_task(calculation, task);
    if (!stored.ok()) return stored.status();
    task_refs.push_back(stored.value());
  }

  auto object = client_->create("Calculation");
  if (!object.ok()) return object.status();
  object.value()->set(calc::kName, calculation.name);
  object.value()->set(calc::kDescription, calculation.description);
  object.value()->set(calc::kTheory,
                      std::string(to_string(calculation.theory)));
  object.value()->set(
      calc::kState,
      std::string(to_string(calculation.tasks.empty()
                                ? RunState::kCreated
                                : calculation.tasks.back().state)));
  object.value()->set(calc::kMolecule, molecule.value());
  object.value()->set(calc::kBasis, basis.value());
  object.value()->set(calc::kTasks, std::move(task_refs));
  ObjectId calc_id = object.value()->id();
  DAVPSE_RETURN_IF_ERROR(client_->commit());
  return directory_insert(directory.value(), calculation.name, calc_id);
}

Result<Calculation> OodbCalculationFactory::load_calculation(
    const std::string& project, const std::string& name,
    const LoadParts& parts) {
  auto directory = project_directory(project, /*create=*/false);
  if (!directory.ok()) return directory.status();
  auto calc_id = directory_lookup(directory.value(), name);
  if (!calc_id.ok()) return calc_id.status();
  auto object = client_->read(calc_id.value());
  if (!object.ok()) return object.status();

  Calculation calculation;
  calculation.name = object.value()->get_string(calc::kName);
  calculation.description = object.value()->get_string(calc::kDescription);
  auto theory =
      theory_from_string(object.value()->get_string(calc::kTheory));
  if (theory.ok()) calculation.theory = theory.value();

  if (parts.molecule) {
    auto molecule =
        fetch_molecule(object.value()->get_ref(calc::kMolecule));
    if (!molecule.ok()) return molecule.status();
    calculation.molecule = std::move(molecule).value();
  }
  if (parts.basis) {
    auto basis = fetch_basis(object.value()->get_ref(calc::kBasis));
    if (!basis.ok()) return basis.status();
    calculation.basis = std::move(basis).value();
  }

  for (ObjectId task_id : object.value()->get_ref_array(calc::kTasks)) {
    auto task_object = client_->read(task_id);
    if (!task_object.ok()) return task_object.status();
    CalcTask task;
    task.name = task_object.value()->get_string(task::kName);
    auto kind =
        task_kind_from_string(task_object.value()->get_string(task::kKind));
    if (kind.ok()) task.kind = kind.value();
    auto state =
        run_state_from_string(task_object.value()->get_string(task::kState));
    if (state.ok()) task.state = state.value();
    if (parts.input_decks) {
      task.input_deck = task_object.value()->get_string(task::kInput);
    }
    if (parts.jobs) {
      auto job_object = client_->read(task_object.value()->get_ref(task::kJob));
      if (!job_object.ok()) return job_object.status();
      task.job.host = job_object.value()->get_string(job::kHost);
      task.job.queue = job_object.value()->get_string(job::kQueue);
      task.job.node_count =
          static_cast<int>(job_object.value()->get_int(job::kNodes));
      task.job.scheduler_id =
          job_object.value()->get_string(job::kSchedulerId);
      auto job_state = run_state_from_string(
          job_object.value()->get_string(job::kState));
      if (job_state.ok()) task.job.state = job_state.value();
    }
    if (parts.outputs) {
      for (ObjectId output_id :
           task_object.value()->get_ref_array(task::kOutputs)) {
        auto property = fetch_property(output_id);
        if (!property.ok()) return property.status();
        task.outputs.push_back(std::move(property).value());
      }
    }
    // Same canonical output order as the DAV factory (see there).
    std::sort(task.outputs.begin(), task.outputs.end(),
              [](const OutputProperty& a, const OutputProperty& b) {
                return a.name < b.name;
              });
    calculation.tasks.push_back(std::move(task));
  }
  return calculation;
}

Status OodbCalculationFactory::remove_calculation(const std::string& project,
                                                  const std::string& name) {
  auto directory = project_directory(project, /*create=*/false);
  if (!directory.ok()) return directory.status();
  auto calc_id = directory_lookup(directory.value(), name);
  if (!calc_id.ok()) return calc_id.status();
  // Deep removal: every reachable object must be deleted individually
  // (no server-side subtree delete in the object model).
  auto object = client_->read(calc_id.value());
  if (!object.ok()) return object.status();
  auto molecule_id = object.value()->get_ref(calc::kMolecule);
  if (molecule_id != oodb::kNullObject) {
    auto molecule = client_->read(molecule_id);
    if (molecule.ok()) {
      for (ObjectId atom_id : molecule.value()->get_ref_array(mol::kAtoms)) {
        DAVPSE_RETURN_IF_ERROR(client_->remove(atom_id));
      }
    }
    DAVPSE_RETURN_IF_ERROR(client_->remove(molecule_id));
  }
  auto basis_id = object.value()->get_ref(calc::kBasis);
  if (basis_id != oodb::kNullObject) {
    auto basis = client_->read(basis_id);
    if (basis.ok()) {
      for (ObjectId shell_id :
           basis.value()->get_ref_array(basis::kShells)) {
        DAVPSE_RETURN_IF_ERROR(client_->remove(shell_id));
      }
    }
    DAVPSE_RETURN_IF_ERROR(client_->remove(basis_id));
  }
  for (ObjectId task_id : object.value()->get_ref_array(calc::kTasks)) {
    auto task_object = client_->read(task_id);
    if (task_object.ok()) {
      ObjectId job_id = task_object.value()->get_ref(task::kJob);
      if (job_id != oodb::kNullObject) {
        DAVPSE_RETURN_IF_ERROR(client_->remove(job_id));
      }
      for (ObjectId output_id :
           task_object.value()->get_ref_array(task::kOutputs)) {
        auto property = client_->read(output_id);
        if (property.ok()) {
          for (ObjectId chunk_id :
               property.value()->get_ref_array(prop::kChunks)) {
            DAVPSE_RETURN_IF_ERROR(client_->remove(chunk_id));
          }
        }
        DAVPSE_RETURN_IF_ERROR(client_->remove(output_id));
      }
    }
    DAVPSE_RETURN_IF_ERROR(client_->remove(task_id));
  }
  DAVPSE_RETURN_IF_ERROR(client_->remove(calc_id.value()));
  return directory_remove(directory.value(), name);
}

Status OodbCalculationFactory::copy_calculation(const std::string& project,
                                                const std::string& from,
                                                const std::string& to) {
  // Client-side deep copy: fault everything in, rebuild the graph,
  // ship it back. Contrast with DAV's single server-side COPY.
  auto loaded = load_calculation(project, from, LoadParts::all());
  if (!loaded.ok()) return loaded.status();
  Calculation copy = std::move(loaded).value();
  copy.name = to;
  return save_calculation(project, copy);
}

Status OodbCalculationFactory::update_task_state(
    const std::string& project, const std::string& calculation,
    const std::string& task_name, RunState state) {
  auto directory = project_directory(project, /*create=*/false);
  if (!directory.ok()) return directory.status();
  auto calc_id = directory_lookup(directory.value(), calculation);
  if (!calc_id.ok()) return calc_id.status();
  auto object = client_->read(calc_id.value());
  if (!object.ok()) return object.status();
  for (ObjectId task_id : object.value()->get_ref_array(calc::kTasks)) {
    auto task_object = client_->read(task_id);
    if (!task_object.ok()) return task_object.status();
    if (task_object.value()->get_string(task::kName) != task_name) continue;
    task_object.value()->set(task::kState,
                             std::string(to_string(state)));
    client_->mark_dirty(task_id);
    // Calculation-level rollup, matching the DAV factory.
    object.value()->set(calc::kState, std::string(to_string(state)));
    client_->mark_dirty(calc_id.value());
    return client_->commit();
  }
  return error(ErrorCode::kNotFound,
               "no task " + task_name + " in " + calculation);
}

Status OodbCalculationFactory::attach_output(const std::string& project,
                                             const std::string& calculation,
                                             const std::string& task_name,
                                             const OutputProperty& output) {
  auto directory = project_directory(project, /*create=*/false);
  if (!directory.ok()) return directory.status();
  auto calc_id = directory_lookup(directory.value(), calculation);
  if (!calc_id.ok()) return calc_id.status();
  auto object = client_->read(calc_id.value());
  if (!object.ok()) return object.status();
  for (ObjectId task_id : object.value()->get_ref_array(calc::kTasks)) {
    auto task_object = client_->read(task_id);
    if (!task_object.ok()) return task_object.status();
    if (task_object.value()->get_string(task::kName) != task_name) continue;
    auto property = store_property(output);
    if (!property.ok()) return property.status();
    auto outputs = task_object.value()->get_ref_array(task::kOutputs);
    outputs.push_back(property.value());
    task_object.value()->set(task::kOutputs, std::move(outputs));
    client_->mark_dirty(task_id);
    return client_->commit();
  }
  return error(ErrorCode::kNotFound,
               "no task " + task_name + " in " + calculation);
}

Status OodbCalculationFactory::save_library_basis(const BasisSet& basis) {
  auto library = ensure_root_directory("basis-library");
  if (!library.ok()) return library.status();
  auto stored = store_basis(basis);
  if (!stored.ok()) return stored.status();
  DAVPSE_RETURN_IF_ERROR(client_->commit());
  return directory_insert(library.value(), basis.name, stored.value());
}

Result<std::vector<std::string>>
OodbCalculationFactory::list_library_bases() {
  auto library = ensure_root_directory("basis-library");
  if (!library.ok()) return library.status();
  return directory_names(library.value());
}

Result<BasisSet> OodbCalculationFactory::load_library_basis(
    const std::string& name) {
  auto library = ensure_root_directory("basis-library");
  if (!library.ok()) return library.status();
  auto id = directory_lookup(library.value(), name);
  if (!id.ok()) return id.status();
  return fetch_basis(id.value());
}

}  // namespace davpse::ecce
