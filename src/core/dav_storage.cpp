#include "core/dav_storage.h"

#include "xml/escape.h"

namespace davpse::ecce {
namespace {

std::vector<Metadatum> metadata_from(
    const davclient::ResourceResponse& response) {
  std::vector<Metadatum> out;
  out.reserve(response.found.size());
  for (const auto& entry : response.found) {
    out.emplace_back(entry.name, xml::unescape_text(entry.inner_xml));
  }
  return out;
}

}  // namespace

Status DavStorage::create_container(const std::string& path) {
  return client_->mkcol(path);
}

Status DavStorage::create_container_path(const std::string& path) {
  return client_->mkcol_recursive(path);
}

Result<std::vector<std::string>> DavStorage::list(const std::string& path) {
  DAVPSE_ASSIGN_OR_RETURN(
      auto result,
      client_->propfind(path, davclient::Depth::kOne,
                        {xml::dav_name("resourcetype")}));
  std::vector<std::string> out;
  for (const auto& response : result.responses) {
    if (response.href == path) continue;  // the container itself
    out.push_back(response.href);
  }
  return out;
}

Status DavStorage::write_object(const std::string& path, std::string data,
                                const std::string& content_type) {
  return client_->put(path, std::move(data), content_type);
}

Result<std::string> DavStorage::read_object(const std::string& path) {
  return client_->get(path);
}

Status DavStorage::read_object_to(const std::string& path,
                                  http::BodySink* sink) {
  return client_->get_to(path, sink);
}

Status DavStorage::write_object_from(const std::string& path,
                                     std::shared_ptr<http::BodySource> data,
                                     const std::string& content_type) {
  return client_->put_from(path, std::move(data), content_type);
}

Status DavStorage::set_metadata(const std::string& path,
                                const std::vector<Metadatum>& metadata) {
  std::vector<davclient::PropWrite> writes;
  writes.reserve(metadata.size());
  for (const auto& [name, value] : metadata) {
    writes.push_back(davclient::PropWrite::of_text(name, value));
  }
  return client_->proppatch(path, writes);
}

Result<std::string> DavStorage::get_metadatum(const std::string& path,
                                              const xml::QName& name) {
  return client_->get_property(path, name);
}

Result<std::vector<Metadatum>> DavStorage::get_metadata(
    const std::string& path, const std::vector<xml::QName>& names) {
  DAVPSE_ASSIGN_OR_RETURN(
      auto result, client_->propfind(path, davclient::Depth::kZero, names));
  if (result.responses.empty()) {
    return Status(ErrorCode::kNotFound, "no PROPFIND response for " + path);
  }
  return metadata_from(result.responses.front());
}

Result<std::vector<std::pair<std::string, std::vector<Metadatum>>>>
DavStorage::get_children_metadata(const std::string& path,
                                  const std::vector<xml::QName>& names) {
  DAVPSE_ASSIGN_OR_RETURN(
      auto result, client_->propfind(path, davclient::Depth::kOne, names));
  std::vector<std::pair<std::string, std::vector<Metadatum>>> out;
  for (const auto& response : result.responses) {
    if (response.href == path) continue;
    out.emplace_back(response.href, metadata_from(response));
  }
  return out;
}

Result<bool> DavStorage::exists(const std::string& path) {
  return client_->exists(path);
}

Status DavStorage::remove(const std::string& path) {
  return client_->remove(path);
}

Status DavStorage::copy(const std::string& from, const std::string& to) {
  return client_->copy(from, to);
}

Status DavStorage::move(const std::string& from, const std::string& to) {
  return client_->move(from, to);
}

}  // namespace davpse::ecce
