// Workload builders shared by benches, tests, and examples: the
// UO2·15H2O benchmark calculation of Table 3, the small-system corpus
// of §3.2.4, and the basis-set library BasisTool loads at startup.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.h"

namespace davpse::ecce {

/// The Table 3 benchmark: UO2·15H2O (50 atoms), three tasks
/// (geometry optimization, frequency, energy) with "individual output
/// properties up to 1.8 MB in size".
Calculation make_uo2_calculation();

/// §3.2.4 migration corpus member: "very small chemical systems with
/// correspondingly small output dataset sizes". A few waters, one or
/// two tasks, properties of a few KB.
Calculation make_small_calculation(const std::string& name, uint64_t seed);

/// Basis-set library (shared across calculations; BasisTool's startup
/// payload). `count` sets spanning common elements plus uranium.
std::vector<BasisSet> make_basis_library(size_t count, uint64_t seed = 3);

}  // namespace davpse::ecce
