// §3.2.4 data migration: the two-stage OODB→DAV conversion.
//   Stage 1: "converted OODB data into the DAV data structures" —
//            every project/calculation is faulted out of the object
//            store and re-saved through the DAV factory.
//   Stage 2: "raw calculation data in the form of input and output
//            files was moved from users local disk storage directly
//            into the calculation virtual document on the data server"
//            — the OODB only held *path references* to those files.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/dav_factory.h"
#include "core/factory.h"
#include "core/storage.h"

namespace davpse::ecce {

struct MigrationReport {
  size_t projects = 0;
  size_t calculations = 0;
  size_t raw_files_moved = 0;
  uint64_t raw_bytes_moved = 0;

  std::string to_string() const;
};

class Migrator {
 public:
  /// `source` is the legacy (OODB-backed) factory, `dest` the new
  /// DAV-backed one, `dest_storage` the raw storage binding used for
  /// stage-2 file uploads.
  Migrator(CalculationFactory* source, DavCalculationFactory* dest,
           DataStorageInterface* dest_storage)
      : source_(source), dest_(dest), dest_storage_(dest_storage) {}

  /// Runs stage 1 over every project in the source store.
  Result<MigrationReport> migrate_all();

  /// Stage 2: uploads every file under `raw_dir/<project>/<calc>/`
  /// into the matching calculation virtual document as a `raw-<name>`
  /// member. Missing directories are fine (not every calculation has
  /// raw files).
  Status move_raw_files(const std::filesystem::path& raw_dir,
                        MigrationReport* report);

 private:
  CalculationFactory* source_;
  DavCalculationFactory* dest_;
  DataStorageInterface* dest_storage_;
};

}  // namespace davpse::ecce
