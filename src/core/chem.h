// Chemistry value types for the Ecce data model: molecules with 3-D
// geometry, basis sets, and n-dimensional output properties.
//
// Substitution note (DESIGN.md): the paper's benchmark system is a
// real uranium-oxide/water cluster computed with NWChem. We generate a
// structurally faithful synthetic equivalent — same atom count (50),
// same document/property sizes (output properties up to 1.8 MB) — since
// the experiments measure data movement, not chemistry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace davpse::ecce {

struct Atom {
  std::string symbol;  // "U", "O", "H", ...
  double x = 0, y = 0, z = 0;  // Angstroms
};

class Molecule {
 public:
  std::string name;
  std::vector<Atom> atoms;
  int charge = 0;
  int multiplicity = 1;

  /// Hill-order empirical formula ("H30O17U" style: C first, H second
  /// when carbon present; otherwise alphabetical).
  std::string empirical_formula() const;

  /// Simple point-group guess: "C1" unless the structure is linear.
  std::string symmetry_group() const;

  // -- XYZ format (the paper's "simple XYZ" molecule encoding) ---------
  std::string to_xyz() const;
  static Result<Molecule> from_xyz(std::string_view text);

  // -- PDB subset (ATOM/HETATM records; the paper's preferred
  //    community-standard format for molecule documents) --------------
  std::string to_pdb() const;
  static Result<Molecule> from_pdb(std::string_view text);
};

/// The paper's benchmark molecule: a uranium-oxide core solvated by 15
/// waters, 50 atoms total ("a molecule of Uranium Oxide surrounded by
/// 15 water molecules (UO2-15H2O) for a total of 50 atoms").
Molecule make_uo2_15h2o();

/// Deterministic water cluster of n molecules (3n atoms).
Molecule make_water_cluster(size_t n, uint64_t seed = 7);

// ---------------------------------------------------------------------
// Basis sets

struct BasisShell {
  std::string element;
  char shell_type = 'S';  // S, P, D, F
  std::vector<double> exponents;
  std::vector<double> coefficients;
};

struct BasisSet {
  std::string name;  // "6-31G*", "Stuttgart RLC ECP", ...
  std::vector<BasisShell> shells;

  std::string to_text() const;  // Gaussian-94-style text block
  static Result<BasisSet> from_text(std::string_view text);
};

/// Synthetic standard basis set covering the given elements, sized
/// like real ones (a handful of shells per element).
BasisSet make_basis_set(const std::string& name,
                        const std::vector<std::string>& elements,
                        uint64_t seed = 11);

// ---------------------------------------------------------------------
// Output properties

/// An n-dimensional array of doubles produced by a calculation task —
/// the "series of n-dimensional output Properties" of Figure 3.
struct OutputProperty {
  std::string name;   // "vibrational-frequencies", "gradient", ...
  std::string units;  // "cm^-1", "Hartree/Bohr", ...
  std::vector<uint32_t> dimensions;
  std::vector<double> values;  // row-major, product(dimensions) entries

  size_t value_count() const;
  bool shape_consistent() const { return values.size() == value_count(); }

  /// Proprietary-style binary payload (magic + dims + raw doubles);
  /// what the raw output files on disk look like.
  std::string to_bytes() const;
  static Result<OutputProperty> from_bytes(std::string_view data);
};

/// Deterministic property of the requested payload size (rounded down
/// to whole doubles); e.g. 1.8 MB for the UO2·15H2O benchmark.
OutputProperty make_property(const std::string& name,
                             const std::string& units, size_t approx_bytes,
                             uint64_t seed);

}  // namespace davpse::ecce
