#include "core/model.h"

#include <cctype>
#include <cstdio>

namespace davpse::ecce {

std::string_view to_string(TheoryLevel theory) {
  switch (theory) {
    case TheoryLevel::kSCF: return "SCF";
    case TheoryLevel::kDFT: return "DFT";
    case TheoryLevel::kMP2: return "MP2";
    case TheoryLevel::kCCSD: return "CCSD";
  }
  return "SCF";
}

std::string_view to_string(TaskKind kind) {
  switch (kind) {
    case TaskKind::kGeometryOptimization: return "geometry-optimization";
    case TaskKind::kEnergy: return "energy";
    case TaskKind::kFrequency: return "frequency";
    case TaskKind::kESP: return "esp";
  }
  return "energy";
}

std::string_view to_string(RunState state) {
  switch (state) {
    case RunState::kCreated: return "created";
    case RunState::kSubmitted: return "submitted";
    case RunState::kRunning: return "running";
    case RunState::kComplete: return "complete";
    case RunState::kFailed: return "failed";
  }
  return "created";
}

Result<TheoryLevel> theory_from_string(std::string_view text) {
  if (text == "SCF") return TheoryLevel::kSCF;
  if (text == "DFT") return TheoryLevel::kDFT;
  if (text == "MP2") return TheoryLevel::kMP2;
  if (text == "CCSD") return TheoryLevel::kCCSD;
  return Status(ErrorCode::kInvalidArgument,
                "unknown theory level: " + std::string(text));
}

Result<TaskKind> task_kind_from_string(std::string_view text) {
  if (text == "geometry-optimization") return TaskKind::kGeometryOptimization;
  if (text == "energy") return TaskKind::kEnergy;
  if (text == "frequency") return TaskKind::kFrequency;
  if (text == "esp") return TaskKind::kESP;
  return Status(ErrorCode::kInvalidArgument,
                "unknown task kind: " + std::string(text));
}

Result<RunState> run_state_from_string(std::string_view text) {
  if (text == "created") return RunState::kCreated;
  if (text == "submitted") return RunState::kSubmitted;
  if (text == "running") return RunState::kRunning;
  if (text == "complete") return RunState::kComplete;
  if (text == "failed") return RunState::kFailed;
  return Status(ErrorCode::kInvalidArgument,
                "unknown run state: " + std::string(text));
}

size_t Calculation::output_bytes() const {
  size_t total = 0;
  for (const CalcTask& task : tasks) {
    for (const OutputProperty& property : task.outputs) {
      total += property.values.size() * sizeof(double);
    }
  }
  return total;
}

std::string generate_input_deck(const Calculation& calculation,
                                const CalcTask& task) {
  std::string deck;
  deck += "start " + calculation.name + "_" + task.name + "\n";
  deck += "title \"" + calculation.description + "\"\n";
  deck += "charge " + std::to_string(calculation.molecule.charge) + "\n\n";
  deck += "geometry units angstroms\n";
  char line[96];
  for (const Atom& atom : calculation.molecule.atoms) {
    std::snprintf(line, sizeof line, "  %-3s %12.6f %12.6f %12.6f\n",
                  atom.symbol.c_str(), atom.x, atom.y, atom.z);
    deck += line;
  }
  deck += "end\n\nbasis\n  * library \"" + calculation.basis.name +
          "\"\nend\n\n";
  std::string theory(to_string(calculation.theory));
  for (char& c : theory) c = static_cast<char>(std::tolower(c));
  switch (task.kind) {
    case TaskKind::kGeometryOptimization:
      deck += "task " + theory + " optimize\n";
      break;
    case TaskKind::kEnergy:
      deck += "task " + theory + " energy\n";
      break;
    case TaskKind::kFrequency:
      deck += "task " + theory + " freq\n";
      break;
    case TaskKind::kESP:
      deck += "task esp\n";
      break;
  }
  return deck;
}

}  // namespace davpse::ecce
