// Headless kernels of the six Ecce tools benchmarked in Table 3:
// Builder, Basis Tool, Calculation Editor, Calculation Viewer,
// Calculation Manager, and Job Launcher. Each kernel performs exactly
// the *data-layer* work of its tool — startup initialization and the
// per-calculation load — against whichever CalculationFactory binding
// it is given (DAV = Ecce 2.0, OODB = Ecce 1.5). Widget drawing is out
// of scope: Table 3 compares data architectures, and the paper's
// claims (cache-forward gave no benefit; DAV as fast or faster) are
// claims about this layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "util/status.h"

namespace davpse::ecce {

/// Rough in-memory footprint of loaded model data (the Table 3
/// "Size (res)" proxy; see EXPERIMENTS.md for the accounting).
size_t approx_bytes(const Molecule& molecule);
size_t approx_bytes(const BasisSet& basis);
size_t approx_bytes(const Calculation& calculation);

class ToolKernel {
 public:
  ToolKernel(std::string name, CalculationFactory* factory)
      : name_(std::move(name)), factory_(factory) {}
  virtual ~ToolKernel() = default;

  const std::string& name() const { return name_; }

  /// Tool startup: factory/session init plus tool-specific preloading
  /// (e.g. BasisTool reads the whole basis library).
  Status start() {
    DAVPSE_RETURN_IF_ERROR(factory_->initialize());
    return do_start();
  }

  /// Loads the tool's working set for one calculation.
  Status load(const std::string& project, const std::string& calculation) {
    return do_load(project, calculation);
  }

  /// Bytes of model data this kernel holds after start()+load().
  size_t resident_bytes() const { return resident_bytes_; }

 protected:
  virtual Status do_start() { return Status::ok(); }
  virtual Status do_load(const std::string& project,
                         const std::string& calculation) = 0;

  CalculationFactory* factory() { return factory_; }
  void retain(size_t bytes) { resident_bytes_ += bytes; }
  void reset_resident() { resident_bytes_ = 0; }

 private:
  std::string name_;
  CalculationFactory* factory_;
  size_t resident_bytes_ = 0;
};

/// Molecule construction: needs only the 3-D structure.
class BuilderTool final : public ToolKernel {
 public:
  explicit BuilderTool(CalculationFactory* factory)
      : ToolKernel("Builder", factory) {}
  const Molecule& molecule() const { return molecule_; }

 private:
  Status do_load(const std::string& project,
                 const std::string& calculation) override;
  Molecule molecule_;
};

/// Basis-set management: startup loads the shared library; load pulls
/// the calculation's basis.
class BasisToolKernel final : public ToolKernel {
 public:
  explicit BasisToolKernel(CalculationFactory* factory)
      : ToolKernel("BasisTool", factory) {}
  const std::vector<BasisSet>& library() const { return library_; }

 private:
  Status do_start() override;
  Status do_load(const std::string& project,
                 const std::string& calculation) override;
  std::vector<BasisSet> library_;
  BasisSet current_;
};

/// Calculation setup: molecule + basis + input decks, no outputs.
class CalcEditorTool final : public ToolKernel {
 public:
  explicit CalcEditorTool(CalculationFactory* factory)
      : ToolKernel("Calc Editor", factory) {}
  const Calculation& calculation() const { return calculation_; }

 private:
  Status do_load(const std::string& project,
                 const std::string& calculation) override;
  Calculation calculation_;
};

/// Post-run analysis: everything, including the 1.8 MB properties.
class CalcViewerTool final : public ToolKernel {
 public:
  explicit CalcViewerTool(CalculationFactory* factory)
      : ToolKernel("Calc Viewer", factory) {}
  const Calculation& calculation() const { return calculation_; }

 private:
  Status do_load(const std::string& project,
                 const std::string& calculation) override;
  Calculation calculation_;
};

/// Project/calculation management: metadata summaries only. Its
/// "load" is the project listing (the paper reports no per-molecule
/// load for Calc Manager — "NA").
class CalcManagerTool final : public ToolKernel {
 public:
  explicit CalcManagerTool(CalculationFactory* factory)
      : ToolKernel("Calc Manager", factory) {}
  const std::vector<CalcSummary>& summaries() const { return summaries_; }
  Status load_project(const std::string& project);

 private:
  Status do_load(const std::string& project,
                 const std::string& calculation) override;
  std::vector<CalcSummary> summaries_;
};

/// Job submission: input decks + job records, no molecule rendering,
/// no outputs.
class JobLauncherTool final : public ToolKernel {
 public:
  explicit JobLauncherTool(CalculationFactory* factory)
      : ToolKernel("Job Launcher", factory) {}
  const Calculation& calculation() const { return calculation_; }

 private:
  Status do_load(const std::string& project,
                 const std::string& calculation) override;
  Calculation calculation_;
};

/// All six kernels in Table 3 row order.
std::vector<std::unique_ptr<ToolKernel>> make_all_tools(
    CalculationFactory* factory);

}  // namespace davpse::ecce
