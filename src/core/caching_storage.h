// Client-side document cache in the Figure 2 layered architecture —
// the paper's anticipated extension: "If we do encounter areas of
// performance concern where a cache makes sense, it would be
// relatively straight forward to add a cache to the layered client
// architecture of Figure 2."
//
// CachingDavStorage decorates a DavStorage: reads keep an
// ETag-validated copy of each document, so repeated reads cost one
// conditional GET (a header exchange) instead of re-shipping the body.
// Cached bodies live in a spill directory on disk, not in RAM — the
// cache fills by draining the response stream to a file and serves by
// streaming that file back out, so caching a document of any size
// stays O(block) in memory. Local writes/removes/moves invalidate;
// remote writers are caught by the ETag validation. Everything else
// forwards unchanged.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>

#include "core/dav_storage.h"
#include "http/body.h"
#include "obs/metrics.h"
#include "util/fs.h"
#include "util/policy.h"
#include "util/random.h"

namespace davpse::ecce {

class CachingDavStorage final : public DataStorageInterface {
 public:
  /// Borrows the client, like DavStorage. `metrics` (nullptr = the
  /// global registry) receives "ecce.cache.hits" / ".misses" /
  /// ".revalidations" / ".spilled_bytes" / ".stale_served". `retry`
  /// governs *cache-level* refresh retries before a read degrades to a
  /// stale copy; it defaults to none() because the DavClient underneath
  /// already retries transport failures per its own policy — stacking a
  /// second loop here multiplies attempts, so opt in deliberately.
  explicit CachingDavStorage(davclient::DavClient* client,
                             obs::Registry* metrics = nullptr,
                             RetryPolicy retry = RetryPolicy::none())
      : inner_(client),
        client_(client),
        retry_(retry),
        backoff_rng_(0x5ca1ab1e),
        spill_("davpse-cache") {
    obs::Registry& registry = obs::registry_or_global(metrics);
    hits_metric_ = &registry.counter("ecce.cache.hits");
    misses_metric_ = &registry.counter("ecce.cache.misses");
    revalidations_metric_ = &registry.counter("ecce.cache.revalidations");
    spilled_bytes_metric_ = &registry.counter("ecce.cache.spilled_bytes");
    stale_served_metric_ = &registry.counter("ecce.cache.stale_served");
  }

  // -- cached path ----------------------------------------------------------
  Result<std::string> read_object(const std::string& path) override;
  Status read_object_to(const std::string& path,
                        http::BodySink* sink) override;
  /// Degrading reads: when every refresh attempt fails *retryably*
  /// (repository down or unreachable — never kNotFound, which proves
  /// the object is gone) and a last-validated copy is cached, the copy
  /// is served with *freshness = kStale and "ecce.cache.stale_served"
  /// incremented. The PSE reads through an outage instead of erroring.
  Result<std::string> read_object(const std::string& path,
                                  Freshness* freshness) override;
  Status read_object_to(const std::string& path, http::BodySink* sink,
                        Freshness* freshness) override;

  // -- invalidating forwards -----------------------------------------------
  Status write_object(const std::string& path, std::string data,
                      const std::string& content_type) override;
  Status write_object_from(const std::string& path,
                           std::shared_ptr<http::BodySource> data,
                           const std::string& content_type) override;
  Status remove(const std::string& path) override;
  Status copy(const std::string& from, const std::string& to) override;
  Status move(const std::string& from, const std::string& to) override;

  // -- plain forwards ---------------------------------------------------------
  Status create_container(const std::string& path) override {
    return inner_.create_container(path);
  }
  Status create_container_path(const std::string& path) override {
    return inner_.create_container_path(path);
  }
  Result<std::vector<std::string>> list(const std::string& path) override {
    return inner_.list(path);
  }
  Status set_metadata(const std::string& path,
                      const std::vector<Metadatum>& metadata) override {
    return inner_.set_metadata(path, metadata);
  }
  Result<std::string> get_metadatum(const std::string& path,
                                    const xml::QName& name) override {
    return inner_.get_metadatum(path, name);
  }
  Result<std::vector<Metadatum>> get_metadata(
      const std::string& path,
      const std::vector<xml::QName>& names) override {
    return inner_.get_metadata(path, names);
  }
  Result<std::vector<std::pair<std::string, std::vector<Metadatum>>>>
  get_children_metadata(const std::string& path,
                        const std::vector<xml::QName>& names) override {
    return inner_.get_children_metadata(path, names);
  }
  Result<bool> exists(const std::string& path) override {
    return inner_.exists(path);
  }

  // -- cache introspection -----------------------------------------------
  uint64_t hits() const { return hits_; }          // served after a 304
  uint64_t misses() const { return misses_; }      // full body fetched
  uint64_t stale_served() const { return stale_served_; }  // degraded reads
  size_t cached_documents() const;
  /// Bytes of document content held in the spill directory.
  size_t cached_bytes() const;
  void clear();

 private:
  struct Entry {
    std::string etag;
    std::filesystem::path file;  // cached body in the spill directory
    uint64_t size = 0;
  };

  void invalidate_subtree(const std::string& path);
  void erase_entry(const std::string& path);
  /// Revalidates (or fetches) `path` into the spill directory and
  /// returns an *open* source on the cache file. Opening happens under
  /// mutex_ — before any concurrent invalidation could unlink the file
  /// — so the descriptor pins the content for the drain.
  Result<std::unique_ptr<http::FileBodySource>> refresh(
      const std::string& path);
  /// refresh() under the cache-level retry policy: further attempts
  /// only for retryable failures, jittered backoff between them.
  Result<std::unique_ptr<http::FileBodySource>> refresh_with_retry(
      const std::string& path);
  /// Opens the cached copy for a degraded read, or kUnavailable when
  /// nothing is cached. Open happens under mutex_, like refresh().
  Result<std::unique_ptr<http::FileBodySource>> open_stale(
      const std::string& path);

  DavStorage inner_;
  davclient::DavClient* client_;
  RetryPolicy retry_;
  Rng backoff_rng_;
  TempDir spill_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> cache_;
  uint64_t next_file_id_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t stale_served_ = 0;
  obs::Counter* hits_metric_ = nullptr;
  obs::Counter* misses_metric_ = nullptr;
  obs::Counter* revalidations_metric_ = nullptr;
  obs::Counter* spilled_bytes_metric_ = nullptr;
  obs::Counter* stale_served_metric_ = nullptr;
};

}  // namespace davpse::ecce
