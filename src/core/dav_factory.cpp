#include "core/dav_factory.h"

#include <algorithm>

#include "core/schema_names.h"
#include "util/strings.h"
#include "util/uri.h"

namespace davpse::ecce {
namespace {

constexpr std::string_view kRoot = "/Ecce";
constexpr std::string_view kLibraryRoot = "/EcceBasisLibrary";

std::string dims_to_text(const std::vector<uint32_t>& dimensions) {
  std::string out;
  for (size_t i = 0; i < dimensions.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(dimensions[i]);
  }
  return out;
}

// ecce:members value: one "name\thref" line per output document. The
// indirection — not the encoding — is the point: loads resolve output
// locations through this metadata, so documents can live anywhere.
struct Member {
  std::string name;
  std::string href;
};

std::string encode_members(const std::vector<Member>& members) {
  std::string out;
  for (const Member& member : members) {
    out += member.name;
    out += '\t';
    out += member.href;
    out += '\n';
  }
  return out;
}

std::vector<Member> decode_members(std::string_view text) {
  std::vector<Member> out;
  for (const auto& line : split(text, '\n')) {
    auto tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) continue;
    out.push_back({line.substr(0, tab), line.substr(tab + 1)});
  }
  return out;
}

}  // namespace

std::string DavCalculationFactory::project_path(const std::string& project) {
  return join_path(kRoot, project);
}

std::string DavCalculationFactory::calculation_path(
    const std::string& project, const std::string& name) {
  return join_path(project_path(project), name);
}

std::string DavCalculationFactory::task_path(
    const std::string& project, const std::string& calculation,
    const std::string& task) const {
  return join_path(calculation_path(project, calculation), task);
}

Status DavCalculationFactory::initialize() {
  DAVPSE_RETURN_IF_ERROR(
      storage_->create_container_path(std::string(kRoot)));
  return storage_->create_container_path(std::string(kLibraryRoot));
}

Status DavCalculationFactory::create_project(const std::string& project) {
  std::string path = project_path(project);
  DAVPSE_RETURN_IF_ERROR(storage_->create_container(path));
  return storage_->set_metadata(
      path, {{kTypeProp, std::string(kTypeProject)}});
}

Result<std::vector<std::string>> DavCalculationFactory::list_projects() {
  auto children = storage_->list(std::string(kRoot));
  if (!children.ok()) return children.status();
  std::vector<std::string> out;
  for (const auto& child : children.value()) {
    out.push_back(basename_of(child));
  }
  return out;
}

Result<std::vector<std::string>> DavCalculationFactory::list_calculations(
    const std::string& project) {
  auto children = storage_->list(project_path(project));
  if (!children.ok()) return children.status();
  std::vector<std::string> out;
  for (const auto& child : children.value()) {
    out.push_back(basename_of(child));
  }
  return out;
}

Result<std::vector<CalcSummary>> DavCalculationFactory::project_summary(
    const std::string& project) {
  // One depth-1 PROPFIND covers every calculation in the project.
  auto rows = storage_->get_children_metadata(
      project_path(project),
      {kTypeProp, kTheoryProp, kStateProp, kFormulaProp});
  if (!rows.ok()) return rows.status();
  std::vector<CalcSummary> out;
  for (const auto& [href, metadata] : rows.value()) {
    CalcSummary summary;
    summary.name = basename_of(href);
    bool is_calculation = false;
    for (const auto& [name, value] : metadata) {
      if (name == kTypeProp) is_calculation = value == kTypeCalculation;
      if (name == kTheoryProp) {
        auto theory = theory_from_string(value);
        if (theory.ok()) summary.theory = theory.value();
      }
      if (name == kStateProp) {
        auto state = run_state_from_string(value);
        if (state.ok()) summary.state = state.value();
      }
      if (name == kFormulaProp) summary.formula = value;
    }
    if (is_calculation) out.push_back(std::move(summary));
  }
  return out;
}

Status DavCalculationFactory::save_calculation(
    const std::string& project, const Calculation& calculation) {
  std::string calc_path = calculation_path(project, calculation.name);
  DAVPSE_RETURN_IF_ERROR(storage_->create_container_path(calc_path));
  DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
      calc_path,
      {{kTypeProp, std::string(kTypeCalculation)},
       {kTheoryProp, std::string(to_string(calculation.theory))},
       {kDescriptionProp, calculation.description},
       {kBasisNameProp, calculation.basis.name},
       {kFormulaProp, calculation.molecule.empirical_formula()},
       {kStateProp, std::string(to_string(
                        calculation.tasks.empty()
                            ? RunState::kCreated
                            : calculation.tasks.back().state))}}));

  // Molecule document: community-standard format + discovery metadata
  // ("applications could search the data store for DAV documents
  // matching the formula metadata and render a 3D display ... without
  // understanding the rest of the Ecce schema").
  std::string molecule_path = join_path(calc_path, "molecule");
  DAVPSE_RETURN_IF_ERROR(storage_->write_object(
      molecule_path, calculation.molecule.to_xyz(), "chemical/x-xyz"));
  DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
      molecule_path,
      {{kTypeProp, std::string(kTypeMolecule)},
       {kFormatProp, "xyz"},
       {kFormulaProp, calculation.molecule.empirical_formula()},
       {kSymmetryProp, calculation.molecule.symmetry_group()},
       {kChargeProp, std::to_string(calculation.molecule.charge)},
       {kMultiplicityProp,
        std::to_string(calculation.molecule.multiplicity)},
       {kAtomCountProp,
        std::to_string(calculation.molecule.atoms.size())}}));

  // Basis set document (plain text markup where no standard exists).
  std::string basis_path = join_path(calc_path, "basisset");
  DAVPSE_RETURN_IF_ERROR(storage_->write_object(
      basis_path, calculation.basis.to_text(), "text/plain"));
  DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
      basis_path, {{kTypeProp, std::string(kTypeBasisSet)},
                   {kBasisNameProp, calculation.basis.name}}));

  for (const CalcTask& task : calculation.tasks) {
    std::string tpath = task_path(project, calculation.name, task.name);
    DAVPSE_RETURN_IF_ERROR(storage_->create_container_path(tpath));
    DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
        tpath, {{kTypeProp, std::string(kTypeTask)},
                {kTaskKindProp, std::string(to_string(task.kind))},
                {kStateProp, std::string(to_string(task.state))}}));

    std::string input_path = join_path(tpath, "input");
    DAVPSE_RETURN_IF_ERROR(storage_->write_object(
        input_path, task.input_deck, "text/plain"));
    DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
        input_path, {{kTypeProp, std::string(kTypeInputDeck)}}));

    std::string job_path = join_path(tpath, "job");
    DAVPSE_RETURN_IF_ERROR(storage_->write_object(job_path, "", "text/plain"));
    DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
        job_path,
        {{kTypeProp, std::string(kTypeJob)},
         {kJobHostProp, task.job.host},
         {kJobQueueProp, task.job.queue},
         {kJobNodesProp, std::to_string(task.job.node_count)},
         {kJobIdProp, task.job.scheduler_id},
         {kStateProp, std::string(to_string(task.job.state))}}));

    for (const OutputProperty& output : task.outputs) {
      DAVPSE_RETURN_IF_ERROR(
          attach_output(project, calculation.name, task.name, output));
    }
  }
  return Status::ok();
}

Result<Calculation> DavCalculationFactory::load_calculation(
    const std::string& project, const std::string& name,
    const LoadParts& parts) {
  std::string calc_path = calculation_path(project, name);
  Calculation calculation;
  calculation.name = name;

  auto calc_meta = storage_->get_metadata(
      calc_path, {kTypeProp, kTheoryProp, kDescriptionProp, kBasisNameProp});
  if (!calc_meta.ok()) return calc_meta.status();
  for (const auto& [meta_name, value] : calc_meta.value()) {
    if (meta_name == kTheoryProp) {
      auto theory = theory_from_string(value);
      if (theory.ok()) calculation.theory = theory.value();
    }
    if (meta_name == kDescriptionProp) calculation.description = value;
    if (meta_name == kBasisNameProp) calculation.basis.name = value;
  }

  if (parts.molecule) {
    auto body = storage_->read_object(join_path(calc_path, "molecule"));
    if (!body.ok()) return body.status();
    auto molecule = Molecule::from_xyz(body.value());
    if (!molecule.ok()) return molecule.status();
    calculation.molecule = std::move(molecule).value();
    auto meta = storage_->get_metadata(
        join_path(calc_path, "molecule"),
        {kChargeProp, kMultiplicityProp});
    if (meta.ok()) {
      for (const auto& [meta_name, value] : meta.value()) {
        try {
          if (meta_name == kChargeProp) {
            calculation.molecule.charge = std::stoi(value);
          }
          if (meta_name == kMultiplicityProp) {
            calculation.molecule.multiplicity = std::stoi(value);
          }
        } catch (const std::exception&) {
          // tolerate malformed numeric metadata; defaults stand
        }
      }
    }
  }

  if (parts.basis) {
    auto body = storage_->read_object(join_path(calc_path, "basisset"));
    if (!body.ok()) return body.status();
    auto basis = BasisSet::from_text(body.value());
    if (!basis.ok()) return basis.status();
    calculation.basis = std::move(basis).value();
  }

  // Task discovery: children of the calculation collection that carry
  // ecce:type=task, in one depth-1 request.
  auto children = storage_->get_children_metadata(
      calc_path, {kTypeProp, kTaskKindProp, kStateProp});
  if (!children.ok()) return children.status();
  for (const auto& [href, metadata] : children.value()) {
    bool is_task = false;
    CalcTask task;
    task.name = basename_of(href);
    for (const auto& [meta_name, value] : metadata) {
      if (meta_name == kTypeProp && value == kTypeTask) is_task = true;
      if (meta_name == kTaskKindProp) {
        auto kind = task_kind_from_string(value);
        if (kind.ok()) task.kind = kind.value();
      }
      if (meta_name == kStateProp) {
        auto state = run_state_from_string(value);
        if (state.ok()) task.state = state.value();
      }
    }
    if (!is_task) continue;

    std::string tpath = join_path(calc_path, task.name);
    if (parts.input_decks) {
      auto input = storage_->read_object(join_path(tpath, "input"));
      if (input.ok()) task.input_deck = std::move(input).value();
    }
    if (parts.jobs) {
      auto job_meta = storage_->get_metadata(
          join_path(tpath, "job"),
          {kJobHostProp, kJobQueueProp, kJobNodesProp, kJobIdProp,
           kStateProp});
      if (job_meta.ok()) {
        for (const auto& [meta_name, value] : job_meta.value()) {
          if (meta_name == kJobHostProp) task.job.host = value;
          if (meta_name == kJobQueueProp) task.job.queue = value;
          if (meta_name == kJobNodesProp) {
            try {
              task.job.node_count = std::stoi(value);
            } catch (const std::exception&) {
            }
          }
          if (meta_name == kJobIdProp) task.job.scheduler_id = value;
          if (meta_name == kStateProp) {
            auto state = run_state_from_string(value);
            if (state.ok()) task.job.state = state.value();
          }
        }
      }
    }
    if (parts.outputs) {
      // Virtual-document resolution: prefer the ecce:members metadata
      // (documents may have been relocated); fall back to scanning the
      // physical collection for pre-members stores.
      std::vector<std::string> output_paths;
      DAVPSE_ASSIGN_OR_RETURN(auto member_list,
                              storage_->find_metadatum(tpath, kMembersProp));
      if (member_list) {
        for (const Member& member : decode_members(*member_list)) {
          output_paths.push_back(member.href);
        }
      } else {
        DAVPSE_ASSIGN_OR_RETURN(auto listed, storage_->list(tpath));
        for (const auto& member : listed) {
          if (starts_with(basename_of(member), "prop-")) {
            output_paths.push_back(member);
          }
        }
      }
      for (const auto& output_path : output_paths) {
        auto body = storage_->read_object(output_path);
        if (!body.ok()) return body.status();
        auto property = OutputProperty::from_bytes(body.value());
        if (!property.ok()) return property.status();
        task.outputs.push_back(std::move(property).value());
      }
    }
    // Canonical output order is by property name: the wire order is a
    // storage artifact (directory listing vs object-graph order) and
    // the two architectures must return identical models.
    std::sort(task.outputs.begin(), task.outputs.end(),
              [](const OutputProperty& a, const OutputProperty& b) {
                return a.name < b.name;
              });
    calculation.tasks.push_back(std::move(task));
  }
  return calculation;
}

Status DavCalculationFactory::remove_calculation(const std::string& project,
                                                 const std::string& name) {
  return storage_->remove(calculation_path(project, name));
}

Status DavCalculationFactory::copy_calculation(const std::string& project,
                                               const std::string& from,
                                               const std::string& to) {
  // A single server-side COPY moves the whole virtual document — no
  // object faulting on the client at all.
  std::string from_path = calculation_path(project, from);
  std::string to_path = calculation_path(project, to);
  DAVPSE_RETURN_IF_ERROR(storage_->copy(from_path, to_path));
  // Rebase the copied tasks' member hrefs: entries that pointed inside
  // the source subtree now point inside the copy (externally-archived
  // members stay shared, which is the virtual-document semantics).
  auto children = storage_->get_children_metadata(
      to_path, {kTypeProp, kMembersProp});
  if (!children.ok()) return children.status();
  for (const auto& [href, metadata] : children.value()) {
    bool is_task = false;
    std::string raw_members;
    for (const auto& [name, value] : metadata) {
      if (name == kTypeProp && value == kTypeTask) is_task = true;
      if (name == kMembersProp) raw_members = value;
    }
    if (!is_task || raw_members.empty()) continue;
    std::vector<Member> members = decode_members(raw_members);
    bool changed = false;
    for (Member& member : members) {
      if (path_is_within(member.href, from_path)) {
        member.href = to_path + member.href.substr(from_path.size());
        changed = true;
      }
    }
    if (changed) {
      DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
          href, {{kMembersProp, encode_members(members)}}));
    }
  }
  return Status::ok();
}

Status DavCalculationFactory::update_task_state(
    const std::string& project, const std::string& calculation,
    const std::string& task, RunState state) {
  DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
      task_path(project, calculation, task),
      {{kStateProp, std::string(to_string(state))}}));
  // Keep the calculation-level rollup (what Calc Manager summarizes)
  // in step with the latest task transition.
  return storage_->set_metadata(
      calculation_path(project, calculation),
      {{kStateProp, std::string(to_string(state))}});
}

Status DavCalculationFactory::attach_output(const std::string& project,
                                            const std::string& calculation,
                                            const std::string& task,
                                            const OutputProperty& output) {
  std::string tpath = task_path(project, calculation, task);
  std::string path = join_path(tpath, "prop-" + output.name);
  DAVPSE_RETURN_IF_ERROR(storage_->write_object(
      path, output.to_bytes(), "application/octet-stream"));
  DAVPSE_RETURN_IF_ERROR(storage_->set_metadata(
      path, {{kTypeProp, std::string(kTypeProperty)},
             {kPropertyNameProp, output.name},
             {kUnitsProp, output.units},
             {kDimensionsProp, dims_to_text(output.dimensions)}}));
  // Record the member in the task's virtual-document index.
  std::vector<Member> members;
  DAVPSE_ASSIGN_OR_RETURN(auto existing,
                          storage_->find_metadatum(tpath, kMembersProp));
  if (existing) members = decode_members(*existing);
  std::erase_if(members,
                [&](const Member& member) { return member.name == output.name; });
  members.push_back({output.name, path});
  return storage_->set_metadata(tpath,
                                {{kMembersProp, encode_members(members)}});
}

Status DavCalculationFactory::relocate_output(const std::string& project,
                                              const std::string& calculation,
                                              const std::string& task,
                                              const std::string& output_name,
                                              const std::string& new_path) {
  std::string tpath = task_path(project, calculation, task);
  DAVPSE_ASSIGN_OR_RETURN(auto existing,
                          storage_->find_metadatum(tpath, kMembersProp));
  if (!existing) {
    return error(ErrorCode::kNotFound, "no members index on " + tpath);
  }
  std::vector<Member> members = decode_members(*existing);
  Member* entry = nullptr;
  for (Member& member : members) {
    if (member.name == output_name) entry = &member;
  }
  if (entry == nullptr) {
    return error(ErrorCode::kNotFound,
                 "no output '" + output_name + "' in " + tpath);
  }
  DAVPSE_RETURN_IF_ERROR(
      storage_->create_container_path(parent_path(new_path)));
  DAVPSE_RETURN_IF_ERROR(storage_->move(entry->href, new_path));
  entry->href = new_path;
  return storage_->set_metadata(tpath,
                                {{kMembersProp, encode_members(members)}});
}

Status DavCalculationFactory::save_library_basis(const BasisSet& basis) {
  std::string path = join_path(kLibraryRoot, basis.name);
  DAVPSE_RETURN_IF_ERROR(
      storage_->write_object(path, basis.to_text(), "text/plain"));
  return storage_->set_metadata(path,
                                {{kTypeProp, std::string(kTypeBasisSet)},
                                 {kBasisNameProp, basis.name}});
}

Result<std::vector<std::string>> DavCalculationFactory::list_library_bases() {
  auto children = storage_->list(std::string(kLibraryRoot));
  if (!children.ok()) return children.status();
  std::vector<std::string> out;
  for (const auto& child : children.value()) {
    out.push_back(basename_of(child));
  }
  return out;
}

Result<BasisSet> DavCalculationFactory::load_library_basis(
    const std::string& name) {
  auto body = storage_->read_object(join_path(kLibraryRoot, name));
  if (!body.ok()) return body.status();
  return BasisSet::from_text(body.value());
}

}  // namespace davpse::ecce
