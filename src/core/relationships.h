// Typed data relationships encoded as metadata — the Figure 4 italics:
// "In future implementations... we expect to implement relationships
// through metadata, making the meaning of the relationship available
// to other programs and allowing the physical layout of objects in DAV
// to be adjusted dynamically and independent of the metadata."
//
// A resource's relationships live in one XML-valued property,
// ecce:relationships, whose value is a sequence of
//   <r:rel xmlns:r="..." type="derived-from" href="/path/to/target"/>
// elements. Because the property is ordinary DAV metadata, any client
// can traverse, add, or interpret relationships it understands and
// ignore the rest — including "the dynamic creation of relationships
// discovered and defined by third-party agents" (§3.2.3).
#pragma once

#include <string>
#include <vector>

#include "davclient/client.h"
#include "util/status.h"

namespace davpse::ecce {

/// The relationship kinds the paper enumerates ("temporal, derivative,
/// historical, and sequence, as well as the 'is-a' and 'has-a' object
/// modeling dependencies") — plus free-form strings for everything
/// else; the vocabulary is open by design.
inline constexpr std::string_view kRelDerivedFrom = "derived-from";
inline constexpr std::string_view kRelPrecedes = "precedes";
inline constexpr std::string_view kRelAnnotates = "annotates";
inline constexpr std::string_view kRelHasPart = "has-part";
inline constexpr std::string_view kRelSupersedes = "supersedes";

struct Relationship {
  std::string type;  // e.g. "derived-from"
  std::string href;  // target resource path
};

/// The property holding a resource's relationship list.
const xml::QName& relationships_prop();

/// Appends a relationship to `path`'s list (read-modify-write of the
/// ecce:relationships property). Duplicate (type, href) pairs are
/// ignored.
Status add_relationship(davclient::DavClient& client, const std::string& path,
                        std::string_view type, const std::string& target);

/// Removes a relationship; kNotFound when it is not present.
Status remove_relationship(davclient::DavClient& client,
                           const std::string& path, std::string_view type,
                           const std::string& target);

/// All relationships recorded on `path` (empty when none).
Result<std::vector<Relationship>> relationships_of(
    davclient::DavClient& client, const std::string& path);

/// Resources under `root` that have a relationship of `type` pointing
/// at `target` — reverse traversal via server-side SEARCH over the
/// relationship metadata.
Result<std::vector<std::string>> find_related(davclient::DavClient& client,
                                              const std::string& root,
                                              std::string_view type,
                                              const std::string& target);

/// Serialization used inside the property value (exposed for tests).
std::string encode_relationships(const std::vector<Relationship>& rels);
Result<std::vector<Relationship>> decode_relationships(
    std::string_view inner_xml);

}  // namespace davpse::ecce
