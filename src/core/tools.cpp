#include "core/tools.h"

namespace davpse::ecce {

size_t approx_bytes(const Molecule& molecule) {
  size_t total = sizeof(Molecule) + molecule.name.size();
  total += molecule.atoms.size() * (sizeof(Atom) + 4);
  return total;
}

size_t approx_bytes(const BasisSet& basis) {
  size_t total = sizeof(BasisSet) + basis.name.size();
  for (const BasisShell& shell : basis.shells) {
    total += sizeof(BasisShell) + shell.element.size() +
             shell.exponents.size() * sizeof(double) +
             shell.coefficients.size() * sizeof(double);
  }
  return total;
}

size_t approx_bytes(const Calculation& calculation) {
  size_t total = sizeof(Calculation) + calculation.name.size() +
                 calculation.description.size();
  total += approx_bytes(calculation.molecule);
  total += approx_bytes(calculation.basis);
  for (const CalcTask& task : calculation.tasks) {
    total += sizeof(CalcTask) + task.input_deck.size();
    for (const OutputProperty& output : task.outputs) {
      total += sizeof(OutputProperty) +
               output.values.size() * sizeof(double);
    }
  }
  return total;
}

Status BuilderTool::do_load(const std::string& project,
                            const std::string& calculation) {
  auto loaded = factory()->load_calculation(project, calculation,
                                            LoadParts::molecule_only());
  if (!loaded.ok()) return loaded.status();
  molecule_ = std::move(loaded.value().molecule);
  reset_resident();
  retain(approx_bytes(molecule_));
  return Status::ok();
}

Status BasisToolKernel::do_start() {
  // The library preload is what made Basis Tool the slowest starter in
  // Table 3 (5.0 s under the OODB, 1.0 s under DAV).
  auto names = factory()->list_library_bases();
  if (!names.ok()) return names.status();
  library_.clear();
  for (const auto& name : names.value()) {
    auto basis = factory()->load_library_basis(name);
    if (!basis.ok()) return basis.status();
    retain(approx_bytes(basis.value()));
    library_.push_back(std::move(basis).value());
  }
  return Status::ok();
}

Status BasisToolKernel::do_load(const std::string& project,
                                const std::string& calculation) {
  LoadParts parts = LoadParts::none();
  parts.basis = true;
  auto loaded = factory()->load_calculation(project, calculation, parts);
  if (!loaded.ok()) return loaded.status();
  current_ = std::move(loaded.value().basis);
  retain(approx_bytes(current_));
  return Status::ok();
}

Status CalcEditorTool::do_load(const std::string& project,
                               const std::string& calculation) {
  LoadParts parts = LoadParts::all();
  parts.outputs = false;  // editing never touches result data
  auto loaded = factory()->load_calculation(project, calculation, parts);
  if (!loaded.ok()) return loaded.status();
  calculation_ = std::move(loaded).value();
  reset_resident();
  retain(approx_bytes(calculation_));
  return Status::ok();
}

Status CalcViewerTool::do_load(const std::string& project,
                               const std::string& calculation) {
  auto loaded =
      factory()->load_calculation(project, calculation, LoadParts::all());
  if (!loaded.ok()) return loaded.status();
  calculation_ = std::move(loaded).value();
  reset_resident();
  retain(approx_bytes(calculation_));
  return Status::ok();
}

Status CalcManagerTool::load_project(const std::string& project) {
  auto summary = factory()->project_summary(project);
  if (!summary.ok()) return summary.status();
  summaries_ = std::move(summary).value();
  reset_resident();
  for (const CalcSummary& row : summaries_) {
    retain(sizeof(CalcSummary) + row.name.size() + row.formula.size());
  }
  return Status::ok();
}

Status CalcManagerTool::do_load(const std::string& project,
                                const std::string& calculation) {
  (void)calculation;  // the manager works at project granularity
  return load_project(project);
}

Status JobLauncherTool::do_load(const std::string& project,
                                const std::string& calculation) {
  LoadParts parts = LoadParts::none();
  parts.input_decks = true;
  parts.jobs = true;
  auto loaded = factory()->load_calculation(project, calculation, parts);
  if (!loaded.ok()) return loaded.status();
  calculation_ = std::move(loaded).value();
  reset_resident();
  retain(approx_bytes(calculation_));
  return Status::ok();
}

std::vector<std::unique_ptr<ToolKernel>> make_all_tools(
    CalculationFactory* factory) {
  std::vector<std::unique_ptr<ToolKernel>> tools;
  tools.push_back(std::make_unique<BuilderTool>(factory));
  tools.push_back(std::make_unique<BasisToolKernel>(factory));
  tools.push_back(std::make_unique<CalcEditorTool>(factory));
  tools.push_back(std::make_unique<CalcViewerTool>(factory));
  tools.push_back(std::make_unique<CalcManagerTool>(factory));
  tools.push_back(std::make_unique<JobLauncherTool>(factory));
  return tools;
}

}  // namespace davpse::ecce
