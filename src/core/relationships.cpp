#include "core/relationships.h"

#include <algorithm>

#include "davclient/search.h"
#include "core/schema_names.h"
#include "xml/dom.h"
#include "xml/writer.h"

namespace davpse::ecce {
namespace {

const xml::QName kRelationshipsProp = ecce_name("relationships");
const xml::QName kRelElement = ecce_name("rel");

}  // namespace

const xml::QName& relationships_prop() { return kRelationshipsProp; }

std::string encode_relationships(const std::vector<Relationship>& rels) {
  std::string out;
  for (const Relationship& rel : rels) {
    xml::XmlWriter writer;
    writer.prefer_prefix(kEcceNamespace, "e");
    writer.start_element(kRelElement);
    writer.attribute("type", rel.type);
    writer.attribute("href", rel.href);
    writer.end_element();
    out += writer.take();
  }
  return out;
}

Result<std::vector<Relationship>> decode_relationships(
    std::string_view inner_xml) {
  std::vector<Relationship> out;
  if (inner_xml.empty()) return out;
  // The value is a sequence of elements; wrap for parsing.
  std::string wrapped = "<wrap>" + std::string(inner_xml) + "</wrap>";
  auto doc = xml::parse_document(wrapped);
  if (!doc.ok()) {
    return Status(ErrorCode::kMalformed,
                  "unparseable relationships value: " +
                      doc.status().message());
  }
  for (const auto& child : doc.value()->children()) {
    if (!(child->name() == kRelElement)) continue;  // foreign entries: skip
    Relationship rel;
    rel.type = std::string(child->attribute("type"));
    rel.href = std::string(child->attribute("href"));
    if (rel.type.empty() || rel.href.empty()) {
      return Status(ErrorCode::kMalformed,
                    "relationship entry missing type/href");
    }
    out.push_back(std::move(rel));
  }
  return out;
}

Result<std::vector<Relationship>> relationships_of(
    davclient::DavClient& client, const std::string& path) {
  auto found = client.propfind(path, davclient::Depth::kZero,
                               {kRelationshipsProp});
  if (!found.ok()) return found.status();
  if (found.value().responses.empty()) {
    return Status(ErrorCode::kNotFound, "no response for " + path);
  }
  auto value = found.value().responses.front().prop(kRelationshipsProp);
  if (!value) return std::vector<Relationship>{};
  return decode_relationships(*value);
}

Status add_relationship(davclient::DavClient& client, const std::string& path,
                        std::string_view type, const std::string& target) {
  auto existing = relationships_of(client, path);
  if (!existing.ok()) return existing.status();
  std::vector<Relationship> rels = std::move(existing).value();
  for (const Relationship& rel : rels) {
    if (rel.type == type && rel.href == target) return Status::ok();
  }
  rels.push_back({std::string(type), target});
  return client.proppatch(
      path, {davclient::PropWrite::of_xml(kRelationshipsProp,
                                          encode_relationships(rels))});
}

Status remove_relationship(davclient::DavClient& client,
                           const std::string& path, std::string_view type,
                           const std::string& target) {
  auto existing = relationships_of(client, path);
  if (!existing.ok()) return existing.status();
  std::vector<Relationship> rels = std::move(existing).value();
  auto it = std::find_if(rels.begin(), rels.end(),
                         [&](const Relationship& rel) {
                           return rel.type == type && rel.href == target;
                         });
  if (it == rels.end()) {
    return error(ErrorCode::kNotFound,
                 "no such relationship on " + path);
  }
  rels.erase(it);
  if (rels.empty()) {
    return client.proppatch(path, {}, {kRelationshipsProp});
  }
  return client.proppatch(
      path, {davclient::PropWrite::of_xml(kRelationshipsProp,
                                          encode_relationships(rels))});
}

Result<std::vector<std::string>> find_related(davclient::DavClient& client,
                                              const std::string& root,
                                              std::string_view type,
                                              const std::string& target) {
  // Server-side candidate filter: the serialized value must contain
  // both the type and the target; exact matching happens client-side
  // on the decoded entries (contains() is substring-based).
  auto candidates = client.search(
      root, davclient::Depth::kInfinity, {kRelationshipsProp},
      davclient::Where::contains(kRelationshipsProp, std::string(type)) &&
          davclient::Where::contains(kRelationshipsProp, target));
  if (!candidates.ok()) return candidates.status();
  std::vector<std::string> out;
  for (const auto& response : candidates.value().responses) {
    auto value = response.prop(kRelationshipsProp);
    if (!value) continue;
    auto rels = decode_relationships(*value);
    if (!rels.ok()) continue;  // foreign/corrupt entries: skip resource
    for (const Relationship& rel : rels.value()) {
      if (rel.type == type && rel.href == target) {
        out.push_back(response.href);
        break;
      }
    }
  }
  return out;
}

}  // namespace davpse::ecce
