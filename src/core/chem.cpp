#include "core/chem.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

#include "util/strings.h"

namespace davpse::ecce {

std::string Molecule::empirical_formula() const {
  std::map<std::string, int> counts;
  for (const Atom& atom : atoms) ++counts[atom.symbol];
  // Hill order: C then H then alphabetical; without C, alphabetical.
  std::vector<std::string> order;
  bool has_carbon = counts.contains("C");
  if (has_carbon) {
    order.push_back("C");
    if (counts.contains("H")) order.push_back("H");
  }
  for (const auto& [symbol, count] : counts) {
    if (has_carbon && (symbol == "C" || symbol == "H")) continue;
    order.push_back(symbol);
  }
  std::string formula;
  for (const auto& symbol : order) {
    formula += symbol;
    if (counts[symbol] > 1) formula += std::to_string(counts[symbol]);
  }
  return formula;
}

std::string Molecule::symmetry_group() const {
  if (atoms.size() <= 1) return "Kh";
  if (atoms.size() == 2) return "C*v";
  // Linear test: all atoms collinear within tolerance.
  const Atom& a = atoms[0];
  const Atom& b = atoms[1];
  double ux = b.x - a.x, uy = b.y - a.y, uz = b.z - a.z;
  double norm = std::sqrt(ux * ux + uy * uy + uz * uz);
  if (norm < 1e-9) return "C1";
  ux /= norm, uy /= norm, uz /= norm;
  for (size_t i = 2; i < atoms.size(); ++i) {
    double vx = atoms[i].x - a.x, vy = atoms[i].y - a.y,
           vz = atoms[i].z - a.z;
    double cx = uy * vz - uz * vy;
    double cy = uz * vx - ux * vz;
    double cz = ux * vy - uy * vx;
    if (std::sqrt(cx * cx + cy * cy + cz * cz) > 1e-6) return "C1";
  }
  return "D*h";
}

std::string Molecule::to_xyz() const {
  std::string out = std::to_string(atoms.size()) + "\n" + name + "\n";
  char line[96];
  for (const Atom& atom : atoms) {
    std::snprintf(line, sizeof line, "%-3s %14.8f %14.8f %14.8f\n",
                  atom.symbol.c_str(), atom.x, atom.y, atom.z);
    out += line;
  }
  return out;
}

Result<Molecule> Molecule::from_xyz(std::string_view text) {
  auto lines = split(text, '\n');
  if (lines.size() < 2) {
    return Status(ErrorCode::kMalformed, "XYZ: missing header");
  }
  size_t count = 0;
  {
    auto header = trim(lines[0]);
    if (header.empty()) {
      return Status(ErrorCode::kMalformed, "XYZ: empty atom count");
    }
    for (char c : header) {
      if (c < '0' || c > '9') {
        return Status(ErrorCode::kMalformed, "XYZ: bad atom count");
      }
      count = count * 10 + static_cast<size_t>(c - '0');
    }
  }
  Molecule molecule;
  molecule.name = std::string(trim(lines[1]));
  for (size_t i = 2; i < lines.size() && molecule.atoms.size() < count; ++i) {
    auto fields = split_skip_empty(lines[i], ' ');
    if (fields.empty()) continue;
    if (fields.size() < 4) {
      return Status(ErrorCode::kMalformed,
                    "XYZ: bad atom line: " + lines[i]);
    }
    Atom atom;
    atom.symbol = fields[0];
    try {
      atom.x = std::stod(fields[1]);
      atom.y = std::stod(fields[2]);
      atom.z = std::stod(fields[3]);
    } catch (const std::exception&) {
      return Status(ErrorCode::kMalformed,
                    "XYZ: bad coordinate: " + lines[i]);
    }
    molecule.atoms.push_back(std::move(atom));
  }
  if (molecule.atoms.size() != count) {
    return Status(ErrorCode::kMalformed,
                  "XYZ: expected " + std::to_string(count) + " atoms, got " +
                      std::to_string(molecule.atoms.size()));
  }
  return molecule;
}

std::string Molecule::to_pdb() const {
  std::string out = "COMPND    " + name + "\n";
  char line[96];
  int serial = 1;
  for (const Atom& atom : atoms) {
    std::snprintf(line, sizeof line,
                  "HETATM%5d %-4s MOL     1    %8.3f%8.3f%8.3f  1.00  0.00"
                  "          %2s\n",
                  serial++, atom.symbol.c_str(), atom.x, atom.y, atom.z,
                  atom.symbol.c_str());
    out += line;
  }
  out += "END\n";
  return out;
}

Result<Molecule> Molecule::from_pdb(std::string_view text) {
  Molecule molecule;
  for (const auto& line : split(text, '\n')) {
    if (starts_with(line, "COMPND")) {
      molecule.name = std::string(trim(std::string_view(line).substr(6)));
      continue;
    }
    if (!starts_with(line, "ATOM") && !starts_with(line, "HETATM")) continue;
    if (line.size() < 54) {
      return Status(ErrorCode::kMalformed, "PDB: short ATOM record");
    }
    Atom atom;
    try {
      atom.x = std::stod(line.substr(30, 8));
      atom.y = std::stod(line.substr(38, 8));
      atom.z = std::stod(line.substr(46, 8));
    } catch (const std::exception&) {
      return Status(ErrorCode::kMalformed, "PDB: bad coordinates");
    }
    if (line.size() >= 78) {
      atom.symbol = std::string(trim(line.substr(76, 2)));
    }
    if (atom.symbol.empty()) {
      atom.symbol = std::string(trim(line.substr(12, 4)));
    }
    if (atom.symbol.empty()) {
      return Status(ErrorCode::kMalformed, "PDB: atom without element");
    }
    molecule.atoms.push_back(std::move(atom));
  }
  if (molecule.atoms.empty()) {
    return Status(ErrorCode::kMalformed, "PDB: no ATOM/HETATM records");
  }
  return molecule;
}

Molecule make_uo2_15h2o() {
  Molecule molecule;
  molecule.name = "UO2-15H2O";
  molecule.charge = 2;
  // Uranyl core: U with two axial oxygens, plus two equatorial oxo
  // groups to reach the paper's 50-atom total (3 + 2 + 15*3 = 50).
  molecule.atoms.push_back({"U", 0, 0, 0});
  molecule.atoms.push_back({"O", 0, 0, 1.76});
  molecule.atoms.push_back({"O", 0, 0, -1.76});
  molecule.atoms.push_back({"O", 2.30, 0, 0});
  molecule.atoms.push_back({"O", -2.30, 0, 0});
  // 15 waters on a deterministic solvation shell.
  constexpr double kPi = 3.14159265358979323846;
  for (int i = 0; i < 15; ++i) {
    double theta = std::acos(1.0 - 2.0 * (i + 0.5) / 15.0);
    double phi = kPi * (1.0 + std::sqrt(5.0)) * i;
    double r = 4.2;
    double ox = r * std::sin(theta) * std::cos(phi);
    double oy = r * std::sin(theta) * std::sin(phi);
    double oz = r * std::cos(theta);
    molecule.atoms.push_back({"O", ox, oy, oz});
    molecule.atoms.push_back({"H", ox + 0.76, oy + 0.59, oz});
    molecule.atoms.push_back({"H", ox - 0.76, oy + 0.59, oz});
  }
  return molecule;
}

Molecule make_water_cluster(size_t n, uint64_t seed) {
  Rng rng(seed);
  Molecule molecule;
  molecule.name = "(H2O)" + std::to_string(n);
  for (size_t i = 0; i < n; ++i) {
    double ox = rng.uniform_real(-8, 8);
    double oy = rng.uniform_real(-8, 8);
    double oz = rng.uniform_real(-8, 8);
    molecule.atoms.push_back({"O", ox, oy, oz});
    molecule.atoms.push_back({"H", ox + 0.76, oy + 0.59, oz});
    molecule.atoms.push_back({"H", ox - 0.76, oy + 0.59, oz});
  }
  return molecule;
}

std::string BasisSet::to_text() const {
  std::string out = "BASIS \"" + name + "\"\n";
  char line[64];
  for (const BasisShell& shell : shells) {
    out += shell.element;
    out += "  ";
    out += shell.shell_type;
    out += "\n";
    for (size_t i = 0; i < shell.exponents.size(); ++i) {
      std::snprintf(line, sizeof line, "  %18.8E  %14.8f\n",
                    shell.exponents[i],
                    i < shell.coefficients.size() ? shell.coefficients[i]
                                                  : 0.0);
      out += line;
    }
  }
  out += "END\n";
  return out;
}

Result<BasisSet> BasisSet::from_text(std::string_view text) {
  BasisSet basis;
  bool seen_header = false;
  for (const auto& raw_line : split(text, '\n')) {
    auto line = trim(raw_line);
    if (line.empty()) continue;
    if (starts_with(line, "BASIS")) {
      auto open = line.find('"');
      auto close = line.rfind('"');
      if (open == std::string_view::npos || close <= open) {
        return Status(ErrorCode::kMalformed, "basis: bad header");
      }
      basis.name = std::string(line.substr(open + 1, close - open - 1));
      seen_header = true;
      continue;
    }
    if (line == "END") break;
    if (!seen_header) {
      return Status(ErrorCode::kMalformed, "basis: data before header");
    }
    auto fields = split_skip_empty(line, ' ');
    if (fields.size() == 2 && fields[1].size() == 1 &&
        fields[1][0] >= 'A' && fields[1][0] <= 'Z') {
      BasisShell shell;
      shell.element = fields[0];
      shell.shell_type = fields[1][0];
      basis.shells.push_back(std::move(shell));
      continue;
    }
    if (fields.size() == 2) {
      if (basis.shells.empty()) {
        return Status(ErrorCode::kMalformed, "basis: primitive before shell");
      }
      try {
        basis.shells.back().exponents.push_back(std::stod(fields[0]));
        basis.shells.back().coefficients.push_back(std::stod(fields[1]));
      } catch (const std::exception&) {
        return Status(ErrorCode::kMalformed, "basis: bad primitive line");
      }
      continue;
    }
    return Status(ErrorCode::kMalformed,
                  "basis: unparseable line: " + std::string(line));
  }
  if (!seen_header) {
    return Status(ErrorCode::kMalformed, "basis: missing BASIS header");
  }
  return basis;
}

BasisSet make_basis_set(const std::string& name,
                        const std::vector<std::string>& elements,
                        uint64_t seed) {
  Rng rng(seed);
  BasisSet basis;
  basis.name = name;
  static constexpr char kShellTypes[] = {'S', 'P', 'D', 'F'};
  for (const auto& element : elements) {
    size_t shell_count = rng.uniform(3, 6);
    for (size_t s = 0; s < shell_count; ++s) {
      BasisShell shell;
      shell.element = element;
      shell.shell_type = kShellTypes[s % 4];
      size_t primitives = rng.uniform(2, 6);
      for (size_t p = 0; p < primitives; ++p) {
        shell.exponents.push_back(rng.uniform_real(0.1, 5000.0));
        shell.coefficients.push_back(rng.uniform_real(-1.0, 1.0));
      }
      basis.shells.push_back(std::move(shell));
    }
  }
  return basis;
}

size_t OutputProperty::value_count() const {
  size_t count = 1;
  for (uint32_t dim : dimensions) count *= dim;
  return dimensions.empty() ? 0 : count;
}

std::string OutputProperty::to_bytes() const {
  std::string out = "DPPROP1";
  out += '\0';
  auto put_u32 = [&out](uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), 4);
  };
  put_u32(static_cast<uint32_t>(name.size()));
  out += name;
  put_u32(static_cast<uint32_t>(units.size()));
  out += units;
  put_u32(static_cast<uint32_t>(dimensions.size()));
  for (uint32_t dim : dimensions) put_u32(dim);
  put_u32(static_cast<uint32_t>(values.size()));
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(double));
  return out;
}

Result<OutputProperty> OutputProperty::from_bytes(std::string_view data) {
  if (data.size() < 8 || data.substr(0, 7) != "DPPROP1") {
    return Status(ErrorCode::kMalformed, "property: bad magic");
  }
  size_t pos = 8;
  auto get_u32 = [&](uint32_t* v) {
    if (pos + 4 > data.size()) return false;
    std::memcpy(v, data.data() + pos, 4);
    pos += 4;
    return true;
  };
  OutputProperty property;
  uint32_t len;
  if (!get_u32(&len) || pos + len > data.size()) {
    return Status(ErrorCode::kMalformed, "property: truncated name");
  }
  property.name.assign(data.data() + pos, len);
  pos += len;
  if (!get_u32(&len) || pos + len > data.size()) {
    return Status(ErrorCode::kMalformed, "property: truncated units");
  }
  property.units.assign(data.data() + pos, len);
  pos += len;
  uint32_t dim_count;
  if (!get_u32(&dim_count)) {
    return Status(ErrorCode::kMalformed, "property: truncated dims");
  }
  for (uint32_t i = 0; i < dim_count; ++i) {
    uint32_t dim;
    if (!get_u32(&dim)) {
      return Status(ErrorCode::kMalformed, "property: truncated dims");
    }
    property.dimensions.push_back(dim);
  }
  uint32_t value_count;
  if (!get_u32(&value_count) ||
      pos + value_count * sizeof(double) > data.size()) {
    return Status(ErrorCode::kMalformed, "property: truncated values");
  }
  property.values.resize(value_count);
  std::memcpy(property.values.data(), data.data() + pos,
              value_count * sizeof(double));
  return property;
}

OutputProperty make_property(const std::string& name,
                             const std::string& units, size_t approx_bytes,
                             uint64_t seed) {
  Rng rng(seed);
  OutputProperty property;
  property.name = name;
  property.units = units;
  size_t count = std::max<size_t>(1, approx_bytes / sizeof(double));
  // Factor into a plausible 2-D shape.
  uint32_t columns = 3;
  uint32_t rows = static_cast<uint32_t>((count + columns - 1) / columns);
  property.dimensions = {rows, columns};
  size_t total = static_cast<size_t>(rows) * columns;
  property.values.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    property.values.push_back(rng.uniform_real(-100.0, 100.0));
  }
  return property;
}

}  // namespace davpse::ecce
