// Figure 4: the calculation model mapped onto DAV constructs.
//
//   /Ecce/<project>/                      collection  ecce:type=project
//   /Ecce/<project>/<calc>/               collection  ecce:type=calculation,
//                                         ecce:theory, ecce:description,
//                                         ecce:basis-name, ecce:state
//   /Ecce/<project>/<calc>/molecule       XYZ document + ecce:format,
//                                         ecce:formula, ecce:symmetry,
//                                         ecce:charge, ecce:multiplicity,
//                                         ecce:atom-count
//   /Ecce/<project>/<calc>/basisset       text document + ecce:basis-name
//   /Ecce/<project>/<calc>/<task>/        collection  ecce:task-kind,
//                                         ecce:state
//   /Ecce/<project>/<calc>/<task>/input   input deck document
//   /Ecce/<project>/<calc>/<task>/job     job record (metadata only)
//   /Ecce/<project>/<calc>/<task>/prop-*  binary property documents +
//                                         ecce:property-name, ecce:units,
//                                         ecce:dimensions
//   /EcceBasisLibrary/<name>              shared basis-set documents
//
// "Objects recognizable by domain scientists were mapped to separate
// DAV documents... the lowest granularity of access to raw data."
#pragma once

#include <memory>

#include "core/factory.h"
#include "core/storage.h"

namespace davpse::ecce {

class DavCalculationFactory final : public CalculationFactory {
 public:
  /// Borrows the storage binding (usually a DavStorage).
  explicit DavCalculationFactory(DataStorageInterface* storage)
      : storage_(storage) {}

  Status initialize() override;

  Status create_project(const std::string& project) override;
  Result<std::vector<std::string>> list_projects() override;
  Result<std::vector<std::string>> list_calculations(
      const std::string& project) override;
  Result<std::vector<CalcSummary>> project_summary(
      const std::string& project) override;

  Status save_calculation(const std::string& project,
                          const Calculation& calculation) override;
  Result<Calculation> load_calculation(const std::string& project,
                                       const std::string& name,
                                       const LoadParts& parts) override;
  Status remove_calculation(const std::string& project,
                            const std::string& name) override;
  Status copy_calculation(const std::string& project, const std::string& from,
                          const std::string& to) override;

  Status update_task_state(const std::string& project,
                           const std::string& calculation,
                           const std::string& task, RunState state) override;
  Status attach_output(const std::string& project,
                       const std::string& calculation,
                       const std::string& task,
                       const OutputProperty& output) override;

  /// Moves one output document to an arbitrary location (e.g. an
  /// archive hierarchy) and updates the task's ecce:members entry —
  /// the §3.2.3 virtual-document scenario: "an application or a DAV
  /// implementation might elect to store large documents on an archive
  /// system... the DAV structure can be reorganized without breaking
  /// existing applications". Loads keep working unchanged.
  Status relocate_output(const std::string& project,
                         const std::string& calculation,
                         const std::string& task,
                         const std::string& output_name,
                         const std::string& new_path);

  Status save_library_basis(const BasisSet& basis) override;
  Result<std::vector<std::string>> list_library_bases() override;
  Result<BasisSet> load_library_basis(const std::string& name) override;

  static std::string project_path(const std::string& project);
  static std::string calculation_path(const std::string& project,
                                      const std::string& name);

 private:
  std::string task_path(const std::string& project,
                        const std::string& calculation,
                        const std::string& task) const;

  DataStorageInterface* storage_;
};

}  // namespace davpse::ecce
