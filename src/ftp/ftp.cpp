#include "ftp/ftp.h"

#include <chrono>
#include <fstream>
#include <thread>

#include "util/fs.h"
#include "util/log.h"
#include "util/strings.h"

namespace davpse::ftp {
namespace {

namespace fs = std::filesystem;

/// Reads one CRLF- (or LF-) terminated line from a stream.
Result<std::string> read_line(net::Stream* stream, std::string* buffer) {
  for (;;) {
    auto eol = buffer->find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer->substr(0, eol);
      buffer->erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    auto got = stream->read(chunk, sizeof chunk);
    if (!got.ok()) return got.status();
    if (got.value() == 0) {
      return Status(ErrorCode::kUnavailable, "control connection closed");
    }
    buffer->append(chunk, got.value());
  }
}

Status write_line(net::Stream* stream, const std::string& line) {
  return stream->write(line + "\r\n");
}

/// Validates a client-supplied file name: single path segment only.
bool safe_name(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos &&
         name != "." && name != "..";
}

}  // namespace

// ---------------------------------------------------------------------------
// Server

FtpServer::FtpServer(FtpServerConfig config) : config_(std::move(config)) {}

FtpServer::~FtpServer() { stop(); }

Status FtpServer::start() { return start(net::Network::instance()); }

Status FtpServer::start(net::Network& network) {
  network_ = &network;
  auto listener = network.listen(config_.endpoint);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  running_.store(true);
  std::lock_guard<std::mutex> lock(threads_mutex_);
  threads_.emplace_back([this] { accept_loop(); });
  return Status::ok();
}

void FtpServer::stop() {
  running_.store(false);
  if (listener_) listener_->shutdown();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(threads_);
  }
  for (auto& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  listener_.reset();
}

void FtpServer::accept_loop() {
  while (running_.load()) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back(
        [this, s = std::move(stream).value()]() mutable {
          serve_session(std::move(s));
        });
  }
}

void FtpServer::serve_session(std::unique_ptr<net::Stream> control) {
  std::string buffer;
  bool authenticated = false;
  std::string pending_user;
  if (!write_line(control.get(), "220 davpse FTP ready").is_ok()) return;

  while (running_.load()) {
    auto line = read_line(control.get(), &buffer);
    if (!line.ok()) return;
    auto space = line.value().find(' ');
    std::string command = ascii_lower(line.value().substr(0, space));
    std::string argument =
        space == std::string::npos
            ? std::string()
            : std::string(trim(line.value().substr(space + 1)));

    if (command == "quit") {
      (void)write_line(control.get(), "221 Goodbye");
      return;
    }
    if (command == "user") {
      pending_user = argument;
      (void)write_line(control.get(), "331 Password required");
      continue;
    }
    if (command == "pass") {
      if (pending_user == config_.user &&
          (config_.password.empty() || argument == config_.password)) {
        authenticated = true;
        (void)write_line(control.get(), "230 Logged in");
      } else {
        (void)write_line(control.get(), "530 Login incorrect");
      }
      continue;
    }
    if (!authenticated) {
      (void)write_line(control.get(), "530 Please login with USER and PASS");
      continue;
    }
    if (command == "type") {
      if (iequals(argument, "I")) {
        (void)write_line(control.get(), "200 Type set to I");
      } else {
        (void)write_line(control.get(), "504 Only binary (TYPE I) supported");
      }
      continue;
    }
    if (command == "pasv") {
      std::string data_endpoint =
          config_.endpoint + ".data." +
          std::to_string(next_data_port_.fetch_add(1));
      auto data_listener_result = network_->listen(data_endpoint);
      if (!data_listener_result.ok()) {
        (void)write_line(control.get(), "425 Cannot open data connection");
        continue;
      }
      auto data_listener = std::move(data_listener_result).value();
      // In-memory network: the "address" in the 227 reply is the
      // endpoint name rather than an h1,h2,... tuple.
      (void)write_line(control.get(),
                       "227 Entering Passive Mode (" + data_endpoint + ")");

      auto next = read_line(control.get(), &buffer);
      if (!next.ok()) return;
      auto cmd_space = next.value().find(' ');
      std::string data_command =
          ascii_lower(next.value().substr(0, cmd_space));
      std::string name =
          cmd_space == std::string::npos
              ? std::string()
              : std::string(trim(next.value().substr(cmd_space + 1)));
      if (!safe_name(name)) {
        (void)write_line(control.get(), "553 Bad file name");
        continue;
      }
      fs::path path = config_.root / name;

      if (data_command == "stor") {
        (void)write_line(control.get(), "150 Opening BINARY connection");
        auto data = data_listener->accept();
        if (!data.ok()) {
          (void)write_line(control.get(), "426 Data connection failed");
          continue;
        }
        auto body = data.value()->read_all();
        if (!body.ok()) {
          (void)write_line(control.get(), "426 Transfer aborted");
          continue;
        }
        if (write_file_atomic(path, body.value()).is_ok()) {
          (void)write_line(control.get(), "226 Transfer complete");
        } else {
          (void)write_line(control.get(), "451 Local error");
        }
      } else if (data_command == "retr") {
        std::string contents;
        if (!read_file(path, &contents).is_ok()) {
          (void)write_line(control.get(), "550 File not found");
          continue;
        }
        (void)write_line(control.get(), "150 Opening BINARY connection");
        auto data = data_listener->accept();
        if (!data.ok()) {
          (void)write_line(control.get(), "426 Data connection failed");
          continue;
        }
        if (data.value()->write(contents).is_ok()) {
          data.value()->shutdown_write();
          (void)write_line(control.get(), "226 Transfer complete");
        } else {
          (void)write_line(control.get(), "426 Transfer aborted");
        }
      } else {
        (void)write_line(control.get(), "500 Expected STOR or RETR");
      }
      continue;
    }
    (void)write_line(control.get(),
                     "502 Command not implemented: " + command);
  }
}

// ---------------------------------------------------------------------------
// Client

FtpClient::FtpClient(std::string endpoint, net::Network& network,
                     RetryPolicy retry)
    : endpoint_(std::move(endpoint)),
      network_(network),
      retry_(retry),
      backoff_rng_(0xf7b0f7b0) {}

FtpClient::FtpClient(std::string endpoint)
    : FtpClient(std::move(endpoint), net::Network::instance()) {}

FtpClient::~FtpClient() {
  if (control_ != nullptr) (void)quit();
}

Result<std::string> FtpClient::read_reply() {
  auto line = read_line(control_.get(), &control_buffer_);
  if (model_ != nullptr && line.ok()) model_->add_round_trips(1);
  return line;
}

Status FtpClient::send_command(const std::string& line) {
  return write_line(control_.get(), line);
}

Status FtpClient::login(const std::string& user,
                        const std::string& password) {
  Deadline deadline = retry_.start_deadline();
  Status status = Status::ok();
  for (int attempt = 1;; ++attempt) {
    status = login_once(user, password);
    if (status.is_ok() || !status.is_retryable()) return status;
    control_.reset();  // a half-open control channel is useless
    if (attempt >= retry_.max_attempts) return status;
    double wait = retry_.backoff_before_attempt(
        attempt, backoff_rng_.uniform_real(0, 1));
    if (!deadline.allows(wait)) return status;
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
  }
}

Status FtpClient::login_once(const std::string& user,
                             const std::string& password) {
  auto stream = network_.connect(endpoint_);
  if (!stream.ok()) return stream.status();
  control_ = std::move(stream).value();
  if (model_ != nullptr) model_->add_round_trips(1);  // connection setup

  auto greeting = read_reply();
  if (!greeting.ok()) return greeting.status();
  DAVPSE_RETURN_IF_ERROR(send_command("USER " + user));
  auto user_reply = read_reply();
  if (!user_reply.ok()) return user_reply.status();
  DAVPSE_RETURN_IF_ERROR(send_command("PASS " + password));
  auto pass_reply = read_reply();
  if (!pass_reply.ok()) return pass_reply.status();
  if (!starts_with(pass_reply.value(), "230")) {
    return error(ErrorCode::kPermissionDenied, pass_reply.value());
  }
  DAVPSE_RETURN_IF_ERROR(send_command("TYPE I"));
  auto type_reply = read_reply();
  if (!type_reply.ok()) return type_reply.status();
  if (!starts_with(type_reply.value(), "200")) {
    return error(ErrorCode::kUnsupported, type_reply.value());
  }
  return Status::ok();
}

Result<std::string> FtpClient::open_data_connection_target() {
  DAVPSE_RETURN_IF_ERROR(send_command("PASV"));
  auto reply = read_reply();
  if (!reply.ok()) return reply.status();
  if (!starts_with(reply.value(), "227")) {
    return Status(ErrorCode::kUnavailable, reply.value());
  }
  auto open = reply.value().find('(');
  auto close = reply.value().find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close <= open + 1) {
    return Status(ErrorCode::kMalformed, "bad PASV reply: " + reply.value());
  }
  return reply.value().substr(open + 1, close - open - 1);
}

Status FtpClient::store(const std::string& remote_name,
                        std::string_view data) {
  if (control_ == nullptr) {
    return error(ErrorCode::kUnavailable, "not logged in");
  }
  auto target = open_data_connection_target();
  if (!target.ok()) return target.status();
  DAVPSE_RETURN_IF_ERROR(send_command("STOR " + remote_name));
  auto opening = read_reply();
  if (!opening.ok()) return opening.status();
  if (!starts_with(opening.value(), "150")) {
    return error(ErrorCode::kUnavailable, opening.value());
  }
  auto data_stream = network_.connect(target.value());
  if (!data_stream.ok()) return data_stream.status();
  DAVPSE_RETURN_IF_ERROR(data_stream.value()->write(data));
  if (model_ != nullptr) model_->add_bytes(data.size());
  data_stream.value()->shutdown_write();
  data_stream.value().reset();
  auto done = read_reply();
  if (!done.ok()) return done.status();
  if (!starts_with(done.value(), "226")) {
    return error(ErrorCode::kInternal, done.value());
  }
  return Status::ok();
}

Result<std::string> FtpClient::retrieve(const std::string& remote_name) {
  if (control_ == nullptr) {
    return Status(ErrorCode::kUnavailable, "not logged in");
  }
  auto target = open_data_connection_target();
  if (!target.ok()) return target.status();
  DAVPSE_RETURN_IF_ERROR(send_command("RETR " + remote_name));
  auto opening = read_reply();
  if (!opening.ok()) return opening.status();
  if (starts_with(opening.value(), "550")) {
    return Status(ErrorCode::kNotFound, opening.value());
  }
  if (!starts_with(opening.value(), "150")) {
    return Status(ErrorCode::kUnavailable, opening.value());
  }
  auto data_stream = network_.connect(target.value());
  if (!data_stream.ok()) return data_stream.status();
  auto body = data_stream.value()->read_all();
  if (!body.ok()) return body.status();
  if (model_ != nullptr) model_->add_bytes(body.value().size());
  auto done = read_reply();
  if (!done.ok()) return done.status();
  if (!starts_with(done.value(), "226")) {
    return Status(ErrorCode::kInternal, done.value());
  }
  return std::move(body).value();
}

Status FtpClient::quit() {
  if (control_ == nullptr) return Status::ok();
  (void)send_command("QUIT");
  control_.reset();
  control_buffer_.clear();
  return Status::ok();
}

}  // namespace davpse::ftp
