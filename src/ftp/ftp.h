// Minimal FTP (RFC 959 subset) — the baseline of Table 2, which
// compares binary-mode FTP transfers against DAV HTTP/PUT for 20 MB
// and 200 MB files. Implements exactly what that experiment needs:
// USER/PASS login, TYPE I, PASV data connections, STOR, RETR, QUIT.
// Control and data connections both ride the in-memory network, so the
// byte accounting matches the HTTP side of the comparison.
#pragma once

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/network.h"
#include "net/network_model.h"
#include "util/policy.h"
#include "util/random.h"
#include "util/status.h"

namespace davpse::ftp {

struct FtpServerConfig {
  std::string endpoint;             // control endpoint name
  std::filesystem::path root;      // served directory
  std::string user = "anonymous";
  std::string password;            // empty = any password accepted
};

class FtpServer {
 public:
  explicit FtpServer(FtpServerConfig config);
  ~FtpServer();

  FtpServer(const FtpServer&) = delete;
  FtpServer& operator=(const FtpServer&) = delete;

  Status start();
  Status start(net::Network& network);
  void stop();

 private:
  void accept_loop();
  void serve_session(std::unique_ptr<net::Stream> control);

  FtpServerConfig config_;
  net::Network* network_ = nullptr;
  std::unique_ptr<net::Listener> listener_;
  std::vector<std::thread> threads_;
  std::mutex threads_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> next_data_port_{20000};
};

class FtpClient {
 public:
  /// `retry` governs login()'s connect attempts (the only FTP step that
  /// is trivially safe to retry — no server state exists yet). Data
  /// transfers are left to the caller: a replayed STOR against a
  /// half-written file is not safe to automate at this layer.
  FtpClient(std::string endpoint, net::Network& network,
            RetryPolicy retry = RetryPolicy::none());
  explicit FtpClient(std::string endpoint);
  ~FtpClient();

  FtpClient(const FtpClient&) = delete;
  FtpClient& operator=(const FtpClient&) = delete;

  /// Connects, logs in, and switches to binary mode. Refused or reset
  /// connects retry per the constructor's RetryPolicy with jittered
  /// backoff.
  Status login(const std::string& user, const std::string& password);

  /// Uploads `data` as `remote_name` (binary STOR).
  Status store(const std::string& remote_name, std::string_view data);

  /// Downloads `remote_name` (binary RETR).
  Result<std::string> retrieve(const std::string& remote_name);

  Status quit();

  void set_network_model(net::NetworkModel* model) { model_ = model; }

 private:
  Result<std::string> read_reply();   // one "NNN text" control line
  Status send_command(const std::string& line);
  Result<std::string> open_data_connection_target();  // via PASV

  /// One login attempt: connect + USER/PASS/TYPE I.
  Status login_once(const std::string& user, const std::string& password);

  std::string endpoint_;
  net::Network& network_;
  RetryPolicy retry_;
  Rng backoff_rng_;
  std::unique_ptr<net::Stream> control_;
  std::string control_buffer_;
  net::NetworkModel* model_ = nullptr;
};

}  // namespace davpse::ftp
